//! Umbrella crate for the speedup-stacks reproduction: hosts the runnable
//! examples and cross-crate integration tests. See the individual crates
//! for the actual library surface:
//!
//! - [`speedup_stacks`] — counters, accounting, stacks, rendering;
//! - [`memsim`] — the flat memory-hierarchy model;
//! - [`cmpsim`] — the deterministic event-driven CMP engine;
//! - [`workloads`] — synthetic benchmark models, weak-scaling variants
//!   and rate mixes;
//! - [`experiments`] — the per-figure reproductions and the many-core
//!   scaling study.
//!
//! `docs/ARCHITECTURE.md` maps the paper's concepts onto this layout.
//!
//! ```
//! use speedup_stacks_repro::cmpsim::MachineConfig;
//! assert_eq!(MachineConfig::default().n_cores, 16);
//! ```
pub use cmpsim;
pub use experiments;
pub use memsim;
pub use speedup_stacks;
pub use workloads;
