//! Umbrella crate for the speedup-stacks reproduction: hosts the runnable
//! examples and cross-crate integration tests. See the individual crates
//! (`speedup-stacks`, `memsim`, `cmpsim`, `workloads`, `experiments`) for
//! the actual library surface.
pub use cmpsim;
pub use experiments;
pub use memsim;
pub use speedup_stacks;
pub use workloads;
