//! End-to-end shape tests: every paper figure's qualitative claims must
//! hold when regenerated (at reduced workload scale for test speed).

use experiments::{fig1, fig23, fig45, fig6, fig7, fig89, hwcost};
use speedup_stacks::{Component, ScalingClass};

/// Scale for figures that only depend on compute/sync ratios.
const SCALE: f64 = 0.5;
/// Cache-pressure figures need the full working sets: the LLC is an
/// absolute 2 MB, so reduced-scale runs lose the reuse that creates
/// LLC interference.
const FULL: f64 = 1.0;

#[test]
fn fig1_blackscholes_near_linear_others_saturate() {
    let fig = fig1::run(SCALE);
    let bs = &fig.curves[0];
    let facesim = &fig.curves[1];
    let cholesky = &fig.curves[2];
    assert!(bs.at(16).unwrap() > 12.0, "blackscholes must scale well");
    // facesim and cholesky end up comparable and poor (paper: ~5x each).
    for c in [facesim, cholesky] {
        let s16 = c.at(16).unwrap();
        assert!(s16 > 3.0 && s16 < 8.0, "{}: got {s16}", c.name);
    }
    // Curves are monotone for blackscholes.
    let pts = &bs.points;
    for w in pts.windows(2) {
        assert!(w[1].1 > w[0].1 * 0.95, "blackscholes curve dipped: {pts:?}");
    }
}

#[test]
fn fig2_stack_components_sum_to_n() {
    let fig = fig23::run_fig2(SCALE);
    assert!(fig.stack.is_valid());
    assert_eq!(fig.stack.num_threads(), 16);
    assert!(
        fig.stack.component(Component::Yielding) > 0.5,
        "facesim is yield-heavy"
    );
}

#[test]
fn fig3_per_thread_breakup_reconstructs_ts() {
    let fig = fig23::run_fig3(SCALE);
    let sum: f64 = fig
        .stack
        .per_thread()
        .iter()
        .map(|t| t.estimated_single_thread_cycles)
        .sum();
    assert!((sum - fig.stack.estimated_single_thread_cycles()).abs() < 1e-6);
    assert_eq!(fig.stack.per_thread().len(), 4);
}

#[test]
fn fig4_average_error_within_paper_ballpark() {
    let fig = fig45::run(FULL);
    assert_eq!(fig.points.len(), 28 * 4);
    // Paper: 3.0/3.4/2.8/5.1% average absolute error. Allow a generous
    // envelope: the method must stay well under 10% on average.
    for n in fig45::THREAD_COUNTS {
        let err = fig.average_error(n);
        assert!(
            err < 0.10,
            "{n} threads: average |error| {:.1}% too high",
            err * 100.0
        );
    }
    // The overhead measure must flag swaptions_small (paper: 26%).
    let swap = fig
        .instruction_overhead
        .iter()
        .find(|(n, _)| n == "swaptions_small")
        .expect("swaptions_small present");
    assert!(
        swap.1 > 0.15,
        "swaptions_small overhead {:.2} too low",
        swap.1
    );
}

#[test]
fn fig5_bottlenecks_differ_between_facesim_and_cholesky() {
    let fig = fig45::run_fig5(SCALE);
    let get = |name: &str| {
        fig.stacks
            .iter()
            .find(|(l, _)| l == name)
            .map(|(_, s)| s)
            .expect("stack present")
    };
    let facesim = get("facesim_medium 16t");
    let cholesky = get("cholesky 16t");
    // Paper's key point: comparable speedups, different reasons.
    assert!(
        cholesky.component(Component::Spinning) > facesim.component(Component::Spinning) * 3.0,
        "cholesky must be spin-dominated relative to facesim"
    );
    assert!(
        facesim.component(Component::Yielding) > 2.0,
        "facesim must be yield-heavy"
    );
    // blackscholes barely loses anything.
    let bs = get("blackscholes_medium 16t");
    assert!(bs.total_overhead() < 3.0);
}

#[test]
fn fig6_classification_matches_paper_structure() {
    let fig = fig6::run(FULL);
    assert_eq!(fig.tree.entries().len(), 28);
    // Paper: 5 of 28 scale well.
    assert_eq!(fig.good_scalers(), 5, "tree:\n{}", fig.tree.render());
    // Yielding is the dominant delimiter for most benchmarks.
    assert!(
        fig.count_largest(Component::Yielding) >= 14,
        "yielding largest for only {} benchmarks",
        fig.count_largest(Component::Yielding)
    );
    // ferret_small is among the poor scalers.
    let poor: Vec<&str> = fig
        .tree
        .in_class(ScalingClass::Poor)
        .map(|e| e.name.as_str())
        .collect();
    assert!(poor.contains(&"ferret_small"), "poor class: {poor:?}");
}

#[test]
fn fig7_ferret_saturates_with_16_threads() {
    let fig = fig7::run(SCALE);
    // Performance with 16 threads saturates by 8 cores: 16 cores is not
    // meaningfully better (paper even shows it slightly worse).
    let at8 = fig.sixteen_at(8).unwrap();
    let at16 = fig.sixteen_at(16).unwrap();
    assert!(
        at16 < at8 * 1.25,
        "16 threads should saturate near 8 cores: S(8c)={at8:.2} S(16c)={at16:.2}"
    );
    // Oversubscription at low core counts is not catastrophic.
    let eq2 = fig.threads_eq_cores[0].1;
    let ov2 = fig.sixteen_at(2).unwrap();
    assert!(ov2 > eq2 * 0.5);
}

#[test]
fn fig8_negative_interference_dominates() {
    let fig = fig89::run_fig8(FULL);
    assert_eq!(fig.bars.len(), 7);
    // Every shown benchmark has a real positive component...
    for b in &fig.bars {
        assert!(b.positive > 0.02, "{}: positive {:.3}", b.label, b.positive);
    }
    // ...and for the clear majority, negative interference wins (paper:
    // all; we tolerate one marginal case at reduced scale).
    let harmful = fig.bars.iter().filter(|b| b.net() > -0.1).count();
    assert!(harmful >= 5, "only {harmful} of 7 benchmarks net-harmful");
}

#[test]
fn fig9_negative_shrinks_positive_stable_with_llc_size() {
    let fig = fig89::run_fig9(FULL);
    let first = &fig.bars[0];
    let last = &fig.bars[fig.bars.len() - 1];
    assert!(
        first.negative > last.negative + 0.05,
        "negative must shrink with LLC size"
    );
    // Positive interference is a program property: roughly constant.
    assert!(
        (first.positive - last.positive).abs() < 0.6 * first.positive.max(0.05),
        "positive must stay roughly constant: {:.3} -> {:.3}",
        first.positive,
        last.positive
    );
    // Net interference improves (paper: eventually becomes beneficial).
    assert!(last.net() < first.net());
}

#[test]
fn hwcost_reproduces_paper_budget() {
    let cost = hwcost::run();
    assert_eq!(cost.model.interference_bytes(), 952);
    assert_eq!(cost.model.spin_table_bytes(), 217);
    assert_eq!(cost.model.total_bytes(16), 18_704);
}
