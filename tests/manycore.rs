//! End-to-end many-core coverage: a 128-core machine with a 32-way LLC
//! runs a weak-scaling workload through the whole pipeline — engine,
//! spilled coherence directory, wide-LRU LLC, accounting — and produces
//! a rendered speedup stack.

use cmpsim::{simulate, MachineConfig};
use experiments::scaling::manycore_mem;
use speedup_stacks::render::{render_stack, RenderOptions};
use speedup_stacks::AccountingConfig;
use workloads::{streams_for, Suite, WorkloadProfile};

/// A small weak-scaling workload: every thread does the same fixed work,
/// with a mildly skewed heavy thread and a shared read region.
fn weak_profile() -> WorkloadProfile {
    let mut p = WorkloadProfile::compute_bound("manycore_demo", Suite::Rodinia, 2_000);
    p.phases = 2;
    p.phase_skew = 0.3;
    p.shared_read_frac = 0.1;
    p.shared_write_frac = 0.05;
    p.weak_scaling = true;
    p
}

#[test]
fn full_pipeline_at_128_cores_with_32_way_llc() {
    let cfg = MachineConfig {
        n_cores: 128,
        mem: manycore_mem(),
        ..MachineConfig::default()
    };
    assert_eq!(cfg.mem.llc.ways(), 32, "study LLC must be 32-way");

    let p = weak_profile();
    let result = simulate(cfg, streams_for(&p, 128)).expect("128-core run completes");
    assert_eq!(result.counters.len(), 128);
    assert!(result.tp_cycles > 0);

    // Coherent sharing actually happened at high core indices: stores to
    // the shared region invalidate remote copies.
    let invalidations: u64 = result.truth.iter().map(|t| t.invalidations_sent).sum();
    assert!(invalidations > 0, "no coherence traffic at 128 cores");

    let stack = result
        .stack(&AccountingConfig::default())
        .expect("valid counters");
    assert_eq!(stack.num_threads(), 128);
    // The stack invariant holds at N=128: components sum to N.
    assert!(
        (stack.base_speedup() + stack.total_overhead() - 128.0).abs() < 1e-6,
        "stack does not sum to N"
    );

    let art = render_stack("manycore_demo@128", &stack, &RenderOptions::default());
    assert!(art.contains("N=128"));
    assert!(art.contains("base speedup"));
    assert!(art.lines().count() >= 3, "bar and legend rendered");
}

#[test]
fn manycore_run_is_deterministic() {
    let cfg = MachineConfig {
        n_cores: 128,
        mem: manycore_mem(),
        ..MachineConfig::default()
    };
    let p = weak_profile();
    let a = simulate(cfg, streams_for(&p, 128)).unwrap();
    let b = simulate(cfg, streams_for(&p, 128)).unwrap();
    assert_eq!(a.tp_cycles, b.tp_cycles);
    assert_eq!(a.events, b.events);
    assert_eq!(a.counters, b.counters);
}

#[test]
fn rate_mix_at_65_cores_crosses_the_spill_boundary() {
    // 65 members: the first mix size whose directory uses spilled masks.
    let mut quick: Vec<WorkloadProfile> = workloads::default_rate_mix();
    for p in &mut quick {
        p.total_items = (p.total_items / 100).max(u64::from(p.phases) * 4);
    }
    let cfg = MachineConfig {
        n_cores: 65,
        mem: manycore_mem(),
        ..MachineConfig::default()
    };
    let result = simulate(cfg, workloads::rate_mix_streams(&quick, 65))
        .expect("65-member rate mix completes");
    assert_eq!(result.counters.len(), 65);
    // Members never wait on each other: no sync episodes at all.
    assert!(result.truth.iter().all(|t| t.wait_episodes == 0));
}
