//! Cross-crate plumbing tests: counters flow correctly from the
//! simulator through the accounting into stacks, deterministically.

use cmpsim::{simulate, MachineConfig, SpinDetectorKind};
use experiments::{run_profile, scaled_profile, RunOptions};
use speedup_stacks::{accounting, AccountingConfig, SpeedupStack};
use workloads::{find, streams_for, Suite};

fn demo_profile() -> workloads::WorkloadProfile {
    scaled_profile(
        &find("cholesky", Suite::Splash2).expect("catalog entry"),
        0.2,
    )
}

#[test]
fn stack_from_sim_equals_manual_accounting() {
    let p = demo_profile();
    let r = simulate(MachineConfig::with_cores(8), streams_for(&p, 8)).unwrap();
    let via_sim = r.stack(&AccountingConfig::default()).unwrap();
    let breakdowns =
        accounting::account(&r.counters, r.tp_cycles, &AccountingConfig::default()).unwrap();
    let manual = SpeedupStack::from_breakdowns(breakdowns, r.tp_cycles);
    assert_eq!(via_sim, manual);
}

#[test]
fn full_runs_are_deterministic_end_to_end() {
    let p = demo_profile();
    let a = run_profile(&p, &RunOptions::symmetric(8), None).unwrap();
    let b = run_profile(&p, &RunOptions::symmetric(8), None).unwrap();
    assert_eq!(a.mt_cycles, b.mt_cycles);
    assert_eq!(a.st_cycles, b.st_cycles);
    assert_eq!(a.stack, b.stack);
    assert_eq!(a.mt.counters, b.mt.counters);
}

#[test]
fn detector_choice_changes_spin_not_truth() {
    let p = demo_profile();
    let mk = |d: SpinDetectorKind| {
        let mut cfg = MachineConfig::with_cores(8);
        cfg.spin_detector = d;
        simulate(cfg, streams_for(&p, 8)).unwrap()
    };
    let tian = mk(SpinDetectorKind::Tian { mark_threshold: 16 });
    let oracle = mk(SpinDetectorKind::Oracle);
    let li = mk(SpinDetectorKind::Li {
        confirm_iterations: 2,
    });
    // Timing and ground truth are identical across detectors.
    assert_eq!(tian.tp_cycles, oracle.tp_cycles);
    assert_eq!(tian.truth, oracle.truth);
    assert_eq!(tian.truth, li.truth);
    // Detected spin: oracle >= li >= tian, and oracle equals truth.
    let spin = |r: &cmpsim::SimResult| r.counters.iter().map(|c| c.spin_cycles).sum::<f64>();
    let truth: u64 = oracle.truth.iter().map(|t| t.true_spin_cycles).sum();
    assert!((spin(&oracle) - truth as f64).abs() < 1e-6);
    assert!(spin(&li) <= spin(&oracle) + 1e-9);
    assert!(spin(&tian) <= spin(&li) + 1e-9);
    assert!(spin(&tian) > 0.0, "cholesky must show detected spinning");
}

#[test]
fn oracle_detector_tightens_estimation() {
    // With a perfect spin oracle, the estimate should not get worse for a
    // spin-dominated benchmark.
    let p = demo_profile();
    let tian = run_profile(&p, &RunOptions::symmetric(8), None).unwrap();
    let opts = RunOptions {
        detector: SpinDetectorKind::Oracle,
        ..RunOptions::symmetric(8)
    };
    let oracle = run_profile(&p, &opts, None).unwrap();
    assert!(oracle.error().abs() <= tian.error().abs() + 0.02);
}

#[test]
fn coherency_charging_is_optional_and_additive() {
    let p = demo_profile();
    let base = run_profile(&p, &RunOptions::symmetric(4), None).unwrap();
    let opts = RunOptions {
        accounting: AccountingConfig {
            charge_coherency: true,
            ..AccountingConfig::default()
        },
        ..RunOptions::symmetric(4)
    };
    let charged = run_profile(&p, &opts, None).unwrap();
    use speedup_stacks::Component;
    assert_eq!(base.stack.component(Component::CacheCoherency), 0.0);
    assert!(charged.stack.component(Component::CacheCoherency) >= 0.0);
    // Same run, same timing: only the accounting differs.
    assert_eq!(base.mt_cycles, charged.mt_cycles);
}

#[test]
fn threads_can_exceed_cores_in_runner() {
    let p = demo_profile();
    let opts = RunOptions {
        cores: 2,
        threads: 8,
        ..RunOptions::symmetric(2)
    };
    let out = run_profile(&p, &opts, None).unwrap();
    assert_eq!(out.stack.num_threads(), 8);
    assert!(out.actual < 3.0, "2 cores cannot give more than ~2x");
    use speedup_stacks::Component;
    assert!(
        out.stack.component(Component::Yielding) > 3.0,
        "oversubscription must show as yielding"
    );
}

#[test]
fn weak_vs_strong_input_contrast_swaptions() {
    // The paper's §7.2 observation: swaptions scales far better with the
    // bigger input.
    let small = scaled_profile(&find("swaptions", Suite::ParsecSmall).unwrap(), 1.0);
    let medium = scaled_profile(&find("swaptions", Suite::ParsecMedium).unwrap(), 0.3);
    let s = run_profile(&small, &RunOptions::symmetric(16), None).unwrap();
    let m = run_profile(&medium, &RunOptions::symmetric(16), None).unwrap();
    assert!(
        m.actual > s.actual + 4.0,
        "medium ({:.2}) must scale far better than small ({:.2})",
        m.actual,
        s.actual
    );
}
