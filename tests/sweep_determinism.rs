//! Determinism regression: a figure sweep run serially and via the
//! parallel driver must produce identical `SpeedupStack` components for
//! every (benchmark, thread-count) point.
//!
//! Each `Engine` run is deterministic and self-contained, and the driver
//! collects results in input order, so the only way this test can fail is
//! a shared-state leak between points or a collection-order bug. The
//! parallel side forces multiple workers even on single-CPU hosts so
//! genuine cross-thread execution is exercised.

use experiments::{fig1, fig45, run_grid, scaled_profile, Parallelism, RunOptions};
use speedup_stacks::Component;
use workloads::{find, Suite, WorkloadProfile};

fn grid_profiles() -> Vec<WorkloadProfile> {
    [
        ("cholesky", Suite::Splash2),
        ("blackscholes", Suite::ParsecSmall),
        ("ferret", Suite::ParsecSmall),
    ]
    .iter()
    .map(|(n, s)| scaled_profile(&find(n, *s).expect("catalog entry"), 0.2))
    .collect()
}

#[test]
fn serial_and_parallel_grids_are_identical() {
    let profiles = grid_profiles();
    let counts = [2usize, 4, 8];
    let serial = run_grid(
        &profiles,
        &counts,
        &|_, n| RunOptions::symmetric(n),
        Parallelism::Serial,
    );
    let parallel = run_grid(
        &profiles,
        &counts,
        &|_, n| RunOptions::symmetric(n),
        Parallelism::Workers(4),
    );
    assert_eq!(serial.len(), parallel.len());
    for (s_row, p_row) in serial.iter().zip(&parallel) {
        for (s, p) in s_row.iter().zip(p_row) {
            assert_eq!(s.name, p.name);
            assert_eq!(s.threads, p.threads);
            assert_eq!(s.st_cycles, p.st_cycles, "{} {}t", s.name, s.threads);
            assert_eq!(s.mt_cycles, p.mt_cycles, "{} {}t", s.name, s.threads);
            // Byte-identical stacks: every component, both speedups.
            assert_eq!(s.stack, p.stack, "{} {}t", s.name, s.threads);
            assert_eq!(s.mt.counters, p.mt.counters);
            assert_eq!(s.mt.truth, p.mt.truth);
            assert_eq!(s.mt.events, p.mt.events);
            for c in Component::ALL {
                assert_eq!(
                    s.stack.component(c).to_bits(),
                    p.stack.component(c).to_bits()
                );
            }
        }
    }
}

#[test]
fn figure_entrypoints_match_across_modes() {
    let serial = fig1::run_with(0.1, Parallelism::Serial);
    let parallel = fig1::run_with(0.1, Parallelism::Workers(3));
    for (a, b) in serial.curves.iter().zip(&parallel.curves) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.points, b.points);
    }

    let serial = fig45::run_with(0.1, Parallelism::Serial);
    let parallel = fig45::run_with(0.1, Parallelism::Workers(4));
    assert_eq!(serial.points.len(), parallel.points.len());
    for (a, b) in serial.points.iter().zip(&parallel.points) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.threads, b.threads);
        assert_eq!(a.actual.to_bits(), b.actual.to_bits());
        assert_eq!(a.estimated.to_bits(), b.estimated.to_bits());
    }
}
