//! Property-style tests over the whole pipeline: random (but valid)
//! workloads and machines must always produce well-formed speedup stacks.
//!
//! No proptest offline: deterministic randomized sweeps driven by
//! `workloads::rng::SmallRng` (stable case streams).

use cmpsim::{simulate, MachineConfig, Op, OpStream, VecStream};
use speedup_stacks::{AccountingConfig, Component, ThreadCounters};
use workloads::rng::SmallRng;
use workloads::{streams_for, AccessPattern, Suite, WorkloadProfile};

/// A small random workload profile.
fn arb_profile(rng: &mut SmallRng) -> WorkloadProfile {
    let mut p = WorkloadProfile::compute_bound("prop", Suite::Rodinia, rng.gen_range(64u64..512));
    p.phases = rng.gen_range(1u32..5);
    p.phase_skew = rng.gen_range(0u32..3000) as f64 / 1000.0;
    p.item_compute = rng.gen_range(20u32..400);
    p.item_loads = rng.gen_range(0u32..4);
    p.item_stores = rng.gen_range(0u32..3);
    p.private_lines = rng.gen_range(256u64..8192);
    p.shared_lines = rng.gen_range(0u64..2048);
    p.shared_read_frac = rng.gen_range(0u32..800) as f64 / 1000.0;
    p.access_pattern = if rng.gen_bool(0.5) {
        AccessPattern::Streaming
    } else {
        AccessPattern::Random
    };
    p.cs = rng.gen_bool(0.5).then_some(workloads::CsProfile {
        every_items: 2,
        len_cycles: 120,
        n_locks: 2,
    });
    p
}

#[test]
fn random_workloads_produce_valid_stacks() {
    let mut rng = SmallRng::seed_from_u64(0x51AC);
    for _ in 0..24 {
        let p = arb_profile(&mut rng);
        let n = rng.gen_range(1usize..9);
        let r = simulate(MachineConfig::with_cores(n), streams_for(&p, n)).unwrap();
        assert!(r.tp_cycles > 0);
        let stack = r.stack(&AccountingConfig::default()).unwrap();
        assert!(stack.is_valid());
        assert_eq!(stack.num_threads(), n);
        // Components plus base always sum to N.
        let total = stack.base_speedup() + stack.total_overhead();
        assert!((total - n as f64).abs() < 1e-6);
        // Estimated speedup is within the physical range.
        assert!(stack.estimated_speedup() >= 0.0);
        assert!(stack.estimated_speedup() <= n as f64 + stack.positive_interference() + 1e-9);
    }
}

#[test]
fn simulation_is_deterministic() {
    let mut rng = SmallRng::seed_from_u64(0xDE7);
    for _ in 0..12 {
        let p = arb_profile(&mut rng);
        let n = rng.gen_range(1usize..6);
        let a = simulate(MachineConfig::with_cores(n), streams_for(&p, n)).unwrap();
        let b = simulate(MachineConfig::with_cores(n), streams_for(&p, n)).unwrap();
        assert_eq!(a.tp_cycles, b.tp_cycles);
        assert_eq!(a.counters, b.counters);
        assert_eq!(a.truth, b.truth);
    }
}

#[test]
fn oversubscription_preserves_correctness() {
    let mut rng = SmallRng::seed_from_u64(0x0B5);
    for _ in 0..12 {
        let p = arb_profile(&mut rng);
        let threads = rng.gen_range(2usize..10);
        // More threads than cores: everything still completes and yields
        // are charged.
        let r = simulate(MachineConfig::with_cores(2), streams_for(&p, threads)).unwrap();
        let stack = r.stack(&AccountingConfig::default()).unwrap();
        assert!(stack.is_valid());
        assert_eq!(r.counters.len(), threads);
        for c in &r.counters {
            assert!(c.active_end_cycle <= r.tp_cycles);
        }
    }
}

#[test]
fn total_work_is_thread_count_invariant() {
    let mut rng = SmallRng::seed_from_u64(0x11);
    for _ in 0..24 {
        let p = arb_profile(&mut rng);
        let n = rng.gen_range(2usize..9);
        // Strong scaling: total items across threads stays within
        // rounding of the single-thread run, phase by phase.
        for phase in 0..p.phases {
            let total: u64 = (0..n).map(|t| p.items_for(t, phase, n)).sum();
            let single = p.items_for(0, phase, 1);
            let slack = n as u64; // rounding: at most one item per thread
            assert!(
                total >= single.saturating_sub(slack) && total <= single + slack,
                "phase {phase}: {n} threads give {total} items vs {single} single"
            );
        }
    }
}

#[test]
fn accounting_components_non_negative() {
    let mut rng = SmallRng::seed_from_u64(0x22);
    for _ in 0..48 {
        let t = ThreadCounters {
            active_end_cycle: rng.gen_range(1u64..1_000_000),
            spin_cycles: rng.gen_range(0u64..1_000_000) as f64,
            yield_cycles: rng.gen_range(0u64..1_000_000) as f64,
            mem_interference_cycles: rng.gen_range(0u64..1_000_000) as f64,
            ..ThreadCounters::default()
        };
        let tp = rng.gen_range(1_000_000u64..2_000_000);
        let b =
            speedup_stacks::accounting::account(&[t], tp, &AccountingConfig::default()).unwrap();
        for c in Component::ALL {
            assert!(b[0].overheads[c] >= 0.0);
        }
        assert!(b[0].estimated_single_thread_cycles >= 0.0);
        assert!(b[0].overheads.total() <= tp as f64 + 1e-6);
    }
}

#[test]
fn barrier_safety_under_stress() {
    // Many threads, many barriers: nobody may pass a barrier before all
    // arrive. We verify via a monotone phase invariant encoded in ops:
    // each thread's active_end must be >= the slowest thread's work time.
    let n = 12;
    let heavy_work = 40_000u32;
    let streams: Vec<Box<dyn OpStream>> = (0..n)
        .map(|t| {
            let mut ops = Vec::new();
            for phase in 0..5u32 {
                let work = if (phase as usize % n) == t {
                    heavy_work
                } else {
                    500
                };
                ops.push(Op::Compute(work));
                ops.push(Op::Barrier(0));
            }
            Box::new(VecStream::new(ops)) as Box<dyn OpStream>
        })
        .collect();
    let r = simulate(MachineConfig::with_cores(n), streams).unwrap();
    // 5 phases × one heavy thread each: Tp at least 5 × heavy work.
    assert!(r.tp_cycles >= 5 * u64::from(heavy_work));
    // All threads converge at the last barrier: ends within a wake-up of
    // each other.
    let ends: Vec<u64> = r.counters.iter().map(|c| c.active_end_cycle).collect();
    let min = *ends.iter().min().unwrap();
    let max = *ends.iter().max().unwrap();
    assert!(max - min < 50_000, "ends spread too far: {ends:?}");
}

#[test]
fn lock_stress_all_threads_complete() {
    let n = 8;
    let streams: Vec<Box<dyn OpStream>> = (0..n)
        .map(|_| {
            let mut ops = Vec::new();
            for i in 0..300u32 {
                ops.push(Op::LockAcquire(i % 3));
                ops.push(Op::Compute(20 + (i % 50)));
                ops.push(Op::LockRelease(i % 3));
                ops.push(Op::Compute(30));
            }
            Box::new(VecStream::new(ops)) as Box<dyn OpStream>
        })
        .collect();
    let r = simulate(MachineConfig::with_cores(n), streams).unwrap();
    assert_eq!(r.counters.len(), n);
    let spin: u64 = r.truth.iter().map(|t| t.true_spin_cycles).sum();
    assert!(spin > 0, "contended locks must cause spinning");
}
