//! The federation chaos suite: a fleet of `studyd` backends behind the
//! coordinator must survive a backend dying mid-sweep (`kill -9`-grade
//! `exit-unit` chaos), the whole fleet being unreachable, a wedged
//! straggler, and a dead backend coming back — and in every surviving
//! scenario the reassembled report is **byte-identical** to a local
//! `Study::run`. Failover never recomputes what a live backend already
//! cached, hedged losers are cancelled (visible in the loser's
//! `hedge_cancels` gauge), and cancelling a federated job cancels its
//! per-backend sub-jobs so no orphaned units keep computing.
//!
//! Fault positions are deterministic (`STUDYD_CHAOS` unit counters,
//! programmatic [`service::chaos::ChaosPolicy`]); synchronization is
//! always a polled predicate with a 30s deadline, never a bare sleep.

use std::io::{BufRead, BufReader};
use std::net::TcpListener;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use experiments::decompose::decompose;
use experiments::study::{find_study, StudyParams};
use service::chaos::ChaosPolicy;
use service::client::Client;
use service::federation::{assemble_events, Federation, FleetConfig, HealthState};
use service::scheduler::{JobEvent, SubmitError};
use service::server::{serve, ServeConfig};
use service::session::Dispatch;

fn fig6_params() -> StudyParams {
    StudyParams {
        scale: 0.02,
        threads: Some(vec![4]),
        ..StudyParams::default()
    }
}

fn fig1_params() -> StudyParams {
    StudyParams {
        scale: 0.01,
        threads: Some(vec![2]),
        ..StudyParams::default()
    }
}

/// A fast-probing fleet over the given backends: one failure marks a
/// backend dead, probes retry within ~100ms, hedging off (tests that
/// exercise hedging opt in explicitly).
fn fleet(backends: &[&str]) -> FleetConfig {
    FleetConfig {
        backends: backends.iter().map(|s| s.to_string()).collect(),
        hedge_after_ms: None,
        heartbeat_ms: 25,
        dead_after: 1,
        probe_backoff_base_ms: 25,
        probe_backoff_cap_ms: 100,
        ..FleetConfig::default()
    }
}

/// Blocks until `ready` holds — the suite's synchronization primitive,
/// so no scenario depends on a sleep being "long enough".
fn wait_for(what: &str, mut ready: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while !ready() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// A real `studyd` child process (the only way to observe a true
/// process death mid-stream), killed on drop.
struct Backend {
    proc: Child,
    addr: String,
}

impl Backend {
    fn spawn(workers: usize, chaos: Option<&str>) -> Backend {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_studyd"));
        cmd.args(["--addr", "127.0.0.1:0", "--workers", &workers.to_string()])
            .stdout(Stdio::piped())
            .stderr(Stdio::null());
        if let Some(spec) = chaos {
            cmd.env("STUDYD_CHAOS", spec);
        }
        let mut proc = cmd.spawn().expect("spawn studyd");
        let mut banner = String::new();
        BufReader::new(proc.stdout.take().expect("stdout piped"))
            .read_line(&mut banner)
            .expect("read banner");
        let addr = banner
            .trim()
            .strip_prefix("studyd: listening on ")
            .unwrap_or_else(|| panic!("unexpected banner: {banner:?}"))
            .to_string();
        Backend { proc, addr }
    }
}

impl Drop for Backend {
    fn drop(&mut self) {
        self.proc.kill().ok();
        self.proc.wait().ok();
    }
}

/// A loopback address with nothing listening on it (bound, then
/// dropped — `SO_REUSEADDR` lets a later server take it over).
fn reserved_addr() -> String {
    let listener = TcpListener::bind("127.0.0.1:0").expect("reserve");
    let addr = listener.local_addr().expect("addr").to_string();
    drop(listener);
    addr
}

/// A backend dying mid-sweep (its process exits at a deterministic
/// unit, as abruptly as `kill -9`) loses nothing: its in-flight units
/// fail over to the survivor and the report is byte-identical.
#[test]
fn killing_one_backend_mid_sweep_keeps_the_report_byte_identical() {
    let a = Backend::spawn(2, None);
    let b = Backend::spawn(1, Some("exit-unit=2"));
    let params = fig6_params();
    let local = find_study("fig6").unwrap().run(&params).unwrap();
    let grid = decompose("fig6", &params).unwrap();
    let n = grid.n_points();

    let fed = Federation::start(fleet(&[&a.addr, &b.addr])).expect("start fleet");
    let (_, rx) = fed
        .submit_units(grid.clone(), params.clone(), None)
        .expect("admitted");
    let outcome = assemble_events(&grid, &params, &rx).expect("reassemble");

    assert_eq!(outcome.failed, 0, "failover, not degradation");
    assert_eq!(outcome.computed, n, "both backends were cold");
    assert_eq!(outcome.report.to_text(), local.to_text(), "text bytes");
    assert_eq!(outcome.report.to_json(), local.to_json(), "json bytes");
    let status = fed.status();
    let dead = &status.backends[1];
    assert!(
        dead.failed_over >= 1,
        "the dying backend's units were requeued: {dead:?}"
    );
    wait_for("the killed backend to be marked dead", || {
        fed.status().backends[1].state == HealthState::Dead
    });
    fed.stop();
}

/// With the whole fleet unreachable the coordinator degrades to local
/// in-process execution — byte-identical, every unit attributed to the
/// local fallback — and with fallback disabled admission refuses with
/// a typed `unavailable` once the fleet is known dead.
#[test]
fn all_backends_dead_falls_back_to_local_or_refuses() {
    let ghosts = [reserved_addr(), reserved_addr()];
    let params = fig1_params();
    let local = find_study("fig1").unwrap().run(&params).unwrap();
    let grid = decompose("fig1", &params).unwrap();
    let n = grid.n_points();

    let fed = Federation::start(fleet(&[&ghosts[0], &ghosts[1]])).expect("start fleet");
    let (_, rx) = fed
        .submit_units(grid.clone(), params.clone(), None)
        .expect("admitted");
    let outcome = assemble_events(&grid, &params, &rx).expect("reassemble");
    assert_eq!(outcome.failed, 0);
    assert_eq!(outcome.report.to_text(), local.to_text(), "text bytes");
    assert_eq!(outcome.report.to_json(), local.to_json(), "json bytes");
    let status = fed.status();
    assert_eq!(status.local_units, n as u64, "every unit ran locally");
    fed.stop();

    let refusing = Federation::start(FleetConfig {
        local_fallback: false,
        ..fleet(&[&ghosts[0], &ghosts[1]])
    })
    .expect("start fleet");
    wait_for("both ghosts to be probed dead", || {
        refusing
            .status()
            .backends
            .iter()
            .all(|b| b.state == HealthState::Dead)
    });
    match refusing.submit_units(grid, params, None) {
        Err(SubmitError::Unavailable { backends }) => assert_eq!(backends, 2),
        other => panic!("expected unavailable, got {other:?}"),
    }
    refusing.stop();
}

/// Hedged dispatch races a stalled backend: the healthy backend wins
/// every hedged unit, the report stays byte-identical, and the loser's
/// duplicate sub-job is cancelled (its `hedge_cancels` gauge moves) —
/// hedged work is reclaimed, never left running.
#[test]
fn hedging_beats_a_stalled_backend_and_cancels_the_loser() {
    let a = serve(&ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    })
    .expect("bind a");
    let b = serve(&ServeConfig {
        workers: 1,
        chaos: ChaosPolicy {
            stall_at_unit: Some(0),
            ..ChaosPolicy::default()
        },
        ..ServeConfig::default()
    })
    .expect("bind b");
    let a_addr = a.local_addr().to_string();
    let b_addr = b.local_addr().to_string();
    let params = fig6_params();
    let local = find_study("fig6").unwrap().run(&params).unwrap();
    let grid = decompose("fig6", &params).unwrap();

    let fed = Federation::start(FleetConfig {
        hedge_after_ms: Some(0),
        ..fleet(&[&a_addr, &b_addr])
    })
    .expect("start fleet");
    let (_, rx) = fed
        .submit_units(grid.clone(), params.clone(), None)
        .expect("admitted");
    let outcome = assemble_events(&grid, &params, &rx).expect("reassemble");
    assert_eq!(outcome.failed, 0);
    assert_eq!(outcome.report.to_text(), local.to_text(), "text bytes");
    assert_eq!(outcome.report.to_json(), local.to_json(), "json bytes");

    let status = fed.status();
    assert!(
        status.backends[0].hedge_wins >= 1,
        "the healthy backend rescued the stalled one's units: {status:?}"
    );
    wait_for(
        "the stalled backend's sub-job to be hedge-cancelled",
        || b.scheduler().status().hedge_cancels >= 1,
    );
    fed.stop();
    a.stop();
    b.stop(); // also unwedges the chaos-stalled worker
}

/// A dead backend that comes back is re-probed, transitions to
/// recovered, and serves units of the next job — rejoining the fleet
/// without a restart of the coordinator.
#[test]
fn recovered_backend_rejoins_and_serves_the_next_job() {
    let a = serve(&ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    })
    .expect("bind a");
    let a_addr = a.local_addr().to_string();
    let b_addr = reserved_addr();

    let fed = Federation::start(fleet(&[&a_addr, &b_addr])).expect("start fleet");

    // Job 1: backend b is down; everything lands on a, byte-identically.
    let params = fig1_params();
    let local = find_study("fig1").unwrap().run(&params).unwrap();
    let grid = decompose("fig1", &params).unwrap();
    let (_, rx) = fed
        .submit_units(grid.clone(), params.clone(), None)
        .expect("admitted");
    let outcome = assemble_events(&grid, &params, &rx).expect("reassemble");
    assert_eq!(outcome.report.to_text(), local.to_text(), "job 1 bytes");
    wait_for("the unreachable backend to be marked dead", || {
        fed.status().backends[1].state == HealthState::Dead
    });

    // Backend b comes up on its advertised address; the monitor's
    // capped-backoff re-probe flips it dead -> recovered.
    let b = serve(&ServeConfig {
        addr: b_addr.clone(),
        workers: 4,
        ..ServeConfig::default()
    })
    .expect("bind b on the advertised address");
    wait_for("the backend to recover", || {
        let snap = &fed.status().backends[1];
        snap.recoveries >= 1 && snap.state == HealthState::Recovered
    });

    // Job 2: the rejoined backend takes real work.
    let params = fig6_params();
    let local = find_study("fig6").unwrap().run(&params).unwrap();
    let grid = decompose("fig6", &params).unwrap();
    let (_, rx) = fed
        .submit_units(grid.clone(), params.clone(), None)
        .expect("admitted");
    let outcome = assemble_events(&grid, &params, &rx).expect("reassemble");
    assert_eq!(outcome.report.to_text(), local.to_text(), "job 2 bytes");
    assert!(
        fed.status().backends[1].served >= 1,
        "the recovered backend served units: {:?}",
        fed.status().backends
    );
    fed.stop();
    a.stop();
    b.stop();
}

/// Failed-over units are never recomputed when a survivor already has
/// them cached: after a warmed backend absorbs a dying backend's
/// units, its compute counter has not moved — every requeued unit was
/// a cache hit.
#[test]
fn failover_serves_cached_units_without_recompute() {
    let a = serve(&ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    })
    .expect("bind a");
    let a_addr = a.local_addr().to_string();
    let params = fig6_params();
    let local = find_study("fig6").unwrap().run(&params).unwrap();
    let grid = decompose("fig6", &params).unwrap();
    let n = grid.n_points();

    // Warm a's cache with a direct submit.
    let warm = Client::connect(&a_addr)
        .and_then(|mut c| c.submit("fig6", &params))
        .expect("warm submit");
    assert_eq!(warm.computed, n);
    let computed_after_warm = a.scheduler().status().points_computed;

    // b is cold and dies after two units — everything it claimed fails
    // over to a, which must serve it from cache.
    let b = Backend::spawn(1, Some("exit-unit=2"));
    let fed = Federation::start(fleet(&[&a_addr, &b.addr])).expect("start fleet");
    let (_, rx) = fed
        .submit_units(grid.clone(), params.clone(), None)
        .expect("admitted");
    let outcome = assemble_events(&grid, &params, &rx).expect("reassemble");
    assert_eq!(outcome.failed, 0);
    assert_eq!(outcome.report.to_text(), local.to_text(), "text bytes");
    assert!(
        outcome.computed <= 2,
        "only the dying cold backend computes"
    );
    assert_eq!(outcome.computed + outcome.cached, n);
    assert_eq!(
        a.scheduler().status().points_computed,
        computed_after_warm,
        "failed-over units were cache hits, not recomputes"
    );
    assert!(
        fed.status().backends[1].failed_over >= 1,
        "{:?}",
        fed.status().backends
    );
    fed.stop();
    a.stop();
}

/// Cancelling a federated job cancels its per-backend sub-jobs: both
/// backends settle to zero active jobs and zero queued units, and the
/// fleet-wide compute count stays far short of the grid — no orphaned
/// units keep computing after the cancel.
#[test]
fn cancel_propagates_to_backend_sub_jobs() {
    let a = serve(&ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    })
    .expect("bind a");
    let b = serve(&ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    })
    .expect("bind b");
    let a_addr = a.local_addr().to_string();
    let b_addr = b.local_addr().to_string();
    let params = fig6_params();
    let grid = decompose("fig6", &params).unwrap();
    let n = grid.n_points();

    let fed = Federation::start(fleet(&[&a_addr, &b_addr])).expect("start fleet");
    let (job, rx) = fed.submit_units(grid, params, None).expect("admitted");

    // Cancel as soon as the first point lands, while both backends
    // still hold queued sub-job units.
    match rx.recv().expect("stream open") {
        JobEvent::Point { .. } => {}
        JobEvent::Failed { .. } => panic!("no failures expected"),
        JobEvent::Done { .. } => panic!("done before any point"),
    }
    assert!(fed.cancel_job(job, false), "live job cancelled");
    let cancelled = loop {
        match rx.recv().expect("stream open") {
            JobEvent::Done { cancelled, .. } => break cancelled,
            _ => continue,
        }
    };
    assert!(cancelled, "the stream's terminal frame says cancelled");

    wait_for("both backends to settle with no orphaned work", || {
        [&a, &b].iter().all(|s| {
            let st = s.scheduler().status();
            st.jobs_active == 0 && st.queued_units == 0
        })
    });
    let total = a.scheduler().status().points_computed + b.scheduler().status().points_computed;
    assert!(
        (total as usize) < n,
        "cancel stopped the sweep early: {total} of {n} computed"
    );
    fed.stop();
    a.stop();
    b.stop();
}
