//! Integration tests for the `studyd` service: concurrent-client
//! stress with bit-identical reassembly and cache-hit accounting, plus
//! adversarial protocol abuse — every malformed, oversized or
//! version-drifted frame must produce a typed rejection, never a panic
//! and never a wedged server.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use experiments::study::{find_study, StudyParams};
use service::client::Client;
use service::server::{serve, ServeConfig};
use speedup_stacks::report::json;

fn test_server(workers: usize) -> service::ServerHandle {
    serve(&ServeConfig {
        workers,
        ..ServeConfig::default()
    })
    .expect("bind loopback")
}

fn fig6_params() -> StudyParams {
    StudyParams {
        scale: 0.02,
        threads: Some(vec![4]),
        ..StudyParams::default()
    }
}

fn fig4_params() -> StudyParams {
    StudyParams {
        scale: 0.02,
        threads: Some(vec![2, 4]),
        ..StudyParams::default()
    }
}

/// A raw line-protocol peer for speaking deliberately broken frames.
struct Raw {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Raw {
    fn connect(addr: &str) -> Raw {
        let writer = TcpStream::connect(addr).expect("connect");
        let reader = BufReader::new(writer.try_clone().expect("clone"));
        Raw { reader, writer }
    }

    fn send(&mut self, line: &str) {
        self.writer.write_all(line.as_bytes()).expect("send");
        self.writer.write_all(b"\n").expect("send");
        self.writer.flush().expect("flush");
    }

    fn hello(&mut self) {
        self.send(&format!(
            "{{\"op\": \"hello\", \"proto\": {}}}",
            service::proto::PROTO_VERSION
        ));
        let reply = self.recv().expect("hello reply");
        assert!(reply.contains("\"kind\": \"hello\""), "{reply}");
    }

    /// Reads one line; `None` when the server closed the connection.
    fn recv(&mut self) -> Option<String> {
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) => None,
            Ok(_) => Some(line.trim_end().to_string()),
            Err(_) => None,
        }
    }

    fn expect_error(&mut self, code: &str) {
        let reply = self
            .recv()
            .unwrap_or_else(|| panic!("expected '{code}' error frame"));
        let v = json::parse(&reply).expect("error frame is valid JSON");
        assert!(
            matches!(v.get("ok"), Some(json::JsonValue::Bool(false))),
            "{reply}"
        );
        assert_eq!(
            v.get("error").and_then(json::JsonValue::as_str),
            Some(code),
            "{reply}"
        );
    }
}

#[test]
fn concurrent_clients_get_bit_identical_reports_from_the_cache() {
    let server = test_server(2);
    let addr = server.local_addr().to_string();

    // Local reference reports, computed once and shared by every client.
    let local_fig6 = find_study("fig6").unwrap().run(&fig6_params()).unwrap();
    let local_fig4 = find_study("fig4").unwrap().run(&fig4_params()).unwrap();

    // Warm phase: one client computes both grids remotely, proving
    // bit-identity on the cold path.
    let mut warm = Client::connect(&addr).expect("connect");
    let cold6 = warm.submit("fig6", &fig6_params()).expect("cold fig6");
    assert_eq!(cold6.report.to_text(), local_fig6.to_text(), "fig6 text");
    assert_eq!(cold6.report.to_json(), local_fig6.to_json(), "fig6 json");
    assert_eq!(cold6.report.to_csv(), local_fig6.to_csv(), "fig6 csv");
    assert_eq!(cold6.cached, 0, "fresh server has nothing cached");
    let cold4 = warm.submit("fig4", &fig4_params()).expect("cold fig4");
    assert_eq!(cold4.report.to_text(), local_fig4.to_text(), "fig4 text");
    assert_eq!(cold4.cached, 0);

    let warm_status = warm.status().expect("status");
    let computed_after_warm = warm_status.points_computed;
    let hits_after_warm = warm_status.cache_hits;
    assert_eq!(
        computed_after_warm,
        (cold6.computed + cold4.computed) as u64
    );

    // Concurrent wave: 8 clients with overlapping fig4/fig6 grids. The
    // warm cache makes the wave deterministic: every point must be a
    // hit, nothing may be recomputed.
    let texts: (String, String) = (local_fig6.to_text(), local_fig4.to_text());
    let jsons: (String, String) = (local_fig6.to_json(), local_fig4.to_json());
    let csvs: (String, String) = (local_fig6.to_csv(), local_fig4.to_csv());
    std::thread::scope(|scope| {
        for i in 0..8 {
            let addr = &addr;
            let (texts, jsons, csvs) = (&texts, &jsons, &csvs);
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let (study, params, text, json_out, csv) = if i % 2 == 0 {
                    ("fig6", fig6_params(), &texts.0, &jsons.0, &csvs.0)
                } else {
                    ("fig4", fig4_params(), &texts.1, &jsons.1, &csvs.1)
                };
                let outcome = client.submit(study, &params).expect("warm submit");
                assert_eq!(&outcome.report.to_text(), text, "client {i} text");
                assert_eq!(&outcome.report.to_json(), json_out, "client {i} json");
                assert_eq!(&outcome.report.to_csv(), csv, "client {i} csv");
                assert_eq!(outcome.computed, 0, "client {i} recomputed points");
                assert_eq!(
                    outcome.cached,
                    if i % 2 == 0 { 28 } else { 56 },
                    "client {i} cache count"
                );
            });
        }
    });

    // The counters prove it: the wave added cache hits and computed
    // nothing new.
    let after = warm.status().expect("status");
    assert_eq!(
        after.points_computed, computed_after_warm,
        "concurrent wave must not recompute warm points"
    );
    let expected_hits: u64 = 4 * 28 + 4 * 56; // 4 fig6 clients + 4 fig4 clients
    assert!(
        after.cache_hits >= hits_after_warm + expected_hits,
        "expected at least {expected_hits} new hits, got {} -> {}",
        hits_after_warm,
        after.cache_hits
    );
    assert_eq!(after.points_failed, 0);
    server.stop();
}

#[test]
fn garbage_line_is_rejected_and_closed() {
    let server = test_server(1);
    let addr = server.local_addr().to_string();

    // Garbage instead of the handshake.
    let mut raw = Raw::connect(&addr);
    raw.send("this is not json");
    raw.expect_error("malformed");
    assert!(raw.recv().is_none(), "connection closes after garbage");

    // Garbage after a valid handshake.
    let mut raw = Raw::connect(&addr);
    raw.hello();
    raw.send("{\"op\": \"submit\", broken");
    raw.expect_error("malformed");
    assert!(raw.recv().is_none());
    server.stop();
}

#[test]
fn oversized_frame_is_rejected_without_accumulating() {
    let server = test_server(1);
    let mut raw = Raw::connect(&server.local_addr().to_string());
    raw.hello();
    let huge = format!("{{\"op\": \"{}\"}}", "x".repeat(80 * 1024));
    raw.send(&huge);
    raw.expect_error("oversized");
    assert!(raw.recv().is_none());
    server.stop();
}

#[test]
fn version_mismatch_hello_is_a_typed_rejection() {
    let server = test_server(1);
    let mut raw = Raw::connect(&server.local_addr().to_string());
    raw.send("{\"op\": \"hello\", \"proto\": 99}");
    let reply = raw.recv().expect("mismatch frame");
    let v = json::parse(&reply).expect("valid JSON");
    assert_eq!(
        v.get("error").and_then(json::JsonValue::as_str),
        Some("version-mismatch"),
        "{reply}"
    );
    assert_eq!(v.get("found").and_then(json::JsonValue::as_f64), Some(99.0));
    let supported = v
        .get("supported")
        .and_then(json::JsonValue::as_f64)
        .expect("supported field");
    assert_eq!(supported as u64, service::proto::PROTO_VERSION);
    assert!(raw.recv().is_none(), "mismatched client is disconnected");
    server.stop();
}

#[test]
fn requests_before_hello_are_rejected() {
    let server = test_server(1);
    let mut raw = Raw::connect(&server.local_addr().to_string());
    raw.send("{\"op\": \"submit\", \"study\": \"fig6\"}");
    raw.expect_error("handshake-required");
    assert!(raw.recv().is_none());
    server.stop();
}

#[test]
fn invalid_requests_keep_the_connection_open() {
    let server = test_server(1);
    let mut raw = Raw::connect(&server.local_addr().to_string());
    raw.hello();

    raw.send("{\"op\": \"frobnicate\"}");
    raw.expect_error("bad-request");
    raw.send("{\"op\": \"submit\", \"study\": \"nope\"}");
    raw.expect_error("unknown-study");
    raw.send("{\"op\": \"submit\", \"study\": \"hwcost\"}");
    raw.expect_error("not-grid");
    raw.send("{\"op\": \"submit\", \"study\": \"fig6\", \"params\": {\"scale\": -1}}");
    raw.expect_error("bad-params");
    raw.send("{\"op\": \"cancel\"}");
    raw.expect_error("bad-request");

    // The same connection still serves real requests after five
    // rejections.
    raw.send("{\"op\": \"list\"}");
    let reply = raw.recv().expect("list reply");
    assert!(reply.contains("\"kind\": \"list\""), "{reply}");
    assert!(reply.contains("\"fig6\""), "{reply}");
    server.stop();
}

#[test]
fn mid_stream_disconnect_leaves_the_server_serving() {
    let server = test_server(1);
    let addr = server.local_addr().to_string();

    // Start a submission, read only the accepted frame, vanish.
    {
        let mut raw = Raw::connect(&addr);
        raw.hello();
        raw.send(
            "{\"op\": \"submit\", \"study\": \"fig4\", \
             \"params\": {\"scale\": 0.01, \"threads\": [2]}}",
        );
        let accepted = raw.recv().expect("accepted frame");
        assert!(accepted.contains("\"kind\": \"accepted\""), "{accepted}");
        // Dropping `raw` closes the socket mid-stream; the session must
        // cancel the job rather than panic on the broken pipe.
    }

    // The server keeps serving new clients afterwards.
    let mut client = Client::connect(&addr).expect("connect after disconnect");
    let params = StudyParams {
        scale: 0.01,
        threads: Some(vec![2]),
        ..StudyParams::default()
    };
    let outcome = client
        .submit("fig1", &params)
        .expect("post-disconnect submit");
    let local = find_study("fig1").unwrap().run(&params).unwrap();
    assert_eq!(outcome.report.to_text(), local.to_text());
    assert!(client.cancel(9999).is_ok_and(|found| !found));
    server.stop();
}

#[test]
fn status_and_list_round_trip_through_the_typed_client() {
    let server = test_server(1);
    let mut client = Client::connect(&server.local_addr().to_string()).expect("connect");
    let studies = client.list().expect("list");
    assert_eq!(studies.len(), 12);
    assert_eq!(studies.iter().filter(|s| s.grid).count(), 4);
    let status = client.status().expect("status");
    assert_eq!(status.workers, 1);
    assert_eq!(status.jobs_total, 0);
    server.stop();
}
