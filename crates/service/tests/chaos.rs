//! The deterministic chaos suite: every injected failure — worker
//! panic, cache-spill corruption, a torn spill tail from a `kill -9`,
//! a full admission queue, a mid-stream disconnect, a drain shutdown —
//! must degrade to a typed error or a recovered retry, never a panic,
//! a wedged server, or a wrong byte in a report.
//!
//! Fault injection is programmatic ([`service::chaos::ChaosPolicy`] on
//! [`ServeConfig`]) so every scenario is reproducible without timing
//! games; the spill-file crash scenarios write the torn bytes
//! themselves.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;

use experiments::study::{find_study, StudyParams};
use service::chaos::ChaosPolicy;
use service::client::{Client, RetryPolicy};
use service::server::{serve, ServeConfig};
use speedup_stacks::error::{ProtocolError, SimError};
use speedup_stacks::report::json;

fn fig6_params() -> StudyParams {
    StudyParams {
        scale: 0.02,
        threads: Some(vec![4]),
        ..StudyParams::default()
    }
}

fn fig1_params() -> StudyParams {
    StudyParams {
        scale: 0.01,
        threads: Some(vec![2]),
        ..StudyParams::default()
    }
}

fn temp_spill(tag: &str) -> PathBuf {
    let path =
        std::env::temp_dir().join(format!("studyd-chaos-{}-{tag}.ndjson", std::process::id()));
    std::fs::remove_file(&path).ok();
    path
}

/// Blocks until `ready` observes the server state a scenario needs
/// before proceeding — the suite's synchronization primitive, so no
/// test depends on a sleep being "long enough".
fn wait_until(server: &service::ServerHandle, ready: impl Fn(&service::ServerHandle) -> bool) {
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    while !ready(server) {
        assert!(
            std::time::Instant::now() < deadline,
            "server never reached the expected state"
        );
        std::thread::yield_now();
    }
}

/// Eight identical concurrent cold submits: every unit is computed
/// exactly once (one owner, seven coalesced subscribers), and all
/// eight reports are byte-identical to the local run.
#[test]
fn concurrent_cold_submits_coalesce_each_unit_once() {
    let server = serve(&ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    })
    .expect("bind loopback");
    let addr = server.local_addr().to_string();
    let params = fig6_params();
    let local = find_study("fig6").unwrap().run(&params).unwrap();
    let n = experiments::decompose::decompose("fig6", &params)
        .unwrap()
        .n_points();

    let outcomes: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let addr = &addr;
                let params = &params;
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    client.submit("fig6", params).expect("cold submit")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let total_computed: usize = outcomes.iter().map(|o| o.computed).sum();
    assert_eq!(total_computed, n, "each unit computed exactly once");
    for (i, o) in outcomes.iter().enumerate() {
        assert_eq!(o.computed + o.cached + o.coalesced, n, "client {i} points");
        assert_eq!(o.failed, 0, "client {i} failures");
        assert_eq!(o.report.to_text(), local.to_text(), "client {i} text");
        assert_eq!(o.report.to_json(), local.to_json(), "client {i} json");
    }
    let status = server.scheduler().status();
    assert_eq!(status.points_computed, n as u64, "pool-wide compute count");
    assert_eq!(
        status.points_cached + status.points_coalesced,
        (7 * n) as u64,
        "the other seven clients were fed without recompute"
    );
    server.stop();
}

/// The `kill -9` scenario: a server with a spill dies without any
/// shutdown (simulated by a torn, unterminated final line plus one
/// corrupted complete record), and a restarted server serves the
/// resubmit warm — corrupt records quarantined and recomputed, never
/// served, and the report byte-identical to the local run.
#[test]
fn kill_and_restart_serves_warm_resubmits_from_the_spill() {
    let spill = temp_spill("restart");
    let params = fig6_params();
    let local = find_study("fig6").unwrap().run(&params).unwrap();
    let n = experiments::decompose::decompose("fig6", &params)
        .unwrap()
        .n_points();

    // Life one: compute cold, write-through to the spill. No drain, no
    // sync — the per-record flush alone must make this durable.
    {
        let server = serve(&ServeConfig {
            workers: 2,
            cache_spill: Some(spill.clone()),
            ..ServeConfig::default()
        })
        .expect("bind");
        let mut client = Client::connect(&server.local_addr().to_string()).expect("connect");
        let cold = client.submit("fig6", &params).expect("cold submit");
        assert_eq!(cold.computed, n);
        assert!(server.cache().stats().spilled >= n as u64);
        server.stop();
    }

    // The crash: tear the tail mid-line (a record was being written
    // when the process died) and flip one byte inside a complete
    // point record (disk corruption).
    let mut content = std::fs::read_to_string(&spill).expect("spill exists");
    let target = content
        .lines()
        .position(|l| l.contains("point:"))
        .expect("spill holds point records");
    let mut lines: Vec<String> = content.lines().map(str::to_string).collect();
    let flipped = lines[target].replace("point:", "pXint:");
    assert_ne!(flipped, lines[target]);
    lines[target] = flipped;
    content = lines.join("\n");
    content.push('\n');
    content.push_str("{\"crc\":\"0000"); // torn final line, no newline
    std::fs::write(&spill, &content).expect("rewrite spill");

    // Life two: recover. One record quarantined, the torn tail dropped
    // silently, everything else served warm.
    let server = serve(&ServeConfig {
        workers: 2,
        cache_spill: Some(spill.clone()),
        ..ServeConfig::default()
    })
    .expect("rebind");
    let stats = server.cache().stats();
    assert_eq!(stats.quarantined, 1, "exactly the flipped record");
    assert!(stats.loaded >= 1);
    let mut client = Client::connect(&server.local_addr().to_string()).expect("reconnect");
    let warm = client.submit("fig6", &params).expect("warm submit");
    assert_eq!(
        warm.computed, 1,
        "only the quarantined record is recomputed — corrupt data is never served"
    );
    assert_eq!(warm.cached, n - 1);
    assert_eq!(warm.report.to_text(), local.to_text(), "bit-identical");
    server.stop();
    std::fs::remove_file(&spill).ok();
}

/// A full queue answers a typed `busy` with a retry hint; a client with
/// no retry policy surfaces it, and the backoff client eventually
/// completes with a correct report.
#[test]
fn full_queue_is_typed_busy_and_backoff_client_completes() {
    let server = serve(&ServeConfig {
        workers: 1,
        max_queued_units: 1,
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr().to_string();

    // Occupy the pool: a heavy job whose units stay queued while the
    // storm hits (an idle queue always admits, even past the bound).
    let heavy = StudyParams {
        scale: 0.03,
        threads: Some(vec![4]),
        ..StudyParams::default()
    };
    let heavy_worker = {
        let addr = addr.clone();
        let heavy = heavy.clone();
        std::thread::spawn(move || {
            let mut client = Client::connect(&addr).expect("connect");
            client.submit("fig6", &heavy).expect("heavy submit")
        })
    };
    wait_until(&server, |s| s.scheduler().status().queued_units >= 1);

    // Storm phase: a no-retry client must see the typed rejection.
    let light = fig1_params();
    let mut storm = Client::connect(&addr).expect("connect");
    let refused = storm.submit("fig1", &light);
    match refused {
        Err(SimError::Protocol(ProtocolError::Busy { retry_after_ms })) => {
            assert!((25..=5000).contains(&retry_after_ms), "{retry_after_ms}");
        }
        other => panic!("expected a typed busy rejection, got {other:?}"),
    }

    // The backoff client retries deterministically and completes once
    // the heavy job drains.
    let patient = RetryPolicy {
        max_attempts: 20,
        max_delay_ms: 500,
        ..RetryPolicy::default()
    };
    let outcome = storm
        .submit_with_retry("fig1", &light, &patient)
        .expect("backoff client completes");
    let local = find_study("fig1").unwrap().run(&light).unwrap();
    assert_eq!(outcome.report.to_text(), local.to_text());
    let heavy_outcome = heavy_worker.join().unwrap();
    assert_eq!(heavy_outcome.failed, 0);
    server.stop();
}

/// An injected worker panic at a chosen unit degrades that point to a
/// typed failure frame (the report carries a degraded block naming the
/// chaos panic), and an identical resubmit recovers cleanly.
#[test]
fn injected_worker_panic_degrades_then_recovers() {
    let server = serve(&ServeConfig {
        workers: 1,
        chaos: ChaosPolicy {
            panic_at_unit: Some(0),
            ..ChaosPolicy::default()
        },
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr().to_string();
    let params = fig1_params();
    let local = find_study("fig1").unwrap().run(&params).unwrap();

    let mut client = Client::connect(&addr).expect("connect");
    let hurt = client
        .submit("fig1", &params)
        .expect("submit survives panic");
    assert!(hurt.failed >= 1, "the chaos unit failed");
    let text = hurt.report.to_text();
    assert!(
        text.contains("chaos: injected panic"),
        "degraded block names the injected fault: {text}"
    );

    // The chaos counter is global, so the resubmit's units are past the
    // trigger: every previously-failed point recomputes cleanly.
    let healed = client.submit("fig1", &params).expect("resubmit");
    assert_eq!(healed.failed, 0);
    assert_eq!(healed.report.to_text(), local.to_text(), "fully recovered");
    server.stop();
}

/// A raw peer for protocol-level scenarios (mid-stream disconnects,
/// cancel races) the typed client deliberately cannot express.
struct Raw {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Raw {
    fn connect(addr: &str) -> Raw {
        let writer = TcpStream::connect(addr).expect("connect");
        let reader = BufReader::new(writer.try_clone().expect("clone"));
        let mut raw = Raw { reader, writer };
        raw.send(&format!(
            "{{\"op\": \"hello\", \"proto\": {}}}",
            service::proto::PROTO_VERSION
        ));
        let reply = raw.recv().expect("hello reply");
        assert!(reply.contains("\"kind\": \"hello\""), "{reply}");
        raw
    }

    fn send(&mut self, line: &str) {
        self.writer.write_all(line.as_bytes()).expect("send");
        self.writer.write_all(b"\n").expect("send");
        self.writer.flush().expect("flush");
    }

    fn recv(&mut self) -> Option<String> {
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) => None,
            Ok(_) => Some(line.trim_end().to_string()),
            Err(_) => None,
        }
    }
}

/// An owner that vanishes mid-stream does not starve a coalesced
/// subscriber: the subscriber still receives every point, byte for
/// byte.
#[test]
fn mid_stream_disconnect_keeps_feeding_coalesced_subscribers() {
    let server = serve(&ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr().to_string();

    // Pin the lone worker on a blocker job so the owner below is still
    // live when it disconnects.
    let blocker = StudyParams {
        scale: 0.015,
        ..fig1_params()
    };
    let blocker_worker = {
        let addr = addr.clone();
        let blocker = blocker.clone();
        std::thread::spawn(move || {
            let mut client = Client::connect(&addr).expect("connect");
            client.submit("fig1", &blocker).expect("blocker")
        })
    };

    let params = fig1_params();
    let local = find_study("fig1").unwrap().run(&params).unwrap();
    // The owner submits raw, reads only the accepted frame, vanishes.
    {
        let mut owner = Raw::connect(&addr);
        owner.send(
            "{\"op\": \"submit\", \"study\": \"fig1\", \
             \"params\": {\"scale\": 0.01, \"threads\": [2]}}",
        );
        let accepted = owner.recv().expect("accepted");
        assert!(accepted.contains("\"kind\": \"accepted\""), "{accepted}");
    }
    // The subscriber coalesces onto (or reads the cache behind) the
    // owner's units and must still assemble the full report.
    let mut subscriber = Client::connect(&addr).expect("connect");
    let outcome = subscriber.submit("fig1", &params).expect("subscriber");
    assert_eq!(outcome.failed, 0);
    assert_eq!(outcome.report.to_text(), local.to_text(), "bit-identical");
    blocker_worker.join().unwrap();
    server.stop();
}

/// The cancel/completion race is answered deterministically: cancelling
/// after the final point streamed yields a typed `already-done`, never
/// an error and never a stuck reply.
#[test]
fn cancel_after_completion_is_typed_already_done() {
    let server = serve(&ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    })
    .expect("bind");
    let mut raw = Raw::connect(&server.local_addr().to_string());
    raw.send(
        "{\"op\": \"submit\", \"study\": \"fig1\", \
         \"params\": {\"scale\": 0.01, \"threads\": [2]}}",
    );
    let accepted = json::parse(&raw.recv().expect("accepted")).expect("json");
    let job = accepted
        .get("job")
        .and_then(json::JsonValue::as_f64)
        .expect("job id") as u64;
    // Drain the stream to (and including) the terminal done frame.
    loop {
        let frame = raw.recv().expect("stream frame");
        if frame.contains("\"kind\": \"done\"") {
            break;
        }
    }
    raw.send(&format!("{{\"op\": \"cancel\", \"job\": {job}}}"));
    let reply = json::parse(&raw.recv().expect("cancel reply")).expect("json");
    assert!(matches!(reply.get("ok"), Some(json::JsonValue::Bool(true))));
    assert_eq!(
        reply.get("state").and_then(json::JsonValue::as_str),
        Some("already-done")
    );
    assert!(matches!(
        reply.get("found"),
        Some(json::JsonValue::Bool(false))
    ));
    server.stop();
}

/// Drain shutdown: admission stops at the acknowledgement, in-flight
/// jobs finish with full correct reports, and the spill is flushed.
#[test]
fn drain_shutdown_finishes_in_flight_jobs() {
    let spill = temp_spill("drain");
    let server = serve(&ServeConfig {
        workers: 1,
        cache_spill: Some(spill.clone()),
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr().to_string();

    let heavy = StudyParams {
        scale: 0.03,
        threads: Some(vec![4]),
        ..StudyParams::default()
    };
    let in_flight = {
        let addr = addr.clone();
        let heavy = heavy.clone();
        std::thread::spawn(move || {
            let mut client = Client::connect(&addr).expect("connect");
            client.submit("fig6", &heavy).expect("in-flight job")
        })
    };
    wait_until(&server, |s| s.scheduler().status().jobs_active >= 1);

    let mut admin = Client::connect(&addr).expect("connect");
    admin.shutdown_drain().expect("drain acknowledged");
    assert_eq!(server.wait_for_shutdown(), service::ShutdownMode::Drain);

    // Admission has stopped: a new submit is a typed rejection.
    let mut late = Client::connect(&addr).expect("connect");
    match late.submit("fig1", &fig1_params()) {
        Err(SimError::Protocol(ProtocolError::Rejected { code, .. })) => {
            assert_eq!(code, "draining");
        }
        other => panic!("expected a draining rejection, got {other:?}"),
    }

    // The barrier: every in-flight job runs to completion first.
    server.drain();
    let outcome = in_flight.join().unwrap();
    assert_eq!(outcome.failed, 0);
    let local = find_study("fig6").unwrap().run(&heavy).unwrap();
    assert_eq!(outcome.report.to_text(), local.to_text(), "bit-identical");
    server.stop();
    std::fs::remove_file(&spill).ok();
}
