//! End-to-end CLI tests for the `repro` binary: registry enumeration,
//! uniform usage errors (no `process::exit` bypassing `ExitCode`), and
//! format emission from the same report value.

use std::process::{Command, Output};

fn repro(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("run repro")
}

fn stdout(out: &Output) -> String {
    String::from_utf8(out.stdout.clone()).expect("utf-8 stdout")
}

fn stderr(out: &Output) -> String {
    String::from_utf8(out.stderr.clone()).expect("utf-8 stderr")
}

#[test]
fn list_enumerates_all_twelve_studies() {
    let out = repro(&["--list"]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert_eq!(text.lines().count(), 12);
    for name in [
        "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "hwcost",
        "regions", "scaling",
    ] {
        assert!(
            text.lines().any(|l| l.starts_with(name)),
            "--list misses {name}:\n{text}"
        );
    }
}

#[test]
fn unknown_experiment_is_uniform_usage_error() {
    let out = repro(&["bogus"]);
    assert_eq!(out.status.code(), Some(1));
    let err = stderr(&out);
    assert!(err.contains("unknown experiment: bogus"), "{err}");
    assert!(err.contains("usage:"), "{err}");
    assert!(stdout(&out).is_empty());
}

#[test]
fn missing_experiment_is_usage_error() {
    let out = repro(&[]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr(&out).contains("usage:"));
}

#[test]
fn scale_rejects_non_finite_and_non_positive() {
    for bad in ["inf", "-inf", "NaN", "nan", "0", "-2", "abc"] {
        let out = repro(&["fig1", "--scale", bad]);
        assert_eq!(out.status.code(), Some(1), "--scale {bad} accepted");
        assert!(
            stderr(&out).contains("--scale requires a positive finite number"),
            "--scale {bad}: {}",
            stderr(&out)
        );
    }
}

#[test]
fn bad_flags_are_usage_errors() {
    for args in [
        ["fig1", "--format", "yaml"].as_slice(),
        ["fig1", "--threads", "0"].as_slice(),
        ["fig1", "--threads", "2,x"].as_slice(),
        ["fig1", "--parallelism", "fast"].as_slice(),
        ["fig1", "--parallelism", "0"].as_slice(),
        ["fig1", "--llc-mib", "0"].as_slice(),
        ["fig1", "--retries", "x"].as_slice(),
        ["fig1", "--deadline-cycles", "0"].as_slice(),
        ["fig1", "--max-points", "0"].as_slice(),
        ["fig1", "--journal"].as_slice(),
        ["fig1", "--resume"].as_slice(),
        ["fig1", "--trace-out"].as_slice(),
        ["fig1", "--trace-in"].as_slice(),
        ["fig1", "--bogus-flag"].as_slice(),
        ["fig1", "fig2"].as_slice(),
    ] {
        let out = repro(args);
        assert_eq!(out.status.code(), Some(1), "{args:?} accepted");
        assert!(
            stderr(&out).contains("usage:"),
            "{args:?}: {}",
            stderr(&out)
        );
    }
}

#[test]
fn zero_workers_is_rejected_at_the_boundary_not_clamped() {
    // `Parallelism::workers` clamps 0 to 1 as a last resort, but the CLI
    // must reject it up front with the same uniform usage error as any
    // other bad mode.
    let out = repro(&["fig1", "--parallelism", "0"]);
    assert_eq!(out.status.code(), Some(1));
    let err = stderr(&out);
    assert!(
        err.contains("--parallelism requires auto, serial or a worker count >= 1"),
        "{err}"
    );
    assert!(err.contains("usage:"), "{err}");
}

#[test]
fn journal_flags_are_validated_before_any_simulation() {
    // Journaling is only meaningful for the grid studies.
    for args in [
        ["hwcost", "--journal", "j.ndjson"].as_slice(),
        ["scaling", "--resume", "j.ndjson"].as_slice(),
        ["all", "--journal", "j.ndjson"].as_slice(),
    ] {
        let out = repro(args);
        assert_eq!(out.status.code(), Some(1), "{args:?} accepted");
        assert!(
            stderr(&out).contains("--journal/--resume is not supported"),
            "{args:?}: {}",
            stderr(&out)
        );
    }
    // One journal per run: append-mode and resume-mode are exclusive.
    let out = repro(&["fig1", "--journal", "a.ndjson", "--resume", "b.ndjson"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(
        stderr(&out).contains("mutually exclusive"),
        "{}",
        stderr(&out)
    );
}

#[test]
fn trace_flags_are_validated_before_any_simulation() {
    // Tracing is only meaningful for the grid studies.
    for args in [
        ["hwcost", "--trace-out", "t.sstrace"].as_slice(),
        ["scaling", "--trace-in", "t.sstrace"].as_slice(),
        ["all", "--trace-out", "t.sstrace"].as_slice(),
    ] {
        let out = repro(args);
        assert_eq!(out.status.code(), Some(1), "{args:?} accepted");
        assert!(
            stderr(&out).contains("--trace-out/--trace-in is not supported"),
            "{args:?}: {}",
            stderr(&out)
        );
    }
    // One trace per run: capture-mode and replay-mode are exclusive.
    let out = repro(&[
        "fig1",
        "--trace-out",
        "a.sstrace",
        "--trace-in",
        "b.sstrace",
    ]);
    assert_eq!(out.status.code(), Some(1));
    assert!(
        stderr(&out).contains("mutually exclusive"),
        "{}",
        stderr(&out)
    );
}

#[test]
fn replaying_a_missing_trace_exits_with_the_trace_code() {
    let out = repro(&[
        "fig1",
        "--scale",
        "0.02",
        "--trace-in",
        "/nonexistent/never/fig1.sstrace",
    ]);
    assert_eq!(out.status.code(), Some(9), "{}", stderr(&out));
    assert!(
        stderr(&out).contains("trace open failed"),
        "{}",
        stderr(&out)
    );
}

#[test]
fn hwcost_text_json_and_csv_come_from_one_report() {
    let text = repro(&["hwcost"]);
    assert!(text.status.success());
    let json_out = repro(&["hwcost", "--format", "json"]);
    assert!(json_out.status.success());
    let doc = speedup_stacks::report::json::parse(&stdout(&json_out)).expect("valid JSON");
    assert_eq!(doc.get("study").unwrap().as_str(), Some("hwcost"));
    // The JSON scalar equals the number printed in the text form.
    let blocks = doc.get("blocks").unwrap().as_array().unwrap();
    let total = blocks
        .iter()
        .find(|b| b.get("name").and_then(|n| n.as_str()) == Some("total_bytes_per_core"))
        .and_then(|b| b.get("value"))
        .and_then(|v| v.as_f64())
        .expect("total_bytes_per_core scalar");
    assert!(
        stdout(&text).contains(&format!("{total:>6.0} B")),
        "text and JSON disagree on total_bytes_per_core"
    );

    let csv_out = repro(&["hwcost", "--format", "csv"]);
    assert!(csv_out.status.success());
    let csv = stdout(&csv_out);
    assert!(csv.starts_with("study,hwcost\n"), "{csv}");
    assert!(csv.contains(&format!("scalar,total_bytes_per_core,{total},bytes")));
}

#[test]
fn connection_refused_names_the_address_and_hints_serve() {
    // Port 1 on loopback is never listening; both service subcommands
    // must turn the bare I/O error into a typed protocol failure (exit
    // 10) that names the address and points at `repro serve`.
    for sub in ["submit", "shutdown"] {
        let args: Vec<&str> = if sub == "submit" {
            vec!["submit", "fig1", "--addr", "127.0.0.1:1", "--no-retry"]
        } else {
            vec!["shutdown", "--addr", "127.0.0.1:1"]
        };
        let out = repro(&args);
        assert_eq!(out.status.code(), Some(10), "{sub}: {}", stderr(&out));
        let err = stderr(&out);
        assert!(
            err.contains("127.0.0.1:1"),
            "{sub} must name the address: {err}"
        );
        assert!(
            err.contains("repro serve"),
            "{sub} must hint the fix: {err}"
        );
    }
}

#[test]
fn threads_override_reaches_the_study() {
    // hwcost sizes the CMP total by the last --threads entry.
    let out = repro(&["hwcost", "--threads", "8"]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("total for 8-core CMP"));
    let json_out = repro(&["hwcost", "--threads", "8", "--format", "json"]);
    let doc = speedup_stacks::report::json::parse(&stdout(&json_out)).expect("valid JSON");
    assert_eq!(
        doc.get("params").unwrap().get("threads").unwrap().as_str(),
        Some("8")
    );
}
