//! `studyd`: the long-lived study service.
//!
//! The paper's figure sweeps are embarrassingly parallel grids of
//! deterministic simulation points; this crate turns the `repro` driver
//! into a client/server pair so many consumers can share one simulator
//! pool and one result cache:
//!
//! - [`proto`] — the line-delimited JSON wire protocol (versioned
//!   handshake, typed error frames, bounded line lengths);
//! - [`cache`] — the content-addressed result cache (LRU byte budget,
//!   keys derived from the journal's canonical parameter string);
//! - [`persist`] — the cache's append-only, CRC32-framed spill file,
//!   reloaded with quarantine on restart so `kill -9` loses nothing
//!   but the line being written;
//! - [`scheduler`] — the shared worker pool with fair round-robin
//!   sharding across jobs, per-unit fault domains, in-flight request
//!   coalescing, admission control and graceful drain;
//! - [`server`] / [`session`] — the TCP listener and per-connection
//!   request loop (idle-connection reaping included);
//! - [`client`] — connect/submit/reassemble, producing reports
//!   **byte-identical** to local runs, with capped deterministic-jitter
//!   backoff against `busy` replies and split control/data read
//!   deadlines so a wedged backend is detected in bounded time;
//! - [`federation`] — the multi-backend coordinator: health-checked
//!   fan-out of grid units across a fleet, automatic failover, hedged
//!   straggler retries and graceful local fallback, still
//!   byte-identical;
//! - [`chaos`] — deterministic fault injection driving the chaos suite.
//!
//! Everything is `std`-only — `TcpListener`, `TcpStream` and threads —
//! matching the repo's no-external-dependencies rule. Protocol and
//! socket failures surface as
//! [`speedup_stacks::SimError::Protocol`] (exit code 10); nothing in
//! this crate unwraps socket I/O.
//!
//! # Examples
//!
//! An in-process server round trip:
//!
//! ```
//! use experiments::study::StudyParams;
//! use service::{client::Client, server};
//!
//! let handle = server::serve(&server::ServeConfig {
//!     workers: 1,
//!     ..server::ServeConfig::default()
//! })
//! .unwrap();
//! let mut client = Client::connect(&handle.local_addr().to_string()).unwrap();
//! assert_eq!(client.list().unwrap().len(), 12);
//! let params = StudyParams {
//!     scale: 0.01,
//!     threads: Some(vec![2]),
//!     ..StudyParams::default()
//! };
//! let outcome = client.submit("fig1", &params).unwrap();
//! assert_eq!(outcome.report.study, "fig1");
//! handle.stop();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod chaos;
pub mod client;
pub mod federation;
pub mod persist;
pub mod proto;
pub mod scheduler;
pub mod server;
pub mod session;

pub use client::{Client, RetryPolicy, SubmitOutcome};
pub use federation::{Federation, FederationStatus, FleetConfig, HealthState};
pub use server::{serve, serve_coordinator, ServeConfig, ServerHandle, ShutdownMode};
