//! The `studyd` client: connect, handshake, submit, reassemble.
//!
//! [`Client::submit`] is the heart of the remote path: it decomposes
//! the study locally (the same [`experiments::decompose`] grid the
//! server uses), streams the NDJSON point frames into per-index slots,
//! and folds them through [`GridStudy::assemble`] — so the report it
//! returns is **byte-identical** to a local `Study::run` with the same
//! parameters, whichever order the points arrived in and however many
//! were served from the server's cache (or coalesced onto another
//! job's computation).
//!
//! When the server answers `busy` (its admission bound is full),
//! [`Client::submit_with_retry`] backs off with capped exponential
//! delays and **deterministic** jitter — drawn from
//! [`workloads::rng::SmallRng`] seeded by the policy, never from the
//! wall clock — honoring the server's `retry_after_ms` hint.

use std::io::BufReader;
use std::net::TcpStream;
use std::time::Duration;

use experiments::decompose::{decompose, GridStudy};
use experiments::runner::PointSummary;
use experiments::study::StudyParams;
use speedup_stacks::error::ProtocolError;
use speedup_stacks::report::json::{self, JsonValue};
use speedup_stacks::report::{Degraded, DegradedPoint, Report};
use speedup_stacks::SimError;
use workloads::rng::SmallRng;

use crate::proto::{
    check_reply, io_err, params_to_wire, read_line_bounded, u64_field, write_line, PROTO_VERSION,
    REPLY_LINE_CAP,
};

/// Capped exponential backoff against `busy` replies, with
/// deterministic jitter (seeded, never wall-clock) so retry schedules
/// are reproducible in tests and chaos runs.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total submit attempts, first try included; `1` disables retry.
    pub max_attempts: u32,
    /// Delay before the first retry, in milliseconds.
    pub base_delay_ms: u64,
    /// Cap on the exponential component of any single delay.
    pub max_delay_ms: u64,
    /// Seed for the jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 8,
            base_delay_ms: 25,
            max_delay_ms: 2000,
            seed: 0x0073_7475_6479_6400, // "studyd"
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (the `--no-retry` opt-out).
    #[must_use]
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// The delay before retry number `attempt` (1-based), honoring the
    /// server's `retry_after_ms` hint: the exponential component is
    /// doubled per attempt and capped, jitter adds up to a quarter of
    /// it, and the result never undercuts the hint.
    #[must_use]
    pub fn delay_ms(&self, attempt: u32, retry_after_ms: u64) -> u64 {
        let shift = u64::from(attempt.saturating_sub(1).min(20));
        let exp = self
            .base_delay_ms
            .saturating_mul(1u64 << shift)
            .min(self.max_delay_ms);
        let mut rng = SmallRng::seed_from_u64(self.seed ^ u64::from(attempt));
        let jitter = if exp >= 4 {
            rng.gen_range(0..exp / 4)
        } else {
            0
        };
        (exp + jitter).max(retry_after_ms)
    }
}

/// Default bound on control-plane replies (`status`, `list`, `cancel`,
/// `shutdown`, the handshake): long enough for a healthy server under
/// load, short enough that a wedged backend is detected in bounded
/// time by the federation health monitor.
pub const DEFAULT_CONTROL_TIMEOUT: Duration = Duration::from_secs(2);

/// A connected, handshaken protocol client.
///
/// Replies are read under two independent deadlines: **control-plane**
/// calls (`status`, `list`, `cancel`, `shutdown`, the handshake) answer
/// from memory and must come back within a short
/// [`DEFAULT_CONTROL_TIMEOUT`], while **data-plane** reads (the submit
/// result stream) may legitimately block for as long as a point takes
/// to compute and default to no deadline. Before this split a wedged
/// backend could stall a heartbeat `status` probe indefinitely because
/// it shared whatever read deadline the submit path had configured.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    control_timeout: Option<Duration>,
    data_timeout: Option<Duration>,
}

/// One study entry from the server's `list` reply.
#[derive(Debug, Clone)]
pub struct RemoteStudy {
    /// Registry name.
    pub name: String,
    /// One-line description.
    pub description: String,
    /// Whether the server can shard it (grid studies only).
    pub grid: bool,
}

/// The server's `status` reply: scheduler gauges plus cache counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServiceStatus {
    /// Worker-pool size.
    pub workers: u64,
    /// Jobs currently resolving points.
    pub jobs_active: u64,
    /// Jobs accepted since startup.
    pub jobs_total: u64,
    /// Work units queued but not executing.
    pub queued_units: u64,
    /// Admission bound on queued units (`0` = unbounded).
    pub max_queued_units: u64,
    /// Whether the server is draining (rejecting new work).
    pub draining: bool,
    /// Points computed by the pool.
    pub points_computed: u64,
    /// Points served from the result cache.
    pub points_cached: u64,
    /// Points delivered by coalescing onto another job's computation.
    pub points_coalesced: u64,
    /// Points that failed.
    pub points_failed: u64,
    /// Jobs cancelled with the federation's `hedge` reason (the server
    /// lost a hedged race and its duplicate work was reclaimed).
    pub hedge_cancels: u64,
    /// Cache lookups served.
    pub cache_hits: u64,
    /// Cache lookups missed.
    pub cache_misses: u64,
    /// Cache entries evicted for space.
    pub cache_evictions: u64,
    /// Live cache entries.
    pub cache_entries: u64,
    /// Live cache bytes.
    pub cache_bytes: u64,
    /// Cache entries restored from the persistent spill on startup.
    pub cache_loaded: u64,
    /// Corrupt spill records quarantined on startup.
    pub cache_quarantined: u64,
    /// Entries appended to the persistent spill since startup.
    pub cache_spilled: u64,
}

/// One frame from an in-flight submit stream (the
/// [`Client::start_submit`] / [`Client::next_event`] low-level pair the
/// federation coordinator drives; [`Client::submit`] folds the same
/// stream into an assembled report).
#[derive(Debug)]
pub enum StreamEvent {
    /// A resolved point.
    Point {
        /// Grid point index (global — subset submits keep grid indices).
        index: usize,
        /// How the backend resolved it: `computed`, `cached` or
        /// `coalesced` (empty if the frame omitted it).
        source: String,
        /// Execution attempts (>1 means the point was retried).
        attempts: u64,
        /// The parsed point record; [`PointSummary::to_record`]
        /// round-trips it byte-identically for forwarding.
        summary: PointSummary,
    },
    /// A point that exhausted its retry budget.
    Failed {
        /// Grid point index.
        index: usize,
        /// Human-readable point label (may be empty).
        label: String,
        /// Why the point failed.
        reason: String,
        /// Execution attempts consumed.
        attempts: u64,
    },
    /// End of stream: the job's final tallies.
    Done {
        /// Points computed by the backend's pool for this job.
        computed: u64,
        /// Points served from the backend's result cache.
        cached: u64,
        /// Points coalesced onto another job's computation.
        coalesced: u64,
        /// Points that failed.
        failed: u64,
        /// Whether the job was cancelled before completing.
        cancelled: bool,
    },
}

/// What a remote submission produced.
#[derive(Debug)]
pub struct SubmitOutcome {
    /// The server's job id.
    pub job: u64,
    /// The reassembled report, byte-identical to a local run.
    pub report: Report,
    /// Points the server computed for this job.
    pub computed: usize,
    /// Points the server served from its cache.
    pub cached: usize,
    /// Points coalesced onto another in-flight job's computation.
    pub coalesced: usize,
    /// Points that failed (the report carries a `Degraded` block).
    pub failed: usize,
}

impl Client {
    /// Connects and completes the version handshake.
    ///
    /// # Errors
    ///
    /// [`SimError::Protocol`]: connect/write/read failures (a refused
    /// connection names the address and suggests starting a daemon),
    /// version mismatch, or a malformed greeting.
    pub fn connect(addr: &str) -> Result<Client, SimError> {
        let writer = TcpStream::connect(addr).map_err(|e| {
            if e.kind() == std::io::ErrorKind::ConnectionRefused {
                ProtocolError::Io {
                    op: "connect",
                    message: format!(
                        "connection refused at {addr} — no studyd is listening there \
                         (start one with `repro serve --addr {addr}`)"
                    ),
                }
            } else {
                io_err("connect", &e)
            }
        })?;
        writer.set_nodelay(true).ok();
        let read_half = writer.try_clone().map_err(|e| io_err("connect", &e))?;
        let mut client = Client {
            reader: BufReader::new(read_half),
            writer,
            control_timeout: Some(DEFAULT_CONTROL_TIMEOUT),
            data_timeout: None,
        };
        client.send(&format!(
            "{{\"op\": \"hello\", \"proto\": {PROTO_VERSION}}}"
        ))?;
        let reply = client.recv_control("handshake")?;
        if reply.get("kind").and_then(JsonValue::as_str) != Some("hello") {
            return Err(ProtocolError::Malformed {
                why: "server greeting is not a hello frame".to_string(),
            }
            .into());
        }
        Ok(client)
    }

    /// Overrides the control-plane reply deadline (`None` blocks
    /// forever; must be non-zero). Federation health monitors shorten
    /// it so heartbeats against a wedged backend fail fast.
    pub fn set_control_timeout(&mut self, timeout: Option<Duration>) {
        self.control_timeout = timeout;
    }

    /// Sets a deadline on data-plane reads (submit result frames),
    /// default `None`: a healthy backend may take arbitrarily long to
    /// compute a point, but a federation that can fail work over
    /// elsewhere bounds the wait. Must be non-zero.
    pub fn set_data_timeout(&mut self, timeout: Option<Duration>) {
        self.data_timeout = timeout;
    }

    fn send(&mut self, frame: &str) -> Result<(), ProtocolError> {
        write_line(&mut self.writer, frame)
    }

    /// [`Client::recv`] under the control-plane deadline.
    fn recv_control(&mut self, during: &str) -> Result<JsonValue, ProtocolError> {
        self.recv_deadline(during, self.control_timeout)
    }

    /// [`Client::recv`] under the data-plane deadline.
    fn recv_data(&mut self, during: &str) -> Result<JsonValue, ProtocolError> {
        self.recv_deadline(during, self.data_timeout)
    }

    fn recv_deadline(
        &mut self,
        during: &str,
        timeout: Option<Duration>,
    ) -> Result<JsonValue, ProtocolError> {
        self.writer
            .set_read_timeout(timeout)
            .map_err(|e| io_err("set-read-timeout", &e))?;
        self.recv(during)
    }

    /// Reads one reply frame, unwrapping `ok:false` into its typed
    /// error. `during` names the phase for close diagnostics.
    fn recv(&mut self, during: &str) -> Result<JsonValue, ProtocolError> {
        let line = read_line_bounded(&mut self.reader, REPLY_LINE_CAP)?.ok_or_else(|| {
            ProtocolError::Closed {
                during: during.to_string(),
            }
        })?;
        let frame = json::parse(&line).map_err(|e| ProtocolError::Malformed {
            why: format!("invalid JSON reply: {e}"),
        })?;
        check_reply(frame)
    }

    /// Fetches the server's study registry.
    ///
    /// # Errors
    ///
    /// [`SimError::Protocol`] on any wire failure.
    pub fn list(&mut self) -> Result<Vec<RemoteStudy>, SimError> {
        self.send("{\"op\": \"list\"}")?;
        let reply = self.recv_control("list")?;
        let studies = reply
            .get("studies")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| ProtocolError::Malformed {
                why: "list reply lacks a 'studies' array".to_string(),
            })?;
        let mut out = Vec::with_capacity(studies.len());
        for s in studies {
            out.push(RemoteStudy {
                name: field_str(s, "name")?,
                description: field_str(s, "description")?,
                grid: matches!(s.get("grid"), Some(JsonValue::Bool(true))),
            });
        }
        Ok(out)
    }

    /// Fetches scheduler and cache counters.
    ///
    /// # Errors
    ///
    /// [`SimError::Protocol`] on any wire failure.
    pub fn status(&mut self) -> Result<ServiceStatus, SimError> {
        self.send("{\"op\": \"status\"}")?;
        let reply = self.recv_control("status")?;
        let cache = reply.get("cache").cloned().unwrap_or(JsonValue::Null);
        let f = |v: &JsonValue, k: &str| u64_field(v, k).unwrap_or(0);
        Ok(ServiceStatus {
            workers: f(&reply, "workers"),
            jobs_active: f(&reply, "jobs_active"),
            jobs_total: f(&reply, "jobs_total"),
            queued_units: f(&reply, "queued_units"),
            max_queued_units: f(&reply, "max_queued_units"),
            draining: matches!(reply.get("draining"), Some(JsonValue::Bool(true))),
            points_computed: f(&reply, "points_computed"),
            points_cached: f(&reply, "points_cached"),
            points_coalesced: f(&reply, "points_coalesced"),
            points_failed: f(&reply, "points_failed"),
            hedge_cancels: f(&reply, "hedge_cancels"),
            cache_hits: f(&cache, "hits"),
            cache_misses: f(&cache, "misses"),
            cache_evictions: f(&cache, "evictions"),
            cache_entries: f(&cache, "entries"),
            cache_bytes: f(&cache, "bytes"),
            cache_loaded: f(&cache, "loaded"),
            cache_quarantined: f(&cache, "quarantined"),
            cache_spilled: f(&cache, "spilled"),
        })
    }

    /// Cancels a job; `Ok(false)` when the server no longer knows it.
    ///
    /// # Errors
    ///
    /// [`SimError::Protocol`] on any wire failure.
    pub fn cancel(&mut self, job: u64) -> Result<bool, SimError> {
        self.cancel_with_reason(job, None)
    }

    /// [`Client::cancel`] with an optional reason the server accounts
    /// separately — the federation sends `"hedge"` when the job lost a
    /// hedged race, so backend operators can tell reclaimed duplicate
    /// work from user-initiated cancellation.
    ///
    /// # Errors
    ///
    /// [`SimError::Protocol`] on any wire failure.
    pub fn cancel_with_reason(&mut self, job: u64, reason: Option<&str>) -> Result<bool, SimError> {
        match reason {
            Some(r) => self.send(&format!(
                "{{\"op\": \"cancel\", \"job\": {job}, \"reason\": \"{}\"}}",
                json::escape(r)
            ))?,
            None => self.send(&format!("{{\"op\": \"cancel\", \"job\": {job}}}"))?,
        }
        let reply = self.recv_control("cancel")?;
        Ok(matches!(reply.get("found"), Some(JsonValue::Bool(true))))
    }

    /// Asks the server to shut down immediately (acknowledged before
    /// it does).
    ///
    /// # Errors
    ///
    /// [`SimError::Protocol`] on any wire failure.
    pub fn shutdown(&mut self) -> Result<(), SimError> {
        self.send("{\"op\": \"shutdown\"}")?;
        self.recv_control("shutdown")?;
        Ok(())
    }

    /// Asks the server to drain: stop admitting work, finish in-flight
    /// jobs, flush the cache spill, then exit. Acknowledged as soon as
    /// admission has stopped.
    ///
    /// # Errors
    ///
    /// [`SimError::Protocol`] on any wire failure.
    pub fn shutdown_drain(&mut self) -> Result<(), SimError> {
        self.send("{\"op\": \"shutdown\", \"mode\": \"drain\"}")?;
        self.recv_control("shutdown")?;
        Ok(())
    }

    /// [`Client::submit`] with backoff: on a typed `busy` rejection,
    /// sleeps per `policy` (never less than the server's
    /// `retry_after_ms` hint) and resubmits on the same connection, up
    /// to `policy.max_attempts` total tries. Every other outcome —
    /// success or any non-busy error — is returned immediately.
    ///
    /// # Errors
    ///
    /// Whatever the final attempt returned; a still-busy server after
    /// the last attempt surfaces the `busy` error itself.
    pub fn submit_with_retry(
        &mut self,
        study: &str,
        params: &StudyParams,
        policy: &RetryPolicy,
    ) -> Result<SubmitOutcome, SimError> {
        let mut attempt = 1u32;
        loop {
            match self.submit(study, params) {
                Err(SimError::Protocol(ProtocolError::Busy { retry_after_ms }))
                    if attempt < policy.max_attempts =>
                {
                    let delay = policy.delay_ms(attempt, retry_after_ms);
                    std::thread::sleep(Duration::from_millis(delay));
                    attempt += 1;
                }
                outcome => return outcome,
            }
        }
    }

    /// Submits a study and reassembles the streamed points into the
    /// final [`Report`].
    ///
    /// # Errors
    ///
    /// [`SimError::Protocol`] for wire failures and typed server
    /// rejections (unknown study, bad params, a full queue (`busy`),
    /// a draining server, version drift).
    pub fn submit(&mut self, study: &str, params: &StudyParams) -> Result<SubmitOutcome, SimError> {
        let Some(grid) = decompose(study, params) else {
            return Err(ProtocolError::Rejected {
                code: "not-grid".to_string(),
                message: format!("study '{study}' is not a sharded grid study"),
            }
            .into());
        };
        let n = grid.n_points();
        let (job, points) = self.start_submit(study, params, None)?;
        if points != n as u64 {
            return Err(ProtocolError::Malformed {
                why: format!(
                    "server decomposed '{study}' into {points} points, this client expects {n} \
                     (build drift between client and server?)"
                ),
            }
            .into());
        }
        self.reassemble(job, &grid, params, n)
    }

    /// Low-level submit: sends the frame (optionally restricted to a
    /// `units` subset of grid point indices — the federation's shard
    /// primitive) and returns `(job, accepted_points)` without
    /// consuming the result stream; drive it with
    /// [`Client::next_event`]. [`Client::submit`] wraps this pair into
    /// a fully assembled report.
    ///
    /// # Errors
    ///
    /// [`SimError::Protocol`] for wire failures and typed server
    /// rejections (unknown study, bad params or units, a full queue
    /// (`busy`), a draining server).
    pub fn start_submit(
        &mut self,
        study: &str,
        params: &StudyParams,
        units: Option<&[usize]>,
    ) -> Result<(u64, u64), SimError> {
        let units_json = match units {
            Some(subset) => {
                let mut list = String::from(", \"units\": [");
                for (i, u) in subset.iter().enumerate() {
                    if i > 0 {
                        list.push_str(", ");
                    }
                    list.push_str(&u.to_string());
                }
                list.push(']');
                list
            }
            None => String::new(),
        };
        self.send(&format!(
            "{{\"op\": \"submit\", \"study\": \"{}\", \"params\": {}{units_json}}}",
            json::escape(study),
            params_to_wire(params)
        ))?;
        let accepted = self.recv_data("submit")?;
        if accepted.get("kind").and_then(JsonValue::as_str) != Some("accepted") {
            return Err(ProtocolError::Malformed {
                why: "submit reply is not an accepted frame".to_string(),
            }
            .into());
        }
        Ok((
            u64_field(&accepted, "job").unwrap_or(0),
            u64_field(&accepted, "points").unwrap_or(0),
        ))
    }

    /// Reads the next frame of an in-flight submit stream started with
    /// [`Client::start_submit`]. `n` is the full grid size, used to
    /// range-check point indices. Reads block under the data-plane
    /// deadline ([`Client::set_data_timeout`]).
    ///
    /// # Errors
    ///
    /// [`SimError::Protocol`] on wire failures, a timed-out read, or a
    /// malformed frame.
    pub fn next_event(&mut self, n: usize) -> Result<StreamEvent, SimError> {
        let frame = self.recv_data("result stream")?;
        match frame.get("kind").and_then(JsonValue::as_str) {
            Some("point") => {
                let index = frame_index(&frame, n)?;
                let summary = frame
                    .get("data")
                    .and_then(PointSummary::from_record)
                    .ok_or_else(|| ProtocolError::Malformed {
                        why: format!("point {index} carries an unparsable record"),
                    })?;
                Ok(StreamEvent::Point {
                    index,
                    source: field_str(&frame, "source").unwrap_or_default(),
                    attempts: u64_field(&frame, "attempts").unwrap_or(1),
                    summary,
                })
            }
            Some("failed") => {
                let index = frame_index(&frame, n)?;
                Ok(StreamEvent::Failed {
                    index,
                    label: field_str(&frame, "label").unwrap_or_default(),
                    reason: field_str(&frame, "reason").unwrap_or_else(|_| "unknown".to_string()),
                    attempts: u64_field(&frame, "attempts").unwrap_or(1),
                })
            }
            Some("done") => Ok(StreamEvent::Done {
                computed: u64_field(&frame, "computed").unwrap_or(0),
                cached: u64_field(&frame, "cached").unwrap_or(0),
                coalesced: u64_field(&frame, "coalesced").unwrap_or(0),
                failed: u64_field(&frame, "failed").unwrap_or(0),
                cancelled: matches!(frame.get("cancelled"), Some(JsonValue::Bool(true))),
            }),
            _ => Err(ProtocolError::Malformed {
                why: "unexpected frame in result stream".to_string(),
            }
            .into()),
        }
    }

    fn reassemble(
        &mut self,
        job: u64,
        grid: &GridStudy,
        params: &StudyParams,
        n: usize,
    ) -> Result<SubmitOutcome, SimError> {
        let mut slots: Vec<Option<PointSummary>> = (0..n).map(|_| None).collect();
        let mut failures: Vec<(usize, DegradedPoint)> = Vec::new();
        let mut retried = 0usize;
        loop {
            match self.next_event(n)? {
                StreamEvent::Point {
                    index,
                    attempts,
                    summary,
                    ..
                } => {
                    if attempts > 1 {
                        retried += 1;
                    }
                    slots[index] = Some(summary);
                }
                StreamEvent::Failed {
                    index,
                    label,
                    reason,
                    attempts,
                } => {
                    let label = if label.is_empty() {
                        grid.label(index)
                    } else {
                        label
                    };
                    failures.push((
                        index,
                        DegradedPoint {
                            label,
                            reason,
                            attempts: attempts as u32,
                        },
                    ));
                }
                StreamEvent::Done {
                    computed,
                    cached,
                    coalesced,
                    failed,
                    cancelled,
                } => {
                    if cancelled {
                        return Err(ProtocolError::Rejected {
                            code: "cancelled".to_string(),
                            message: format!("job {job} was cancelled before completing"),
                        }
                        .into());
                    }
                    // The sweep reports failures in point order regardless
                    // of completion order; match it.
                    failures.sort_by_key(|(i, _)| *i);
                    let degraded = Degraded {
                        retried,
                        failed: failures.into_iter().map(|(_, p)| p).collect(),
                        ..Degraded::default()
                    };
                    let report = grid.assemble(params, slots, degraded, None);
                    return Ok(SubmitOutcome {
                        job,
                        report,
                        computed: computed as usize,
                        cached: cached as usize,
                        coalesced: coalesced as usize,
                        failed: failed as usize,
                    });
                }
            }
        }
    }
}

fn field_str(v: &JsonValue, key: &str) -> Result<String, ProtocolError> {
    v.get(key)
        .and_then(JsonValue::as_str)
        .map(str::to_string)
        .ok_or_else(|| ProtocolError::Malformed {
            why: format!("frame lacks a string '{key}' field"),
        })
}

fn frame_index(frame: &JsonValue, n: usize) -> Result<usize, ProtocolError> {
    match u64_field(frame, "index") {
        Some(i) if (i as usize) < n => Ok(i as usize),
        _ => Err(ProtocolError::Malformed {
            why: "frame carries an out-of-range point index".to_string(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, Write};
    use std::net::TcpListener;
    use std::time::Instant;

    /// A wedged backend — one that accepts the connection and completes
    /// the handshake but never answers another frame — must fail a
    /// control-plane call within the control timeout, not hang forever.
    /// (Before the control/data deadline split, `status` inherited the
    /// submit path's unbounded read and a heartbeat could wedge with
    /// its backend.)
    #[test]
    fn control_calls_time_out_against_a_wedged_server() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut line = String::new();
            reader.read_line(&mut line).unwrap(); // hello
            let mut w = &stream;
            w.write_all(b"{\"ok\": true, \"kind\": \"hello\", \"proto\": 2}\n")
                .unwrap();
            // Read requests but never reply — wedged. Returns at EOF
            // when the client gives up and drops the connection.
            loop {
                line.clear();
                if reader.read_line(&mut line).unwrap_or(0) == 0 {
                    return;
                }
            }
        });
        let mut client = Client::connect(&addr).unwrap();
        client.set_control_timeout(Some(Duration::from_millis(50)));
        let start = Instant::now();
        let err = client.status().unwrap_err();
        assert!(
            matches!(
                err,
                SimError::Protocol(ProtocolError::Timeout | ProtocolError::Io { .. })
            ),
            "expected a timeout, got: {err}"
        );
        assert!(
            start.elapsed() < Duration::from_secs(4),
            "wedged server was not detected in bounded time"
        );
        drop(client);
        server.join().unwrap();
    }
}
