//! The `studyd` client: connect, handshake, submit, reassemble.
//!
//! [`Client::submit`] is the heart of the remote path: it decomposes
//! the study locally (the same [`experiments::decompose`] grid the
//! server uses), streams the NDJSON point frames into per-index slots,
//! and folds them through [`GridStudy::assemble`] — so the report it
//! returns is **byte-identical** to a local `Study::run` with the same
//! parameters, whichever order the points arrived in and however many
//! were served from the server's cache.

use std::io::BufReader;
use std::net::TcpStream;

use experiments::decompose::{decompose, GridStudy};
use experiments::runner::PointSummary;
use experiments::study::StudyParams;
use speedup_stacks::error::ProtocolError;
use speedup_stacks::report::json::{self, JsonValue};
use speedup_stacks::report::{Degraded, DegradedPoint, Report};
use speedup_stacks::SimError;

use crate::proto::{
    check_reply, io_err, params_to_wire, read_line_bounded, u64_field, write_line, PROTO_VERSION,
    REPLY_LINE_CAP,
};

/// A connected, handshaken protocol client.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

/// One study entry from the server's `list` reply.
#[derive(Debug, Clone)]
pub struct RemoteStudy {
    /// Registry name.
    pub name: String,
    /// One-line description.
    pub description: String,
    /// Whether the server can shard it (grid studies only).
    pub grid: bool,
}

/// The server's `status` reply: scheduler gauges plus cache counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServiceStatus {
    /// Worker-pool size.
    pub workers: u64,
    /// Jobs currently resolving points.
    pub jobs_active: u64,
    /// Jobs accepted since startup.
    pub jobs_total: u64,
    /// Work units queued but not executing.
    pub queued_units: u64,
    /// Points computed by the pool.
    pub points_computed: u64,
    /// Points served from the result cache.
    pub points_cached: u64,
    /// Points that failed.
    pub points_failed: u64,
    /// Cache lookups served.
    pub cache_hits: u64,
    /// Cache lookups missed.
    pub cache_misses: u64,
    /// Cache entries evicted for space.
    pub cache_evictions: u64,
    /// Live cache entries.
    pub cache_entries: u64,
    /// Live cache bytes.
    pub cache_bytes: u64,
}

/// What a remote submission produced.
#[derive(Debug)]
pub struct SubmitOutcome {
    /// The server's job id.
    pub job: u64,
    /// The reassembled report, byte-identical to a local run.
    pub report: Report,
    /// Points the server computed for this job.
    pub computed: usize,
    /// Points the server served from its cache.
    pub cached: usize,
    /// Points that failed (the report carries a `Degraded` block).
    pub failed: usize,
}

impl Client {
    /// Connects and completes the version handshake.
    ///
    /// # Errors
    ///
    /// [`SimError::Protocol`]: connect/write/read failures,
    /// version mismatch, or a malformed greeting.
    pub fn connect(addr: &str) -> Result<Client, SimError> {
        let writer = TcpStream::connect(addr).map_err(|e| io_err("connect", &e))?;
        writer.set_nodelay(true).ok();
        let read_half = writer.try_clone().map_err(|e| io_err("connect", &e))?;
        let mut client = Client {
            reader: BufReader::new(read_half),
            writer,
        };
        client.send(&format!(
            "{{\"op\": \"hello\", \"proto\": {PROTO_VERSION}}}"
        ))?;
        let reply = client.recv("handshake")?;
        if reply.get("kind").and_then(JsonValue::as_str) != Some("hello") {
            return Err(ProtocolError::Malformed {
                why: "server greeting is not a hello frame".to_string(),
            }
            .into());
        }
        Ok(client)
    }

    fn send(&mut self, frame: &str) -> Result<(), ProtocolError> {
        write_line(&mut self.writer, frame)
    }

    /// Reads one reply frame, unwrapping `ok:false` into its typed
    /// error. `during` names the phase for close diagnostics.
    fn recv(&mut self, during: &str) -> Result<JsonValue, ProtocolError> {
        let line = read_line_bounded(&mut self.reader, REPLY_LINE_CAP)?.ok_or_else(|| {
            ProtocolError::Closed {
                during: during.to_string(),
            }
        })?;
        let frame = json::parse(&line).map_err(|e| ProtocolError::Malformed {
            why: format!("invalid JSON reply: {e}"),
        })?;
        check_reply(frame)
    }

    /// Fetches the server's study registry.
    ///
    /// # Errors
    ///
    /// [`SimError::Protocol`] on any wire failure.
    pub fn list(&mut self) -> Result<Vec<RemoteStudy>, SimError> {
        self.send("{\"op\": \"list\"}")?;
        let reply = self.recv("list")?;
        let studies = reply
            .get("studies")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| ProtocolError::Malformed {
                why: "list reply lacks a 'studies' array".to_string(),
            })?;
        let mut out = Vec::with_capacity(studies.len());
        for s in studies {
            out.push(RemoteStudy {
                name: field_str(s, "name")?,
                description: field_str(s, "description")?,
                grid: matches!(s.get("grid"), Some(JsonValue::Bool(true))),
            });
        }
        Ok(out)
    }

    /// Fetches scheduler and cache counters.
    ///
    /// # Errors
    ///
    /// [`SimError::Protocol`] on any wire failure.
    pub fn status(&mut self) -> Result<ServiceStatus, SimError> {
        self.send("{\"op\": \"status\"}")?;
        let reply = self.recv("status")?;
        let cache = reply.get("cache").cloned().unwrap_or(JsonValue::Null);
        let f = |v: &JsonValue, k: &str| u64_field(v, k).unwrap_or(0);
        Ok(ServiceStatus {
            workers: f(&reply, "workers"),
            jobs_active: f(&reply, "jobs_active"),
            jobs_total: f(&reply, "jobs_total"),
            queued_units: f(&reply, "queued_units"),
            points_computed: f(&reply, "points_computed"),
            points_cached: f(&reply, "points_cached"),
            points_failed: f(&reply, "points_failed"),
            cache_hits: f(&cache, "hits"),
            cache_misses: f(&cache, "misses"),
            cache_evictions: f(&cache, "evictions"),
            cache_entries: f(&cache, "entries"),
            cache_bytes: f(&cache, "bytes"),
        })
    }

    /// Cancels a job; `Ok(false)` when the server no longer knows it.
    ///
    /// # Errors
    ///
    /// [`SimError::Protocol`] on any wire failure.
    pub fn cancel(&mut self, job: u64) -> Result<bool, SimError> {
        self.send(&format!("{{\"op\": \"cancel\", \"job\": {job}}}"))?;
        let reply = self.recv("cancel")?;
        Ok(matches!(reply.get("found"), Some(JsonValue::Bool(true))))
    }

    /// Asks the server to shut down (acknowledged before it does).
    ///
    /// # Errors
    ///
    /// [`SimError::Protocol`] on any wire failure.
    pub fn shutdown(&mut self) -> Result<(), SimError> {
        self.send("{\"op\": \"shutdown\"}")?;
        self.recv("shutdown")?;
        Ok(())
    }

    /// Submits a study and reassembles the streamed points into the
    /// final [`Report`].
    ///
    /// # Errors
    ///
    /// [`SimError::Protocol`] for wire failures and typed server
    /// rejections (unknown study, bad params, version drift).
    pub fn submit(&mut self, study: &str, params: &StudyParams) -> Result<SubmitOutcome, SimError> {
        let Some(grid) = decompose(study, params) else {
            return Err(ProtocolError::Rejected {
                code: "not-grid".to_string(),
                message: format!("study '{study}' is not a sharded grid study"),
            }
            .into());
        };
        self.send(&format!(
            "{{\"op\": \"submit\", \"study\": \"{}\", \"params\": {}}}",
            json::escape(study),
            params_to_wire(params)
        ))?;
        let accepted = self.recv("submit")?;
        if accepted.get("kind").and_then(JsonValue::as_str) != Some("accepted") {
            return Err(ProtocolError::Malformed {
                why: "submit reply is not an accepted frame".to_string(),
            }
            .into());
        }
        let n = grid.n_points();
        if u64_field(&accepted, "points") != Some(n as u64) {
            return Err(ProtocolError::Malformed {
                why: format!(
                    "server decomposed '{study}' into {} points, this client expects {n} \
                     (build drift between client and server?)",
                    u64_field(&accepted, "points").unwrap_or(0)
                ),
            }
            .into());
        }
        let job = u64_field(&accepted, "job").unwrap_or(0);
        self.reassemble(job, &grid, params, n)
    }

    fn reassemble(
        &mut self,
        job: u64,
        grid: &GridStudy,
        params: &StudyParams,
        n: usize,
    ) -> Result<SubmitOutcome, SimError> {
        let mut slots: Vec<Option<PointSummary>> = (0..n).map(|_| None).collect();
        let mut failures: Vec<(usize, DegradedPoint)> = Vec::new();
        let mut retried = 0usize;
        loop {
            let frame = self.recv("result stream")?;
            match frame.get("kind").and_then(JsonValue::as_str) {
                Some("point") => {
                    let index = frame_index(&frame, n)?;
                    let summary = frame
                        .get("data")
                        .and_then(PointSummary::from_record)
                        .ok_or_else(|| ProtocolError::Malformed {
                            why: format!("point {index} carries an unparsable record"),
                        })?;
                    if u64_field(&frame, "attempts").unwrap_or(1) > 1 {
                        retried += 1;
                    }
                    slots[index] = Some(summary);
                }
                Some("failed") => {
                    let index = frame_index(&frame, n)?;
                    failures.push((
                        index,
                        DegradedPoint {
                            label: field_str(&frame, "label").unwrap_or_else(|_| grid.label(index)),
                            reason: field_str(&frame, "reason")
                                .unwrap_or_else(|_| "unknown".to_string()),
                            attempts: u64_field(&frame, "attempts").unwrap_or(1) as u32,
                        },
                    ));
                }
                Some("done") => {
                    let computed = u64_field(&frame, "computed").unwrap_or(0) as usize;
                    let cached = u64_field(&frame, "cached").unwrap_or(0) as usize;
                    let failed = u64_field(&frame, "failed").unwrap_or(0) as usize;
                    if matches!(frame.get("cancelled"), Some(JsonValue::Bool(true))) {
                        return Err(ProtocolError::Rejected {
                            code: "cancelled".to_string(),
                            message: format!("job {job} was cancelled before completing"),
                        }
                        .into());
                    }
                    // The sweep reports failures in point order regardless
                    // of completion order; match it.
                    failures.sort_by_key(|(i, _)| *i);
                    let degraded = Degraded {
                        retried,
                        failed: failures.into_iter().map(|(_, p)| p).collect(),
                        ..Degraded::default()
                    };
                    let report = grid.assemble(params, slots, degraded, None);
                    return Ok(SubmitOutcome {
                        job,
                        report,
                        computed,
                        cached,
                        failed,
                    });
                }
                _ => {
                    return Err(ProtocolError::Malformed {
                        why: "unexpected frame in result stream".to_string(),
                    }
                    .into())
                }
            }
        }
    }
}

fn field_str(v: &JsonValue, key: &str) -> Result<String, ProtocolError> {
    v.get(key)
        .and_then(JsonValue::as_str)
        .map(str::to_string)
        .ok_or_else(|| ProtocolError::Malformed {
            why: format!("frame lacks a string '{key}' field"),
        })
}

fn frame_index(frame: &JsonValue, n: usize) -> Result<usize, ProtocolError> {
    match u64_field(frame, "index") {
        Some(i) if (i as usize) < n => Ok(i as usize),
        _ => Err(ProtocolError::Malformed {
            why: "frame carries an out-of-range point index".to_string(),
        }),
    }
}
