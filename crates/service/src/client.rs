//! The `studyd` client: connect, handshake, submit, reassemble.
//!
//! [`Client::submit`] is the heart of the remote path: it decomposes
//! the study locally (the same [`experiments::decompose`] grid the
//! server uses), streams the NDJSON point frames into per-index slots,
//! and folds them through [`GridStudy::assemble`] — so the report it
//! returns is **byte-identical** to a local `Study::run` with the same
//! parameters, whichever order the points arrived in and however many
//! were served from the server's cache (or coalesced onto another
//! job's computation).
//!
//! When the server answers `busy` (its admission bound is full),
//! [`Client::submit_with_retry`] backs off with capped exponential
//! delays and **deterministic** jitter — drawn from
//! [`workloads::rng::SmallRng`] seeded by the policy, never from the
//! wall clock — honoring the server's `retry_after_ms` hint.

use std::io::BufReader;
use std::net::TcpStream;
use std::time::Duration;

use experiments::decompose::{decompose, GridStudy};
use experiments::runner::PointSummary;
use experiments::study::StudyParams;
use speedup_stacks::error::ProtocolError;
use speedup_stacks::report::json::{self, JsonValue};
use speedup_stacks::report::{Degraded, DegradedPoint, Report};
use speedup_stacks::SimError;
use workloads::rng::SmallRng;

use crate::proto::{
    check_reply, io_err, params_to_wire, read_line_bounded, u64_field, write_line, PROTO_VERSION,
    REPLY_LINE_CAP,
};

/// Capped exponential backoff against `busy` replies, with
/// deterministic jitter (seeded, never wall-clock) so retry schedules
/// are reproducible in tests and chaos runs.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total submit attempts, first try included; `1` disables retry.
    pub max_attempts: u32,
    /// Delay before the first retry, in milliseconds.
    pub base_delay_ms: u64,
    /// Cap on the exponential component of any single delay.
    pub max_delay_ms: u64,
    /// Seed for the jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 8,
            base_delay_ms: 25,
            max_delay_ms: 2000,
            seed: 0x0073_7475_6479_6400, // "studyd"
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (the `--no-retry` opt-out).
    #[must_use]
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// The delay before retry number `attempt` (1-based), honoring the
    /// server's `retry_after_ms` hint: the exponential component is
    /// doubled per attempt and capped, jitter adds up to a quarter of
    /// it, and the result never undercuts the hint.
    #[must_use]
    pub fn delay_ms(&self, attempt: u32, retry_after_ms: u64) -> u64 {
        let shift = u64::from(attempt.saturating_sub(1).min(20));
        let exp = self
            .base_delay_ms
            .saturating_mul(1u64 << shift)
            .min(self.max_delay_ms);
        let mut rng = SmallRng::seed_from_u64(self.seed ^ u64::from(attempt));
        let jitter = if exp >= 4 {
            rng.gen_range(0..exp / 4)
        } else {
            0
        };
        (exp + jitter).max(retry_after_ms)
    }
}

/// A connected, handshaken protocol client.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

/// One study entry from the server's `list` reply.
#[derive(Debug, Clone)]
pub struct RemoteStudy {
    /// Registry name.
    pub name: String,
    /// One-line description.
    pub description: String,
    /// Whether the server can shard it (grid studies only).
    pub grid: bool,
}

/// The server's `status` reply: scheduler gauges plus cache counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServiceStatus {
    /// Worker-pool size.
    pub workers: u64,
    /// Jobs currently resolving points.
    pub jobs_active: u64,
    /// Jobs accepted since startup.
    pub jobs_total: u64,
    /// Work units queued but not executing.
    pub queued_units: u64,
    /// Admission bound on queued units (`0` = unbounded).
    pub max_queued_units: u64,
    /// Whether the server is draining (rejecting new work).
    pub draining: bool,
    /// Points computed by the pool.
    pub points_computed: u64,
    /// Points served from the result cache.
    pub points_cached: u64,
    /// Points delivered by coalescing onto another job's computation.
    pub points_coalesced: u64,
    /// Points that failed.
    pub points_failed: u64,
    /// Cache lookups served.
    pub cache_hits: u64,
    /// Cache lookups missed.
    pub cache_misses: u64,
    /// Cache entries evicted for space.
    pub cache_evictions: u64,
    /// Live cache entries.
    pub cache_entries: u64,
    /// Live cache bytes.
    pub cache_bytes: u64,
    /// Cache entries restored from the persistent spill on startup.
    pub cache_loaded: u64,
    /// Corrupt spill records quarantined on startup.
    pub cache_quarantined: u64,
    /// Entries appended to the persistent spill since startup.
    pub cache_spilled: u64,
}

/// What a remote submission produced.
#[derive(Debug)]
pub struct SubmitOutcome {
    /// The server's job id.
    pub job: u64,
    /// The reassembled report, byte-identical to a local run.
    pub report: Report,
    /// Points the server computed for this job.
    pub computed: usize,
    /// Points the server served from its cache.
    pub cached: usize,
    /// Points coalesced onto another in-flight job's computation.
    pub coalesced: usize,
    /// Points that failed (the report carries a `Degraded` block).
    pub failed: usize,
}

impl Client {
    /// Connects and completes the version handshake.
    ///
    /// # Errors
    ///
    /// [`SimError::Protocol`]: connect/write/read failures (a refused
    /// connection names the address and suggests starting a daemon),
    /// version mismatch, or a malformed greeting.
    pub fn connect(addr: &str) -> Result<Client, SimError> {
        let writer = TcpStream::connect(addr).map_err(|e| {
            if e.kind() == std::io::ErrorKind::ConnectionRefused {
                ProtocolError::Io {
                    op: "connect",
                    message: format!(
                        "connection refused at {addr} — no studyd is listening there \
                         (start one with `repro serve --addr {addr}`)"
                    ),
                }
            } else {
                io_err("connect", &e)
            }
        })?;
        writer.set_nodelay(true).ok();
        let read_half = writer.try_clone().map_err(|e| io_err("connect", &e))?;
        let mut client = Client {
            reader: BufReader::new(read_half),
            writer,
        };
        client.send(&format!(
            "{{\"op\": \"hello\", \"proto\": {PROTO_VERSION}}}"
        ))?;
        let reply = client.recv("handshake")?;
        if reply.get("kind").and_then(JsonValue::as_str) != Some("hello") {
            return Err(ProtocolError::Malformed {
                why: "server greeting is not a hello frame".to_string(),
            }
            .into());
        }
        Ok(client)
    }

    fn send(&mut self, frame: &str) -> Result<(), ProtocolError> {
        write_line(&mut self.writer, frame)
    }

    /// Reads one reply frame, unwrapping `ok:false` into its typed
    /// error. `during` names the phase for close diagnostics.
    fn recv(&mut self, during: &str) -> Result<JsonValue, ProtocolError> {
        let line = read_line_bounded(&mut self.reader, REPLY_LINE_CAP)?.ok_or_else(|| {
            ProtocolError::Closed {
                during: during.to_string(),
            }
        })?;
        let frame = json::parse(&line).map_err(|e| ProtocolError::Malformed {
            why: format!("invalid JSON reply: {e}"),
        })?;
        check_reply(frame)
    }

    /// Fetches the server's study registry.
    ///
    /// # Errors
    ///
    /// [`SimError::Protocol`] on any wire failure.
    pub fn list(&mut self) -> Result<Vec<RemoteStudy>, SimError> {
        self.send("{\"op\": \"list\"}")?;
        let reply = self.recv("list")?;
        let studies = reply
            .get("studies")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| ProtocolError::Malformed {
                why: "list reply lacks a 'studies' array".to_string(),
            })?;
        let mut out = Vec::with_capacity(studies.len());
        for s in studies {
            out.push(RemoteStudy {
                name: field_str(s, "name")?,
                description: field_str(s, "description")?,
                grid: matches!(s.get("grid"), Some(JsonValue::Bool(true))),
            });
        }
        Ok(out)
    }

    /// Fetches scheduler and cache counters.
    ///
    /// # Errors
    ///
    /// [`SimError::Protocol`] on any wire failure.
    pub fn status(&mut self) -> Result<ServiceStatus, SimError> {
        self.send("{\"op\": \"status\"}")?;
        let reply = self.recv("status")?;
        let cache = reply.get("cache").cloned().unwrap_or(JsonValue::Null);
        let f = |v: &JsonValue, k: &str| u64_field(v, k).unwrap_or(0);
        Ok(ServiceStatus {
            workers: f(&reply, "workers"),
            jobs_active: f(&reply, "jobs_active"),
            jobs_total: f(&reply, "jobs_total"),
            queued_units: f(&reply, "queued_units"),
            max_queued_units: f(&reply, "max_queued_units"),
            draining: matches!(reply.get("draining"), Some(JsonValue::Bool(true))),
            points_computed: f(&reply, "points_computed"),
            points_cached: f(&reply, "points_cached"),
            points_coalesced: f(&reply, "points_coalesced"),
            points_failed: f(&reply, "points_failed"),
            cache_hits: f(&cache, "hits"),
            cache_misses: f(&cache, "misses"),
            cache_evictions: f(&cache, "evictions"),
            cache_entries: f(&cache, "entries"),
            cache_bytes: f(&cache, "bytes"),
            cache_loaded: f(&cache, "loaded"),
            cache_quarantined: f(&cache, "quarantined"),
            cache_spilled: f(&cache, "spilled"),
        })
    }

    /// Cancels a job; `Ok(false)` when the server no longer knows it.
    ///
    /// # Errors
    ///
    /// [`SimError::Protocol`] on any wire failure.
    pub fn cancel(&mut self, job: u64) -> Result<bool, SimError> {
        self.send(&format!("{{\"op\": \"cancel\", \"job\": {job}}}"))?;
        let reply = self.recv("cancel")?;
        Ok(matches!(reply.get("found"), Some(JsonValue::Bool(true))))
    }

    /// Asks the server to shut down immediately (acknowledged before
    /// it does).
    ///
    /// # Errors
    ///
    /// [`SimError::Protocol`] on any wire failure.
    pub fn shutdown(&mut self) -> Result<(), SimError> {
        self.send("{\"op\": \"shutdown\"}")?;
        self.recv("shutdown")?;
        Ok(())
    }

    /// Asks the server to drain: stop admitting work, finish in-flight
    /// jobs, flush the cache spill, then exit. Acknowledged as soon as
    /// admission has stopped.
    ///
    /// # Errors
    ///
    /// [`SimError::Protocol`] on any wire failure.
    pub fn shutdown_drain(&mut self) -> Result<(), SimError> {
        self.send("{\"op\": \"shutdown\", \"mode\": \"drain\"}")?;
        self.recv("shutdown")?;
        Ok(())
    }

    /// [`Client::submit`] with backoff: on a typed `busy` rejection,
    /// sleeps per `policy` (never less than the server's
    /// `retry_after_ms` hint) and resubmits on the same connection, up
    /// to `policy.max_attempts` total tries. Every other outcome —
    /// success or any non-busy error — is returned immediately.
    ///
    /// # Errors
    ///
    /// Whatever the final attempt returned; a still-busy server after
    /// the last attempt surfaces the `busy` error itself.
    pub fn submit_with_retry(
        &mut self,
        study: &str,
        params: &StudyParams,
        policy: &RetryPolicy,
    ) -> Result<SubmitOutcome, SimError> {
        let mut attempt = 1u32;
        loop {
            match self.submit(study, params) {
                Err(SimError::Protocol(ProtocolError::Busy { retry_after_ms }))
                    if attempt < policy.max_attempts =>
                {
                    let delay = policy.delay_ms(attempt, retry_after_ms);
                    std::thread::sleep(Duration::from_millis(delay));
                    attempt += 1;
                }
                outcome => return outcome,
            }
        }
    }

    /// Submits a study and reassembles the streamed points into the
    /// final [`Report`].
    ///
    /// # Errors
    ///
    /// [`SimError::Protocol`] for wire failures and typed server
    /// rejections (unknown study, bad params, a full queue (`busy`),
    /// a draining server, version drift).
    pub fn submit(&mut self, study: &str, params: &StudyParams) -> Result<SubmitOutcome, SimError> {
        let Some(grid) = decompose(study, params) else {
            return Err(ProtocolError::Rejected {
                code: "not-grid".to_string(),
                message: format!("study '{study}' is not a sharded grid study"),
            }
            .into());
        };
        self.send(&format!(
            "{{\"op\": \"submit\", \"study\": \"{}\", \"params\": {}}}",
            json::escape(study),
            params_to_wire(params)
        ))?;
        let accepted = self.recv("submit")?;
        if accepted.get("kind").and_then(JsonValue::as_str) != Some("accepted") {
            return Err(ProtocolError::Malformed {
                why: "submit reply is not an accepted frame".to_string(),
            }
            .into());
        }
        let n = grid.n_points();
        if u64_field(&accepted, "points") != Some(n as u64) {
            return Err(ProtocolError::Malformed {
                why: format!(
                    "server decomposed '{study}' into {} points, this client expects {n} \
                     (build drift between client and server?)",
                    u64_field(&accepted, "points").unwrap_or(0)
                ),
            }
            .into());
        }
        let job = u64_field(&accepted, "job").unwrap_or(0);
        self.reassemble(job, &grid, params, n)
    }

    fn reassemble(
        &mut self,
        job: u64,
        grid: &GridStudy,
        params: &StudyParams,
        n: usize,
    ) -> Result<SubmitOutcome, SimError> {
        let mut slots: Vec<Option<PointSummary>> = (0..n).map(|_| None).collect();
        let mut failures: Vec<(usize, DegradedPoint)> = Vec::new();
        let mut retried = 0usize;
        loop {
            let frame = self.recv("result stream")?;
            match frame.get("kind").and_then(JsonValue::as_str) {
                Some("point") => {
                    let index = frame_index(&frame, n)?;
                    let summary = frame
                        .get("data")
                        .and_then(PointSummary::from_record)
                        .ok_or_else(|| ProtocolError::Malformed {
                            why: format!("point {index} carries an unparsable record"),
                        })?;
                    if u64_field(&frame, "attempts").unwrap_or(1) > 1 {
                        retried += 1;
                    }
                    slots[index] = Some(summary);
                }
                Some("failed") => {
                    let index = frame_index(&frame, n)?;
                    failures.push((
                        index,
                        DegradedPoint {
                            label: field_str(&frame, "label").unwrap_or_else(|_| grid.label(index)),
                            reason: field_str(&frame, "reason")
                                .unwrap_or_else(|_| "unknown".to_string()),
                            attempts: u64_field(&frame, "attempts").unwrap_or(1) as u32,
                        },
                    ));
                }
                Some("done") => {
                    let computed = u64_field(&frame, "computed").unwrap_or(0) as usize;
                    let cached = u64_field(&frame, "cached").unwrap_or(0) as usize;
                    let coalesced = u64_field(&frame, "coalesced").unwrap_or(0) as usize;
                    let failed = u64_field(&frame, "failed").unwrap_or(0) as usize;
                    if matches!(frame.get("cancelled"), Some(JsonValue::Bool(true))) {
                        return Err(ProtocolError::Rejected {
                            code: "cancelled".to_string(),
                            message: format!("job {job} was cancelled before completing"),
                        }
                        .into());
                    }
                    // The sweep reports failures in point order regardless
                    // of completion order; match it.
                    failures.sort_by_key(|(i, _)| *i);
                    let degraded = Degraded {
                        retried,
                        failed: failures.into_iter().map(|(_, p)| p).collect(),
                        ..Degraded::default()
                    };
                    let report = grid.assemble(params, slots, degraded, None);
                    return Ok(SubmitOutcome {
                        job,
                        report,
                        computed,
                        cached,
                        coalesced,
                        failed,
                    });
                }
                _ => {
                    return Err(ProtocolError::Malformed {
                        why: "unexpected frame in result stream".to_string(),
                    }
                    .into())
                }
            }
        }
    }
}

fn field_str(v: &JsonValue, key: &str) -> Result<String, ProtocolError> {
    v.get(key)
        .and_then(JsonValue::as_str)
        .map(str::to_string)
        .ok_or_else(|| ProtocolError::Malformed {
            why: format!("frame lacks a string '{key}' field"),
        })
}

fn frame_index(frame: &JsonValue, n: usize) -> Result<usize, ProtocolError> {
    match u64_field(frame, "index") {
        Some(i) if (i as usize) < n => Ok(i as usize),
        _ => Err(ProtocolError::Malformed {
            why: "frame carries an out-of-range point index".to_string(),
        }),
    }
}
