//! The `studyd` TCP server: bind, accept, one session thread per
//! connection, all sessions sharing one scheduler pool and one result
//! cache.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;

use speedup_stacks::SimError;

use crate::cache::Cache;
use crate::proto::io_err;
use crate::scheduler::Scheduler;
use crate::session;

/// Server configuration with offline-friendly defaults.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port `0` asks the OS for a free port.
    pub addr: String,
    /// Worker-pool size; `0` = one per available CPU.
    pub workers: usize,
    /// Result-cache byte budget.
    pub cache_bytes: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 0,
            cache_bytes: 64 * 1024 * 1024,
        }
    }
}

impl ServeConfig {
    /// Parses the shared server flags (`--addr HOST:PORT`,
    /// `--workers N`, `--cache-mib N`) used by both `studyd` and
    /// `repro serve`. `default_addr` is the bind address when `--addr`
    /// is absent.
    ///
    /// # Errors
    ///
    /// A human-readable usage message.
    pub fn from_args(default_addr: &str, args: &[String]) -> Result<ServeConfig, String> {
        let mut cfg = ServeConfig {
            addr: default_addr.to_string(),
            ..ServeConfig::default()
        };
        let mut it = args.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--addr" => match it.next() {
                    Some(addr) if !addr.starts_with("--") => cfg.addr = addr.clone(),
                    _ => return Err("--addr requires HOST:PORT".to_string()),
                },
                "--workers" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                    Some(n) if n >= 1 => cfg.workers = n,
                    _ => return Err("--workers requires a worker count >= 1".to_string()),
                },
                "--cache-mib" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                    Some(mib) if mib >= 1 => cfg.cache_bytes = mib * 1024 * 1024,
                    _ => return Err("--cache-mib requires a budget in MiB >= 1".to_string()),
                },
                other => return Err(format!("unknown option: {other}")),
            }
        }
        Ok(cfg)
    }
}

/// A running server: its bound address, its scheduler, and the handles
/// needed to stop it cleanly.
pub struct ServerHandle {
    local_addr: SocketAddr,
    stop_flag: Arc<AtomicBool>,
    shutdown_rx: Receiver<()>,
    accept: Mutex<Option<JoinHandle<()>>>,
    scheduler: Arc<Scheduler>,
}

/// Binds and starts serving. Returns as soon as the listener is live;
/// sessions and sweeps run on background threads.
///
/// # Errors
///
/// [`SimError::Protocol`] when the bind fails.
pub fn serve(cfg: &ServeConfig) -> Result<ServerHandle, SimError> {
    let listener = TcpListener::bind(&cfg.addr).map_err(|e| io_err("bind", &e))?;
    let local_addr = listener.local_addr().map_err(|e| io_err("bind", &e))?;
    let workers = if cfg.workers == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        cfg.workers
    };
    let scheduler = Arc::new(Scheduler::start(
        workers,
        Arc::new(Cache::new(cfg.cache_bytes)),
    ));
    let stop_flag = Arc::new(AtomicBool::new(false));
    let (shutdown_tx, shutdown_rx) = channel();

    let accept = {
        let scheduler = Arc::clone(&scheduler);
        let stop_flag = Arc::clone(&stop_flag);
        std::thread::Builder::new()
            .name("studyd-accept".to_string())
            .spawn(move || loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        if stop_flag.load(Ordering::SeqCst) {
                            return;
                        }
                        let scheduler = Arc::clone(&scheduler);
                        let shutdown_tx = shutdown_tx.clone();
                        std::thread::Builder::new()
                            .name("studyd-session".to_string())
                            .spawn(move || session::run(stream, scheduler, shutdown_tx))
                            .ok();
                    }
                    Err(_) => {
                        if stop_flag.load(Ordering::SeqCst) {
                            return;
                        }
                    }
                }
            })
            .map_err(|e| io_err("spawn", &e))?
    };

    Ok(ServerHandle {
        local_addr,
        stop_flag,
        shutdown_rx,
        accept: Mutex::new(Some(accept)),
        scheduler,
    })
}

impl ServerHandle {
    /// The actually-bound address (resolves port `0`).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The shared scheduler (status, tests).
    #[must_use]
    pub fn scheduler(&self) -> &Scheduler {
        &self.scheduler
    }

    /// Blocks until some client sends the `shutdown` op.
    pub fn wait_for_shutdown(&self) {
        self.shutdown_rx.recv().ok();
    }

    /// Stops accepting, then stops the worker pool. Live sessions whose
    /// clients are still connected end when those clients disconnect.
    pub fn stop(&self) {
        self.stop_flag.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        TcpStream::connect(self.local_addr).ok();
        if let Some(h) = self
            .accept
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
        {
            h.join().ok();
        }
        self.scheduler.stop();
    }
}
