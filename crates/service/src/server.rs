//! The `studyd` TCP server: bind, accept, one session thread per
//! connection, all sessions sharing one scheduler pool and one result
//! cache.
//!
//! Production hardening lives here: the cache's persistent spill is
//! opened (and recovered, with corrupt-record quarantine) before the
//! listener binds, admission control and chaos policy are threaded into
//! the scheduler, and the `shutdown` op carries a [`ShutdownMode`] so a
//! drain — stop admitting, finish in-flight work, flush the spill —
//! can be distinguished from an immediate stop.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use speedup_stacks::SimError;

use crate::cache::Cache;
use crate::chaos::ChaosPolicy;
use crate::federation::{Federation, FleetConfig};
use crate::persist;
use crate::proto::io_err;
use crate::scheduler::{SchedOptions, Scheduler};
use crate::session::{self, Dispatch, SessionCtx};

/// How a client asked the server to shut down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShutdownMode {
    /// Stop now; queued work is abandoned.
    Immediate,
    /// Stop admitting new work, finish in-flight jobs, flush the cache
    /// spill, then stop.
    Drain,
}

/// Server configuration with offline-friendly defaults.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port `0` asks the OS for a free port.
    pub addr: String,
    /// Worker-pool size; `0` = one per available CPU.
    pub workers: usize,
    /// Result-cache byte budget.
    pub cache_bytes: usize,
    /// Admission bound on queued work units; `0` = unbounded.
    pub max_queued_units: usize,
    /// Idle-connection reaper timeout; `None` = never reap.
    pub idle_timeout_ms: Option<u64>,
    /// Path of the persistent cache spill; `None` = in-memory only.
    pub cache_spill: Option<PathBuf>,
    /// Rewrite the spill from the live cache right after startup
    /// recovery, dropping dead (superseded/quarantined) records.
    pub compact_spill: bool,
    /// This daemon's fleet identity, echoed in hello and status frames.
    pub backend_id: Option<String>,
    /// Deterministic fault injection for the chaos suite.
    pub chaos: ChaosPolicy,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 0,
            cache_bytes: 64 * 1024 * 1024,
            max_queued_units: 0,
            idle_timeout_ms: None,
            cache_spill: None,
            compact_spill: false,
            backend_id: None,
            chaos: ChaosPolicy::default(),
        }
    }
}

impl ServeConfig {
    /// Parses the shared server flags (`--addr HOST:PORT`,
    /// `--workers N`, `--cache-mib N`, `--max-queued-units N`,
    /// `--idle-timeout-ms N`, `--cache-spill PATH`, `--compact-spill`,
    /// `--backend-id NAME`) used by both `studyd` and `repro serve`.
    /// `default_addr` is the bind address when `--addr` is absent.
    ///
    /// # Errors
    ///
    /// A human-readable usage message.
    pub fn from_args(default_addr: &str, args: &[String]) -> Result<ServeConfig, String> {
        let mut cfg = ServeConfig {
            addr: default_addr.to_string(),
            ..ServeConfig::default()
        };
        let mut it = args.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--addr" => match it.next() {
                    Some(addr) if !addr.starts_with("--") => cfg.addr = addr.clone(),
                    _ => return Err("--addr requires HOST:PORT".to_string()),
                },
                "--workers" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                    Some(n) if n >= 1 => cfg.workers = n,
                    _ => return Err("--workers requires a worker count >= 1".to_string()),
                },
                "--cache-mib" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                    Some(mib) if mib >= 1 => cfg.cache_bytes = mib * 1024 * 1024,
                    _ => return Err("--cache-mib requires a budget in MiB >= 1".to_string()),
                },
                "--max-queued-units" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                    Some(n) => cfg.max_queued_units = n,
                    _ => {
                        return Err(
                            "--max-queued-units requires a unit count (0 = unbounded)".to_string()
                        )
                    }
                },
                "--idle-timeout-ms" => match it.next().and_then(|v| v.parse::<u64>().ok()) {
                    Some(ms) if ms >= 1 => cfg.idle_timeout_ms = Some(ms),
                    _ => return Err("--idle-timeout-ms requires a timeout in ms >= 1".to_string()),
                },
                "--cache-spill" => match it.next() {
                    Some(path) if !path.starts_with("--") => {
                        cfg.cache_spill = Some(PathBuf::from(path));
                    }
                    _ => return Err("--cache-spill requires a file path".to_string()),
                },
                "--compact-spill" => cfg.compact_spill = true,
                "--backend-id" => match it.next() {
                    Some(id) if !id.starts_with("--") => cfg.backend_id = Some(id.clone()),
                    _ => return Err("--backend-id requires a name".to_string()),
                },
                other => return Err(format!("unknown option: {other}")),
            }
        }
        Ok(cfg)
    }
}

/// What executes the work behind a server: a local scheduler pool (a
/// backend daemon) or a federation coordinator (a fleet front).
enum Engine {
    Local {
        scheduler: Arc<Scheduler>,
        cache: Arc<Cache>,
    },
    Fed(Arc<Federation>),
}

/// A running server: its bound address, its engine, and the handles
/// needed to stop it cleanly.
pub struct ServerHandle {
    local_addr: SocketAddr,
    stop_flag: Arc<AtomicBool>,
    shutdown_rx: Receiver<ShutdownMode>,
    accept: Mutex<Option<JoinHandle<()>>>,
    engine: Engine,
}

/// Binds and starts serving. Returns as soon as the listener is live;
/// sessions and sweeps run on background threads. With a configured
/// spill path the cache is recovered from disk first — complete,
/// CRC-valid records warm the cache, corrupt records are quarantined
/// (counted, recomputed, never served), and a torn final line from a
/// `kill -9` is dropped silently.
///
/// # Errors
///
/// [`SimError::Protocol`] when the bind fails; [`SimError::Journal`]
/// when the spill file exists but has a wrong or non-matching header.
pub fn serve(cfg: &ServeConfig) -> Result<ServerHandle, SimError> {
    let cache = Arc::new(Cache::new(cfg.cache_bytes));
    if let Some(path) = &cfg.cache_spill {
        let opened = persist::open(path, cfg.chaos.flip_spill_record)?;
        cache.preload(opened.entries, opened.quarantined);
        cache.set_spill(opened.writer);
        if cfg.compact_spill {
            // Startup compaction: the freshly recovered live set is
            // exactly what the rewritten spill should hold.
            if let Err(e) = cache.compact_spill() {
                eprintln!("studyd: startup spill compaction failed: {e}");
            }
        }
    }

    let workers = if cfg.workers == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        cfg.workers
    };
    let scheduler = Arc::new(Scheduler::start(
        workers,
        Arc::clone(&cache),
        SchedOptions {
            max_queued_units: cfg.max_queued_units,
            chaos: cfg.chaos.clone(),
        },
    ));
    serve_with_engine(
        cfg,
        Arc::clone(&scheduler) as Arc<dyn Dispatch>,
        Engine::Local { scheduler, cache },
    )
}

/// Binds and starts serving a **federation coordinator**: the identical
/// wire protocol as [`serve`], but submits are sharded across
/// `fleet.backends` (with health checks, failover, hedging and local
/// fallback) instead of executed by a local pool. Cache flags in `cfg`
/// are ignored — results live in the backends' caches.
///
/// # Errors
///
/// [`SimError::Protocol`] when the bind fails; [`SimError::Federation`]
/// when the fleet configuration is unusable (e.g. no backends).
pub fn serve_coordinator(cfg: &ServeConfig, fleet: FleetConfig) -> Result<ServerHandle, SimError> {
    let federation = Arc::new(Federation::start(fleet)?);
    serve_with_engine(
        cfg,
        Arc::clone(&federation) as Arc<dyn Dispatch>,
        Engine::Fed(federation),
    )
}

/// The shared bind/accept scaffolding behind [`serve`] and
/// [`serve_coordinator`].
fn serve_with_engine(
    cfg: &ServeConfig,
    dispatch: Arc<dyn Dispatch>,
    engine: Engine,
) -> Result<ServerHandle, SimError> {
    let listener = TcpListener::bind(&cfg.addr).map_err(|e| io_err("bind", &e))?;
    let local_addr = listener.local_addr().map_err(|e| io_err("bind", &e))?;
    let stop_flag = Arc::new(AtomicBool::new(false));
    let (shutdown_tx, shutdown_rx) = channel();
    let ctx = Arc::new(SessionCtx {
        engine: dispatch,
        backend_id: cfg.backend_id.clone(),
        shutdown_tx,
        idle_timeout: cfg.idle_timeout_ms.map(Duration::from_millis),
    });

    let accept = {
        let stop_flag = Arc::clone(&stop_flag);
        std::thread::Builder::new()
            .name("studyd-accept".to_string())
            .spawn(move || loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        if stop_flag.load(Ordering::SeqCst) {
                            return;
                        }
                        let ctx = Arc::clone(&ctx);
                        std::thread::Builder::new()
                            .name("studyd-session".to_string())
                            .spawn(move || {
                                session::run(stream, &ctx);
                            })
                            .ok();
                    }
                    Err(_) => {
                        if stop_flag.load(Ordering::SeqCst) {
                            return;
                        }
                    }
                }
            })
            .map_err(|e| io_err("spawn", &e))?
    };

    Ok(ServerHandle {
        local_addr,
        stop_flag,
        shutdown_rx,
        accept: Mutex::new(Some(accept)),
        engine,
    })
}

impl ServerHandle {
    /// The actually-bound address (resolves port `0`).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The shared scheduler (status, tests).
    ///
    /// # Panics
    ///
    /// Panics on a coordinator handle — a fleet front has no local
    /// scheduler; use [`ServerHandle::federation`].
    #[must_use]
    pub fn scheduler(&self) -> &Scheduler {
        match &self.engine {
            Engine::Local { scheduler, .. } => scheduler,
            Engine::Fed(_) => panic!("a federation coordinator has no local scheduler"),
        }
    }

    /// The shared result cache (stats, tests).
    ///
    /// # Panics
    ///
    /// Panics on a coordinator handle — results live in the backends'
    /// caches.
    #[must_use]
    pub fn cache(&self) -> &Cache {
        match &self.engine {
            Engine::Local { cache, .. } => cache,
            Engine::Fed(_) => panic!("a federation coordinator has no local cache"),
        }
    }

    /// The federation coordinator (status, tests).
    ///
    /// # Panics
    ///
    /// Panics on a plain backend handle; use
    /// [`ServerHandle::scheduler`].
    #[must_use]
    pub fn federation(&self) -> &Federation {
        match &self.engine {
            Engine::Fed(federation) => federation,
            Engine::Local { .. } => panic!("this server is a backend, not a coordinator"),
        }
    }

    /// Blocks until some client sends the `shutdown` op; returns the
    /// requested mode (immediate when the channel closed unexpectedly).
    pub fn wait_for_shutdown(&self) -> ShutdownMode {
        self.shutdown_rx.recv().unwrap_or(ShutdownMode::Immediate)
    }

    /// The drain barrier: waits for every in-flight job to finish (the
    /// session already stopped admission before acknowledging the
    /// drain), then — on a backend — **compacts** the cache spill,
    /// rewriting it from the live LRU so dead (superseded or
    /// quarantined) records do not accumulate across restarts. If
    /// compaction fails the spill is synced as-is instead, so a drain
    /// never loses data it already had. Call between
    /// [`ServerHandle::wait_for_shutdown`] returning
    /// [`ShutdownMode::Drain`] and [`ServerHandle::stop`].
    pub fn drain(&self) {
        match &self.engine {
            Engine::Local { scheduler, cache } => {
                scheduler.begin_drain();
                scheduler.wait_idle();
                match cache.compact_spill() {
                    Ok(_) => {}
                    Err(e) => {
                        eprintln!(
                            "studyd: spill compaction failed during drain ({e}); syncing as-is"
                        );
                        if let Err(e) = cache.sync() {
                            eprintln!("studyd: cache spill sync failed during drain: {e}");
                        }
                    }
                }
            }
            Engine::Fed(federation) => {
                federation.begin_drain();
                federation.wait_idle();
            }
        }
    }

    /// Stops accepting, then stops the engine (worker pool or
    /// federation monitor). Live sessions whose clients are still
    /// connected end when those clients disconnect.
    pub fn stop(&self) {
        self.stop_flag.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        TcpStream::connect(self.local_addr).ok();
        if let Some(h) = self
            .accept
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
        {
            h.join().ok();
        }
        match &self.engine {
            Engine::Local { scheduler, .. } => scheduler.stop(),
            Engine::Fed(federation) => federation.stop(),
        }
    }
}
