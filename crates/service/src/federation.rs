//! Federated sweeps: one coordinator fanning grid units out across a
//! fleet of `studyd` backends, with health checks, failover and hedged
//! retries — and a report **byte-identical** to a local run.
//!
//! The [`Federation`] decomposes a study with the same
//! [`experiments::decompose`] grid every backend uses, shards the point
//! indices across the fleet over the v2 protocol's `units` subset
//! extension, and reassembles the streamed records in grid order. All
//! robustness machinery operates strictly *below* the data plane:
//!
//! - **Health state machine** ([`BackendHealth`]): every backend is
//!   probed by a heartbeat `status` call; consecutive failures walk it
//!   `healthy → suspect → dead`, and a dead backend is re-probed on a
//!   deterministic capped-exponential backoff until it answers again
//!   (`recovered`, after which it serves work like any healthy peer).
//! - **Failover**: when a backend dies mid-stream, its unresolved
//!   units are requeued onto the survivors. Units are deduplicated by
//!   grid index under the job lock (first result wins), and survivors
//!   serve already-computed points from their result caches, so a
//!   failover never recomputes work the fleet already finished.
//! - **Hedged retries**: a unit in flight longer than the hedge
//!   deadline is raced on a second backend; the first result wins and
//!   the loser's now-empty job is cancelled with the `hedge` reason so
//!   the backend can reclaim the duplicate work.
//! - **Graceful degradation**: when every backend is dead, queued
//!   units fall back to local in-process execution (the identical
//!   compute path the sweep uses), so a sweep outlives its whole
//!   fleet. Disable with [`FleetConfig::local_fallback`] to get a
//!   typed `unavailable` rejection instead.
//!
//! None of this machinery leaves a trace in the assembled [`Report`]:
//! failover, hedging and fallback change *where* a point was computed,
//! never *what* was computed, and the chaos suite
//! (`tests/federation.rs`) pins that byte-for-byte.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use experiments::decompose::GridStudy;
use experiments::runner::PointSummary;
use experiments::study::StudyParams;
use speedup_stacks::error::ProtocolError;
use speedup_stacks::report::json;
use speedup_stacks::report::{Degraded, DegradedPoint, Report};
use speedup_stacks::{FederationError, SimError};

use crate::client::{Client, StreamEvent};
use crate::proto::PROTO_VERSION;
use crate::scheduler::{record_to_summary, JobEvent, PointSource, SubmitError};
use crate::session::Dispatch;

/// How long a worker sleeps between polls of the job state when it has
/// nothing to claim. Bounds cancellation/hedge latency without any
/// wall-clock dependence in correctness.
const POLL_MS: u64 = 25;

/// Fleet topology and robustness tuning.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Backend addresses (`host:port`), in dispatch order.
    pub backends: Vec<String>,
    /// Hedge deadline: a unit in flight this long is raced on a second
    /// backend. `None` disables hedging; `Some(0)` hedges immediately.
    pub hedge_after_ms: Option<u64>,
    /// Fall back to local in-process execution when the whole fleet is
    /// dead (`true`, the default), or reject with `unavailable`.
    pub local_fallback: bool,
    /// Control-plane (heartbeat, cancel) reply deadline per call.
    pub control_timeout_ms: u64,
    /// Data-plane (result stream) read deadline per frame.
    pub data_timeout_ms: u64,
    /// Heartbeat period for the health monitor.
    pub heartbeat_ms: u64,
    /// Consecutive failures that declare a backend dead. Failures below
    /// the threshold mark it suspect (still dispatchable).
    pub dead_after: u32,
    /// Base of the dead-backend re-probe backoff (doubles per failed
    /// probe).
    pub probe_backoff_base_ms: u64,
    /// Cap on the re-probe backoff.
    pub probe_backoff_cap_ms: u64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            backends: Vec::new(),
            hedge_after_ms: Some(2000),
            local_fallback: true,
            control_timeout_ms: 2000,
            data_timeout_ms: 30_000,
            heartbeat_ms: 500,
            dead_after: 3,
            probe_backoff_base_ms: 100,
            probe_backoff_cap_ms: 2000,
        }
    }
}

/// Where a backend sits in the health state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthState {
    /// Never successfully probed yet (dispatchable, optimistically).
    Unprobed,
    /// Answering probes.
    Healthy,
    /// Failing, but below the dead threshold (still dispatchable).
    Suspect,
    /// Past the consecutive-failure threshold: not dispatched to, and
    /// only re-probed on the backoff schedule.
    Dead,
    /// Was dead, answered a re-probe: serves work again; the sticky
    /// state lets operators see that it went away and came back.
    Recovered,
}

impl HealthState {
    /// The wire/display name (`status` frames, fleet summaries).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            HealthState::Unprobed => "unprobed",
            HealthState::Healthy => "healthy",
            HealthState::Suspect => "suspect",
            HealthState::Dead => "dead",
            HealthState::Recovered => "recovered",
        }
    }
}

/// The per-backend health state machine. Pure — transitions take an
/// explicit `now_ms` (milliseconds on the federation's monotonic
/// clock), so the machine is unit-testable without a network or a
/// clock.
#[derive(Debug)]
pub struct BackendHealth {
    state: HealthState,
    consecutive_failures: u32,
    probe_round: u32,
    next_probe_ms: u64,
    recoveries: u64,
}

impl Default for BackendHealth {
    fn default() -> Self {
        Self::new()
    }
}

impl BackendHealth {
    /// A fresh, unprobed backend.
    #[must_use]
    pub fn new() -> BackendHealth {
        BackendHealth {
            state: HealthState::Unprobed,
            consecutive_failures: 0,
            probe_round: 0,
            next_probe_ms: 0,
            recoveries: 0,
        }
    }

    /// Current state.
    #[must_use]
    pub fn state(&self) -> HealthState {
        self.state
    }

    /// Times the backend transitioned dead → recovered.
    #[must_use]
    pub fn recoveries(&self) -> u64 {
        self.recoveries
    }

    /// Whether work may be dispatched to this backend. Dead backends
    /// are skipped; everything else (including never-probed and
    /// suspect) is tried optimistically.
    #[must_use]
    pub fn is_live(&self) -> bool {
        self.state != HealthState::Dead
    }

    /// Whether the monitor should probe now: always, except a dead
    /// backend inside its backoff window.
    #[must_use]
    pub fn should_probe(&self, now_ms: u64) -> bool {
        self.state != HealthState::Dead || now_ms >= self.next_probe_ms
    }

    /// Records a successful probe or dispatch: failures reset, a dead
    /// backend becomes recovered, anything else healthy (recovered is
    /// sticky).
    pub fn on_success(&mut self) {
        self.consecutive_failures = 0;
        self.probe_round = 0;
        self.state = match self.state {
            HealthState::Dead => {
                self.recoveries += 1;
                HealthState::Recovered
            }
            HealthState::Recovered => HealthState::Recovered,
            _ => HealthState::Healthy,
        };
    }

    /// Records a failed probe or dispatch. Below `cfg.dead_after`
    /// consecutive failures the backend is suspect; at the threshold it
    /// is dead and the deterministic re-probe backoff
    /// (`base << round`, capped) starts from `now_ms`.
    pub fn on_failure(&mut self, cfg: &FleetConfig, now_ms: u64) {
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        if self.consecutive_failures >= cfg.dead_after {
            self.state = HealthState::Dead;
            let backoff = cfg
                .probe_backoff_base_ms
                .saturating_mul(1u64 << self.probe_round.min(16))
                .min(cfg.probe_backoff_cap_ms);
            self.probe_round = self.probe_round.saturating_add(1);
            self.next_probe_ms = now_ms.saturating_add(backoff);
        } else {
            self.state = HealthState::Suspect;
        }
    }
}

/// One backend's identity, health and per-fleet accounting.
#[derive(Debug)]
struct Backend {
    id: String,
    addr: String,
    health: Mutex<BackendHealth>,
    /// Units this backend resolved (first-wins).
    served: AtomicU64,
    /// Units requeued off this backend after it failed mid-flight.
    failed_over: AtomicU64,
    /// Hedged units this backend won.
    hedge_wins: AtomicU64,
    /// Health probes attempted against this backend.
    probes: AtomicU64,
}

/// A point-in-time copy of one backend's federation counters.
#[derive(Debug, Clone)]
pub struct BackendSnapshot {
    /// Fleet identity (`b0`, `b1`, … in config order).
    pub id: String,
    /// The backend's address.
    pub addr: String,
    /// Health state at snapshot time.
    pub state: HealthState,
    /// Units this backend resolved.
    pub served: u64,
    /// Units requeued off this backend after a mid-flight failure.
    pub failed_over: u64,
    /// Hedged units this backend won.
    pub hedge_wins: u64,
    /// Health probes attempted.
    pub probes: u64,
    /// Dead → recovered transitions.
    pub recoveries: u64,
}

/// A point-in-time copy of the federation's gauges.
#[derive(Debug, Clone)]
pub struct FederationStatus {
    /// Per-backend counters, in config order.
    pub backends: Vec<BackendSnapshot>,
    /// Jobs currently resolving points.
    pub jobs_active: usize,
    /// Jobs accepted since startup.
    pub jobs_total: u64,
    /// Units computed by the coordinator's local fallback.
    pub local_units: u64,
    /// Whether the federation is draining.
    pub draining: bool,
}

impl FederationStatus {
    /// A one-line-per-backend human summary (the `repro submit --fleet`
    /// stderr epilogue).
    #[must_use]
    pub fn summary(&self) -> String {
        let mut out = String::new();
        for b in &self.backends {
            out.push_str(&format!(
                "fleet: {} {} [{}]: {} served, {} failed over, {} hedge wins\n",
                b.id,
                b.addr,
                b.state.name(),
                b.served,
                b.failed_over,
                b.hedge_wins
            ));
        }
        if self.local_units > 0 {
            out.push_str(&format!(
                "fleet: local fallback computed {} unit(s)\n",
                self.local_units
            ));
        }
        out
    }
}

/// Which backends a unit is in flight on (or the local fallback).
#[derive(Debug)]
struct Dispatched {
    /// Backend indices racing this unit; `usize::MAX` is the local
    /// fallback worker.
    backends: Vec<usize>,
    /// When the first dispatch happened (federation clock, ms) — the
    /// hedge deadline counts from here.
    first_at_ms: u64,
}

/// Mutable state of one federated job, shared by its workers.
#[derive(Debug)]
struct JobSt {
    /// Units nobody is running.
    queue: VecDeque<usize>,
    /// First-wins resolution map, indexed by grid index.
    resolved: Vec<bool>,
    /// In-flight units.
    dispatched: HashMap<usize, Dispatched>,
    /// Per remote job `(backend, remote-job-id)`: its unresolved units.
    /// A set emptied by *another* worker's resolution marks a hedge
    /// loser to cancel.
    remote: HashMap<(usize, u64), HashSet<usize>>,
    /// Units not yet resolved.
    remaining: usize,
    cancelled: bool,
    done_sent: bool,
    computed: usize,
    cached: usize,
    coalesced: usize,
    failed: usize,
}

/// One federated job: its grid, its event channel, its shared state.
struct JobCtl {
    id: u64,
    grid: Arc<GridStudy>,
    params: StudyParams,
    st: Mutex<JobSt>,
    cond: Condvar,
    tx: Sender<JobEvent>,
    /// Per-profile single-thread references, memoized for the local
    /// fallback path exactly like the sweep memoizes them.
    refs: Mutex<RefCache>,
}

/// Memoized single-thread references: profile index → `(cycles, insns)`
/// or the error string the reference run failed with.
type RefCache = HashMap<usize, Result<(u64, u64), String>>;

impl std::fmt::Debug for JobCtl {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobCtl")
            .field("id", &self.id)
            .finish_non_exhaustive()
    }
}

/// Federation-level mutable state.
#[derive(Debug, Default)]
struct FedState {
    next_job: u64,
    jobs_active: usize,
    jobs_total: u64,
    local_units: u64,
    draining: bool,
    /// Live jobs, for cancellation.
    jobs: HashMap<u64, Arc<JobCtl>>,
}

#[derive(Debug)]
struct FedInner {
    cfg: FleetConfig,
    backends: Vec<Arc<Backend>>,
    started: Instant,
    st: Mutex<FedState>,
    cond: Condvar,
    shutdown: AtomicBool,
}

/// The coordinator: shards submitted grids across the fleet and
/// reassembles result streams. Implements [`Dispatch`], so a
/// `studyd --backend …` coordinator serves the identical wire protocol
/// a single backend does.
#[derive(Debug)]
pub struct Federation {
    inner: Arc<FedInner>,
    monitor: Mutex<Option<JoinHandle<()>>>,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl FedInner {
    /// Milliseconds since the federation started (its monotonic clock).
    fn now_ms(&self) -> u64 {
        u64::try_from(self.started.elapsed().as_millis()).unwrap_or(u64::MAX)
    }

    fn control_timeout(&self) -> Duration {
        Duration::from_millis(self.cfg.control_timeout_ms.max(1))
    }

    /// Backends currently dispatchable (not dead).
    fn live_backends(&self) -> usize {
        self.backends
            .iter()
            .filter(|b| lock(&b.health).is_live())
            .count()
    }

    /// Opens a connection configured for data-plane streaming.
    fn connect(&self, addr: &str) -> Result<Client, SimError> {
        let mut client = Client::connect(addr)?;
        client.set_control_timeout(Some(self.control_timeout()));
        client.set_data_timeout(Some(Duration::from_millis(self.cfg.data_timeout_ms.max(1))));
        Ok(client)
    }

    /// Best-effort protocol cancel of a remote job over a fresh
    /// control connection (the worker that owns the stream is blocked
    /// reading it).
    fn cancel_remote(&self, backend_idx: usize, rjob: u64, reason: Option<&str>) {
        if backend_idx == usize::MAX {
            return; // the local fallback has no remote job
        }
        let addr = self.backends[backend_idx].addr.clone();
        if let Ok(mut c) = Client::connect(&addr) {
            c.set_control_timeout(Some(self.control_timeout()));
            c.cancel_with_reason(rjob, reason).ok();
        }
    }
}

impl Federation {
    /// Builds the coordinator and starts its health monitor. Backends
    /// are probed asynchronously — a fleet whose members are still
    /// booting is fine; they begin as [`HealthState::Unprobed`] and are
    /// dispatched to optimistically.
    ///
    /// # Errors
    ///
    /// [`SimError::Federation`] when `cfg.backends` is empty.
    pub fn start(cfg: FleetConfig) -> Result<Federation, SimError> {
        if cfg.backends.is_empty() {
            return Err(FederationError::NoBackends.into());
        }
        let backends = cfg
            .backends
            .iter()
            .enumerate()
            .map(|(i, addr)| {
                Arc::new(Backend {
                    id: format!("b{i}"),
                    addr: addr.clone(),
                    health: Mutex::new(BackendHealth::new()),
                    served: AtomicU64::new(0),
                    failed_over: AtomicU64::new(0),
                    hedge_wins: AtomicU64::new(0),
                    probes: AtomicU64::new(0),
                })
            })
            .collect();
        let inner = Arc::new(FedInner {
            cfg,
            backends,
            started: Instant::now(),
            st: Mutex::new(FedState::default()),
            cond: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let monitor = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("fed-monitor".to_string())
                .spawn(move || monitor_loop(&inner))
                .map_err(|e| ProtocolError::Io {
                    op: "spawn",
                    message: e.to_string(),
                })?
        };
        Ok(Federation {
            inner,
            monitor: Mutex::new(Some(monitor)),
        })
    }

    /// Point-in-time federation gauges.
    #[must_use]
    pub fn status(&self) -> FederationStatus {
        let st = lock(&self.inner.st);
        FederationStatus {
            backends: self
                .inner
                .backends
                .iter()
                .map(|b| {
                    let health = lock(&b.health);
                    BackendSnapshot {
                        id: b.id.clone(),
                        addr: b.addr.clone(),
                        state: health.state(),
                        served: b.served.load(Ordering::Relaxed),
                        failed_over: b.failed_over.load(Ordering::Relaxed),
                        hedge_wins: b.hedge_wins.load(Ordering::Relaxed),
                        probes: b.probes.load(Ordering::Relaxed),
                        recoveries: health.recoveries(),
                    }
                })
                .collect(),
            jobs_active: st.jobs_active,
            jobs_total: st.jobs_total,
            local_units: st.local_units,
            draining: st.draining,
        }
    }

    /// Blocks until no job is active (the drain barrier).
    pub fn wait_idle(&self) {
        let mut st = lock(&self.inner.st);
        while st.jobs_active > 0 {
            st = self
                .inner
                .cond
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Stops the monitor and wakes every worker so in-flight jobs wind
    /// down. Remote jobs already dispatched are cancelled best-effort.
    pub fn stop(&self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        let jobs: Vec<Arc<JobCtl>> = {
            let st = lock(&self.inner.st);
            st.jobs.values().cloned().collect()
        };
        for ctl in jobs {
            self.cancel_ctl(&ctl);
        }
        self.inner.cond.notify_all();
        if let Some(h) = lock(&self.monitor).take() {
            h.join().ok();
        }
    }

    fn cancel_ctl(&self, ctl: &Arc<JobCtl>) {
        let remote: Vec<(usize, u64)> = {
            let mut st = lock(&ctl.st);
            if st.cancelled {
                return;
            }
            st.cancelled = true;
            if !st.done_sent {
                st.done_sent = true;
                ctl.tx
                    .send(JobEvent::Done {
                        computed: st.computed,
                        cached: st.cached,
                        coalesced: st.coalesced,
                        failed: st.failed,
                        cancelled: true,
                    })
                    .ok();
            }
            ctl.cond.notify_all();
            st.remote.keys().copied().collect()
        };
        // Propagate: cancel every in-flight per-backend sub-job so no
        // orphaned unit keeps computing on the fleet.
        for (backend_idx, rjob) in remote {
            self.inner.cancel_remote(backend_idx, rjob, None);
        }
        self.finish_job(ctl.id);
    }

    /// Removes a finished/cancelled job from the live map and wakes
    /// drain waiters. Idempotent.
    fn finish_job(&self, id: u64) {
        finish_job(&self.inner, id);
    }
}

fn finish_job(inner: &FedInner, id: u64) {
    let mut st = lock(&inner.st);
    if st.jobs.remove(&id).is_some() {
        st.jobs_active = st.jobs_active.saturating_sub(1);
        inner.cond.notify_all();
    }
}

impl Dispatch for Federation {
    fn submit_units(
        &self,
        grid: GridStudy,
        params: StudyParams,
        units: Option<Vec<usize>>,
    ) -> Result<(u64, Receiver<JobEvent>), SubmitError> {
        let n = grid.n_points();
        let indices: Vec<usize> = match units {
            Some(subset) => subset,
            None => (0..n).collect(),
        };
        let (id, ctl, rx) = {
            let mut st = lock(&self.inner.st);
            if st.draining {
                return Err(SubmitError::Draining);
            }
            if self.inner.live_backends() == 0 && !self.inner.cfg.local_fallback {
                return Err(SubmitError::Unavailable {
                    backends: self.inner.backends.len(),
                });
            }
            st.next_job += 1;
            st.jobs_total += 1;
            st.jobs_active += 1;
            let id = st.next_job;
            let (tx, rx) = channel();
            let ctl = Arc::new(JobCtl {
                id,
                grid: Arc::new(grid),
                params,
                st: Mutex::new(JobSt {
                    queue: indices.iter().copied().collect(),
                    resolved: vec![false; n],
                    dispatched: HashMap::new(),
                    remote: HashMap::new(),
                    remaining: indices.len(),
                    cancelled: false,
                    done_sent: false,
                    computed: 0,
                    cached: 0,
                    coalesced: 0,
                    failed: 0,
                }),
                cond: Condvar::new(),
                tx,
                refs: Mutex::new(HashMap::new()),
            });
            st.jobs.insert(id, Arc::clone(&ctl));
            (id, ctl, rx)
        };
        for (bi, backend) in self.inner.backends.iter().enumerate() {
            let inner = Arc::clone(&self.inner);
            let backend = Arc::clone(backend);
            let ctl = Arc::clone(&ctl);
            std::thread::Builder::new()
                .name(format!("fed-worker-{bi}"))
                .spawn(move || backend_worker(&inner, bi, &backend, &ctl))
                .ok();
        }
        {
            let inner = Arc::clone(&self.inner);
            let ctl = Arc::clone(&ctl);
            std::thread::Builder::new()
                .name("fed-local".to_string())
                .spawn(move || local_worker(&inner, &ctl))
                .ok();
        }
        Ok((id, rx))
    }

    fn cancel_job(&self, job: u64, _hedge: bool) -> bool {
        let ctl = {
            let st = lock(&self.inner.st);
            st.jobs.get(&job).cloned()
        };
        match ctl {
            Some(ctl) => {
                self.cancel_ctl(&ctl);
                true
            }
            None => false,
        }
    }

    fn begin_drain(&self) {
        lock(&self.inner.st).draining = true;
        self.inner.cond.notify_all();
    }

    fn render_status(&self, backend_id: Option<&str>) -> String {
        let s = self.status();
        let backend = match backend_id {
            Some(id) => format!("\"backend\": \"{}\", ", json::escape(id)),
            None => String::new(),
        };
        let mut fleet = String::new();
        for (i, b) in s.backends.iter().enumerate() {
            if i > 0 {
                fleet.push_str(", ");
            }
            fleet.push_str(&format!(
                "{{\"id\": \"{}\", \"addr\": \"{}\", \"state\": \"{}\", \"served\": {}, \
                 \"failed_over\": {}, \"hedge_wins\": {}, \"probes\": {}, \"recoveries\": {}}}",
                json::escape(&b.id),
                json::escape(&b.addr),
                b.state.name(),
                b.served,
                b.failed_over,
                b.hedge_wins,
                b.probes,
                b.recoveries
            ));
        }
        format!(
            "{{\"ok\": true, \"kind\": \"status\", \"proto\": {PROTO_VERSION}, {backend}\
             \"workers\": 0, \"jobs_active\": {}, \"jobs_total\": {}, \"queued_units\": 0, \
             \"max_queued_units\": 0, \"draining\": {}, \"points_computed\": 0, \
             \"points_cached\": 0, \"points_coalesced\": 0, \"points_failed\": 0, \
             \"hedge_cancels\": 0, \
             \"federation\": {{\"local_units\": {}, \"backends\": [{fleet}]}}}}",
            s.jobs_active, s.jobs_total, s.draining, s.local_units
        )
    }
}

/// The heartbeat loop: probes every backend each period with a
/// short-deadline `status` call, feeding the health state machine.
/// Dead backends are only re-probed on their backoff schedule.
fn monitor_loop(inner: &Arc<FedInner>) {
    while !inner.shutdown.load(Ordering::SeqCst) {
        for backend in &inner.backends {
            if inner.shutdown.load(Ordering::SeqCst) {
                return;
            }
            let now = inner.now_ms();
            if !lock(&backend.health).should_probe(now) {
                continue;
            }
            backend.probes.fetch_add(1, Ordering::Relaxed);
            let ok = probe(inner, &backend.addr);
            let mut health = lock(&backend.health);
            if ok {
                health.on_success();
            } else {
                health.on_failure(&inner.cfg, inner.now_ms());
            }
        }
        // Sleep one heartbeat, but wake early on shutdown.
        let st = lock(&inner.st);
        let _guard = inner
            .cond
            .wait_timeout(st, Duration::from_millis(inner.cfg.heartbeat_ms.max(1)))
            .unwrap_or_else(PoisonError::into_inner);
    }
}

fn probe(inner: &FedInner, addr: &str) -> bool {
    match Client::connect(addr) {
        Ok(mut client) => {
            client.set_control_timeout(Some(inner.control_timeout()));
            client.status().is_ok()
        }
        Err(_) => false,
    }
}

/// What a backend worker decided to do after inspecting the job state.
enum Claim {
    /// Fresh units claimed off the queue.
    Units(Vec<usize>),
    /// A hedge: race this already-dispatched unit.
    Hedge(usize),
    /// Nothing claimable right now.
    Wait,
    /// The job is over (resolved, cancelled or shut down).
    Exit,
}

/// One backend's worker for one job: claims unit chunks (or hedges
/// stragglers), streams them from its backend, and resolves results
/// first-wins into the shared job state. On any backend failure its
/// unresolved units are requeued for the survivors.
fn backend_worker(inner: &Arc<FedInner>, bi: usize, backend: &Arc<Backend>, ctl: &Arc<JobCtl>) {
    loop {
        if inner.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let claim = next_claim(inner, bi, ctl);
        let units = match claim {
            Claim::Exit => return,
            Claim::Wait => {
                let st = lock(&ctl.st);
                let _guard = ctl
                    .cond
                    .wait_timeout(st, Duration::from_millis(POLL_MS))
                    .unwrap_or_else(PoisonError::into_inner);
                continue;
            }
            Claim::Units(units) => units,
            Claim::Hedge(unit) => vec![unit],
        };
        run_remote(inner, bi, backend, ctl, &units);
    }
}

/// Claims work for backend `bi` under the job lock.
fn next_claim(inner: &FedInner, bi: usize, ctl: &JobCtl) -> Claim {
    let mut st = lock(&ctl.st);
    if st.cancelled || st.remaining == 0 {
        return Claim::Exit;
    }
    if !lock(&inner.backends[bi].health).is_live() {
        return Claim::Wait;
    }
    let now = inner.now_ms();
    if !st.queue.is_empty() {
        // Chunk so every live backend gets a share, capped so failover
        // and hedging keep fine granularity.
        let live = inner.live_backends().max(1);
        let take = st.queue.len().div_ceil(live).clamp(1, 8);
        let mut units = Vec::with_capacity(take);
        for _ in 0..take {
            let Some(u) = st.queue.pop_front() else { break };
            st.dispatched.insert(
                u,
                Dispatched {
                    backends: vec![bi],
                    first_at_ms: now,
                },
            );
            units.push(u);
        }
        return Claim::Units(units);
    }
    if let Some(deadline) = inner.cfg.hedge_after_ms {
        let candidate = st
            .dispatched
            .iter()
            .filter(|(u, d)| {
                !st.resolved[**u]
                    && d.backends.len() < 2
                    && !d.backends.contains(&bi)
                    && now.saturating_sub(d.first_at_ms) >= deadline
            })
            .map(|(u, _)| *u)
            .min();
        if let Some(unit) = candidate {
            st.dispatched
                .get_mut(&unit)
                .expect("candidate is dispatched")
                .backends
                .push(bi);
            return Claim::Hedge(unit);
        }
    }
    Claim::Wait
}

/// Requeues units that never resolved (their dispatch entry is dropped
/// if this worker was the only runner; a hedge partner keeps its own).
fn requeue(ctl: &JobCtl, bi: usize, units: &[usize], backend: &Backend, count_failover: bool) {
    let mut st = lock(&ctl.st);
    let mut moved = 0u64;
    for &u in units {
        if st.resolved[u] {
            continue;
        }
        let sole_runner = match st.dispatched.get_mut(&u) {
            Some(d) => {
                d.backends.retain(|&b| b != bi);
                d.backends.is_empty()
            }
            None => true,
        };
        if sole_runner {
            st.dispatched.remove(&u);
            st.queue.push_back(u);
            moved += 1;
        }
    }
    if moved > 0 && count_failover {
        backend.failed_over.fetch_add(moved, Ordering::Relaxed);
    }
    ctl.cond.notify_all();
}

/// Streams `units` from backend `bi`, resolving first-wins.
fn run_remote(
    inner: &Arc<FedInner>,
    bi: usize,
    backend: &Arc<Backend>,
    ctl: &Arc<JobCtl>,
    units: &[usize],
) {
    let mut client = match inner.connect(&backend.addr) {
        Ok(c) => c,
        Err(_) => {
            lock(&backend.health).on_failure(&inner.cfg, inner.now_ms());
            // Never started: requeue without counting a failover.
            requeue(ctl, bi, units, backend, false);
            return;
        }
    };
    let study = ctl.grid.study();
    let rjob = match client.start_submit(study, &ctl.params, Some(units)) {
        Ok((rjob, _points)) => rjob,
        Err(SimError::Protocol(ProtocolError::Busy { .. })) => {
            // A busy backend is healthy; hand the units back and let
            // the fleet absorb them.
            requeue(ctl, bi, units, backend, false);
            std::thread::sleep(Duration::from_millis(POLL_MS));
            return;
        }
        Err(_) => {
            // The backend was reachable (the handshake succeeded) and
            // then failed mid-submission — it may have died holding the
            // work, so this is a failover, not a clean handback.
            lock(&backend.health).on_failure(&inner.cfg, inner.now_ms());
            requeue(ctl, bi, units, backend, true);
            return;
        }
    };
    lock(&backend.health).on_success();
    let mut pending: HashSet<usize> = units.iter().copied().collect();
    {
        let mut st = lock(&ctl.st);
        // Units resolved while we were connecting are no longer ours.
        pending.retain(|u| !st.resolved[*u]);
        st.remote.insert((bi, rjob), pending.clone());
    }
    let n = ctl.grid.n_points();
    let outcome = loop {
        if pending.is_empty() {
            // Everything we were running was resolved elsewhere: we
            // lost the race; reclaim the backend's duplicate work.
            break StreamEnd::LostRace;
        }
        match client.next_event(n) {
            Ok(StreamEvent::Point {
                index,
                source,
                attempts,
                summary,
            }) => {
                pending.remove(&index);
                resolve(
                    inner,
                    bi,
                    Some(backend),
                    ctl,
                    index,
                    Resolution::Point {
                        source: PointSource::from_wire(&source).unwrap_or(PointSource::Computed),
                        attempts,
                        summary,
                    },
                );
            }
            Ok(StreamEvent::Failed {
                index,
                label,
                reason,
                attempts,
            }) => {
                pending.remove(&index);
                resolve(
                    inner,
                    bi,
                    Some(backend),
                    ctl,
                    index,
                    Resolution::Failed {
                        label,
                        reason,
                        attempts,
                    },
                );
            }
            Ok(StreamEvent::Done { cancelled, .. }) => {
                break if cancelled {
                    StreamEnd::Cancelled
                } else {
                    StreamEnd::Clean
                };
            }
            Err(_) => break StreamEnd::Failed,
        }
    };
    {
        let mut st = lock(&ctl.st);
        st.remote.remove(&(bi, rjob));
    }
    match outcome {
        StreamEnd::Clean | StreamEnd::Cancelled => {
            // Defensive: a done frame with units still pending (e.g. a
            // cancelled remote job) hands them back to the fleet.
            let leftovers: Vec<usize> = pending.into_iter().collect();
            if !leftovers.is_empty() {
                requeue(ctl, bi, &leftovers, backend, false);
            }
        }
        StreamEnd::LostRace => {
            inner.cancel_remote(bi, rjob, Some("hedge"));
        }
        StreamEnd::Failed => {
            lock(&backend.health).on_failure(&inner.cfg, inner.now_ms());
            let leftovers: Vec<usize> = pending.into_iter().collect();
            requeue(ctl, bi, &leftovers, backend, true);
        }
    }
}

/// How a result stream ended.
enum StreamEnd {
    /// Done frame, everything accounted.
    Clean,
    /// Done frame flagged cancelled (job cancel propagated).
    Cancelled,
    /// All our units were resolved by other workers mid-stream.
    LostRace,
    /// The stream broke (timeout, reset, protocol error).
    Failed,
}

/// One resolved outcome for a unit.
enum Resolution {
    Point {
        source: PointSource,
        attempts: u64,
        summary: PointSummary,
    },
    Failed {
        label: String,
        reason: String,
        attempts: u64,
    },
}

/// First-wins resolution: marks the unit resolved, forwards its event,
/// credits the resolver (`None` = the local fallback), and cancels any
/// hedge loser whose remote job just went empty.
fn resolve(
    inner: &FedInner,
    bi: usize,
    backend: Option<&Backend>,
    ctl: &JobCtl,
    index: usize,
    resolution: Resolution,
) {
    let losers: Vec<(usize, u64)> = {
        let mut st = lock(&ctl.st);
        if st.cancelled || st.resolved[index] {
            return; // someone else won (or nobody cares anymore)
        }
        st.resolved[index] = true;
        st.remaining -= 1;
        let hedged = st
            .dispatched
            .get(&index)
            .is_some_and(|d| d.backends.len() > 1);
        st.dispatched.remove(&index);
        if let Some(backend) = backend {
            backend.served.fetch_add(1, Ordering::Relaxed);
            if hedged {
                backend.hedge_wins.fetch_add(1, Ordering::Relaxed);
            }
        }
        let event = match resolution {
            Resolution::Point {
                source,
                attempts,
                summary,
            } => {
                match source {
                    PointSource::Computed => st.computed += 1,
                    PointSource::Cached => st.cached += 1,
                    PointSource::Coalesced => st.coalesced += 1,
                }
                JobEvent::Point {
                    index,
                    source,
                    attempts: u32::try_from(attempts).unwrap_or(u32::MAX),
                    record: summary.to_record(),
                }
            }
            Resolution::Failed {
                label,
                reason,
                attempts,
            } => {
                st.failed += 1;
                JobEvent::Failed {
                    index,
                    label,
                    reason,
                    attempts: u32::try_from(attempts).unwrap_or(u32::MAX),
                }
            }
        };
        ctl.tx.send(event).ok();
        let mut losers = Vec::new();
        for (key, set) in &mut st.remote {
            if set.remove(&index) && set.is_empty() && key.0 != bi {
                losers.push(*key);
            }
        }
        if st.remaining == 0 && !st.done_sent {
            st.done_sent = true;
            ctl.tx
                .send(JobEvent::Done {
                    computed: st.computed,
                    cached: st.cached,
                    coalesced: st.coalesced,
                    failed: st.failed,
                    cancelled: false,
                })
                .ok();
        }
        ctl.cond.notify_all();
        losers
    };
    for (loser_bi, rjob) in losers {
        inner.cancel_remote(loser_bi, rjob, Some("hedge"));
    }
    let finished = lock(&ctl.st).remaining == 0;
    if finished {
        finish_job(inner, ctl.id);
    }
}

/// The graceful-degradation worker: when the whole fleet is dead it
/// drains the queue with local in-process execution (the identical
/// compute path the sweep uses, so reports stay byte-identical). With
/// [`FleetConfig::local_fallback`] disabled it fails the stranded
/// units instead so the job still terminates.
fn local_worker(inner: &Arc<FedInner>, ctl: &Arc<JobCtl>) {
    loop {
        if inner.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let unit = {
            let mut st = lock(&ctl.st);
            if st.cancelled || st.remaining == 0 {
                return;
            }
            let all_dead = inner.live_backends() == 0;
            if !all_dead || st.queue.is_empty() {
                let _unused = ctl
                    .cond
                    .wait_timeout(st, Duration::from_millis(POLL_MS))
                    .unwrap_or_else(PoisonError::into_inner);
                continue;
            }
            let unit = st.queue.pop_front().expect("checked non-empty");
            st.dispatched.insert(
                unit,
                Dispatched {
                    backends: vec![usize::MAX],
                    first_at_ms: inner.now_ms(),
                },
            );
            unit
        };
        if !inner.cfg.local_fallback {
            resolve(
                inner,
                usize::MAX,
                None,
                ctl,
                unit,
                Resolution::Failed {
                    label: ctl.grid.label(unit),
                    reason: "all fleet backends are dead and local fallback is disabled"
                        .to_string(),
                    attempts: 1,
                },
            );
            continue;
        }
        let (pi, _) = ctl.grid.point(unit);
        let st_ref = {
            let mut refs = lock(&ctl.refs);
            refs.entry(pi)
                .or_insert_with(|| ctl.grid.compute_reference(&ctl.params, pi))
                .clone()
        };
        let resolution = match st_ref.and_then(|st| ctl.grid.compute_point(&ctl.params, unit, st)) {
            Ok(summary) => Resolution::Point {
                source: PointSource::Computed,
                attempts: 1,
                summary,
            },
            Err(reason) => Resolution::Failed {
                label: ctl.grid.label(unit),
                reason,
                attempts: 1,
            },
        };
        // Count before resolving: resolve() may send the terminal
        // `done` frame, and a consumer reading it must already see
        // every local unit in the gauges.
        lock(&inner.st).local_units += 1;
        resolve(inner, usize::MAX, None, ctl, unit, resolution);
    }
}

/// Assembles a federated job's event stream into the final report,
/// exactly the way [`crate::client::Client::submit`] assembles a remote
/// stream — so a fleet run is byte-identical to both a single-backend
/// run and a local `Study::run`.
///
/// # Errors
///
/// [`SimError::Protocol`]: a `cancelled` terminal frame, an unparsable
/// forwarded record, or the stream ending without a `done` event
/// (federation shut down mid-job).
pub fn assemble_events(
    grid: &GridStudy,
    params: &StudyParams,
    rx: &Receiver<JobEvent>,
) -> Result<FedOutcome, SimError> {
    let n = grid.n_points();
    let mut slots: Vec<Option<PointSummary>> = (0..n).map(|_| None).collect();
    let mut failures: Vec<(usize, DegradedPoint)> = Vec::new();
    let mut retried = 0usize;
    loop {
        let event = rx.recv().map_err(|_| ProtocolError::Closed {
            during: "federated result stream".to_string(),
        })?;
        match event {
            JobEvent::Point {
                index,
                attempts,
                record,
                ..
            } => {
                let summary =
                    record_to_summary(&record).ok_or_else(|| ProtocolError::Malformed {
                        why: format!("point {index} carries an unparsable record"),
                    })?;
                if attempts > 1 {
                    retried += 1;
                }
                slots[index] = Some(summary);
            }
            JobEvent::Failed {
                index,
                label,
                reason,
                attempts,
            } => {
                failures.push((
                    index,
                    DegradedPoint {
                        label,
                        reason,
                        attempts,
                    },
                ));
            }
            JobEvent::Done {
                computed,
                cached,
                coalesced,
                failed,
                cancelled,
            } => {
                if cancelled {
                    return Err(ProtocolError::Rejected {
                        code: "cancelled".to_string(),
                        message: "federated job was cancelled before completing".to_string(),
                    }
                    .into());
                }
                failures.sort_by_key(|(i, _)| *i);
                let degraded = Degraded {
                    retried,
                    failed: failures.into_iter().map(|(_, p)| p).collect(),
                    ..Degraded::default()
                };
                let report = grid.assemble(params, slots, degraded, None);
                return Ok(FedOutcome {
                    report,
                    computed,
                    cached,
                    coalesced,
                    failed,
                });
            }
        }
    }
}

/// What a federated submission produced.
#[derive(Debug)]
pub struct FedOutcome {
    /// The reassembled report, byte-identical to a local run.
    pub report: Report,
    /// Points computed fresh somewhere on the fleet (or locally).
    pub computed: usize,
    /// Points served from backend result caches.
    pub cached: usize,
    /// Points coalesced onto other in-flight jobs on backends.
    pub coalesced: usize,
    /// Points that failed (the report carries a `Degraded` block).
    pub failed: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> FleetConfig {
        FleetConfig {
            backends: vec!["127.0.0.1:1".to_string()],
            dead_after: 3,
            probe_backoff_base_ms: 100,
            probe_backoff_cap_ms: 400,
            ..FleetConfig::default()
        }
    }

    #[test]
    fn health_walks_suspect_then_dead_then_recovers() {
        let cfg = cfg();
        let mut h = BackendHealth::new();
        assert_eq!(h.state(), HealthState::Unprobed);
        assert!(h.is_live());
        h.on_success();
        assert_eq!(h.state(), HealthState::Healthy);

        h.on_failure(&cfg, 0);
        assert_eq!(h.state(), HealthState::Suspect);
        assert!(h.is_live(), "suspect backends still get work");
        h.on_failure(&cfg, 10);
        assert_eq!(h.state(), HealthState::Suspect);
        h.on_failure(&cfg, 20);
        assert_eq!(h.state(), HealthState::Dead);
        assert!(!h.is_live());

        // Deterministic backoff: first window 100ms from the failure.
        assert!(!h.should_probe(20));
        assert!(!h.should_probe(119));
        assert!(h.should_probe(120));

        // A failed re-probe doubles the window, capped at 400.
        h.on_failure(&cfg, 120);
        assert!(!h.should_probe(319));
        assert!(h.should_probe(320));
        h.on_failure(&cfg, 320);
        assert!(h.should_probe(320 + 400), "cap reached");

        // Success from dead = recovered, and recovered is sticky.
        h.on_success();
        assert_eq!(h.state(), HealthState::Recovered);
        assert_eq!(h.recoveries(), 1);
        assert!(h.is_live());
        h.on_success();
        assert_eq!(h.state(), HealthState::Recovered);

        // Recovered backends die like any other.
        h.on_failure(&cfg, 1000);
        assert_eq!(h.state(), HealthState::Suspect);
        h.on_failure(&cfg, 1001);
        h.on_failure(&cfg, 1002);
        assert_eq!(h.state(), HealthState::Dead);
        h.on_success();
        assert_eq!(h.recoveries(), 2);
    }

    #[test]
    fn federation_requires_backends() {
        let err = Federation::start(FleetConfig {
            backends: Vec::new(),
            ..FleetConfig::default()
        })
        .unwrap_err();
        assert!(matches!(
            err,
            SimError::Federation(FederationError::NoBackends)
        ));
    }

    #[test]
    fn status_summary_names_every_backend() {
        let fed = Federation::start(FleetConfig {
            backends: vec!["127.0.0.1:1".to_string(), "127.0.0.1:2".to_string()],
            heartbeat_ms: 10_000, // keep the monitor quiet for the test
            ..FleetConfig::default()
        })
        .unwrap();
        let status = fed.status();
        assert_eq!(status.backends.len(), 2);
        assert_eq!(status.backends[0].id, "b0");
        let summary = status.summary();
        assert!(summary.contains("b0 127.0.0.1:1"));
        assert!(summary.contains("b1 127.0.0.1:2"));
        let frame = fed.render_status(Some("coord"));
        assert!(frame.contains("\"backend\": \"coord\""));
        assert!(frame.contains("\"federation\": "));
        fed.stop();
    }
}
