//! The persistent result-cache spill: an append-only, CRC32-framed
//! NDJSON file that survives `kill -9`.
//!
//! # Format
//!
//! Every line reuses the sweep journal's framing
//! ([`experiments::journal::wrap_line`]):
//!
//! ```text
//! {"crc":"xxxxxxxx","data":<record>}\n
//! ```
//!
//! The first record is the header, `{"spill": "studyd-cache",
//! "version": 1}`; every following record is one completed cache entry,
//! `{"key": "<cache key>", "value": "<journal-record JSON, escaped>"}`.
//! Keys carry the full journal-canonical parameter identity (see
//! [`crate::cache`]), so the header needs no study or fingerprint of
//! its own — one spill file serves every parameterization. Each record
//! is flushed as it is appended, so a killed daemon loses at most the
//! line it was writing.
//!
//! # Crash and corruption semantics (mirrors `experiments::journal`)
//!
//! - An **unterminated final line** is the expected kill artifact:
//!   dropped silently, its unit recomputed on the next submit.
//! - A **complete but corrupt** record (layout, checksum or JSON shape)
//!   is quarantined: counted in [`SpillOpen::quarantined`] and in the
//!   cache's stats, recomputed, never served.
//! - A file that is empty or dies **inside the header line** is the
//!   artifact of a kill during creation: silently recreated.
//! - A **complete but corrupt or version-mismatched header** is a typed
//!   fatal error — identity failures are never papered over.
//!
//! The file is append-only between compactions: a replaced key simply
//! appears twice and the later record wins on reload. Reload feeds
//! entries through the cache's normal LRU insertion, so a spill larger
//! than the byte budget is clamped on the way in.
//!
//! # Compaction
//!
//! Replaced keys and evicted entries would otherwise grow the file
//! without bound, so [`SpillWriter::compact`] rewrites it from the live
//! LRU state: the survivors are written to a `.compact-tmp` sibling
//! (header first, entries in least-recently-used-first order so a
//! reload reconstructs the same recency ranking), synced, then
//! atomically renamed over the original. A crash at any point leaves
//! either the old file or the complete new one — never a torn mix.
//! `studyd` compacts on drain shutdown and, with `--compact-spill`, at
//! startup right after reload.

use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};

use experiments::journal::{framed_lines, wrap_line, FramedLine};
use speedup_stacks::error::JournalError;
use speedup_stacks::report::json::{self, JsonValue};

/// The spill format magic recorded in every header.
pub const SPILL_MAGIC: &str = "studyd-cache";
/// The spill format version this build reads and writes.
pub const SPILL_VERSION: u64 = 1;

/// The append side of a spill file. Obtained from [`open`]; handed to
/// [`crate::cache::Cache::set_spill`], which appends every completed
/// entry write-through.
#[derive(Debug)]
pub struct SpillWriter {
    file: File,
    path: PathBuf,
    /// Data records appended by this process (drives the chaos flip).
    appended: u64,
    /// Corrupt the Nth appended record (deterministic chaos fault).
    flip_record: Option<u64>,
}

/// Everything [`open`] recovered from a spill file.
#[derive(Debug)]
pub struct SpillOpen {
    /// The append handle, positioned after the last intact record.
    pub writer: SpillWriter,
    /// Recovered `(key, value)` entries in file order (a key appearing
    /// twice is resolved by the caller's insertion order: later wins).
    pub entries: Vec<(String, String)>,
    /// Complete-but-corrupt records skipped during reload.
    pub quarantined: usize,
}

fn io_err(op: &'static str, e: &std::io::Error) -> JournalError {
    JournalError::Io {
        op,
        message: e.to_string(),
    }
}

fn header_record() -> String {
    format!("{{\"spill\": \"{SPILL_MAGIC}\", \"version\": {SPILL_VERSION}}}")
}

fn entry_record(key: &str, value: &str) -> String {
    format!(
        "{{\"key\": \"{}\", \"value\": \"{}\"}}",
        json::escape(key),
        json::escape(value)
    )
}

/// Creates (truncating) a spill file with a fresh header.
fn create(path: &Path) -> Result<File, JournalError> {
    let mut file = File::create(path).map_err(|e| io_err("create", &e))?;
    file.write_all(wrap_line(&header_record()).as_bytes())
        .map_err(|e| io_err("write-header", &e))?;
    file.flush().map_err(|e| io_err("flush-header", &e))?;
    Ok(file)
}

/// Validates an existing spill's header record. `Ok(true)` means the
/// header is intact; `Ok(false)` means the file died during creation
/// (empty, or an unterminated header line) and should be recreated.
fn check_header(content: &str) -> Result<bool, JournalError> {
    if content.is_empty() {
        return Ok(false);
    }
    let Some((header_line, _)) = content.split_once('\n') else {
        // Killed inside the very first write: no identity was ever
        // durable, so there is nothing to protect — start over.
        return Ok(false);
    };
    let data = experiments::journal::unwrap_line(header_line)
        .map_err(|why| JournalError::BadHeader { why })?;
    let header = json::parse(data).map_err(|e| JournalError::BadHeader { why: e.to_string() })?;
    if header.get("spill").and_then(JsonValue::as_str) != Some(SPILL_MAGIC) {
        return Err(JournalError::BadHeader {
            why: format!("not a {SPILL_MAGIC} spill"),
        });
    }
    let version = header
        .get("version")
        .and_then(JsonValue::as_f64)
        .map_or(0, |v| v as u64);
    if version != SPILL_VERSION {
        return Err(JournalError::VersionMismatch {
            found: version,
            supported: SPILL_VERSION,
        });
    }
    Ok(true)
}

/// Opens a spill file, creating it if needed, and recovers every intact
/// entry written before the last shutdown or kill. `flip_record` arms
/// the deterministic chaos fault (see [`crate::chaos::ChaosPolicy`]).
///
/// # Errors
///
/// [`JournalError::Io`] on filesystem failure; [`JournalError::BadHeader`]
/// / [`JournalError::VersionMismatch`] when an existing file's header is
/// complete but wrong — a kill *during* header creation recreates
/// silently instead.
pub fn open(path: &Path, flip_record: Option<u64>) -> Result<SpillOpen, JournalError> {
    let mut entries: Vec<(String, String)> = Vec::new();
    let mut quarantined = 0usize;
    let mut keep_bytes = None;
    let fresh = match std::fs::read_to_string(path) {
        Ok(content) => {
            if check_header(&content)? {
                let rest = &content[content.find('\n').expect("header checked") + 1..];
                for framed in framed_lines(rest) {
                    match framed.and_then_record() {
                        Some((key, value)) => entries.push((key, value)),
                        None => quarantined += 1,
                    }
                }
                // Chop an unterminated kill-tail so the next append
                // starts a fresh line instead of completing garbage.
                if !content.ends_with('\n') {
                    keep_bytes = Some(content.rfind('\n').expect("header checked") as u64 + 1);
                }
                false
            } else {
                true
            }
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => true,
        Err(e) => return Err(io_err("read", &e)),
    };
    let file = if fresh {
        create(path)?
    } else {
        let file = OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| io_err("open", &e))?;
        if let Some(len) = keep_bytes {
            file.set_len(len).map_err(|e| io_err("truncate", &e))?;
        }
        file
    };
    Ok(SpillOpen {
        writer: SpillWriter {
            file,
            path: path.to_path_buf(),
            appended: 0,
            flip_record,
        },
        entries,
        quarantined,
    })
}

/// Parses one framed data substring into a cache entry.
trait RecordExt {
    fn and_then_record(self) -> Option<(String, String)>;
}

impl RecordExt for FramedLine<'_> {
    fn and_then_record(self) -> Option<(String, String)> {
        let FramedLine::Record(data) = self else {
            return None;
        };
        let record = json::parse(data).ok()?;
        let key = record.get("key").and_then(JsonValue::as_str)?;
        let value = record.get("value").and_then(JsonValue::as_str)?;
        Some((key.to_string(), value.to_string()))
    }
}

impl SpillWriter {
    /// The file this writer appends to.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one completed cache entry and flushes it.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] on write/flush failure.
    pub fn append(&mut self, key: &str, value: &str) -> Result<(), JournalError> {
        let record = entry_record(key, value);
        let mut line = wrap_line(&record).into_bytes();
        if self.flip_record == Some(self.appended) {
            // Chaos: simulate on-disk bit rot inside the data region so
            // the framing CRC no longer matches on reload.
            let mid = line.len() - 3;
            line[mid] ^= 0x01;
        }
        self.appended += 1;
        self.file
            .write_all(&line)
            .map_err(|e| io_err("append", &e))?;
        self.file.flush().map_err(|e| io_err("flush", &e))
    }

    /// Forces everything appended so far to durable storage (the
    /// drain-mode shutdown barrier).
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] on sync failure.
    pub fn sync(&mut self) -> Result<(), JournalError> {
        self.file.flush().map_err(|e| io_err("flush", &e))?;
        self.file.sync_all().map_err(|e| io_err("sync", &e))
    }

    /// Rewrites the spill to exactly `entries` (header + one record
    /// each, in the given order), replacing the file atomically. The
    /// survivors are written to a `.compact-tmp` sibling, synced, then
    /// renamed over the original; on any error the original file — and
    /// this writer — are left untouched and still usable. Compaction
    /// writes bypass the chaos bit-flip (they carry already-validated
    /// data); the flip counter keeps targeting fresh appends.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] on write, sync, or rename failure.
    pub fn compact(&mut self, entries: &[(String, String)]) -> Result<(), JournalError> {
        let mut tmp_name = self.path.clone().into_os_string();
        tmp_name.push(".compact-tmp");
        let tmp = PathBuf::from(tmp_name);
        let result = (|| {
            let mut file = create(&tmp)?;
            for (key, value) in entries {
                file.write_all(wrap_line(&entry_record(key, value)).as_bytes())
                    .map_err(|e| io_err("compact-write", &e))?;
            }
            file.flush().map_err(|e| io_err("compact-flush", &e))?;
            file.sync_all().map_err(|e| io_err("compact-sync", &e))?;
            std::fs::rename(&tmp, &self.path).map_err(|e| io_err("compact-rename", &e))?;
            Ok(file)
        })();
        match result {
            Ok(file) => {
                // The renamed handle *is* the live file now; appends
                // continue at its end.
                self.file = file;
                Ok(())
            }
            Err(e) => {
                std::fs::remove_file(&tmp).ok();
                Err(e)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn temp_path(tag: &str) -> PathBuf {
        static N: AtomicUsize = AtomicUsize::new(0);
        std::env::temp_dir().join(format!(
            "studyd-spill-{}-{}-{tag}.ndjson",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ))
    }

    #[test]
    fn spill_round_trips_entries() {
        let path = temp_path("roundtrip");
        let mut opened = open(&path, None).unwrap();
        assert!(opened.entries.is_empty());
        opened.writer.append("point:c:0", "{\"a\": 1}").unwrap();
        opened
            .writer
            .append("ref:c:0", "1234 5678 with \"quotes\"")
            .unwrap();
        opened.writer.sync().unwrap();
        drop(opened);
        let reopened = open(&path, None).unwrap();
        assert_eq!(reopened.quarantined, 0);
        assert_eq!(
            reopened.entries,
            vec![
                ("point:c:0".to_string(), "{\"a\": 1}".to_string()),
                (
                    "ref:c:0".to_string(),
                    "1234 5678 with \"quotes\"".to_string()
                ),
            ]
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn kill_tail_dropped_and_corruption_quarantined() {
        let path = temp_path("chaos");
        let mut opened = open(&path, Some(1)).unwrap();
        opened.writer.append("k0", "v0").unwrap();
        opened.writer.append("k1", "v1").unwrap(); // chaos-flipped
        opened.writer.append("k2", "v2").unwrap();
        drop(opened);
        // Simulate a kill mid-write: half a line, no newline.
        let mut content = std::fs::read_to_string(&path).unwrap();
        content.push_str("{\"crc\":\"00000000\",\"data\":{\"key\": \"k3");
        std::fs::write(&path, &content).unwrap();
        let mut reopened = open(&path, None).unwrap();
        assert_eq!(reopened.quarantined, 1, "flipped record quarantined");
        assert_eq!(
            reopened.entries,
            vec![
                ("k0".to_string(), "v0".to_string()),
                ("k2".to_string(), "v2".to_string()),
            ],
            "kill tail dropped silently, corrupt record never served"
        );
        // The kill-tail was chopped on open, so post-recovery appends
        // start a fresh line and survive the next reload.
        reopened.writer.append("k4", "v4").unwrap();
        drop(reopened);
        let third = open(&path, None).unwrap();
        assert_eq!(third.quarantined, 1);
        assert_eq!(third.entries.last().unwrap().0, "k4");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn kill_during_creation_recreates_silently() {
        let path = temp_path("header-kill");
        std::fs::write(&path, "").unwrap();
        assert!(open(&path, None).unwrap().entries.is_empty());
        std::fs::write(&path, "{\"crc\":\"0000").unwrap();
        assert!(open(&path, None).unwrap().entries.is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_header_is_fatal() {
        let path = temp_path("header-bad");
        std::fs::write(&path, wrap_line("{\"spill\": \"other\", \"version\": 1}")).unwrap();
        assert!(matches!(
            open(&path, None),
            Err(JournalError::BadHeader { .. })
        ));
        std::fs::write(
            &path,
            wrap_line(&format!(
                "{{\"spill\": \"{SPILL_MAGIC}\", \"version\": 99}}"
            )),
        )
        .unwrap();
        assert!(matches!(
            open(&path, None),
            Err(JournalError::VersionMismatch {
                found: 99,
                supported: SPILL_VERSION
            })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compaction_drops_dead_records_and_survives_reload() {
        let path = temp_path("compact");
        let mut opened = open(&path, None).unwrap();
        opened.writer.append("k", "old").unwrap();
        opened.writer.append("k", "mid").unwrap();
        opened.writer.append("gone", "x").unwrap();
        opened.writer.append("k", "new").unwrap();
        let lines_before = std::fs::read_to_string(&path).unwrap().lines().count();
        assert_eq!(lines_before, 5, "header + 4 appended records");
        opened
            .writer
            .compact(&[("k".to_string(), "new".to_string())])
            .unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content.lines().count(), 2, "header + 1 live record");
        // Post-compaction appends land in the rewritten file.
        opened.writer.append("k2", "v2").unwrap();
        drop(opened);
        let reopened = open(&path, None).unwrap();
        assert_eq!(reopened.quarantined, 0);
        assert_eq!(
            reopened.entries,
            vec![
                ("k".to_string(), "new".to_string()),
                ("k2".to_string(), "v2".to_string()),
            ]
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn later_records_win_on_reload() {
        let path = temp_path("replace");
        let mut opened = open(&path, None).unwrap();
        opened.writer.append("k", "old").unwrap();
        opened.writer.append("k", "new").unwrap();
        drop(opened);
        let entries = open(&path, None).unwrap().entries;
        assert_eq!(entries.last().unwrap().1, "new", "file order preserved");
        std::fs::remove_file(&path).ok();
    }
}
