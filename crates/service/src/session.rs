//! One client connection: handshake, request loop, result streaming.
//!
//! Error severity is graded. Frames that prove the peer does not speak
//! the protocol — malformed JSON, an oversized line, a broken handshake
//! — get one typed error frame and the connection closes. Frames that
//! are well-formed but name something invalid — an unknown op, an
//! unknown study, bad parameters, a full queue (`busy`), a draining
//! server — get a typed error reply and the connection **stays open**,
//! so an interactive client can correct itself (or back off and retry)
//! without reconnecting. No socket failure is ever unwrapped: a peer
//! that vanishes mid-stream cancels its job and ends the session
//! quietly, and a peer that sits silent past the configured idle
//! timeout is reaped with a typed `idle-timeout` frame.

use std::io::{BufReader, BufWriter};
use std::net::TcpStream;
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;
use std::time::Duration;

use experiments::decompose::{decompose, GridStudy};
use experiments::study::{find_study, registry, StudyParams};
use speedup_stacks::error::ProtocolError;
use speedup_stacks::report::json::{self, JsonValue};

use crate::cache::CacheStats;
use crate::proto::{
    error_frame, params_from_wire, read_line_bounded, u64_field, write_line, PROTO_VERSION,
    REQUEST_LINE_CAP,
};
use crate::scheduler::{drain_events, JobEvent, Scheduler, SchedulerStatus, SubmitError};
use crate::server::ShutdownMode;

/// The execution engine behind a session: a backend daemon's local
/// [`Scheduler`], or the federation coordinator fanning work out across
/// a fleet ([`crate::federation::Federation`]). The wire protocol is
/// identical either way, so a client cannot tell (and need not care)
/// whether it is talking to one machine or a fleet.
pub trait Dispatch: Send + Sync {
    /// Admits a job for `grid`, optionally restricted to a sorted,
    /// deduplicated, range-checked subset of point indices (the
    /// session validates via [`GridStudy::validate_units`] first).
    ///
    /// # Errors
    ///
    /// [`SubmitError`] when admission is refused.
    fn submit_units(
        &self,
        grid: GridStudy,
        params: StudyParams,
        units: Option<Vec<usize>>,
    ) -> Result<(u64, Receiver<JobEvent>), SubmitError>;

    /// Cancels a job; `hedge` marks a federation hedge-loser reclaim
    /// (accounted separately from user cancellation). `false` when the
    /// job is unknown or already finished.
    fn cancel_job(&self, job: u64, hedge: bool) -> bool;

    /// Stops admitting new work (the drain-mode shutdown's first step).
    fn begin_drain(&self);

    /// Renders the engine's `status` reply frame; `backend_id` is this
    /// daemon's fleet identity, echoed when set.
    fn render_status(&self, backend_id: Option<&str>) -> String;
}

impl Dispatch for Scheduler {
    fn submit_units(
        &self,
        grid: GridStudy,
        params: StudyParams,
        units: Option<Vec<usize>>,
    ) -> Result<(u64, Receiver<JobEvent>), SubmitError> {
        Scheduler::submit_units(self, grid, params, units)
    }

    fn cancel_job(&self, job: u64, hedge: bool) -> bool {
        self.cancel_with_reason(job, hedge)
    }

    fn begin_drain(&self) {
        Scheduler::begin_drain(self);
    }

    fn render_status(&self, backend_id: Option<&str>) -> String {
        status_frame(&self.status(), &self.cache().stats(), backend_id)
    }
}

/// Everything a session needs beyond its socket: the engine it
/// dispatches into, the daemon's fleet identity, the shutdown channel
/// and the idle-reaper deadline. One shared instance per server.
pub struct SessionCtx {
    /// The engine requests dispatch into.
    pub engine: Arc<dyn Dispatch>,
    /// This daemon's `--backend-id`, echoed in hello and status frames
    /// so fleet operators can tell which backend answered.
    pub backend_id: Option<String>,
    /// Channel to the main thread's shutdown loop.
    pub shutdown_tx: Sender<ShutdownMode>,
    /// Idle-connection reaper deadline; `None` = never reap.
    pub idle_timeout: Option<Duration>,
}

impl std::fmt::Debug for SessionCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionCtx")
            .field("backend_id", &self.backend_id)
            .field("idle_timeout", &self.idle_timeout)
            .finish_non_exhaustive()
    }
}

/// Outcome of handling one request: keep serving or end the session.
enum Flow {
    Continue,
    Close,
}

/// Serves one accepted connection to completion. Never panics on
/// socket I/O; all failures end the session. A non-zero idle timeout
/// arms the idle-connection reaper: a peer that sends nothing for that
/// long is sent a typed `idle-timeout` error frame and disconnected,
/// so slow or dead clients cannot pin session threads forever.
pub fn run(stream: TcpStream, ctx: &SessionCtx) {
    stream.set_nodelay(true).ok();
    if let Some(timeout) = ctx.idle_timeout {
        stream.set_read_timeout(Some(timeout)).ok();
    }
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);

    if handshake(&mut reader, &mut writer, ctx.backend_id.as_deref()).is_none() {
        return;
    }

    loop {
        let line = match read_line_bounded(&mut reader, REQUEST_LINE_CAP) {
            Ok(Some(line)) => line,
            Ok(None) => return, // clean disconnect
            Err(ProtocolError::Oversized { limit }) => {
                send_error(
                    &mut writer,
                    "oversized",
                    &format!("request frame exceeds the {limit}-byte line cap"),
                );
                return;
            }
            Err(ProtocolError::Malformed { why }) => {
                send_error(&mut writer, "malformed", &why);
                return;
            }
            Err(ProtocolError::Timeout) => {
                send_error(
                    &mut writer,
                    "idle-timeout",
                    "connection idle past the server's idle timeout",
                );
                return;
            }
            Err(_) => return,
        };
        let frame = match json::parse(&line) {
            Ok(v) => v,
            Err(e) => {
                send_error(&mut writer, "malformed", &format!("invalid JSON: {e}"));
                return;
            }
        };
        match handle_request(&frame, &mut writer, ctx) {
            Flow::Continue => {}
            Flow::Close => return,
        }
    }
}

/// The handshake: the first frame must be a version-matching `hello`.
/// `None` ends the session (the error frame, if any, was already sent).
fn handshake(
    reader: &mut BufReader<TcpStream>,
    writer: &mut BufWriter<TcpStream>,
    backend_id: Option<&str>,
) -> Option<()> {
    let line = match read_line_bounded(reader, REQUEST_LINE_CAP) {
        Ok(Some(line)) => line,
        Ok(None) => return None,
        Err(ProtocolError::Oversized { limit }) => {
            send_error(
                writer,
                "oversized",
                &format!("request frame exceeds the {limit}-byte line cap"),
            );
            return None;
        }
        Err(ProtocolError::Malformed { why }) => {
            send_error(writer, "malformed", &why);
            return None;
        }
        Err(ProtocolError::Timeout) => {
            send_error(
                writer,
                "idle-timeout",
                "connection idle past the server's idle timeout",
            );
            return None;
        }
        Err(_) => return None,
    };
    let Ok(frame) = json::parse(&line) else {
        send_error(writer, "malformed", "handshake frame is not valid JSON");
        return None;
    };
    if frame.get("op").and_then(JsonValue::as_str) != Some("hello") {
        send_error(
            writer,
            "handshake-required",
            &format!("the first frame must be {{\"op\": \"hello\", \"proto\": {PROTO_VERSION}}}"),
        );
        return None;
    }
    let Some(found) = u64_field(&frame, "proto") else {
        send_error(writer, "malformed", "hello frame lacks an integer 'proto'");
        return None;
    };
    if found != PROTO_VERSION {
        // A version-mismatch frame carries both versions so the client
        // can render a precise diagnostic.
        let msg = format!(
            "{{\"ok\": false, \"error\": \"version-mismatch\", \"message\": \
             \"protocol version {found} unsupported (this server speaks version \
             {PROTO_VERSION})\", \"found\": {found}, \"supported\": {PROTO_VERSION}}}"
        );
        write_line(writer, &msg).ok();
        return None;
    }
    let backend = match backend_id {
        Some(id) => format!(", \"backend\": \"{}\"", json::escape(id)),
        None => String::new(),
    };
    write_line(
        writer,
        &format!(
            "{{\"ok\": true, \"kind\": \"hello\", \"proto\": {PROTO_VERSION}, \
             \"server\": \"studyd\"{backend}}}"
        ),
    )
    .ok()?;
    Some(())
}

fn send_error(writer: &mut BufWriter<TcpStream>, code: &str, message: &str) {
    write_line(writer, &error_frame(code, message)).ok();
}

fn handle_request(frame: &JsonValue, writer: &mut BufWriter<TcpStream>, ctx: &SessionCtx) -> Flow {
    let Some(op) = frame.get("op").and_then(JsonValue::as_str) else {
        send_error(writer, "bad-request", "frame lacks a string 'op' field");
        return Flow::Continue;
    };
    match op {
        "list" => {
            if write_line(writer, &list_frame()).is_err() {
                return Flow::Close;
            }
            Flow::Continue
        }
        "status" => {
            let frame = ctx.engine.render_status(ctx.backend_id.as_deref());
            if write_line(writer, &frame).is_err() {
                return Flow::Close;
            }
            Flow::Continue
        }
        "cancel" => {
            let Some(job) = u64_field(frame, "job") else {
                send_error(writer, "bad-request", "cancel needs an integer 'job' field");
                return Flow::Continue;
            };
            // An optional reason: the federation sends "hedge" when the
            // job lost a hedged race, so reclaimed duplicate work is
            // accounted apart from user cancellation.
            let hedge = frame.get("reason").and_then(JsonValue::as_str) == Some("hedge");
            let found = ctx.engine.cancel_job(job, hedge);
            // A cancel racing job completion is answered deterministically:
            // a live (or zombie) job reports `cancelled`, a job whose final
            // point already streamed reports `already-done`.
            let state = if found { "cancelled" } else { "already-done" };
            let reply = format!(
                "{{\"ok\": true, \"kind\": \"cancelled\", \"job\": {job}, \"found\": {found}, \
                 \"state\": \"{state}\"}}"
            );
            if write_line(writer, &reply).is_err() {
                return Flow::Close;
            }
            Flow::Continue
        }
        "shutdown" => {
            let mode = match frame.get("mode").and_then(JsonValue::as_str) {
                None | Some("now") => ShutdownMode::Immediate,
                Some("drain") => ShutdownMode::Drain,
                Some(other) => {
                    send_error(
                        writer,
                        "bad-request",
                        &format!("unknown shutdown mode '{other}' (expected 'now' or 'drain')"),
                    );
                    return Flow::Continue;
                }
            };
            // Stop admission *before* acknowledging, so a client that sees
            // the ok can rely on no further work being admitted.
            if mode == ShutdownMode::Drain {
                ctx.engine.begin_drain();
            }
            let word = match mode {
                ShutdownMode::Immediate => "now",
                ShutdownMode::Drain => "drain",
            };
            write_line(
                writer,
                &format!("{{\"ok\": true, \"kind\": \"shutdown\", \"mode\": \"{word}\"}}"),
            )
            .ok();
            ctx.shutdown_tx.send(mode).ok();
            Flow::Close
        }
        "submit" => handle_submit(frame, writer, ctx),
        other => {
            send_error(writer, "bad-request", &format!("unknown op '{other}'"));
            Flow::Continue
        }
    }
}

fn handle_submit(frame: &JsonValue, writer: &mut BufWriter<TcpStream>, ctx: &SessionCtx) -> Flow {
    let Some(study) = frame.get("study").and_then(JsonValue::as_str) else {
        send_error(writer, "bad-request", "submit needs a string 'study' field");
        return Flow::Continue;
    };
    if find_study(study).is_none() {
        send_error(
            writer,
            "unknown-study",
            &format!("no study named '{study}'"),
        );
        return Flow::Continue;
    }
    let params = match params_from_wire(frame.get("params")) {
        Ok(p) => p,
        Err(why) => {
            send_error(writer, "bad-params", &why);
            return Flow::Continue;
        }
    };
    let Some(grid) = decompose(study, &params) else {
        send_error(
            writer,
            "not-grid",
            &format!("study '{study}' is not a sharded grid study"),
        );
        return Flow::Continue;
    };
    if let Err(e) = grid.validate() {
        send_error(writer, "bad-params", &e.to_string());
        return Flow::Continue;
    }

    // An optional subset of point indices — the federation's shard
    // primitive. Absent = the full grid.
    let units = match frame.get("units") {
        None => None,
        Some(JsonValue::Array(list)) => {
            let mut subset = Vec::with_capacity(list.len());
            for v in list {
                match v.as_f64() {
                    Some(x) if x >= 0.0 && x.fract() == 0.0 => subset.push(x as usize),
                    _ => {
                        send_error(
                            writer,
                            "bad-units",
                            "units must be an array of non-negative point indices",
                        );
                        return Flow::Continue;
                    }
                }
            }
            match grid.validate_units(&subset) {
                Ok(normalized) => Some(normalized),
                Err(why) => {
                    send_error(writer, "bad-units", &why);
                    return Flow::Continue;
                }
            }
        }
        Some(_) => {
            send_error(
                writer,
                "bad-units",
                "units must be an array of point indices",
            );
            return Flow::Continue;
        }
    };

    let fingerprint = experiments::journal::fingerprint(study, &params);
    let points = units.as_ref().map_or(grid.n_points(), Vec::len);
    let (job, rx) = match ctx.engine.submit_units(grid, params, units) {
        Ok(accepted) => accepted,
        Err(SubmitError::Busy {
            queued,
            limit,
            retry_after_ms,
        }) => {
            let busy = format!(
                "{{\"ok\": false, \"error\": \"busy\", \"message\": \"work queue full \
                 ({queued} units queued, limit {limit})\", \"retry_after_ms\": {retry_after_ms}}}"
            );
            if write_line(writer, &busy).is_err() {
                return Flow::Close;
            }
            return Flow::Continue;
        }
        Err(SubmitError::Draining) => {
            send_error(
                writer,
                "draining",
                "server is draining and not admitting new work",
            );
            return Flow::Continue;
        }
        Err(e @ SubmitError::Unavailable { .. }) => {
            send_error(writer, "unavailable", &e.to_string());
            return Flow::Continue;
        }
    };
    let accepted = format!(
        "{{\"ok\": true, \"kind\": \"accepted\", \"job\": {job}, \"study\": \"{}\", \
         \"points\": {points}, \"fingerprint\": \"{}\"}}",
        json::escape(study),
        json::escape(&fingerprint)
    );
    if write_line(writer, &accepted).is_err() {
        ctx.engine.cancel_job(job, false);
        let _ = drain_events(&rx);
        return Flow::Close;
    }

    // Stream results as they complete. A write failure means the peer
    // is gone: cancel the job so queued points stop consuming the pool.
    loop {
        let event = match rx.recv() {
            Ok(e) => e,
            Err(_) => return Flow::Close, // scheduler shut down mid-job
        };
        let (line, done) = event_frame(job, &event);
        if write_line(writer, &line).is_err() {
            ctx.engine.cancel_job(job, false);
            if !done {
                let _ = drain_events(&rx);
            }
            return Flow::Close;
        }
        if done {
            return Flow::Continue;
        }
    }
}

/// Renders one job event as its wire frame; `true` marks the terminal
/// `done` frame.
fn event_frame(job: u64, event: &JobEvent) -> (String, bool) {
    match event {
        JobEvent::Point {
            index,
            source,
            attempts,
            record,
        } => (
            format!(
                "{{\"ok\": true, \"kind\": \"point\", \"job\": {job}, \"index\": {index}, \
                 \"source\": \"{}\", \"attempts\": {attempts}, \"data\": {record}}}",
                source.wire_name()
            ),
            false,
        ),
        JobEvent::Failed {
            index,
            label,
            reason,
            attempts,
        } => (
            format!(
                "{{\"ok\": true, \"kind\": \"failed\", \"job\": {job}, \"index\": {index}, \
                 \"label\": \"{}\", \"reason\": \"{}\", \"attempts\": {attempts}}}",
                json::escape(label),
                json::escape(reason)
            ),
            false,
        ),
        JobEvent::Done {
            computed,
            cached,
            coalesced,
            failed,
            cancelled,
        } => (
            format!(
                "{{\"ok\": true, \"kind\": \"done\", \"job\": {job}, \"computed\": {computed}, \
                 \"cached\": {cached}, \"coalesced\": {coalesced}, \"failed\": {failed}, \
                 \"cancelled\": {cancelled}}}"
            ),
            true,
        ),
    }
}

fn list_frame() -> String {
    let mut out = String::from("{\"ok\": true, \"kind\": \"list\", \"studies\": [");
    for (i, s) in registry().iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!(
            "{{\"name\": \"{}\", \"description\": \"{}\", \"grid\": {}}}",
            json::escape(s.name()),
            json::escape(s.description()),
            s.supports_journal()
        ));
    }
    out.push_str("]}");
    out
}

fn status_frame(s: &SchedulerStatus, c: &CacheStats, backend_id: Option<&str>) -> String {
    let backend = match backend_id {
        Some(id) => format!("\"backend\": \"{}\", ", json::escape(id)),
        None => String::new(),
    };
    format!(
        "{{\"ok\": true, \"kind\": \"status\", \"proto\": {PROTO_VERSION}, {backend}\
         \"workers\": {}, \"jobs_active\": {}, \"jobs_total\": {}, \"queued_units\": {}, \
         \"max_queued_units\": {}, \"draining\": {}, \
         \"points_computed\": {}, \"points_cached\": {}, \"points_coalesced\": {}, \
         \"points_failed\": {}, \"hedge_cancels\": {}, \
         \"cache\": {{\"hits\": {}, \"misses\": {}, \"insertions\": {}, \"evictions\": {}, \
         \"entries\": {}, \"bytes\": {}, \"budget\": {}, \"loaded\": {}, \"quarantined\": {}, \
         \"spilled\": {}}}}}",
        s.workers,
        s.jobs_active,
        s.jobs_total,
        s.queued_units,
        s.max_queued_units,
        s.draining,
        s.points_computed,
        s.points_cached,
        s.points_coalesced,
        s.points_failed,
        s.hedge_cancels,
        c.hits,
        c.misses,
        c.insertions,
        c.evictions,
        c.entries,
        c.bytes,
        c.budget,
        c.loaded,
        c.quarantined,
        c.spilled
    )
}
