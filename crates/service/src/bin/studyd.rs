//! `studyd` — the long-lived study server.
//!
//! Usage:
//!
//! ```text
//! studyd [--addr HOST:PORT] [--workers N] [--cache-mib N]
//!        [--max-queued-units N] [--idle-timeout-ms N] [--cache-spill PATH]
//! ```
//!
//! Binds (default `127.0.0.1:7821`), prints the bound address, then
//! serves `repro submit` clients until one sends the `shutdown` op.
//! `--workers` sizes the shared simulation pool (default: one per
//! available CPU); `--cache-mib` bounds the content-addressed result
//! cache (default 64 MiB); `--max-queued-units` bounds the work queue
//! (overload answers a typed `busy` with `retry_after_ms`; default
//! unbounded); `--idle-timeout-ms` reaps connections idle past the
//! deadline; `--cache-spill` persists the result cache to an
//! append-only CRC-framed file, recovered (with corrupt-record
//! quarantine) on restart — even after a `kill -9`.
//!
//! A `shutdown` with `"mode": "drain"` stops admission, finishes
//! in-flight jobs, flushes the spill, and exits 0.
//!
//! The `STUDYD_CHAOS` environment variable arms deterministic fault
//! injection for the chaos suite (`panic-unit=N`, `flip-spill=N`).
//!
//! Exit codes: 0 clean shutdown, 1 usage error, 5 corrupt spill
//! header, 10 protocol/socket failure (the
//! [`speedup_stacks::SimError`] codes).

use std::io::Write;
use std::process::ExitCode;

use service::chaos::ChaosPolicy;
use service::server::{serve, ServeConfig, ShutdownMode};

const USAGE: &str = "usage: studyd [--addr HOST:PORT] [--workers N] [--cache-mib N] \
[--max-queued-units N] [--idle-timeout-ms N] [--cache-spill PATH]";

/// The conventional loopback port `repro submit` defaults to.
const DEFAULT_ADDR: &str = "127.0.0.1:7821";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = match ServeConfig::from_args(DEFAULT_ADDR, &args) {
        Ok(cfg) => cfg,
        Err(message) => {
            eprintln!("studyd: {message}");
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    cfg.chaos = match ChaosPolicy::from_env() {
        Ok(chaos) => chaos,
        Err(message) => {
            eprintln!("studyd: STUDYD_CHAOS: {message}");
            return ExitCode::FAILURE;
        }
    };
    match serve(&cfg) {
        Ok(handle) => {
            // Flush explicitly: supervisors reading a pipe must see the
            // bound address before the first client connects.
            println!("studyd: listening on {}", handle.local_addr());
            std::io::stdout().flush().ok();
            if handle.wait_for_shutdown() == ShutdownMode::Drain {
                handle.drain();
            }
            handle.stop();
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("studyd: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}
