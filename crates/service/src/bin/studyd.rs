//! `studyd` — the long-lived study server.
//!
//! Usage:
//!
//! ```text
//! studyd [--addr HOST:PORT] [--workers N] [--cache-mib N]
//!        [--max-queued-units N] [--idle-timeout-ms N] [--cache-spill PATH]
//!        [--compact-spill] [--backend-id NAME]
//!        [--backend HOST:PORT ...] [--hedge-after-ms N] [--no-hedge]
//!        [--no-local-fallback] [--heartbeat-ms N] [--dead-after N]
//! ```
//!
//! Binds (default `127.0.0.1:7821`), prints the bound address, then
//! serves `repro submit` clients until one sends the `shutdown` op.
//! `--workers` sizes the shared simulation pool (default: one per
//! available CPU); `--cache-mib` bounds the content-addressed result
//! cache (default 64 MiB); `--max-queued-units` bounds the work queue
//! (overload answers a typed `busy` with `retry_after_ms`; default
//! unbounded); `--idle-timeout-ms` reaps connections idle past the
//! deadline; `--cache-spill` persists the result cache to an
//! append-only CRC-framed file, recovered (with corrupt-record
//! quarantine) on restart — even after a `kill -9`; `--compact-spill`
//! rewrites that file from the live cache at startup (drain always
//! compacts); `--backend-id` names this daemon in `hello`/`status`
//! frames.
//!
//! With one or more `--backend HOST:PORT` flags the daemon runs as a
//! **federation coordinator** instead: it serves the same wire protocol
//! but shards each submitted grid across the named backends, health
//! checks them, fails work over from dead backends, hedges stragglers
//! (`--hedge-after-ms`, default 2000; `--no-hedge` disables) and falls
//! back to local in-process execution when the whole fleet is dead
//! (unless `--no-local-fallback`). `--heartbeat-ms` and `--dead-after`
//! tune the health monitor.
//!
//! A `shutdown` with `"mode": "drain"` stops admission, finishes
//! in-flight jobs, flushes (and compacts) the spill, and exits 0.
//!
//! The `STUDYD_CHAOS` environment variable arms deterministic fault
//! injection for the chaos suite (`panic-unit=N`, `flip-spill=N`,
//! `stall-unit=N`, `exit-unit=N`).
//!
//! Exit codes: 0 clean shutdown, 1 usage error, 5 corrupt spill
//! header, 10 protocol/socket failure, 11 federation failure (the
//! [`speedup_stacks::SimError`] codes).

use std::io::Write;
use std::process::ExitCode;

use service::chaos::ChaosPolicy;
use service::federation::FleetConfig;
use service::server::{serve, serve_coordinator, ServeConfig, ShutdownMode};

const USAGE: &str = "usage: studyd [--addr HOST:PORT] [--workers N] [--cache-mib N] \
[--max-queued-units N] [--idle-timeout-ms N] [--cache-spill PATH] [--compact-spill] \
[--backend-id NAME] [--backend HOST:PORT ...] [--hedge-after-ms N] [--no-hedge] \
[--no-local-fallback] [--heartbeat-ms N] [--dead-after N]";

/// The conventional loopback port `repro submit` defaults to.
const DEFAULT_ADDR: &str = "127.0.0.1:7821";

/// Splits the fleet (coordinator) flags out of `args`, leaving only
/// the flags [`ServeConfig::from_args`] understands. Returns the
/// remaining args and, when at least one `--backend` was given, the
/// assembled [`FleetConfig`].
fn split_fleet_args(args: &[String]) -> Result<(Vec<String>, Option<FleetConfig>), String> {
    let mut rest: Vec<String> = Vec::new();
    let mut fleet = FleetConfig::default();
    let mut saw_backend = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--backend" => match it.next() {
                Some(addr) if !addr.starts_with("--") => {
                    fleet.backends.push(addr.clone());
                    saw_backend = true;
                }
                _ => return Err("--backend requires HOST:PORT".to_string()),
            },
            "--hedge-after-ms" => match it.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(ms) => fleet.hedge_after_ms = Some(ms),
                _ => return Err("--hedge-after-ms requires a deadline in ms".to_string()),
            },
            "--no-hedge" => fleet.hedge_after_ms = None,
            "--no-local-fallback" => fleet.local_fallback = false,
            "--heartbeat-ms" => match it.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(ms) if ms >= 1 => fleet.heartbeat_ms = ms,
                _ => return Err("--heartbeat-ms requires a period in ms >= 1".to_string()),
            },
            "--dead-after" => match it.next().and_then(|v| v.parse::<u32>().ok()) {
                Some(n) if n >= 1 => fleet.dead_after = n,
                _ => return Err("--dead-after requires a failure count >= 1".to_string()),
            },
            _ => rest.push(a.clone()),
        }
    }
    Ok((rest, saw_backend.then_some(fleet)))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (args, fleet) = match split_fleet_args(&args) {
        Ok(split) => split,
        Err(message) => {
            eprintln!("studyd: {message}");
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let mut cfg = match ServeConfig::from_args(DEFAULT_ADDR, &args) {
        Ok(cfg) => cfg,
        Err(message) => {
            eprintln!("studyd: {message}");
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    cfg.chaos = match ChaosPolicy::from_env() {
        Ok(chaos) => chaos,
        Err(message) => {
            eprintln!("studyd: STUDYD_CHAOS: {message}");
            return ExitCode::FAILURE;
        }
    };
    let served = match fleet {
        Some(fleet) => serve_coordinator(&cfg, fleet),
        None => serve(&cfg),
    };
    match served {
        Ok(handle) => {
            // Flush explicitly: supervisors reading a pipe must see the
            // bound address before the first client connects.
            println!("studyd: listening on {}", handle.local_addr());
            std::io::stdout().flush().ok();
            if handle.wait_for_shutdown() == ShutdownMode::Drain {
                handle.drain();
            }
            handle.stop();
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("studyd: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}
