//! `studyd` — the long-lived study server.
//!
//! Usage:
//!
//! ```text
//! studyd [--addr HOST:PORT] [--workers N] [--cache-mib N]
//! ```
//!
//! Binds (default `127.0.0.1:7821`), prints the bound address, then
//! serves `repro submit` clients until one sends the `shutdown` op.
//! `--workers` sizes the shared simulation pool (default: one per
//! available CPU); `--cache-mib` bounds the content-addressed result
//! cache (default 64 MiB).
//!
//! Exit codes: 0 clean shutdown, 1 usage error, 10 protocol/socket
//! failure (the [`speedup_stacks::SimError::Protocol`] code).

use std::io::Write;
use std::process::ExitCode;

use service::server::{serve, ServeConfig};

const USAGE: &str = "usage: studyd [--addr HOST:PORT] [--workers N] [--cache-mib N]";

/// The conventional loopback port `repro submit` defaults to.
const DEFAULT_ADDR: &str = "127.0.0.1:7821";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = match ServeConfig::from_args(DEFAULT_ADDR, &args) {
        Ok(cfg) => cfg,
        Err(message) => {
            eprintln!("studyd: {message}");
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match serve(&cfg) {
        Ok(handle) => {
            // Flush explicitly: supervisors reading a pipe must see the
            // bound address before the first client connects.
            println!("studyd: listening on {}", handle.local_addr());
            std::io::stdout().flush().ok();
            handle.wait_for_shutdown();
            handle.stop();
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("studyd: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}
