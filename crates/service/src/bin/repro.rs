//! `repro` — regenerate every figure and table of the speedup-stacks
//! paper through the study registry, locally or via a `studyd` server.
//!
//! Usage:
//!
//! ```text
//! repro <study|all> [--scale F] [--format text|json|csv]
//!       [--threads N[,N...]] [--parallelism auto|serial|N] [--llc-mib N]
//!       [--retries N] [--deadline-cycles N] [--max-points N]
//!       [--journal PATH | --resume PATH]
//!       [--trace-out PATH | --trace-in PATH]
//! repro --list
//! repro serve [--addr HOST:PORT] [--workers N] [--cache-mib N]
//!       [--max-queued-units N] [--idle-timeout-ms N] [--cache-spill PATH]
//! repro submit <study> [--addr HOST:PORT | --fleet HOST:PORT,...]
//!       [--scale F] [--threads N[,N...]] [--llc-mib N]
//!       [--format text|json|csv] [--no-retry] [--no-hedge]
//!       [--no-local-fallback]
//! repro shutdown [--addr HOST:PORT] [--drain]
//! ```
//!
//! `--list` enumerates every registered study with its description.
//! Every study renders from the same structured `Report` value in all
//! three formats; `--format text` is bit-identical to the historical
//! figure output (pinned by the golden tests).
//!
//! `scaling` is the many-core study beyond the paper: speedup stacks
//! across a 1→128-core sweep of weak-scaling workloads and a
//! multi-program rate mix (`experiments::scaling`).
//!
//! `--scale` scales the workload sizes (default 1.0; use e.g. 0.25 for a
//! quick pass).
//!
//! Fault tolerance: `--retries` re-attempts a failed grid point (bounded,
//! backoff-free; default 0), `--deadline-cycles` arms a cooperative
//! per-point deadline in simulated cycles, and failed points degrade the
//! report instead of aborting the sweep. `--journal PATH` appends each
//! completed point to a crash-safe checkpoint file; after a crash or an
//! exhausted `--max-points` budget (exit code 8), `--resume PATH` skips
//! the journaled points, quarantines corrupt records, and finishes the
//! grid — the resumed report is bit-identical to an uninterrupted run.
//! Journaling is supported by the grid studies (`fig1`, `fig4`, `fig5`,
//! `fig6`).
//!
//! Tracing: `--trace-out PATH` captures every run's op streams into a
//! compact versioned binary trace (the report gains a provenance block
//! naming the file); `--trace-in PATH` replays a captured trace instead
//! of generating streams, reproducing the captured report byte for byte
//! (validate a file with the `tracecheck` binary). Tracing is supported
//! by the same grid studies as journaling.
//!
//! The service: `repro serve` runs a `studyd` server in the foreground
//! (see the `studyd` binary for the daemon's own flags); `repro submit`
//! sends a grid study to a running server, streams the per-point
//! results back, and reassembles them into output **byte-identical** to
//! the local run — repeated submissions are served from the server's
//! result cache without recomputation, which `--cache-spill PATH`
//! persists across restarts (even a `kill -9`). A `busy` server
//! (admission bound full) is retried with capped deterministic-jitter
//! backoff honoring its `retry-after-ms` hint; `--no-retry` fails fast
//! instead. `repro submit --fleet A,B` runs the federation coordinator
//! in-process: grid units shard across the listed backends with health
//! checks, failover from dead backends, hedged straggler retries
//! (`--no-hedge` disables) and local fallback when the whole fleet is
//! dead (`--no-local-fallback` rejects instead, exit 11) — the
//! reassembled report is still byte-identical to the local run.
//! `repro shutdown --drain` stops admission, lets in-flight
//! jobs finish, flushes the spill, and exits 0.
//!
//! Exit codes: 0 success, 1 usage error, then one per
//! [`SimError`] variant — 3 config, 4 stack, 5 journal, 6 point,
//! 7 engine, 8 interrupted-at-checkpoint, 9 trace, 10 protocol/service.

use std::io::Write;
use std::process::ExitCode;

use experiments::study::{find_study, registry, Study, StudyParams};
use experiments::JournalSpec;
use experiments::Parallelism;
use experiments::TraceSpec;
use service::chaos::ChaosPolicy;
use service::client::{Client, RetryPolicy};
use service::federation::{assemble_events, Federation, FleetConfig};
use service::server::{serve, ServeConfig, ShutdownMode};
use service::session::Dispatch;
use speedup_stacks::error::FederationError;
use speedup_stacks::SimError;

const USAGE: &str = "usage: repro <fig1..fig9|hwcost|regions|scaling|all> [--scale F] \
[--format text|json|csv] [--threads N[,N...]] [--parallelism auto|serial|N] [--llc-mib N]\n   \
        [--retries N] [--deadline-cycles N] [--max-points N] [--journal PATH | --resume PATH]\n   \
        [--trace-out PATH | --trace-in PATH]\n   \
or: repro --list\n   \
or: repro serve [--addr HOST:PORT] [--workers N] [--cache-mib N] [--max-queued-units N] \
[--idle-timeout-ms N] [--cache-spill PATH]\n   \
or: repro submit <study> [--addr HOST:PORT | --fleet HOST:PORT,HOST:PORT...] [--scale F] \
[--threads N[,N...]] [--llc-mib N]\n   \
        [--format text|json|csv] [--no-retry] [--no-hedge] [--no-local-fallback]\n   \
or: repro shutdown [--addr HOST:PORT] [--drain]";

/// The conventional loopback port shared with the `studyd` daemon.
const DEFAULT_ADDR: &str = "127.0.0.1:7821";

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
    Csv,
}

#[derive(Debug)]
enum Command {
    List,
    Run { which: String, format: Format },
}

struct Cli {
    command: Command,
    params: StudyParams,
}

fn parse_threads(spec: &str) -> Result<Vec<usize>, String> {
    let counts: Result<Vec<usize>, _> = spec.split(',').map(str::parse::<usize>).collect();
    match counts {
        Ok(c) if !c.is_empty() && c.iter().all(|&n| n >= 1) => Ok(c),
        _ => Err(format!(
            "--threads requires a comma-separated list of counts >= 1, got '{spec}'"
        )),
    }
}

fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut which: Option<String> = None;
    let mut list = false;
    let mut format = Format::Text;
    let mut params = StudyParams::default();
    let mut journal_flags = 0usize;
    let mut trace_flags = 0usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--list" => list = true,
            "--scale" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(v) if v.is_finite() && v > 0.0 => params.scale = v,
                _ => return Err("--scale requires a positive finite number".to_string()),
            },
            "--format" => match it.next().map(String::as_str) {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                Some("csv") => format = Format::Csv,
                _ => return Err("--format requires one of: text, json, csv".to_string()),
            },
            "--threads" => match it.next() {
                Some(spec) => params.threads = Some(parse_threads(spec)?),
                None => return Err("--threads requires a comma-separated list".to_string()),
            },
            "--parallelism" => match it.next().map(String::as_str) {
                Some("auto") => params.parallelism = Parallelism::Auto,
                Some("serial") => params.parallelism = Parallelism::Serial,
                // Zero workers is rejected here, uniformly with every other
                // bad mode, rather than silently clamped to 1 deep in the
                // pool (see `Parallelism::workers`).
                Some(n) => match n.parse::<usize>() {
                    Ok(w) if w >= 1 => params.parallelism = Parallelism::Workers(w),
                    _ => {
                        return Err(format!(
                            "--parallelism requires auto, serial or a worker count >= 1, \
                             got '{n}'"
                        ))
                    }
                },
                None => return Err("--parallelism requires a mode".to_string()),
            },
            "--llc-mib" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(mib) if mib >= 1 => params.llc_mib = Some(mib),
                _ => return Err("--llc-mib requires a capacity in MiB >= 1".to_string()),
            },
            "--retries" => match it.next().and_then(|v| v.parse::<u32>().ok()) {
                Some(n) => params.faults.retries = n,
                None => return Err("--retries requires a non-negative count".to_string()),
            },
            "--deadline-cycles" => match it.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(n) if n >= 1 => params.faults.deadline_cycles = Some(n),
                _ => return Err("--deadline-cycles requires a cycle count >= 1".to_string()),
            },
            "--max-points" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n >= 1 => params.max_points = Some(n),
                _ => return Err("--max-points requires a point budget >= 1".to_string()),
            },
            "--journal" => match it.next() {
                Some(path) if !path.starts_with("--") => {
                    journal_flags += 1;
                    params.journal = Some(JournalSpec {
                        path: path.clone(),
                        resume: false,
                    });
                }
                _ => return Err("--journal requires a file path".to_string()),
            },
            "--resume" => match it.next() {
                Some(path) if !path.starts_with("--") => {
                    journal_flags += 1;
                    params.journal = Some(JournalSpec {
                        path: path.clone(),
                        resume: true,
                    });
                }
                _ => return Err("--resume requires a journal file path".to_string()),
            },
            "--trace-out" => match it.next() {
                Some(path) if !path.starts_with("--") => {
                    trace_flags += 1;
                    params.trace = Some(TraceSpec {
                        path: path.clone(),
                        replay: false,
                    });
                }
                _ => return Err("--trace-out requires a file path".to_string()),
            },
            "--trace-in" => match it.next() {
                Some(path) if !path.starts_with("--") => {
                    trace_flags += 1;
                    params.trace = Some(TraceSpec {
                        path: path.clone(),
                        replay: true,
                    });
                }
                _ => return Err("--trace-in requires a trace file path".to_string()),
            },
            other if other.starts_with("--") => {
                return Err(format!("unknown option: {other}"));
            }
            other if which.is_none() => which = Some(other.to_string()),
            other => return Err(format!("unexpected argument: {other}")),
        }
    }
    if list {
        return Ok(Cli {
            command: Command::List,
            params,
        });
    }
    let Some(which) = which else {
        return Err("missing experiment name".to_string());
    };
    if which != "all" && find_study(&which).is_none() {
        return Err(format!("unknown experiment: {which}"));
    }
    if journal_flags > 1 {
        return Err("--journal and --resume are mutually exclusive (one journal per run)".into());
    }
    if params.journal.is_some() {
        let supported = which != "all"
            && find_study(&which).is_some_and(experiments::study::Study::supports_journal);
        if !supported {
            return Err(format!(
                "--journal/--resume is not supported by '{which}' \
                 (grid studies only: fig1, fig4, fig5, fig6)"
            ));
        }
    }
    if trace_flags > 1 {
        return Err("--trace-out and --trace-in are mutually exclusive (one trace per run)".into());
    }
    if params.trace.is_some() {
        let supported = which != "all"
            && find_study(&which).is_some_and(experiments::study::Study::supports_trace);
        if !supported {
            return Err(format!(
                "--trace-out/--trace-in is not supported by '{which}' \
                 (trace-capable studies only: fig1, fig4, fig5, fig6)"
            ));
        }
    }
    Ok(Cli {
        command: Command::Run { which, format },
        params,
    })
}

fn print_report(report: &speedup_stacks::report::Report, format: Format) {
    match format {
        Format::Text => println!("{}", report.to_text()),
        Format::Json => print!("{}", report.to_json()),
        Format::Csv => print!("{}", report.to_csv()),
    }
}

fn emit(study: &dyn Study, params: &StudyParams, format: Format) -> Result<(), SimError> {
    let report = study.run(params)?;
    print_report(&report, format);
    Ok(())
}

fn run_all(params: &StudyParams, format: Format) -> Result<(), SimError> {
    match format {
        Format::Text => {
            for study in registry() {
                println!("================================================================");
                emit(*study, params, format)?;
                println!();
            }
        }
        Format::Json => {
            print!("[");
            for (i, study) in registry().iter().enumerate() {
                if i > 0 {
                    print!(",");
                }
                emit(*study, params, format)?;
            }
            println!("]");
        }
        Format::Csv => {
            for (i, study) in registry().iter().enumerate() {
                if i > 0 {
                    println!();
                }
                emit(*study, params, format)?;
            }
        }
    }
    Ok(())
}

/// `repro serve`: a foreground `studyd` on the conventional port.
fn serve_main(args: &[String]) -> ExitCode {
    let mut cfg = match ServeConfig::from_args(DEFAULT_ADDR, args) {
        Ok(cfg) => cfg,
        Err(message) => {
            eprintln!("repro: serve: {message}");
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    // Chaos is deliberately env-only (STUDYD_CHAOS): fault injection is
    // for the chaos suite and CI smoke tests, not a user-facing flag.
    cfg.chaos = match ChaosPolicy::from_env() {
        Ok(chaos) => chaos,
        Err(message) => {
            eprintln!("repro: serve: STUDYD_CHAOS: {message}");
            return ExitCode::FAILURE;
        }
    };
    match serve(&cfg) {
        Ok(handle) => {
            // Flush explicitly: supervisors reading a pipe must see the
            // bound address before the first client connects.
            println!("studyd: listening on {}", handle.local_addr());
            std::io::stdout().flush().ok();
            if handle.wait_for_shutdown() == ShutdownMode::Drain {
                handle.drain();
            }
            handle.stop();
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("repro: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}

/// `repro submit`: send one grid study to a server, reassemble the
/// streamed points, and print output byte-identical to a local run.
fn submit_main(args: &[String]) -> ExitCode {
    let mut study: Option<String> = None;
    let mut addr = DEFAULT_ADDR.to_string();
    let mut format = Format::Text;
    let mut retry = true;
    let mut fleet: Option<FleetConfig> = None;
    let mut no_hedge = false;
    let mut no_local_fallback = false;
    let mut params = StudyParams::default();
    let mut it = args.iter();
    let usage_err = |message: String| {
        eprintln!("repro: submit: {message}");
        eprintln!("{USAGE}");
        ExitCode::FAILURE
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => match it.next() {
                Some(v) if !v.starts_with("--") => addr = v.clone(),
                _ => return usage_err("--addr requires HOST:PORT".to_string()),
            },
            "--scale" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(v) if v.is_finite() && v > 0.0 => params.scale = v,
                _ => return usage_err("--scale requires a positive finite number".to_string()),
            },
            "--threads" => match it.next() {
                Some(spec) => match parse_threads(spec) {
                    Ok(t) => params.threads = Some(t),
                    Err(e) => return usage_err(e),
                },
                None => return usage_err("--threads requires a comma-separated list".to_string()),
            },
            "--llc-mib" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(mib) if mib >= 1 => params.llc_mib = Some(mib),
                _ => return usage_err("--llc-mib requires a capacity in MiB >= 1".to_string()),
            },
            "--format" => match it.next().map(String::as_str) {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                Some("csv") => format = Format::Csv,
                _ => return usage_err("--format requires one of: text, json, csv".to_string()),
            },
            "--no-retry" => retry = false,
            "--fleet" => match it.next() {
                Some(list) if !list.starts_with("--") => {
                    let backends: Vec<String> = list
                        .split(',')
                        .map(str::trim)
                        .filter(|s| !s.is_empty())
                        .map(str::to_string)
                        .collect();
                    if backends.is_empty() {
                        let e: SimError = FederationError::BadOption {
                            what: "--fleet",
                            why: "no backend addresses given".to_string(),
                        }
                        .into();
                        eprintln!("repro: {e}");
                        return ExitCode::from(e.exit_code());
                    }
                    fleet = Some(FleetConfig {
                        backends,
                        ..FleetConfig::default()
                    });
                }
                _ => {
                    return usage_err("--fleet requires HOST:PORT[,HOST:PORT...]".to_string());
                }
            },
            "--no-hedge" => no_hedge = true,
            "--no-local-fallback" => no_local_fallback = true,
            other if other.starts_with("--") => {
                return usage_err(format!("unknown option: {other}"));
            }
            other if study.is_none() => study = Some(other.to_string()),
            other => return usage_err(format!("unexpected argument: {other}")),
        }
    }
    let Some(study) = study else {
        return usage_err("missing study name".to_string());
    };
    if find_study(&study).is_none() {
        return usage_err(format!("unknown experiment: {study}"));
    }

    if let Some(mut fleet) = fleet {
        if no_hedge {
            fleet.hedge_after_ms = None;
        }
        fleet.local_fallback = !no_local_fallback;
        return submit_fleet(&study, &params, fleet, format);
    }

    let policy = if retry {
        RetryPolicy::default()
    } else {
        RetryPolicy::none()
    };
    let outcome =
        Client::connect(&addr).and_then(|mut c| c.submit_with_retry(&study, &params, &policy));
    match outcome {
        Ok(outcome) => {
            eprintln!(
                "repro: job {}: {} computed, {} cached, {} coalesced, {} failed",
                outcome.job, outcome.computed, outcome.cached, outcome.coalesced, outcome.failed
            );
            print_report(&outcome.report, format);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("repro: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}

/// `repro submit --fleet`: run the federation coordinator in-process —
/// decompose the study locally, shard its units across the named
/// backends with health checks, failover and hedging, and reassemble a
/// report byte-identical to a local run. The fleet summary (per-backend
/// units served, failovers, hedge wins) goes to stderr with the job
/// line; the report goes to stdout.
fn submit_fleet(study: &str, params: &StudyParams, fleet: FleetConfig, format: Format) -> ExitCode {
    let Some(grid) = experiments::decompose::decompose(study, params) else {
        eprintln!("repro: submit: {study} is not a grid study (federation shards grids)");
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let run = || -> Result<(), SimError> {
        let fed = Federation::start(fleet)?;
        let submitted = fed.submit_units(grid.clone(), params.clone(), None);
        let (job, rx) = match submitted {
            Ok(ok) => ok,
            Err(e) => {
                let backends = fed.status().backends.len();
                fed.stop();
                return Err(match e {
                    service::scheduler::SubmitError::Unavailable { backends } => {
                        FederationError::AllBackendsDead { backends }.into()
                    }
                    other => FederationError::BadOption {
                        what: "--fleet",
                        why: format!("{other} ({backends} backend(s))"),
                    }
                    .into(),
                });
            }
        };
        let outcome = assemble_events(&grid, params, &rx);
        let summary = fed.status().summary();
        fed.stop();
        let outcome = outcome?;
        eprintln!(
            "repro: job {}: {} computed, {} cached, {} coalesced, {} failed",
            job, outcome.computed, outcome.cached, outcome.coalesced, outcome.failed
        );
        eprint!("{summary}");
        print_report(&outcome.report, format);
        Ok(())
    };
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("repro: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}

/// `repro shutdown`: ask a running server to exit through the protocol
/// — immediately, or with `--drain` after finishing in-flight work.
fn shutdown_main(args: &[String]) -> ExitCode {
    let mut addr = DEFAULT_ADDR.to_string();
    let mut drain = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => match it.next() {
                Some(v) if !v.starts_with("--") => addr = v.clone(),
                _ => {
                    eprintln!("repro: shutdown: --addr requires HOST:PORT");
                    eprintln!("{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--drain" => drain = true,
            other => {
                eprintln!("repro: shutdown: unexpected argument: {other}");
                eprintln!("{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    let outcome = Client::connect(&addr).and_then(|mut c| {
        if drain {
            c.shutdown_drain()
        } else {
            c.shutdown()
        }
    });
    match outcome {
        Ok(()) => {
            let how = if drain { "draining" } else { "shutting down" };
            eprintln!("repro: server at {addr} {how}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("repro: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("serve") => return serve_main(&args[1..]),
        Some("submit") => return submit_main(&args[1..]),
        Some("shutdown") => return shutdown_main(&args[1..]),
        _ => {}
    }
    let cli = match parse_args(&args) {
        Ok(cli) => cli,
        Err(message) => {
            eprintln!("repro: {message}");
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let run = match cli.command {
        Command::List => {
            for study in registry() {
                println!("{:<8} {}", study.name(), study.description());
            }
            Ok(())
        }
        Command::Run { which, format } => {
            if which == "all" {
                run_all(&cli.params, format)
            } else {
                let study = find_study(&which).expect("validated in parse_args");
                emit(study, &cli.params, format)
            }
        }
    };
    match run {
        Ok(()) => ExitCode::SUCCESS,
        // Each SimError variant exits with its own code (3..=10) so
        // scripts — and the CI resume smoke test, which expects 8 for
        // interrupted-at-checkpoint — can branch on the failure class.
        Err(e) => {
            eprintln!("repro: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}
