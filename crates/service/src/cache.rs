//! Content-addressed result cache with an LRU byte budget.
//!
//! Keys are built from the *canonical parameter string* of
//! [`experiments::journal::canonical`] — study, exact scale bits,
//! thread counts, LLC capacity — plus the unit kind and index
//! ([`point_key`] / [`ref_key`]). The 32-bit journal fingerprint alone
//! is deliberately **not** the key: a CRC collision would silently serve
//! another parameterization's results, and a cache must never fabricate
//! data. Values are the exact journal-record strings the sweep would
//! write ([`experiments::PointSummary::to_record`]), so a cache hit
//! reproduces a computed point bit for bit.
//!
//! Eviction is least-recently-used with lazy recency cleanup: every
//! access pushes a `(key, tick)` stamp onto a queue; eviction pops
//! stamps until it finds one that is still the keyed entry's latest.
//! All counters (hits, misses, insertions, evictions) are reported
//! through the `status` request.

use std::collections::{HashMap, VecDeque};
use std::sync::{Mutex, PoisonError};

/// A point-in-time snapshot of the cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Values stored (including replacements).
    pub insertions: u64,
    /// Entries evicted to stay under the byte budget.
    pub evictions: u64,
    /// Live entries.
    pub entries: usize,
    /// Live bytes (keys + values).
    pub bytes: usize,
    /// The byte budget.
    pub budget: usize,
}

/// The cache key for one grid point's result.
#[must_use]
pub fn point_key(canonical: &str, index: usize) -> String {
    format!("point:{canonical}:{index}")
}

/// The cache key for one profile's single-thread reference.
#[must_use]
pub fn ref_key(canonical: &str, pi: usize) -> String {
    format!("ref:{canonical}:{pi}")
}

#[derive(Debug)]
struct Entry {
    value: String,
    tick: u64,
}

#[derive(Debug)]
struct Inner {
    map: HashMap<String, Entry>,
    recency: VecDeque<(String, u64)>,
    tick: u64,
    bytes: usize,
    budget: usize,
    hits: u64,
    misses: u64,
    insertions: u64,
    evictions: u64,
}

/// A thread-safe LRU string cache with a byte budget.
#[derive(Debug)]
pub struct Cache {
    inner: Mutex<Inner>,
}

fn entry_bytes(key: &str, value: &str) -> usize {
    key.len() + value.len()
}

impl Cache {
    /// An empty cache bounded to `budget` bytes of keys + values.
    #[must_use]
    pub fn new(budget: usize) -> Cache {
        Cache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                recency: VecDeque::new(),
                tick: 0,
                bytes: 0,
                budget,
                hits: 0,
                misses: 0,
                insertions: 0,
                evictions: 0,
            }),
        }
    }

    /// Looks a value up, refreshing its recency. Counts a hit or miss.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<String> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(key) {
            Some(entry) => {
                entry.tick = tick;
                let value = entry.value.clone();
                inner.recency.push_back((key.to_string(), tick));
                inner.hits += 1;
                Some(value)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Stores a value (replacing any previous one under the key), then
    /// evicts least-recently-used entries until the budget holds. A
    /// value larger than the whole budget simply doesn't stay cached.
    pub fn put(&self, key: &str, value: &str) {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.tick += 1;
        let tick = inner.tick;
        let new_bytes = entry_bytes(key, value);
        if let Some(old) = inner.map.insert(
            key.to_string(),
            Entry {
                value: value.to_string(),
                tick,
            },
        ) {
            inner.bytes -= entry_bytes(key, &old.value);
        }
        inner.bytes += new_bytes;
        inner.insertions += 1;
        inner.recency.push_back((key.to_string(), tick));

        while inner.bytes > inner.budget {
            let Some((old_key, old_tick)) = inner.recency.pop_front() else {
                break;
            };
            let evict = inner.map.get(&old_key).is_some_and(|e| e.tick == old_tick);
            if evict {
                let old = inner.map.remove(&old_key).expect("checked above");
                inner.bytes -= entry_bytes(&old_key, &old.value);
                inner.evictions += 1;
            }
        }
        // Lazy-cleanup hygiene: drop stale recency stamps once they
        // outnumber live entries badly, so long-running servers don't
        // accumulate an unbounded stamp queue.
        if inner.recency.len() > inner.map.len() * 2 + 64 {
            let map = std::mem::take(&mut inner.map);
            inner
                .recency
                .retain(|(k, t)| map.get(k).is_some_and(|e| e.tick == *t));
            inner.map = map;
        }
    }

    /// Snapshot of the counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            insertions: inner.insertions,
            evictions: inner.evictions,
            entries: inner.map.len(),
            bytes: inner.bytes,
            budget: inner.budget,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_miss_and_replacement() {
        let c = Cache::new(1024);
        assert_eq!(c.get("a"), None);
        c.put("a", "1");
        assert_eq!(c.get("a").as_deref(), Some("1"));
        c.put("a", "22");
        assert_eq!(c.get("a").as_deref(), Some("22"));
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.insertions), (2, 1, 2));
        assert_eq!(s.entries, 1);
        assert_eq!(s.bytes, "a".len() + "22".len());
    }

    #[test]
    fn evicts_least_recently_used_first() {
        // Each entry is 10 bytes (5-byte key + 5-byte value); budget
        // holds three.
        let c = Cache::new(30);
        c.put("key-a", "val-a");
        c.put("key-b", "val-b");
        c.put("key-c", "val-c");
        // Touch a so b is the least recently used.
        assert!(c.get("key-a").is_some());
        c.put("key-d", "val-d");
        assert!(c.get("key-b").is_none(), "LRU entry evicted");
        assert!(c.get("key-a").is_some());
        assert!(c.get("key-c").is_some());
        assert!(c.get("key-d").is_some());
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn oversized_value_does_not_wedge_the_cache() {
        let c = Cache::new(10);
        c.put("k", &"x".repeat(100));
        assert_eq!(c.stats().entries, 0, "over-budget entry evicted");
        c.put("a", "1");
        assert!(c.get("a").is_some(), "cache still works");
    }

    #[test]
    fn keys_embed_canonical_identity() {
        let k = point_key("study=fig6;scale=3fb0000000000000;threads=-;llc=-", 7);
        assert!(k.starts_with("point:study=fig6"));
        assert!(k.ends_with(":7"));
        assert_ne!(ref_key("c", 1), point_key("c", 1), "kinds never collide");
    }
}
