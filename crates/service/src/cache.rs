//! Content-addressed result cache with an LRU byte budget.
//!
//! Keys are built from the *canonical parameter string* of
//! [`experiments::journal::canonical`] — study, exact scale bits,
//! thread counts, LLC capacity — plus the unit kind and index
//! ([`point_key`] / [`ref_key`]). The 32-bit journal fingerprint alone
//! is deliberately **not** the key: a CRC collision would silently serve
//! another parameterization's results, and a cache must never fabricate
//! data. Values are the exact journal-record strings the sweep would
//! write ([`experiments::PointSummary::to_record`]), so a cache hit
//! reproduces a computed point bit for bit.
//!
//! Eviction is least-recently-used with lazy recency cleanup: every
//! access pushes a `(key, tick)` stamp onto a queue; eviction pops
//! stamps until it finds one that is still the keyed entry's latest.
//! All counters (hits, misses, insertions, evictions) are reported
//! through the `status` request.
//!
//! With a [`crate::persist::SpillWriter`] attached, every insertion is
//! also appended write-through to the spill file, and entries recovered
//! on startup are fed back in through [`Cache::preload`] — so a
//! `kill -9` + restart serves warm resubmits without recompute. A
//! spill write failure disables persistence for the rest of the
//! process (reported once on stderr) rather than failing the job: the
//! cache's correctness never depends on the disk.

use std::collections::{HashMap, VecDeque};
use std::sync::{Mutex, PoisonError};

use speedup_stacks::error::JournalError;

use crate::persist::SpillWriter;

/// A point-in-time snapshot of the cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Values stored (including replacements).
    pub insertions: u64,
    /// Entries evicted to stay under the byte budget.
    pub evictions: u64,
    /// Live entries.
    pub entries: usize,
    /// Live bytes (keys + values).
    pub bytes: usize,
    /// The byte budget.
    pub budget: usize,
    /// Entries restored from the persistent spill on startup.
    pub loaded: u64,
    /// Corrupt spill records quarantined on startup (recomputed, never
    /// served).
    pub quarantined: u64,
    /// Entries appended to the persistent spill since startup.
    pub spilled: u64,
}

/// The cache key for one grid point's result.
#[must_use]
pub fn point_key(canonical: &str, index: usize) -> String {
    format!("point:{canonical}:{index}")
}

/// The cache key for one profile's single-thread reference.
#[must_use]
pub fn ref_key(canonical: &str, pi: usize) -> String {
    format!("ref:{canonical}:{pi}")
}

#[derive(Debug)]
struct Entry {
    value: String,
    tick: u64,
}

#[derive(Debug)]
struct Inner {
    map: HashMap<String, Entry>,
    recency: VecDeque<(String, u64)>,
    tick: u64,
    bytes: usize,
    budget: usize,
    hits: u64,
    misses: u64,
    insertions: u64,
    evictions: u64,
    spill: Option<SpillWriter>,
    loaded: u64,
    quarantined: u64,
    spilled: u64,
}

/// A thread-safe LRU string cache with a byte budget.
#[derive(Debug)]
pub struct Cache {
    inner: Mutex<Inner>,
}

fn entry_bytes(key: &str, value: &str) -> usize {
    key.len() + value.len()
}

impl Cache {
    /// An empty cache bounded to `budget` bytes of keys + values.
    #[must_use]
    pub fn new(budget: usize) -> Cache {
        Cache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                recency: VecDeque::new(),
                tick: 0,
                bytes: 0,
                budget,
                hits: 0,
                misses: 0,
                insertions: 0,
                evictions: 0,
                spill: None,
                loaded: 0,
                quarantined: 0,
                spilled: 0,
            }),
        }
    }

    /// Attaches the persistent spill: every subsequent [`Cache::put`]
    /// is appended write-through.
    pub fn set_spill(&self, writer: SpillWriter) {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.spill = Some(writer);
    }

    /// Feeds entries recovered from the spill back into the cache —
    /// through the normal LRU insertion (so an over-budget spill is
    /// clamped), but without re-appending them to the file and without
    /// counting them as fresh insertions. `quarantined` records the
    /// reload's corrupt-line count for the stats.
    pub fn preload(&self, entries: Vec<(String, String)>, quarantined: usize) {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.quarantined += quarantined as u64;
        for (key, value) in entries {
            insert_locked(&mut inner, &key, &value);
            inner.loaded += 1;
        }
    }

    /// Flushes and syncs the spill to durable storage (the drain-mode
    /// shutdown barrier). A no-op without an attached spill.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] when the sync fails.
    pub fn sync(&self) -> Result<(), JournalError> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        match inner.spill.as_mut() {
            Some(spill) => spill.sync(),
            None => Ok(()),
        }
    }

    /// Looks a value up, refreshing its recency. Counts a hit or miss.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<String> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(key) {
            Some(entry) => {
                entry.tick = tick;
                let value = entry.value.clone();
                inner.recency.push_back((key.to_string(), tick));
                inner.hits += 1;
                Some(value)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Stores a value (replacing any previous one under the key), then
    /// evicts least-recently-used entries until the budget holds. A
    /// value larger than the whole budget simply doesn't stay cached.
    /// With a spill attached, the entry is also appended write-through.
    pub fn put(&self, key: &str, value: &str) {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        insert_locked(&mut inner, key, value);
        inner.insertions += 1;
        if let Some(spill) = inner.spill.as_mut() {
            match spill.append(key, value) {
                Ok(()) => inner.spilled += 1,
                Err(e) => {
                    eprintln!(
                        "studyd: cache spill write failed, persistence disabled for this run: {e}"
                    );
                    inner.spill = None;
                }
            }
        }
    }

    /// Snapshot of the live entries in least-recently-used-first order
    /// (ascending access tick). Feeding this snapshot back through
    /// [`Cache::preload`] reconstructs the same entries *and* the same
    /// relative recency ranking, which is what makes a compacted spill
    /// reload to the identical cache state.
    #[must_use]
    pub fn live_entries(&self) -> Vec<(String, String)> {
        let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let mut items: Vec<(&String, &Entry)> = inner.map.iter().collect();
        items.sort_by_key(|(_, e)| e.tick);
        items
            .into_iter()
            .map(|(k, e)| (k.clone(), e.value.clone()))
            .collect()
    }

    /// Rewrites the attached spill file from the live LRU state (see
    /// [`SpillWriter::compact`]), dropping replaced and evicted records
    /// so the append-only file stops growing without bound. Returns
    /// `Ok(false)` when no spill is attached.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] when the rewrite fails; the original spill
    /// file is left untouched and appends continue against it.
    pub fn compact_spill(&self) -> Result<bool, JournalError> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let inner = &mut *inner;
        let Some(spill) = inner.spill.as_mut() else {
            return Ok(false);
        };
        let mut items: Vec<(&String, &Entry)> = inner.map.iter().collect();
        items.sort_by_key(|(_, e)| e.tick);
        let entries: Vec<(String, String)> = items
            .into_iter()
            .map(|(k, e)| (k.clone(), e.value.clone()))
            .collect();
        spill.compact(&entries)?;
        Ok(true)
    }

    /// Snapshot of the counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            insertions: inner.insertions,
            evictions: inner.evictions,
            entries: inner.map.len(),
            bytes: inner.bytes,
            budget: inner.budget,
            loaded: inner.loaded,
            quarantined: inner.quarantined,
            spilled: inner.spilled,
        }
    }
}

/// The raw LRU insertion (entry + recency + eviction + hygiene), shared
/// by fresh [`Cache::put`]s and spill [`Cache::preload`]s.
fn insert_locked(inner: &mut Inner, key: &str, value: &str) {
    inner.tick += 1;
    let tick = inner.tick;
    let new_bytes = entry_bytes(key, value);
    if let Some(old) = inner.map.insert(
        key.to_string(),
        Entry {
            value: value.to_string(),
            tick,
        },
    ) {
        inner.bytes -= entry_bytes(key, &old.value);
    }
    inner.bytes += new_bytes;
    inner.recency.push_back((key.to_string(), tick));

    while inner.bytes > inner.budget {
        let Some((old_key, old_tick)) = inner.recency.pop_front() else {
            break;
        };
        let evict = inner.map.get(&old_key).is_some_and(|e| e.tick == old_tick);
        if evict {
            let old = inner.map.remove(&old_key).expect("checked above");
            inner.bytes -= entry_bytes(&old_key, &old.value);
            inner.evictions += 1;
        }
    }
    // Lazy-cleanup hygiene: drop stale recency stamps once they
    // outnumber live entries badly, so long-running servers don't
    // accumulate an unbounded stamp queue.
    if inner.recency.len() > inner.map.len() * 2 + 64 {
        let map = std::mem::take(&mut inner.map);
        inner
            .recency
            .retain(|(k, t)| map.get(k).is_some_and(|e| e.tick == *t));
        inner.map = map;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_miss_and_replacement() {
        let c = Cache::new(1024);
        assert_eq!(c.get("a"), None);
        c.put("a", "1");
        assert_eq!(c.get("a").as_deref(), Some("1"));
        c.put("a", "22");
        assert_eq!(c.get("a").as_deref(), Some("22"));
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.insertions), (2, 1, 2));
        assert_eq!(s.entries, 1);
        assert_eq!(s.bytes, "a".len() + "22".len());
    }

    #[test]
    fn evicts_least_recently_used_first() {
        // Each entry is 10 bytes (5-byte key + 5-byte value); budget
        // holds three.
        let c = Cache::new(30);
        c.put("key-a", "val-a");
        c.put("key-b", "val-b");
        c.put("key-c", "val-c");
        // Touch a so b is the least recently used.
        assert!(c.get("key-a").is_some());
        c.put("key-d", "val-d");
        assert!(c.get("key-b").is_none(), "LRU entry evicted");
        assert!(c.get("key-a").is_some());
        assert!(c.get("key-c").is_some());
        assert!(c.get("key-d").is_some());
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn oversized_value_does_not_wedge_the_cache() {
        let c = Cache::new(10);
        c.put("k", &"x".repeat(100));
        assert_eq!(c.stats().entries, 0, "over-budget entry evicted");
        c.put("a", "1");
        assert!(c.get("a").is_some(), "cache still works");
    }

    #[test]
    fn spill_write_through_and_preload_round_trip() {
        let path = std::env::temp_dir().join(format!(
            "studyd-cache-spill-{}-roundtrip.ndjson",
            std::process::id()
        ));
        std::fs::remove_file(&path).ok();
        let opened = crate::persist::open(&path, None).unwrap();
        let c = Cache::new(1024);
        c.set_spill(opened.writer);
        c.put("point:c:0", "{\"a\": 1}");
        c.put("ref:c:0", "10 20");
        c.sync().unwrap();
        assert_eq!(c.stats().spilled, 2);

        // A fresh cache (a restarted daemon) recovers both entries.
        let reopened = crate::persist::open(&path, None).unwrap();
        let warm = Cache::new(1024);
        warm.preload(reopened.entries, reopened.quarantined);
        let s = warm.stats();
        assert_eq!((s.loaded, s.quarantined, s.insertions), (2, 0, 0));
        assert_eq!(warm.get("point:c:0").as_deref(), Some("{\"a\": 1}"));
        assert_eq!(warm.get("ref:c:0").as_deref(), Some("10 20"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compacted_spill_reloads_to_identical_cache_state() {
        let path = std::env::temp_dir().join(format!(
            "studyd-cache-spill-{}-compact.ndjson",
            std::process::id()
        ));
        std::fs::remove_file(&path).ok();
        let opened = crate::persist::open(&path, None).unwrap();
        let c = Cache::new(1024);
        c.set_spill(opened.writer);
        c.put("point:c:0", "first");
        c.put("point:c:1", "b");
        c.put("point:c:0", "replaced");
        c.put("ref:c:0", "10 20");
        // Shuffle recency so the compacted order is not insertion order.
        assert!(c.get("point:c:1").is_some());
        let live = c.live_entries();
        assert_eq!(live.len(), 3);
        assert_eq!(live.last().unwrap().0, "point:c:1", "most recent last");

        assert!(c.compact_spill().unwrap(), "spill attached");
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(
            content.lines().count(),
            1 + live.len(),
            "header + live entries only: replaced record dropped"
        );
        // Appends after compaction keep persisting.
        c.put("point:c:9", "late");

        // A restarted daemon reloads the identical live state, in the
        // identical recency order.
        let reopened = crate::persist::open(&path, None).unwrap();
        let warm = Cache::new(1024);
        warm.preload(reopened.entries, reopened.quarantined);
        let mut expect = live;
        expect.push(("point:c:9".to_string(), "late".to_string()));
        assert_eq!(warm.live_entries(), expect);
        assert_eq!(warm.get("point:c:0").as_deref(), Some("replaced"));

        let bare = Cache::new(64);
        assert!(!bare.compact_spill().unwrap(), "no spill → Ok(false)");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn keys_embed_canonical_identity() {
        let k = point_key("study=fig6;scale=3fb0000000000000;threads=-;llc=-", 7);
        assert!(k.starts_with("point:study=fig6"));
        assert!(k.ends_with(":7"));
        assert_ne!(ref_key("c", 1), point_key("c", 1), "kinds never collide");
    }
}
