//! Deterministic fault injection for the chaos suite.
//!
//! A [`ChaosPolicy`] names concrete faults by *position* — "panic while
//! executing the Nth work unit", "flip a bit in the Nth cache-spill
//! record" — so an injected failure lands at exactly the same place on
//! every run: the chaos tests assert on typed outcomes, never on
//! timing. The policy is off by default and costs two `Option` loads
//! per unit when disabled.
//!
//! Tests construct a policy programmatically (through
//! [`crate::server::ServeConfig`] or [`crate::scheduler::SchedOptions`]);
//! the `studyd` and `repro serve` binaries also honor the `STUDYD_CHAOS`
//! environment variable (`panic-unit=N`, `flip-spill=N`, `stall-unit=N`,
//! `exit-unit=N`, comma-joined) so CI and the federation suite can
//! inject faults into a real daemon process — including killing or
//! stalling one *specific* backend of a fleet deterministically.

/// Which deterministic faults to inject. Default: none.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChaosPolicy {
    /// Panic inside the worker executing the Nth scheduled unit
    /// (0-based, counted across all jobs since startup). Every retry of
    /// that unit panics too, so the unit exhausts its budget into a
    /// typed failure.
    pub panic_at_unit: Option<u64>,
    /// Corrupt the Nth data record (0-based, header excluded) as it is
    /// appended to the cache spill, simulating on-disk bit rot: the
    /// framing CRC no longer matches, so reload must quarantine it.
    pub flip_spill_record: Option<u64>,
    /// Stall the worker that claims the Nth scheduled unit forever (it
    /// parks until shutdown), simulating a wedged straggler backend: the
    /// unit never completes, but the daemon keeps answering control
    /// frames so only a hedge or failover can rescue the unit.
    pub stall_at_unit: Option<u64>,
    /// Kill the whole process (`exit(9)`, as abrupt as a `kill -9`) the
    /// moment a worker claims the Nth scheduled unit, simulating a
    /// backend dying mid-sweep with streams open.
    pub exit_at_unit: Option<u64>,
}

impl ChaosPolicy {
    /// Whether any fault is armed.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.panic_at_unit.is_some()
            || self.flip_spill_record.is_some()
            || self.stall_at_unit.is_some()
            || self.exit_at_unit.is_some()
    }

    /// Parses a `STUDYD_CHAOS`-style spec: comma-separated `key=N`
    /// pairs, e.g. `panic-unit=3,flip-spill=0`. Empty spec → default.
    ///
    /// # Errors
    ///
    /// A human-readable reason for a malformed spec.
    pub fn parse(spec: &str) -> Result<ChaosPolicy, String> {
        let mut policy = ChaosPolicy::default();
        for part in spec.split(',').filter(|s| !s.is_empty()) {
            let Some((key, value)) = part.split_once('=') else {
                return Err(format!("chaos spec '{part}' is not key=N"));
            };
            let n: u64 = value
                .parse()
                .map_err(|_| format!("chaos spec '{part}' needs an integer value"))?;
            match key {
                "panic-unit" => policy.panic_at_unit = Some(n),
                "flip-spill" => policy.flip_spill_record = Some(n),
                "stall-unit" => policy.stall_at_unit = Some(n),
                "exit-unit" => policy.exit_at_unit = Some(n),
                other => return Err(format!("unknown chaos fault '{other}'")),
            }
        }
        Ok(policy)
    }

    /// Reads the `STUDYD_CHAOS` environment variable (unset or empty →
    /// no faults; a malformed spec is an error, not a silent no-op —
    /// a typo must not quietly disarm a chaos run).
    ///
    /// # Errors
    ///
    /// The [`ChaosPolicy::parse`] reason.
    pub fn from_env() -> Result<ChaosPolicy, String> {
        match std::env::var("STUDYD_CHAOS") {
            Ok(spec) => Self::parse(&spec),
            Err(_) => Ok(ChaosPolicy::default()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_specs() {
        assert_eq!(ChaosPolicy::parse("").unwrap(), ChaosPolicy::default());
        let p = ChaosPolicy::parse("panic-unit=3,flip-spill=0").unwrap();
        assert_eq!(p.panic_at_unit, Some(3));
        assert_eq!(p.flip_spill_record, Some(0));
        assert!(p.is_active());
        assert!(!ChaosPolicy::default().is_active());
        let p = ChaosPolicy::parse("stall-unit=0,exit-unit=7").unwrap();
        assert_eq!(p.stall_at_unit, Some(0));
        assert_eq!(p.exit_at_unit, Some(7));
        assert!(p.is_active());
    }

    #[test]
    fn rejects_malformed_specs() {
        assert!(ChaosPolicy::parse("panic-unit").is_err());
        assert!(ChaosPolicy::parse("panic-unit=x").is_err());
        assert!(ChaosPolicy::parse("frobnicate=1").is_err());
    }
}
