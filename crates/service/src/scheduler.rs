//! The shared worker pool and fair job scheduler.
//!
//! Every connection's `submit` becomes a **job**: the study's grid
//! decomposed into per-point work units ([`experiments::decompose`]).
//! All jobs share one fixed pool of worker threads; the ready queues are
//! drained **round-robin across jobs**, so a 28-point `fig6` submission
//! cannot starve a 6-point `fig1` that arrived a moment later — each
//! scheduling decision takes one unit from the front job, then rotates
//! that job to the back.
//!
//! Units come in two kinds, with a dependency between them: a profile's
//! single-thread **reference** must complete before that profile's
//! **points** can run (a point's speedup is relative to it). The
//! scheduler queues one reference per profile, parks the profile's
//! points in a waiting list, and releases them when the reference
//! lands. A failed reference cascades: every waiting point fails with
//! the sweep's exact `"single-thread reference failed: …"` reason, so a
//! remote `Degraded` block matches a local one byte for byte.
//!
//! Results land in the content-addressed [`crate::cache`] as they are
//! computed, and cache hits at submit time are streamed back instantly
//! without touching the pool. Each unit runs in its own fault domain
//! (`catch_unwind` + the parameters' retry budget), mirroring
//! [`experiments::par::try_map_mode`] — a panicking point degrades its
//! job, never the server.

use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;

use experiments::decompose::GridStudy;
use experiments::runner::PointSummary;
use experiments::study::StudyParams;

use crate::cache::{point_key, ref_key, Cache};

/// One streamed event of a job's lifetime, in completion order.
#[derive(Debug)]
pub enum JobEvent {
    /// A grid point completed; `record` is the exact journal-record
    /// JSON of its [`PointSummary`].
    Point {
        /// Row-major grid index.
        index: usize,
        /// Served from the result cache without recomputation.
        cached: bool,
        /// Fault-domain attempts spent (1 = first try).
        attempts: u32,
        /// The point's `PointSummary::to_record()` JSON.
        record: String,
    },
    /// A grid point failed after exhausting its retry budget.
    Failed {
        /// Row-major grid index.
        index: usize,
        /// The sweep's label for the point (`"{benchmark} x{n}"`).
        label: String,
        /// Why the point failed (reference cascades included).
        reason: String,
        /// Fault-domain attempts spent.
        attempts: u32,
    },
    /// The job finished (all points resolved, or cancelled).
    Done {
        /// Points computed by the pool.
        computed: usize,
        /// Points served from the cache.
        cached: usize,
        /// Points that failed.
        failed: usize,
        /// The job was cancelled before completing.
        cancelled: bool,
    },
}

/// A schedulable unit of work.
#[derive(Debug, Clone, Copy)]
enum Unit {
    /// Profile `pi`'s single-thread reference.
    Ref(usize),
    /// Grid point `index`, unblocked by its profile's reference.
    Point { index: usize, st: (u64, u64) },
}

/// Lifecycle of one profile's single-thread reference within a job.
#[derive(Debug)]
enum RefState {
    /// Queued or running; these point indices wait on it.
    InFlight { waiting: Vec<usize> },
    /// Completed (waiting points have been released).
    Done,
    /// Failed; its waiting points have been cascaded.
    Failed,
}

struct Job {
    grid: Arc<GridStudy>,
    params: StudyParams,
    canonical: String,
    ready: VecDeque<Unit>,
    refs: HashMap<usize, RefState>,
    /// Points not yet resolved (neither streamed nor failed).
    outstanding: usize,
    /// Units currently executing on workers.
    in_flight: usize,
    cancelled: bool,
    computed: usize,
    cached: usize,
    failed: usize,
    tx: Sender<JobEvent>,
}

struct SchedState {
    jobs: HashMap<u64, Job>,
    /// Round-robin order. Invariant: a job id appears here exactly once
    /// iff its `ready` queue is non-empty.
    rr: VecDeque<u64>,
    next_job: u64,
    shutdown: bool,
    jobs_total: u64,
    points_computed: u64,
    points_cached: u64,
    points_failed: u64,
}

struct Shared {
    state: Mutex<SchedState>,
    cond: Condvar,
    cache: Arc<Cache>,
}

/// Counters and gauges reported through the `status` request.
#[derive(Debug, Clone, Copy)]
pub struct SchedulerStatus {
    /// Fixed worker-pool size.
    pub workers: usize,
    /// Jobs currently resolving points.
    pub jobs_active: usize,
    /// Jobs accepted since startup.
    pub jobs_total: u64,
    /// Work units queued but not yet executing.
    pub queued_units: usize,
    /// Points computed by the pool since startup.
    pub points_computed: u64,
    /// Points served from the cache since startup.
    pub points_cached: u64,
    /// Points failed since startup.
    pub points_failed: u64,
}

/// The shared worker pool: submit jobs, stream their events, observe
/// counters, stop cleanly.
pub struct Scheduler {
    shared: Arc<Shared>,
    handles: Mutex<Vec<JoinHandle<()>>>,
    workers: usize,
}

/// Local mirror of the sweep's panic renderer (private to
/// `experiments::par`): the common `&str`/`String` payloads as text.
fn panic_payload(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        format!("panicked: {s}")
    } else if let Some(s) = p.downcast_ref::<String>() {
        format!("panicked: {s}")
    } else {
        "panicked: (non-string payload)".to_string()
    }
}

/// One fault-isolated, bounded-retry run of `f`, mirroring
/// `try_map_mode`'s budget semantics: `retries` extra attempts after
/// the first. Returns the outcome and attempts spent.
fn attempt_with_retries<R>(
    retries: u32,
    f: impl Fn() -> Result<R, String>,
) -> (Result<R, String>, u32) {
    let mut attempts = 0u32;
    loop {
        attempts += 1;
        let outcome = match catch_unwind(AssertUnwindSafe(&f)) {
            Ok(r) => r,
            Err(p) => Err(panic_payload(p.as_ref())),
        };
        match outcome {
            Ok(r) => return (Ok(r), attempts),
            Err(_) if attempts <= retries => {}
            Err(e) => return (Err(e), attempts),
        }
    }
}

fn lock(shared: &Shared) -> std::sync::MutexGuard<'_, SchedState> {
    shared.state.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Scheduler {
    /// Starts a pool of `workers` threads (at least one).
    #[must_use]
    pub fn start(workers: usize, cache: Arc<Cache>) -> Scheduler {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(SchedState {
                jobs: HashMap::new(),
                rr: VecDeque::new(),
                next_job: 1,
                shutdown: false,
                jobs_total: 0,
                points_computed: 0,
                points_cached: 0,
                points_failed: 0,
            }),
            cond: Condvar::new(),
            cache,
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("studyd-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker thread")
            })
            .collect();
        Scheduler {
            shared,
            handles: Mutex::new(handles),
            workers,
        }
    }

    /// Submits a job: streams cache hits immediately, queues the rest
    /// on the pool. Returns the job id and its event stream; the
    /// receiver always ends with exactly one [`JobEvent::Done`].
    pub fn submit(&self, grid: GridStudy, params: StudyParams) -> (u64, Receiver<JobEvent>) {
        let canonical = experiments::journal::canonical(grid.study(), &params);
        let grid = Arc::new(grid);
        let (tx, rx) = channel();

        // Resolve cache hits before taking the scheduler lock: streaming
        // a warm job must not stall behind a busy pool.
        let mut cached = 0usize;
        let mut misses_by_profile: Vec<Vec<usize>> = vec![Vec::new(); grid.profiles().len()];
        for index in 0..grid.n_points() {
            match self.shared.cache.get(&point_key(&canonical, index)) {
                Some(record) => {
                    cached += 1;
                    tx.send(JobEvent::Point {
                        index,
                        cached: true,
                        attempts: 1,
                        record,
                    })
                    .ok();
                }
                None => {
                    let (pi, _) = grid.point(index);
                    misses_by_profile[pi].push(index);
                }
            }
        }

        let mut ready = VecDeque::new();
        let mut refs = HashMap::new();
        let mut outstanding = 0usize;
        for (pi, waiting) in misses_by_profile.into_iter().enumerate() {
            if waiting.is_empty() {
                continue;
            }
            outstanding += waiting.len();
            let cached_ref = self
                .shared
                .cache
                .get(&ref_key(&canonical, pi))
                .and_then(|v| parse_ref_value(&v));
            match cached_ref {
                Some(st) => {
                    refs.insert(pi, RefState::Done);
                    for index in waiting {
                        ready.push_back(Unit::Point { index, st });
                    }
                }
                None => {
                    ready.push_back(Unit::Ref(pi));
                    refs.insert(pi, RefState::InFlight { waiting });
                }
            }
        }

        let mut st = lock(&self.shared);
        let id = st.next_job;
        st.next_job += 1;
        st.jobs_total += 1;
        st.points_cached += cached as u64;
        if outstanding == 0 {
            // Fully warm: the job never touches the pool.
            tx.send(JobEvent::Done {
                computed: 0,
                cached,
                failed: 0,
                cancelled: false,
            })
            .ok();
            return (id, rx);
        }
        st.jobs.insert(
            id,
            Job {
                grid,
                params,
                canonical,
                ready,
                refs,
                outstanding,
                in_flight: 0,
                cancelled: false,
                computed: 0,
                cached,
                failed: 0,
                tx,
            },
        );
        st.rr.push_back(id);
        drop(st);
        self.shared.cond.notify_all();
        (id, rx)
    }

    /// Cancels a job: queued units are dropped, in-flight units finish
    /// (their results still land in the cache) without being streamed,
    /// and the stream ends with `Done { cancelled: true }`. `false` if
    /// the job is unknown or already finished.
    pub fn cancel(&self, id: u64) -> bool {
        let mut st = lock(&self.shared);
        let Some(job) = st.jobs.get_mut(&id) else {
            return false;
        };
        job.cancelled = true;
        let drained: Vec<Unit> = job.ready.drain(..).collect();
        for unit in drained {
            match unit {
                Unit::Ref(pi) => {
                    if let Some(RefState::InFlight { waiting }) = job.refs.remove(&pi) {
                        job.outstanding -= waiting.len();
                    }
                }
                Unit::Point { .. } => job.outstanding -= 1,
            }
        }
        st.rr.retain(|&j| j != id);
        finish_if_done(&mut st, id);
        true
    }

    /// Snapshot of the pool's counters.
    #[must_use]
    pub fn status(&self) -> SchedulerStatus {
        let st = lock(&self.shared);
        SchedulerStatus {
            workers: self.workers,
            jobs_active: st.jobs.len(),
            jobs_total: st.jobs_total,
            queued_units: st.jobs.values().map(|j| j.ready.len()).sum(),
            points_computed: st.points_computed,
            points_cached: st.points_cached,
            points_failed: st.points_failed,
        }
    }

    /// The result cache this pool writes through.
    #[must_use]
    pub fn cache(&self) -> &Cache {
        &self.shared.cache
    }

    /// Stops the pool: workers finish their current unit and exit.
    /// Queued units are abandoned (their jobs' streams simply end
    /// without a `Done`; sessions are torn down with the server).
    pub fn stop(&self) {
        lock(&self.shared).shutdown = true;
        self.shared.cond.notify_all();
        let handles: Vec<_> = self
            .handles
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .drain(..)
            .collect();
        for h in handles {
            h.join().ok();
        }
    }
}

fn parse_ref_value(v: &str) -> Option<(u64, u64)> {
    let mut it = v.split(' ');
    let cycles = it.next()?.parse().ok()?;
    let instructions = it.next()?.parse().ok()?;
    if it.next().is_some() {
        return None;
    }
    Some((cycles, instructions))
}

fn format_ref_value(st: (u64, u64)) -> String {
    format!("{} {}", st.0, st.1)
}

/// What a worker needs to execute one unit outside the lock.
struct Claim {
    id: u64,
    unit: Unit,
    grid: Arc<GridStudy>,
    params: StudyParams,
    canonical: String,
}

fn worker_loop(shared: &Shared) {
    loop {
        let claim = {
            let mut st = lock(shared);
            loop {
                if st.shutdown {
                    return;
                }
                if let Some(id) = st.rr.pop_front() {
                    let job = st.jobs.get_mut(&id).expect("rr entries are live jobs");
                    let unit = job.ready.pop_front().expect("rr entries have ready work");
                    if !job.ready.is_empty() {
                        st.rr.push_back(id);
                    }
                    let job = st.jobs.get_mut(&id).expect("still live");
                    job.in_flight += 1;
                    break Claim {
                        id,
                        unit,
                        grid: Arc::clone(&job.grid),
                        params: job.params.clone(),
                        canonical: job.canonical.clone(),
                    };
                }
                st = shared.cond.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
        };

        let retries = claim.params.faults.retries;
        match claim.unit {
            Unit::Ref(pi) => {
                let (outcome, attempts) = attempt_with_retries(retries, || {
                    claim.grid.compute_reference(&claim.params, pi)
                });
                if let Ok(st) = outcome {
                    shared
                        .cache
                        .put(&ref_key(&claim.canonical, pi), &format_ref_value(st));
                }
                let mut st = lock(shared);
                apply_ref(&mut st, claim.id, pi, outcome, attempts);
                drop(st);
                shared.cond.notify_all();
            }
            Unit::Point { index, st: stref } => {
                let (outcome, attempts) = attempt_with_retries(retries, || {
                    claim
                        .grid
                        .compute_point(&claim.params, index, stref)
                        .map(|s| s.to_record())
                });
                if let Ok(record) = &outcome {
                    shared
                        .cache
                        .put(&point_key(&claim.canonical, index), record);
                }
                let mut st = lock(shared);
                apply_point(&mut st, claim.id, index, outcome, attempts);
            }
        }
    }
}

fn apply_ref(
    st: &mut SchedState,
    id: u64,
    pi: usize,
    outcome: Result<(u64, u64), String>,
    attempts: u32,
) {
    let job = st.jobs.get_mut(&id).expect("in-flight jobs stay live");
    job.in_flight -= 1;
    let waiting = match job.refs.get_mut(&pi) {
        Some(RefState::InFlight { waiting }) => std::mem::take(waiting),
        _ => Vec::new(),
    };
    match outcome {
        Ok(stv) => {
            job.refs.insert(pi, RefState::Done);
            if job.cancelled {
                job.outstanding -= waiting.len();
            } else {
                let was_empty = job.ready.is_empty();
                for index in waiting {
                    job.ready.push_back(Unit::Point { index, st: stv });
                }
                if was_empty && !job.ready.is_empty() {
                    st.rr.push_back(id);
                }
            }
        }
        Err(reason) => {
            job.refs.insert(pi, RefState::Failed);
            let n = waiting.len();
            job.outstanding -= n;
            if !job.cancelled {
                for index in waiting {
                    job.tx
                        .send(JobEvent::Failed {
                            index,
                            label: job.grid.label(index),
                            reason: format!("single-thread reference failed: {reason}"),
                            attempts,
                        })
                        .ok();
                }
                job.failed += n;
                st.points_failed += n as u64;
            }
        }
    }
    finish_if_done(st, id);
}

fn apply_point(
    st: &mut SchedState,
    id: u64,
    index: usize,
    outcome: Result<String, String>,
    attempts: u32,
) {
    let job = st.jobs.get_mut(&id).expect("in-flight jobs stay live");
    job.in_flight -= 1;
    job.outstanding -= 1;
    if !job.cancelled {
        match outcome {
            Ok(record) => {
                job.computed += 1;
                st.points_computed += 1;
                let job = st.jobs.get_mut(&id).expect("still live");
                job.tx
                    .send(JobEvent::Point {
                        index,
                        cached: false,
                        attempts,
                        record,
                    })
                    .ok();
            }
            Err(reason) => {
                job.failed += 1;
                st.points_failed += 1;
                let job = st.jobs.get_mut(&id).expect("still live");
                job.tx
                    .send(JobEvent::Failed {
                        index,
                        label: job.grid.label(index),
                        reason,
                        attempts,
                    })
                    .ok();
            }
        }
    }
    finish_if_done(st, id);
}

fn finish_if_done(st: &mut SchedState, id: u64) {
    let done = st
        .jobs
        .get(&id)
        .is_some_and(|j| j.outstanding == 0 && j.in_flight == 0);
    if done {
        let job = st.jobs.remove(&id).expect("checked above");
        st.rr.retain(|&j| j != id);
        job.tx
            .send(JobEvent::Done {
                computed: job.computed,
                cached: job.cached,
                failed: job.failed,
                cancelled: job.cancelled,
            })
            .ok();
    }
}

/// Re-parse a streamed record into a [`PointSummary`] (used by tests
/// and the client's reassembly).
#[must_use]
pub fn record_to_summary(record: &str) -> Option<PointSummary> {
    let v = speedup_stacks::report::json::parse(record).ok()?;
    PointSummary::from_record(&v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(study: &str, params: &StudyParams) -> GridStudy {
        experiments::decompose::decompose(study, params).expect("grid study")
    }

    fn small_params() -> StudyParams {
        StudyParams {
            scale: 0.01,
            threads: Some(vec![2]),
            ..StudyParams::default()
        }
    }

    /// Drains a job's stream to completion, asserting the terminal Done.
    #[allow(clippy::type_complexity)]
    fn drain(rx: &Receiver<JobEvent>) -> (Vec<(usize, bool, String)>, usize, usize, usize, bool) {
        let mut points = Vec::new();
        loop {
            match rx.recv().expect("stream ends with Done") {
                JobEvent::Point {
                    index,
                    cached,
                    record,
                    ..
                } => points.push((index, cached, record)),
                JobEvent::Failed { .. } => points.push((usize::MAX, false, String::new())),
                JobEvent::Done {
                    computed,
                    cached,
                    failed,
                    cancelled,
                } => return (points, computed, cached, failed, cancelled),
            }
        }
    }

    #[test]
    fn cold_then_warm_submission() {
        let cache = Arc::new(Cache::new(64 * 1024 * 1024));
        let sched = Scheduler::start(2, Arc::clone(&cache));
        let params = small_params();
        let g = grid("fig1", &params);
        let n = g.n_points();

        let (_, rx) = sched.submit(g.clone(), params.clone());
        let (cold, computed, cached, failed, cancelled) = drain(&rx);
        assert_eq!((computed, cached, failed, cancelled), (n, 0, 0, false));
        assert_eq!(cold.len(), n);

        let (_, rx) = sched.submit(g, params);
        let (warm, computed, cached, failed, _) = drain(&rx);
        assert_eq!((computed, cached, failed), (0, n, 0));
        // Warm results are byte-identical records, served in index order.
        let mut cold_sorted = cold.clone();
        cold_sorted.sort_by_key(|(i, _, _)| *i);
        for (i, (index, was_cached, record)) in warm.iter().enumerate() {
            assert_eq!(*index, i);
            assert!(was_cached);
            assert_eq!(record, &cold_sorted[i].2, "point {i} record identical");
        }

        let s = sched.status();
        assert_eq!(s.points_computed, n as u64);
        assert_eq!(s.points_cached, n as u64);
        assert_eq!(s.jobs_total, 2);
        assert_eq!(s.jobs_active, 0);
        sched.stop();
    }

    #[test]
    fn distinct_params_do_not_share_cache_entries() {
        let cache = Arc::new(Cache::new(64 * 1024 * 1024));
        let sched = Scheduler::start(1, Arc::clone(&cache));
        let a = small_params();
        let b = StudyParams {
            scale: 0.02,
            ..small_params()
        };
        let (_, rx) = sched.submit(grid("fig1", &a), a.clone());
        drain(&rx);
        let (_, rx) = sched.submit(grid("fig1", &b), b.clone());
        let (_, computed, cached, _, _) = drain(&rx);
        assert_eq!(cached, 0, "different scale bits must miss");
        assert!(computed > 0);
        sched.stop();
    }

    #[test]
    fn cancel_unknown_job_is_false() {
        let sched = Scheduler::start(1, Arc::new(Cache::new(1024)));
        assert!(!sched.cancel(42));
        sched.stop();
    }

    #[test]
    fn streamed_records_parse_back() {
        let cache = Arc::new(Cache::new(64 * 1024 * 1024));
        let sched = Scheduler::start(2, cache);
        let params = small_params();
        let g = grid("fig5", &params);
        let (_, rx) = sched.submit(g, params);
        let (points, ..) = drain(&rx);
        for (_, _, record) in &points {
            assert!(record_to_summary(record).is_some(), "record round-trips");
        }
        sched.stop();
    }
}
