//! The shared worker pool and fair job scheduler.
//!
//! Every connection's `submit` becomes a **job**: the study's grid
//! decomposed into per-point work units ([`experiments::decompose`]).
//! All jobs share one fixed pool of worker threads; the ready queues are
//! drained **round-robin across jobs**, so a 28-point `fig6` submission
//! cannot starve a 6-point `fig1` that arrived a moment later — each
//! scheduling decision takes one unit from the front job, then rotates
//! that job to the back.
//!
//! Units come in two kinds, with a dependency between them: a profile's
//! single-thread **reference** must complete before that profile's
//! **points** can run (a point's speedup is relative to it). The
//! scheduler queues one reference per profile, parks the profile's
//! points in a waiting list, and releases them when the reference
//! lands. A failed reference cascades: every waiting point fails with
//! the sweep's exact `"single-thread reference failed: …"` reason, so a
//! remote `Degraded` block matches a local one byte for byte.
//!
//! # Coalescing
//!
//! Every unit a job *owns* (its queued references and points, parked or
//! ready) is registered in a global in-flight table keyed by the same
//! journal-canonical cache key the result cache uses. A later submit
//! whose unit is already in that table does not queue a duplicate: it
//! registers as a **waiter** and the single computation fans out to the
//! owner and every waiter when it lands — N identical concurrent cold
//! submits compute each unit exactly once, and all N streams carry
//! byte-identical records. Fan-out deliveries are tagged
//! [`PointSource::Coalesced`], distinct from [`PointSource::Cached`]
//! (resolved from the cache at submit time).
//!
//! Cancellation respects waiters: a cancelled job's stream ends
//! immediately with `Done { cancelled: true }`, its queued units that
//! nobody waits on are dropped, but any unit with subscribers keeps
//! computing — the job lingers invisibly (a "zombie") until its last
//! waiter-backed unit resolves, so cancelling one of N coalesced
//! submits never starves the other N-1.
//!
//! # Admission control and drain
//!
//! [`SchedOptions::max_queued_units`] bounds the queued backlog:
//! a submit that would add new units to a non-empty queue past the
//! bound is refused with [`SubmitError::Busy`], carrying a
//! deterministic `retry_after_ms` hint derived from the queue depth.
//! An idle queue always admits (a job larger than the bound must not
//! wedge forever), and warm or fully coalesced submits cost zero new
//! units, so they are admitted even when the queue is full.
//! [`Scheduler::begin_drain`] flips the scheduler into drain mode: all
//! new submits are refused with [`SubmitError::Draining`] while
//! in-flight jobs run to completion ([`Scheduler::wait_idle`] blocks
//! until they have).
//!
//! Results land in the content-addressed [`crate::cache`] as they are
//! computed, and cache hits at submit time are streamed back instantly
//! without touching the pool. Each unit runs in its own fault domain
//! (`catch_unwind` + the parameters' retry budget), mirroring
//! [`experiments::par::try_map_mode`] — a panicking point degrades its
//! job, never the server. The [`crate::chaos`] policy can force that
//! panic at a chosen unit to prove it.

use std::collections::{HashMap, HashSet, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;

use experiments::decompose::GridStudy;
use experiments::runner::PointSummary;
use experiments::study::StudyParams;

use crate::cache::{point_key, ref_key, Cache};
use crate::chaos::ChaosPolicy;

/// How a streamed point was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PointSource {
    /// Computed by one of this job's own scheduled units.
    Computed,
    /// Served from the result cache at submit time.
    Cached,
    /// Computed exactly once by another in-flight job and fanned out.
    Coalesced,
}

impl PointSource {
    /// The wire name used in `point` frames.
    #[must_use]
    pub fn wire_name(self) -> &'static str {
        match self {
            PointSource::Computed => "computed",
            PointSource::Cached => "cached",
            PointSource::Coalesced => "coalesced",
        }
    }

    /// Parses a wire name back (the client side of [`wire_name`]).
    ///
    /// [`wire_name`]: PointSource::wire_name
    #[must_use]
    pub fn from_wire(s: &str) -> Option<PointSource> {
        match s {
            "computed" => Some(PointSource::Computed),
            "cached" => Some(PointSource::Cached),
            "coalesced" => Some(PointSource::Coalesced),
            _ => None,
        }
    }
}

/// One streamed event of a job's lifetime, in completion order.
#[derive(Debug)]
pub enum JobEvent {
    /// A grid point completed; `record` is the exact journal-record
    /// JSON of its [`PointSummary`].
    Point {
        /// Row-major grid index.
        index: usize,
        /// How the point was satisfied.
        source: PointSource,
        /// Fault-domain attempts spent (1 = first try).
        attempts: u32,
        /// The point's `PointSummary::to_record()` JSON.
        record: String,
    },
    /// A grid point failed after exhausting its retry budget.
    Failed {
        /// Row-major grid index.
        index: usize,
        /// The sweep's label for the point (`"{benchmark} x{n}"`).
        label: String,
        /// Why the point failed (reference cascades included).
        reason: String,
        /// Fault-domain attempts spent.
        attempts: u32,
    },
    /// The job finished (all points resolved, or cancelled).
    Done {
        /// Points computed by this job's own units.
        computed: usize,
        /// Points served from the cache at submit time.
        cached: usize,
        /// Points fanned out from another job's in-flight units.
        coalesced: usize,
        /// Points that failed.
        failed: usize,
        /// The job was cancelled before completing.
        cancelled: bool,
    },
}

/// Why a submission was refused admission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// Admission control refused: the queued backlog is full.
    Busy {
        /// Units queued at the moment of refusal.
        queued: usize,
        /// The configured `max_queued_units` bound.
        limit: usize,
        /// Deterministic backoff hint derived from the queue depth.
        retry_after_ms: u64,
    },
    /// The scheduler is draining and admits no new work.
    Draining,
    /// The federated fleet has no live backend and local fallback is
    /// disabled. Only [`crate::federation::Federation`] admission
    /// returns this; the local scheduler never does.
    Unavailable {
        /// Backends configured in the fleet.
        backends: usize,
    },
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Busy {
                queued,
                limit,
                retry_after_ms,
            } => write!(
                f,
                "work queue full ({queued} units queued, limit {limit}); retry after {retry_after_ms} ms"
            ),
            SubmitError::Draining => f.write_str("server is draining and not admitting new work"),
            SubmitError::Unavailable { backends } => write!(
                f,
                "all {backends} fleet backend(s) are dead and local fallback is disabled"
            ),
        }
    }
}

/// A schedulable unit of work.
#[derive(Debug, Clone, Copy)]
enum Unit {
    /// Profile `pi`'s single-thread reference.
    Ref(usize),
    /// Grid point `index`, unblocked by its profile's reference.
    Point { index: usize, st: (u64, u64) },
}

/// Lifecycle of one profile's single-thread reference within a job.
#[derive(Debug)]
enum RefState {
    /// Queued or running; these point indices wait on it.
    InFlight { waiting: Vec<usize> },
    /// Completed (waiting points have been released).
    Done,
    /// Failed or abandoned; its waiting points have been resolved.
    Failed,
}

/// Registry entry for one unit currently queued or executing, keyed by
/// its cache key: the owning job plus subscriber jobs awaiting fan-out.
struct Inflight {
    owner: u64,
    /// `(job, point index)` for point keys; `(job, profile)` for refs.
    waiters: Vec<(u64, usize)>,
}

struct Job {
    grid: Arc<GridStudy>,
    params: StudyParams,
    canonical: String,
    ready: VecDeque<Unit>,
    refs: HashMap<usize, RefState>,
    /// Points not yet resolved (neither streamed nor failed).
    outstanding: usize,
    /// Units currently executing on workers.
    in_flight: usize,
    cancelled: bool,
    /// The terminal `Done` has already been streamed (early, at cancel).
    done_sent: bool,
    computed: usize,
    cached: usize,
    coalesced: usize,
    failed: usize,
    tx: Sender<JobEvent>,
}

struct SchedState {
    jobs: HashMap<u64, Job>,
    /// Round-robin order. Invariant: a job id appears here exactly once
    /// iff its `ready` queue is non-empty.
    rr: VecDeque<u64>,
    /// Units queued or executing, keyed by cache key (coalescing).
    inflight: HashMap<String, Inflight>,
    next_job: u64,
    shutdown: bool,
    draining: bool,
    jobs_total: u64,
    points_computed: u64,
    points_cached: u64,
    points_coalesced: u64,
    points_failed: u64,
    hedge_cancels: u64,
}

struct Shared {
    state: Mutex<SchedState>,
    cond: Condvar,
    cache: Arc<Cache>,
    chaos: ChaosPolicy,
    /// Units claimed since startup; drives `chaos.panic_at_unit`.
    chaos_units: AtomicU64,
}

/// Counters and gauges reported through the `status` request.
#[derive(Debug, Clone, Copy)]
pub struct SchedulerStatus {
    /// Fixed worker-pool size.
    pub workers: usize,
    /// Jobs currently resolving points.
    pub jobs_active: usize,
    /// Jobs accepted since startup.
    pub jobs_total: u64,
    /// Work units queued (ready or parked) but not yet executing.
    pub queued_units: usize,
    /// The admission-control bound on queued units (0 = unbounded).
    pub max_queued_units: usize,
    /// The scheduler is draining: no new work is admitted.
    pub draining: bool,
    /// Points computed by the pool since startup.
    pub points_computed: u64,
    /// Points served from the cache since startup.
    pub points_cached: u64,
    /// Points fanned out from coalesced in-flight units since startup.
    pub points_coalesced: u64,
    /// Points failed since startup.
    pub points_failed: u64,
    /// Jobs cancelled with the federation's `"hedge"` reason — this
    /// backend lost a hedged race and its duplicate work was reclaimed.
    pub hedge_cancels: u64,
}

/// Tuning knobs for [`Scheduler::start`].
#[derive(Debug, Clone, Default)]
pub struct SchedOptions {
    /// Admission-control bound on queued units (0 = unbounded).
    pub max_queued_units: usize,
    /// Deterministic fault injection (default: none).
    pub chaos: ChaosPolicy,
}

/// The shared worker pool: submit jobs, stream their events, observe
/// counters, stop cleanly.
pub struct Scheduler {
    shared: Arc<Shared>,
    handles: Mutex<Vec<JoinHandle<()>>>,
    workers: usize,
    max_queued: usize,
}

/// Local mirror of the sweep's panic renderer (private to
/// `experiments::par`): the common `&str`/`String` payloads as text.
fn panic_payload(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        format!("panicked: {s}")
    } else if let Some(s) = p.downcast_ref::<String>() {
        format!("panicked: {s}")
    } else {
        "panicked: (non-string payload)".to_string()
    }
}

/// One fault-isolated, bounded-retry run of `f`, mirroring
/// `try_map_mode`'s budget semantics: `retries` extra attempts after
/// the first. Returns the outcome and attempts spent.
fn attempt_with_retries<R>(
    retries: u32,
    f: impl Fn() -> Result<R, String>,
) -> (Result<R, String>, u32) {
    let mut attempts = 0u32;
    loop {
        attempts += 1;
        let outcome = match catch_unwind(AssertUnwindSafe(&f)) {
            Ok(r) => r,
            Err(p) => Err(panic_payload(p.as_ref())),
        };
        match outcome {
            Ok(r) => return (Ok(r), attempts),
            Err(_) if attempts <= retries => {}
            Err(e) => return (Err(e), attempts),
        }
    }
}

fn lock(shared: &Shared) -> std::sync::MutexGuard<'_, SchedState> {
    shared.state.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Units queued (ready) or parked behind a reference, across all jobs.
/// Executing units are excluded: the bound is on backlog, not capacity.
fn queued_units(st: &SchedState) -> usize {
    st.jobs
        .values()
        .map(|j| {
            j.ready.len()
                + j.refs
                    .values()
                    .map(|r| match r {
                        RefState::InFlight { waiting } => waiting.len(),
                        _ => 0,
                    })
                    .sum::<usize>()
        })
        .sum()
}

/// Deterministic backoff hint: ~25 ms per queued unit per worker,
/// clamped to a sane window. No randomness here — jitter is the
/// client's job, seeded on its side.
fn retry_after_hint(queued: usize, workers: usize) -> u64 {
    ((queued as u64).saturating_mul(25) / workers.max(1) as u64).clamp(25, 5_000)
}

/// How a submission plans to satisfy one profile's reference.
enum RefPlan {
    /// The reference value was already in the cache.
    CachedRef((u64, u64)),
    /// Another job owns the in-flight reference; subscribe to it.
    Subscribe,
    /// This job owns the reference and queues it.
    Own,
}

impl Scheduler {
    /// Starts a pool of `workers` threads (at least one).
    #[must_use]
    pub fn start(workers: usize, cache: Arc<Cache>, options: SchedOptions) -> Scheduler {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(SchedState {
                jobs: HashMap::new(),
                rr: VecDeque::new(),
                inflight: HashMap::new(),
                next_job: 1,
                shutdown: false,
                draining: false,
                jobs_total: 0,
                points_computed: 0,
                points_cached: 0,
                points_coalesced: 0,
                points_failed: 0,
                hedge_cancels: 0,
            }),
            cond: Condvar::new(),
            cache,
            chaos: options.chaos,
            chaos_units: AtomicU64::new(0),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("studyd-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker thread")
            })
            .collect();
        Scheduler {
            shared,
            handles: Mutex::new(handles),
            workers,
            max_queued: options.max_queued_units,
        }
    }

    /// Submits a job: streams cache hits immediately, coalesces onto
    /// in-flight units owned by other jobs, and queues only what
    /// remains. Returns the job id and its event stream; the receiver
    /// always ends with exactly one [`JobEvent::Done`].
    ///
    /// # Errors
    ///
    /// [`SubmitError::Busy`] when admission control refuses the new
    /// units, [`SubmitError::Draining`] once a drain has begun.
    pub fn submit(
        &self,
        grid: GridStudy,
        params: StudyParams,
    ) -> Result<(u64, Receiver<JobEvent>), SubmitError> {
        self.submit_units(grid, params, None)
    }

    /// Like [`Scheduler::submit`], but restricted to a subset of the
    /// grid's point indices — the federation coordinator's shard
    /// primitive. `None` schedules the full grid; indices are
    /// deduplicated and scheduled in ascending order, and only the
    /// references those points need are queued. Out-of-range indices
    /// must be rejected by the caller (the session validates them
    /// against `grid.n_points()`).
    ///
    /// # Errors
    ///
    /// [`SubmitError::Busy`] when admission control refuses the new
    /// units, [`SubmitError::Draining`] once a drain has begun.
    pub fn submit_units(
        &self,
        grid: GridStudy,
        params: StudyParams,
        units: Option<Vec<usize>>,
    ) -> Result<(u64, Receiver<JobEvent>), SubmitError> {
        let canonical = experiments::journal::canonical(grid.study(), &params);
        let grid = Arc::new(grid);
        let (tx, rx) = channel();
        let n = grid.n_points();
        let indices: Vec<usize> = match units {
            Some(mut subset) => {
                subset.sort_unstable();
                subset.dedup();
                subset
            }
            None => (0..n).collect(),
        };

        // Classify every point under the scheduler lock, so the
        // decision (cache hit / coalesce / own) is atomic with waiter
        // registration — two racing identical submits cannot both
        // decide to own the same unit.
        let mut st = lock(&self.shared);
        if st.draining {
            return Err(SubmitError::Draining);
        }
        let mut hits: Vec<(usize, String)> = Vec::new();
        let mut coalesce: Vec<usize> = Vec::new();
        let mut owned_by_profile: Vec<Vec<usize>> = vec![Vec::new(); grid.profiles().len()];
        let mut owned_points = 0usize;
        for index in indices {
            let key = point_key(&canonical, index);
            if let Some(record) = self.shared.cache.get(&key) {
                hits.push((index, record));
            } else if st.inflight.contains_key(&key) {
                coalesce.push(index);
            } else {
                let (pi, _) = grid.point(index);
                owned_by_profile[pi].push(index);
                owned_points += 1;
            }
        }
        let mut plans: Vec<(usize, RefPlan, Vec<usize>)> = Vec::new();
        let mut new_units = owned_points;
        for (pi, waiting) in owned_by_profile.into_iter().enumerate() {
            if waiting.is_empty() {
                continue;
            }
            let rkey = ref_key(&canonical, pi);
            let cached_ref = self
                .shared
                .cache
                .get(&rkey)
                .and_then(|v| parse_ref_value(&v));
            let plan = if let Some(stv) = cached_ref {
                RefPlan::CachedRef(stv)
            } else if st.inflight.contains_key(&rkey) {
                RefPlan::Subscribe
            } else {
                new_units += 1;
                RefPlan::Own
            };
            plans.push((pi, plan, waiting));
        }

        // Admission control (see the module docs for the idle-queue and
        // zero-new-unit exemptions).
        if self.max_queued > 0 && new_units > 0 {
            let queued = queued_units(&st);
            if queued > 0 && queued + new_units > self.max_queued {
                return Err(SubmitError::Busy {
                    queued,
                    limit: self.max_queued,
                    retry_after_ms: retry_after_hint(queued, self.workers),
                });
            }
        }

        let id = st.next_job;
        st.next_job += 1;
        st.jobs_total += 1;
        st.points_cached += hits.len() as u64;
        let cached = hits.len();
        for (index, record) in hits {
            tx.send(JobEvent::Point {
                index,
                source: PointSource::Cached,
                attempts: 1,
                record,
            })
            .ok();
        }
        let outstanding = coalesce.len() + owned_points;
        if outstanding == 0 {
            // Fully warm: the job never touches the pool.
            tx.send(JobEvent::Done {
                computed: 0,
                cached,
                coalesced: 0,
                failed: 0,
                cancelled: false,
            })
            .ok();
            return Ok((id, rx));
        }
        for &index in &coalesce {
            st.inflight
                .get_mut(&point_key(&canonical, index))
                .expect("classified as in-flight under this lock")
                .waiters
                .push((id, index));
        }
        let mut ready = VecDeque::new();
        let mut refs = HashMap::new();
        for (pi, plan, waiting) in plans {
            for &index in &waiting {
                st.inflight.insert(
                    point_key(&canonical, index),
                    Inflight {
                        owner: id,
                        waiters: Vec::new(),
                    },
                );
            }
            match plan {
                RefPlan::CachedRef(stv) => {
                    refs.insert(pi, RefState::Done);
                    for index in waiting {
                        ready.push_back(Unit::Point { index, st: stv });
                    }
                }
                RefPlan::Subscribe => {
                    st.inflight
                        .get_mut(&ref_key(&canonical, pi))
                        .expect("classified as in-flight under this lock")
                        .waiters
                        .push((id, pi));
                    refs.insert(pi, RefState::InFlight { waiting });
                }
                RefPlan::Own => {
                    st.inflight.insert(
                        ref_key(&canonical, pi),
                        Inflight {
                            owner: id,
                            waiters: Vec::new(),
                        },
                    );
                    ready.push_back(Unit::Ref(pi));
                    refs.insert(pi, RefState::InFlight { waiting });
                }
            }
        }
        let has_ready = !ready.is_empty();
        st.jobs.insert(
            id,
            Job {
                grid,
                params,
                canonical,
                ready,
                refs,
                outstanding,
                in_flight: 0,
                cancelled: false,
                done_sent: false,
                computed: 0,
                cached,
                coalesced: 0,
                failed: 0,
                tx,
            },
        );
        if has_ready {
            st.rr.push_back(id);
        }
        drop(st);
        self.shared.cond.notify_all();
        Ok((id, rx))
    }

    /// Cancels a job. The stream ends immediately with
    /// `Done { cancelled: true }`; queued units nobody else waits on
    /// are dropped; units with coalesced subscribers (and units already
    /// executing) still complete — their results land in the cache and
    /// fan out to the waiters, never to the cancelled stream. Returns
    /// `false` if the job is unknown or already finished.
    pub fn cancel(&self, id: u64) -> bool {
        self.cancel_with_reason(id, false)
    }

    /// [`Scheduler::cancel`] with the cancellation's provenance: `hedge`
    /// marks the federation reclaiming a lost hedged race, counted in
    /// [`SchedulerStatus::hedge_cancels`] (only when this call actually
    /// transitions a live job to cancelled).
    pub fn cancel_with_reason(&self, id: u64, hedge: bool) -> bool {
        let mut st = lock(&self.shared);
        if !st.jobs.contains_key(&id) {
            return false;
        }
        {
            let job = st.jobs.get_mut(&id).expect("checked above");
            if job.cancelled {
                return true; // idempotent: already a zombie
            }
            job.cancelled = true;
        }
        if hedge {
            st.hedge_cancels += 1;
        }
        let (canonical, drained): (String, Vec<Unit>) = {
            let job = st.jobs.get_mut(&id).expect("checked above");
            (job.canonical.clone(), job.ready.drain(..).collect())
        };
        let mut keep: VecDeque<Unit> = VecDeque::new();
        let mut ready_refs: HashSet<usize> = HashSet::new();
        let mut dropped_points = 0usize;
        for unit in drained {
            match unit {
                Unit::Point { index, st: stv } => {
                    let key = point_key(&canonical, index);
                    let has_waiters = st.inflight.get(&key).is_some_and(|e| !e.waiters.is_empty());
                    if has_waiters {
                        keep.push_back(Unit::Point { index, st: stv });
                    } else {
                        st.inflight.remove(&key);
                        dropped_points += 1;
                    }
                }
                Unit::Ref(pi) => {
                    ready_refs.insert(pi);
                }
            }
        }
        // References need a second look: parked points without waiters
        // are dropped; a queued reference survives only if it still has
        // dependents (its own waiters, or surviving parked points).
        let mut refs = std::mem::take(&mut st.jobs.get_mut(&id).expect("checked above").refs);
        for (pi, state) in &mut refs {
            let RefState::InFlight { waiting } = state else {
                continue;
            };
            waiting.retain(|&index| {
                let key = point_key(&canonical, index);
                let keep_point = st.inflight.get(&key).is_some_and(|e| !e.waiters.is_empty());
                if !keep_point {
                    st.inflight.remove(&key);
                    dropped_points += 1;
                }
                keep_point
            });
            let rkey = ref_key(&canonical, *pi);
            let owns = st.inflight.get(&rkey).is_some_and(|e| e.owner == id);
            let ref_has_waiters = st
                .inflight
                .get(&rkey)
                .is_some_and(|e| !e.waiters.is_empty());
            if ready_refs.contains(pi) {
                // Queued (not yet executing) and owned by this job.
                if waiting.is_empty() && !ref_has_waiters {
                    st.inflight.remove(&rkey);
                    *state = RefState::Failed;
                } else {
                    keep.push_back(Unit::Ref(*pi));
                }
            } else if !owns && waiting.is_empty() {
                // Subscribed to another job's reference with no parked
                // points left: unsubscribe.
                if let Some(e) = st.inflight.get_mut(&rkey) {
                    e.waiters.retain(|&(j, _)| j != id);
                }
                *state = RefState::Failed;
            }
            // Owned and executing: apply_ref handles the trimmed list.
        }
        {
            let job = st.jobs.get_mut(&id).expect("checked above");
            job.refs = refs;
            job.ready = keep;
            job.outstanding -= dropped_points;
            if !job.done_sent {
                job.done_sent = true;
                job.tx
                    .send(JobEvent::Done {
                        computed: job.computed,
                        cached: job.cached,
                        coalesced: job.coalesced,
                        failed: job.failed,
                        cancelled: true,
                    })
                    .ok();
            }
        }
        let keep_rr = !st.jobs.get(&id).expect("checked above").ready.is_empty();
        st.rr.retain(|&j| j != id);
        if keep_rr {
            st.rr.push_back(id);
        }
        finish_if_done(&mut st, id);
        drop(st);
        self.shared.cond.notify_all();
        true
    }

    /// Stops admitting new work. In-flight jobs run to completion;
    /// every subsequent [`Scheduler::submit`] returns
    /// [`SubmitError::Draining`].
    pub fn begin_drain(&self) {
        lock(&self.shared).draining = true;
        self.shared.cond.notify_all();
    }

    /// Whether [`Scheduler::begin_drain`] has been called.
    #[must_use]
    pub fn is_draining(&self) -> bool {
        lock(&self.shared).draining
    }

    /// Blocks until no job remains (drain-mode shutdown barrier).
    pub fn wait_idle(&self) {
        let mut st = lock(&self.shared);
        while !st.jobs.is_empty() {
            st = self
                .shared
                .cond
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Snapshot of the pool's counters.
    #[must_use]
    pub fn status(&self) -> SchedulerStatus {
        let st = lock(&self.shared);
        SchedulerStatus {
            workers: self.workers,
            jobs_active: st.jobs.len(),
            jobs_total: st.jobs_total,
            queued_units: queued_units(&st),
            max_queued_units: self.max_queued,
            draining: st.draining,
            points_computed: st.points_computed,
            points_cached: st.points_cached,
            points_coalesced: st.points_coalesced,
            points_failed: st.points_failed,
            hedge_cancels: st.hedge_cancels,
        }
    }

    /// The result cache this pool writes through.
    #[must_use]
    pub fn cache(&self) -> &Cache {
        &self.shared.cache
    }

    /// Stops the pool: workers finish their current unit and exit.
    /// Queued units are abandoned (their jobs' streams simply end
    /// without a `Done`; sessions are torn down with the server).
    pub fn stop(&self) {
        lock(&self.shared).shutdown = true;
        self.shared.cond.notify_all();
        let handles: Vec<_> = self
            .handles
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .drain(..)
            .collect();
        for h in handles {
            h.join().ok();
        }
    }
}

fn parse_ref_value(v: &str) -> Option<(u64, u64)> {
    let mut it = v.split(' ');
    let cycles = it.next()?.parse().ok()?;
    let instructions = it.next()?.parse().ok()?;
    if it.next().is_some() {
        return None;
    }
    Some((cycles, instructions))
}

fn format_ref_value(st: (u64, u64)) -> String {
    format!("{} {}", st.0, st.1)
}

/// What a worker needs to execute one unit outside the lock.
struct Claim {
    id: u64,
    unit: Unit,
    grid: Arc<GridStudy>,
    params: StudyParams,
    canonical: String,
}

fn worker_loop(shared: &Shared) {
    loop {
        let claim = {
            let mut st = lock(shared);
            loop {
                if st.shutdown {
                    return;
                }
                if let Some(id) = st.rr.pop_front() {
                    let job = st.jobs.get_mut(&id).expect("rr entries are live jobs");
                    let unit = job.ready.pop_front().expect("rr entries have ready work");
                    if !job.ready.is_empty() {
                        st.rr.push_back(id);
                    }
                    let job = st.jobs.get_mut(&id).expect("still live");
                    job.in_flight += 1;
                    break Claim {
                        id,
                        unit,
                        grid: Arc::clone(&job.grid),
                        params: job.params.clone(),
                        canonical: job.canonical.clone(),
                    };
                }
                st = shared.cond.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
        };

        let retries = claim.params.faults.retries;
        let unit_no = shared.chaos_units.fetch_add(1, Ordering::Relaxed);
        if shared.chaos.exit_at_unit == Some(unit_no) {
            // Chaos: die as abruptly as a kill -9 — no drain, no flush,
            // streams cut mid-frame. (Only ever reached in a dedicated
            // chaos child process, never an in-process test scheduler.)
            std::process::exit(9);
        }
        if shared.chaos.stall_at_unit == Some(unit_no) {
            // Chaos: wedge this worker forever (until shutdown), holding
            // its claimed unit — the straggler a hedge must race around.
            let mut st = lock(shared);
            while !st.shutdown {
                st = shared.cond.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
            return;
        }
        let chaos_panic = shared.chaos.panic_at_unit == Some(unit_no);
        match claim.unit {
            Unit::Ref(pi) => {
                let (outcome, attempts) = attempt_with_retries(retries, || {
                    assert!(!chaos_panic, "chaos: injected panic at unit {unit_no}");
                    claim.grid.compute_reference(&claim.params, pi)
                });
                if let Ok(st) = outcome {
                    shared
                        .cache
                        .put(&ref_key(&claim.canonical, pi), &format_ref_value(st));
                }
                let mut st = lock(shared);
                apply_ref(&mut st, claim.id, &claim.canonical, pi, outcome, attempts);
                drop(st);
                shared.cond.notify_all();
            }
            Unit::Point { index, st: stref } => {
                let (outcome, attempts) = attempt_with_retries(retries, || {
                    assert!(!chaos_panic, "chaos: injected panic at unit {unit_no}");
                    claim
                        .grid
                        .compute_point(&claim.params, index, stref)
                        .map(|s| s.to_record())
                });
                if let Ok(record) = &outcome {
                    shared
                        .cache
                        .put(&point_key(&claim.canonical, index), record);
                }
                let mut st = lock(shared);
                apply_point(
                    &mut st,
                    claim.id,
                    &claim.canonical,
                    index,
                    outcome,
                    attempts,
                );
                drop(st);
                shared.cond.notify_all();
            }
        }
    }
}

/// Resolves a completed reference for its owner and every subscribed
/// job: release parked points on success, cascade the sweep's exact
/// failure reason otherwise.
fn apply_ref(
    st: &mut SchedState,
    id: u64,
    canonical: &str,
    pi: usize,
    outcome: Result<(u64, u64), String>,
    attempts: u32,
) {
    if let Some(job) = st.jobs.get_mut(&id) {
        job.in_flight -= 1;
    }
    let ref_waiters = st
        .inflight
        .remove(&ref_key(canonical, pi))
        .map_or_else(Vec::new, |e| e.waiters);
    let mut subscribers = Vec::with_capacity(1 + ref_waiters.len());
    subscribers.push(id);
    subscribers.extend(ref_waiters.into_iter().map(|(j, _)| j));
    match outcome {
        Ok(stv) => {
            for j in subscribers {
                release_ref_points(st, j, pi, stv);
                finish_if_done(st, j);
            }
        }
        Err(reason) => {
            let reason = format!("single-thread reference failed: {reason}");
            for j in subscribers {
                fail_ref_points(st, j, canonical, pi, &reason, attempts);
                finish_if_done(st, j);
            }
        }
    }
}

/// Moves a job's parked points for profile `pi` onto its ready queue.
fn release_ref_points(st: &mut SchedState, id: u64, pi: usize, stv: (u64, u64)) {
    let Some(job) = st.jobs.get_mut(&id) else {
        return;
    };
    let waiting = match job.refs.get_mut(&pi) {
        Some(RefState::InFlight { waiting }) => std::mem::take(waiting),
        _ => Vec::new(),
    };
    job.refs.insert(pi, RefState::Done);
    if waiting.is_empty() {
        return;
    }
    let was_empty = job.ready.is_empty();
    for index in waiting {
        job.ready.push_back(Unit::Point { index, st: stv });
    }
    if was_empty {
        st.rr.push_back(id);
    }
}

/// Cascades a failed reference onto a job's parked points (and onto
/// their own coalesced waiters).
fn fail_ref_points(
    st: &mut SchedState,
    id: u64,
    canonical: &str,
    pi: usize,
    reason: &str,
    attempts: u32,
) {
    let waiting = {
        let Some(job) = st.jobs.get_mut(&id) else {
            return;
        };
        let waiting = match job.refs.get_mut(&pi) {
            Some(RefState::InFlight { waiting }) => std::mem::take(waiting),
            _ => Vec::new(),
        };
        job.refs.insert(pi, RefState::Failed);
        waiting
    };
    for index in waiting {
        let point_waiters = st
            .inflight
            .remove(&point_key(canonical, index))
            .map_or_else(Vec::new, |e| e.waiters);
        deliver_failed(st, id, index, reason, attempts);
        for (wj, windex) in point_waiters {
            deliver_failed(st, wj, windex, reason, attempts);
            finish_if_done(st, wj);
        }
    }
}

/// Resolves a completed point for its owner and fans it out to every
/// coalesced waiter.
fn apply_point(
    st: &mut SchedState,
    id: u64,
    canonical: &str,
    index: usize,
    outcome: Result<String, String>,
    attempts: u32,
) {
    if let Some(job) = st.jobs.get_mut(&id) {
        job.in_flight -= 1;
    }
    let waiters = st
        .inflight
        .remove(&point_key(canonical, index))
        .map_or_else(Vec::new, |e| e.waiters);
    match outcome {
        Ok(record) => {
            // Count the computation even if the owner was cancelled:
            // the work happened and the result is cached.
            st.points_computed += 1;
            deliver_point(st, id, index, PointSource::Computed, attempts, &record);
            for (wj, windex) in waiters {
                deliver_point(st, wj, windex, PointSource::Coalesced, attempts, &record);
                finish_if_done(st, wj);
            }
        }
        Err(reason) => {
            deliver_failed(st, id, index, &reason, attempts);
            for (wj, windex) in waiters {
                deliver_failed(st, wj, windex, &reason, attempts);
                finish_if_done(st, wj);
            }
        }
    }
    finish_if_done(st, id);
}

/// Streams one resolved point to a job (suppressed after cancel).
fn deliver_point(
    st: &mut SchedState,
    id: u64,
    index: usize,
    source: PointSource,
    attempts: u32,
    record: &str,
) {
    let Some(job) = st.jobs.get_mut(&id) else {
        return;
    };
    job.outstanding -= 1;
    if job.cancelled {
        return;
    }
    match source {
        PointSource::Computed => job.computed += 1,
        PointSource::Cached => job.cached += 1,
        PointSource::Coalesced => {
            job.coalesced += 1;
            st.points_coalesced += 1;
        }
    }
    job.tx
        .send(JobEvent::Point {
            index,
            source,
            attempts,
            record: record.to_string(),
        })
        .ok();
}

/// Streams one failed point to a job (suppressed after cancel).
fn deliver_failed(st: &mut SchedState, id: u64, index: usize, reason: &str, attempts: u32) {
    let Some(job) = st.jobs.get_mut(&id) else {
        return;
    };
    job.outstanding -= 1;
    if job.cancelled {
        return;
    }
    job.failed += 1;
    st.points_failed += 1;
    let job = st.jobs.get_mut(&id).expect("still live");
    job.tx
        .send(JobEvent::Failed {
            index,
            label: job.grid.label(index),
            reason: reason.to_string(),
            attempts,
        })
        .ok();
}

fn finish_if_done(st: &mut SchedState, id: u64) {
    let done = st
        .jobs
        .get(&id)
        .is_some_and(|j| j.outstanding == 0 && j.in_flight == 0);
    if done {
        let job = st.jobs.remove(&id).expect("checked above");
        st.rr.retain(|&j| j != id);
        if !job.done_sent {
            job.tx
                .send(JobEvent::Done {
                    computed: job.computed,
                    cached: job.cached,
                    coalesced: job.coalesced,
                    failed: job.failed,
                    cancelled: job.cancelled,
                })
                .ok();
        }
    }
}

/// Re-parse a streamed record into a [`PointSummary`] (used by tests
/// and the client's reassembly).
#[must_use]
pub fn record_to_summary(record: &str) -> Option<PointSummary> {
    let v = speedup_stacks::report::json::parse(record).ok()?;
    PointSummary::from_record(&v)
}

/// Everything a fully drained job stream contained, in arrival order.
///
/// This is the one shared stream collector: the session uses it to
/// drain a job whose peer vanished, and the unit/integration suites
/// use it to assert on terminal counters.
#[derive(Debug, Default)]
pub struct DrainedJob {
    /// `(index, source, record)` for each streamed point.
    pub points: Vec<(usize, PointSource, String)>,
    /// `(index, reason)` for each failed point.
    pub failures: Vec<(usize, String)>,
    /// Points computed by the job's own units (from `Done`).
    pub computed: usize,
    /// Points served from the cache (from `Done`).
    pub cached: usize,
    /// Points fanned out from coalesced units (from `Done`).
    pub coalesced: usize,
    /// Points failed (from `Done`).
    pub failed: usize,
    /// The job was cancelled (from `Done`).
    pub cancelled: bool,
}

/// Collects a job's event stream up to its terminal [`JobEvent::Done`].
/// Returns `None` if the stream ended without one (scheduler stopped).
#[must_use]
pub fn drain_events(rx: &Receiver<JobEvent>) -> Option<DrainedJob> {
    let mut out = DrainedJob::default();
    loop {
        match rx.recv() {
            Ok(JobEvent::Point {
                index,
                source,
                record,
                ..
            }) => out.points.push((index, source, record)),
            Ok(JobEvent::Failed { index, reason, .. }) => out.failures.push((index, reason)),
            Ok(JobEvent::Done {
                computed,
                cached,
                coalesced,
                failed,
                cancelled,
            }) => {
                out.computed = computed;
                out.cached = cached;
                out.coalesced = coalesced;
                out.failed = failed;
                out.cancelled = cancelled;
                return Some(out);
            }
            Err(_) => return None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(study: &str, params: &StudyParams) -> GridStudy {
        experiments::decompose::decompose(study, params).expect("grid study")
    }

    fn small_params() -> StudyParams {
        StudyParams {
            scale: 0.01,
            threads: Some(vec![2]),
            ..StudyParams::default()
        }
    }

    fn sorted_records(d: &DrainedJob) -> Vec<(usize, String)> {
        let mut v: Vec<_> = d.points.iter().map(|(i, _, r)| (*i, r.clone())).collect();
        v.sort();
        v
    }

    #[test]
    fn cold_then_warm_submission() {
        let cache = Arc::new(Cache::new(64 * 1024 * 1024));
        let sched = Scheduler::start(2, Arc::clone(&cache), SchedOptions::default());
        let params = small_params();
        let g = grid("fig1", &params);
        let n = g.n_points();

        let (_, rx) = sched.submit(g.clone(), params.clone()).expect("admitted");
        let cold = drain_events(&rx).expect("done");
        assert_eq!(
            (cold.computed, cold.cached, cold.failed, cold.cancelled),
            (n, 0, 0, false)
        );
        assert_eq!(cold.points.len(), n);

        let (_, rx) = sched.submit(g, params).expect("admitted");
        let warm = drain_events(&rx).expect("done");
        assert_eq!((warm.computed, warm.cached, warm.failed), (0, n, 0));
        // Warm results are byte-identical records, served in index order.
        let cold_sorted = sorted_records(&cold);
        for (i, (index, source, record)) in warm.points.iter().enumerate() {
            assert_eq!(*index, i);
            assert_eq!(*source, PointSource::Cached);
            assert_eq!(record, &cold_sorted[i].1, "point {i} record identical");
        }

        let s = sched.status();
        assert_eq!(s.points_computed, n as u64);
        assert_eq!(s.points_cached, n as u64);
        assert_eq!(s.jobs_total, 2);
        assert_eq!(s.jobs_active, 0);
        sched.stop();
    }

    #[test]
    fn distinct_params_do_not_share_cache_entries() {
        let cache = Arc::new(Cache::new(64 * 1024 * 1024));
        let sched = Scheduler::start(1, Arc::clone(&cache), SchedOptions::default());
        let a = small_params();
        let b = StudyParams {
            scale: 0.02,
            ..small_params()
        };
        let (_, rx) = sched.submit(grid("fig1", &a), a.clone()).expect("admitted");
        drain_events(&rx).expect("done");
        let (_, rx) = sched.submit(grid("fig1", &b), b.clone()).expect("admitted");
        let d = drain_events(&rx).expect("done");
        assert_eq!(d.cached, 0, "different scale bits must miss");
        assert!(d.computed > 0);
        sched.stop();
    }

    #[test]
    fn subset_submit_schedules_only_requested_units() {
        let cache = Arc::new(Cache::new(64 * 1024 * 1024));
        let sched = Scheduler::start(2, Arc::clone(&cache), SchedOptions::default());
        let params = small_params();
        let g = grid("fig1", &params);
        let n = g.n_points();
        assert!(n >= 2);
        // Duplicates are deduplicated; only the subset is scheduled.
        let (_, rx) = sched
            .submit_units(g.clone(), params.clone(), Some(vec![n - 1, 0, n - 1]))
            .expect("admitted");
        let d = drain_events(&rx).expect("done");
        let mut got: Vec<usize> = d.points.iter().map(|(i, _, _)| *i).collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, n - 1]);
        assert_eq!((d.computed, d.failed, d.cancelled), (2, 0, false));
        assert_eq!(
            sched.status().points_computed,
            2,
            "unrequested units never computed"
        );
        // The complementary subset completes the grid without
        // recomputing what the first shard already cached.
        let rest: Vec<usize> = (1..n - 1).collect();
        let (_, rx) = sched
            .submit_units(g, params, Some(rest.clone()))
            .expect("admitted");
        let d2 = drain_events(&rx).expect("done");
        assert_eq!(d2.computed + d2.cached, rest.len());
        sched.stop();
    }

    #[test]
    fn hedge_cancel_counts_only_live_transitions() {
        let cache = Arc::new(Cache::new(64 * 1024 * 1024));
        let sched = Scheduler::start(1, Arc::clone(&cache), SchedOptions::default());
        // Pin the lone worker so the hedged job is provably still live.
        let blocker_params = StudyParams {
            scale: 0.015,
            ..small_params()
        };
        let (_, rx_blocker) = sched
            .submit(grid("fig1", &blocker_params), blocker_params)
            .expect("admitted");
        let params = small_params();
        let (id, rx) = sched
            .submit(grid("fig1", &params), params)
            .expect("admitted");
        assert_eq!(sched.status().hedge_cancels, 0);
        assert!(sched.cancel_with_reason(id, true));
        assert_eq!(sched.status().hedge_cancels, 1);
        // Re-cancel never double-counts: the job is either a zombie
        // (returns true) or already finished (returns false), and the
        // counter moves only on the live transition either way.
        let _ = sched.cancel_with_reason(id, true);
        assert_eq!(sched.status().hedge_cancels, 1);
        assert!(!sched.cancel_with_reason(999, true), "unknown job");
        assert_eq!(sched.status().hedge_cancels, 1);
        let _ = drain_events(&rx_blocker);
        let d = drain_events(&rx).expect("done");
        assert!(d.cancelled);
        sched.stop();
    }

    #[test]
    fn cancel_unknown_job_is_false() {
        let sched = Scheduler::start(1, Arc::new(Cache::new(1024)), SchedOptions::default());
        assert!(!sched.cancel(42));
        sched.stop();
    }

    #[test]
    fn streamed_records_parse_back() {
        let cache = Arc::new(Cache::new(64 * 1024 * 1024));
        let sched = Scheduler::start(2, cache, SchedOptions::default());
        let params = small_params();
        let g = grid("fig5", &params);
        let (_, rx) = sched.submit(g, params).expect("admitted");
        let d = drain_events(&rx).expect("done");
        for (_, _, record) in &d.points {
            assert!(record_to_summary(record).is_some(), "record round-trips");
        }
        sched.stop();
    }

    #[test]
    fn identical_concurrent_submits_coalesce_each_unit_once() {
        let cache = Arc::new(Cache::new(64 * 1024 * 1024));
        let sched = Scheduler::start(1, Arc::clone(&cache), SchedOptions::default());
        let params = small_params();
        let g = grid("fig1", &params);
        let n = g.n_points();
        let (_, rx_owner) = sched.submit(g.clone(), params.clone()).expect("admitted");
        let followers: Vec<_> = (0..3)
            .map(|_| sched.submit(g.clone(), params.clone()).expect("admitted").1)
            .collect();
        let owner = drain_events(&rx_owner).expect("done");
        assert_eq!(owner.points.len(), n);
        assert_eq!(owner.failed, 0);
        let owner_records = sorted_records(&owner);
        for rx in &followers {
            let f = drain_events(rx).expect("done");
            assert_eq!(f.computed, 0, "followers never compute");
            assert_eq!(f.cached + f.coalesced, n);
            assert_eq!(f.failed, 0);
            assert_eq!(sorted_records(&f), owner_records, "bit-identical fan-out");
        }
        let s = sched.status();
        assert_eq!(
            s.points_computed, n as u64,
            "each unit computed exactly once"
        );
        sched.stop();
    }

    #[test]
    fn cancelled_owner_keeps_streaming_to_coalesced_subscribers() {
        let cache = Arc::new(Cache::new(64 * 1024 * 1024));
        let sched = Scheduler::start(1, Arc::clone(&cache), SchedOptions::default());
        // Pin the lone worker on an unrelated job first, so the owner
        // below is provably still live when the cancel lands — no race
        // against a fast grid finishing early.
        let blocker_params = StudyParams {
            scale: 0.015,
            ..small_params()
        };
        let (_, rx_blocker) = sched
            .submit(grid("fig1", &blocker_params), blocker_params.clone())
            .expect("admitted");
        let params = small_params();
        let g = grid("fig1", &params);
        let n = g.n_points();
        let (id_owner, rx_owner) = sched.submit(g.clone(), params.clone()).expect("admitted");
        let (_, rx_sub) = sched.submit(g, params).expect("admitted");
        assert!(sched.cancel(id_owner), "live job cancels");
        let _ = drain_events(&rx_blocker);
        let owner = drain_events(&rx_owner).expect("done");
        assert!(owner.cancelled);
        // The subscriber still receives every point, byte for byte.
        let sub = drain_events(&rx_sub).expect("done");
        assert_eq!(sub.computed, 0);
        assert_eq!(sub.failed, 0);
        assert_eq!(sub.cached + sub.coalesced, n);
        for (_, _, record) in &sub.points {
            assert!(record_to_summary(record).is_some());
        }
        // By the time the subscriber's Done has been observed, the
        // cancelled zombie has been reaped under the same lock.
        assert!(!sched.cancel(id_owner), "zombie reaped after fan-out");
        sched.stop();
    }

    #[test]
    fn busy_admission_bounds_the_backlog() {
        let cache = Arc::new(Cache::new(64 * 1024 * 1024));
        let sched = Scheduler::start(
            1,
            Arc::clone(&cache),
            SchedOptions {
                max_queued_units: 1,
                ..SchedOptions::default()
            },
        );
        // Heavy enough that its units are still queued while we probe.
        let a = StudyParams {
            scale: 0.03,
            threads: Some(vec![2]),
            ..StudyParams::default()
        };
        let (_, rx_a) = sched
            .submit(grid("fig6", &a), a.clone())
            .expect("idle queue always admits, even past the bound");
        let b = StudyParams {
            scale: 0.02,
            ..small_params()
        };
        match sched.submit(grid("fig1", &b), b.clone()) {
            Err(SubmitError::Busy {
                queued,
                limit,
                retry_after_ms,
            }) => {
                assert!(queued >= 1);
                assert_eq!(limit, 1);
                assert!((25..=5_000).contains(&retry_after_ms));
            }
            other => panic!("expected busy, got {other:?}"),
        }
        // An identical submit coalesces: zero new units, admitted even
        // while the queue is full.
        let (_, rx_dup) = sched
            .submit(grid("fig6", &a), a.clone())
            .expect("coalesced submit costs zero units");
        let first = drain_events(&rx_a).expect("done");
        assert_eq!(first.failed, 0);
        let dup = drain_events(&rx_dup).expect("done");
        assert_eq!(dup.computed, 0);
        // Once the backlog clears, the refused study is admitted.
        let (_, rx_b) = sched
            .submit(grid("fig1", &b), b)
            .expect("idle queue admits");
        assert_eq!(drain_events(&rx_b).expect("done").failed, 0);
        sched.stop();
    }

    #[test]
    fn drain_stops_admission_and_waits_for_idle() {
        let cache = Arc::new(Cache::new(64 * 1024 * 1024));
        let sched = Scheduler::start(2, cache, SchedOptions::default());
        let params = small_params();
        let (_, rx) = sched
            .submit(grid("fig1", &params), params.clone())
            .expect("admitted");
        sched.begin_drain();
        assert!(sched.is_draining());
        match sched.submit(grid("fig1", &params), params.clone()) {
            Err(SubmitError::Draining) => {}
            other => panic!("expected draining, got {other:?}"),
        }
        // In-flight work still runs to completion.
        let d = drain_events(&rx).expect("done");
        assert_eq!(d.failed, 0);
        sched.wait_idle();
        assert_eq!(sched.status().jobs_active, 0);
        sched.stop();
    }

    #[test]
    fn chaos_panic_at_unit_degrades_to_typed_failures() {
        let cache = Arc::new(Cache::new(64 * 1024 * 1024));
        let sched = Scheduler::start(
            1,
            Arc::clone(&cache),
            SchedOptions {
                chaos: ChaosPolicy {
                    panic_at_unit: Some(0),
                    ..ChaosPolicy::default()
                },
                ..SchedOptions::default()
            },
        );
        let params = small_params();
        let g = grid("fig1", &params);
        let n = g.n_points();
        let (_, rx) = sched.submit(g, params.clone()).expect("admitted");
        let d = drain_events(&rx).expect("done");
        // Unit 0 is the first reference: its profile's points cascade a
        // typed failure carrying the injected panic's payload.
        assert!(d.failed > 0, "injected panic must surface");
        assert_eq!(d.computed + d.failed, n);
        for (_, reason) in &d.failures {
            assert!(
                reason.contains("chaos: injected panic at unit 0"),
                "typed reason carries the panic payload: {reason}"
            );
        }
        // The scheduler itself survived: a resubmit recomputes the
        // failed (never-cached) points cleanly.
        let (_, rx) = sched
            .submit(grid("fig1", &params), params)
            .expect("admitted");
        let d2 = drain_events(&rx).expect("done");
        assert_eq!(d2.failed, 0, "recovered retry completes");
        assert_eq!(d2.computed + d2.cached, n);
        sched.stop();
    }
}
