//! The `studyd` wire protocol: line-delimited JSON over TCP.
//!
//! Every frame — request or reply — is one JSON object on one line,
//! emitted and parsed by the in-repo [`speedup_stacks::report::json`]
//! machinery (no external serialization). The exchange is
//! handshake-first: the client's opening frame must be
//! `{"op": "hello", "proto": 2}`, which the server answers with a
//! `hello` reply naming its protocol version; any mismatch is a typed
//! rejection, never a silent downgrade.
//!
//! Requests after the handshake: `list`, `status`,
//! `submit` (a registry study name plus a [`StudyParams`] override
//! subset), `cancel` and `shutdown` (`{"mode": "drain"}` finishes
//! in-flight jobs and flushes the cache spill before exit; the default
//! is immediate). A `submit` streams back an `accepted` frame, then one
//! `point` or `failed` frame per grid point *as points complete*
//! (NDJSON — consumers reassemble in any order via the `index` field;
//! each `point` carries a `source` of `computed`, `cached` or
//! `coalesced`), and finally a `done` frame. Replies carry
//! `"ok": true`; errors are `{"ok": false, "error": CODE,
//! "message": ...}` and map onto [`ProtocolError`] (and from there onto
//! [`speedup_stacks::SimError::Protocol`], exit code 10). Two error
//! codes carry extra typed payload: `version-mismatch` (`found`,
//! `supported`) and `busy` (`retry_after_ms`, the admission
//! controller's deterministic backoff hint).
//!
//! # Protocol history
//!
//! - **v1** (PR 8): handshake, `list`/`status`/`submit`/`cancel`/
//!   `shutdown`, `cached` boolean on point frames.
//! - **v2** (this version): point frames replace the `cached` boolean
//!   with the three-way `source`; `done` and `status` gain coalescing
//!   counters; `busy` rejections with `retry_after_ms`; `shutdown`
//!   accepts `{"mode": "drain"}`; `cancel` replies carry a `state` of
//!   `cancelled` or `already-done`.
//! - **v2 federation extensions** (additive, still proto 2 — every
//!   field is optional and ignored by older peers): `submit` accepts a
//!   `units` array of grid indices to run only that shard (the
//!   `accepted` frame's `points` then counts the deduplicated subset);
//!   `cancel` accepts a `reason` string (`"hedge"` marks a lost hedged
//!   race, counted in the `hedge_cancels` status field); `hello` and
//!   `status` replies echo a `backend` identity when the server was
//!   started with one; a coordinator's `status` reply carries a
//!   `federation` block with per-backend health, units served,
//!   failovers and hedge wins.
//!
//! Line lengths are capped — [`REQUEST_LINE_CAP`] for client→server
//! frames, [`REPLY_LINE_CAP`] for server→client frames (point frames
//! scale with the thread count) — and a frame exceeding the cap is an
//! [`ProtocolError::Oversized`] rejection, a defense against accidental
//! binary input and memory exhaustion.

use std::io::{BufRead, Write};

use experiments::study::StudyParams;
use speedup_stacks::error::ProtocolError;
use speedup_stacks::report::json::{self, JsonValue};

/// The protocol version this build speaks (`hello` handshake).
pub const PROTO_VERSION: u64 = 2;

/// Line cap for client→server request frames.
pub const REQUEST_LINE_CAP: usize = 64 * 1024;

/// Line cap for server→client reply frames (point frames carry a full
/// per-thread breakdown, so this is generous).
pub const REPLY_LINE_CAP: usize = 4 * 1024 * 1024;

/// Wraps an I/O failure into the protocol error taxonomy. Timeouts
/// (a socket read/write deadline expiring — the idle-connection
/// reaper's signal) get their own typed variant.
#[must_use]
pub fn io_err(op: &'static str, e: &std::io::Error) -> ProtocolError {
    match e.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => ProtocolError::Timeout,
        _ => ProtocolError::Io {
            op,
            message: e.to_string(),
        },
    }
}

/// Reads one `\n`-terminated line, enforcing the byte cap *while
/// reading* (an oversized frame never accumulates past the cap).
/// `Ok(None)` is clean end-of-stream at a line boundary; a final
/// unterminated line is returned as a line.
///
/// On an oversized line, up to one extra cap's worth of the offending
/// line is consumed (discarded, never stored) before the error
/// returns: a server that then replies and closes does so without
/// unread bytes in its receive buffer, so the typed rejection reaches
/// the peer instead of being clobbered by a TCP reset.
///
/// # Errors
///
/// [`ProtocolError::Io`] on read failure, [`ProtocolError::Oversized`]
/// past the cap, [`ProtocolError::Malformed`] for non-UTF-8 bytes.
pub fn read_line_bounded<R: BufRead>(
    reader: &mut R,
    cap: usize,
) -> Result<Option<String>, ProtocolError> {
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let chunk = reader.fill_buf().map_err(|e| io_err("read", &e))?;
        if chunk.is_empty() {
            if buf.is_empty() {
                return Ok(None);
            }
            break;
        }
        let pos = chunk.iter().position(|&b| b == b'\n');
        let take = pos.unwrap_or(chunk.len());
        if buf.len() + take > cap {
            discard_rest_of_line(reader, cap);
            return Err(ProtocolError::Oversized { limit: cap });
        }
        buf.extend_from_slice(&chunk[..take]);
        match pos {
            Some(p) => {
                reader.consume(p + 1);
                break;
            }
            None => reader.consume(take),
        }
    }
    match String::from_utf8(buf) {
        Ok(s) => Ok(Some(s)),
        Err(_) => Err(ProtocolError::Malformed {
            why: "frame is not UTF-8".to_string(),
        }),
    }
}

/// Consumes (without storing) the remainder of an oversized line: up to
/// `budget` more bytes, stopping early at the newline or end-of-stream.
/// The budget keeps an endless newline-free stream from pinning the
/// reader; past it, the line is simply abandoned unconsumed.
fn discard_rest_of_line<R: BufRead>(reader: &mut R, budget: usize) {
    let mut remaining = budget;
    loop {
        let Ok(chunk) = reader.fill_buf() else { return };
        if chunk.is_empty() {
            return;
        }
        match chunk.iter().position(|&b| b == b'\n') {
            Some(p) => {
                reader.consume(p + 1);
                return;
            }
            None => {
                let n = chunk.len().min(remaining);
                reader.consume(n);
                if n == remaining {
                    return;
                }
                remaining -= n;
            }
        }
    }
}

/// Writes one frame as a line and flushes it (streamed frames must not
/// sit in a buffer while the next point simulates).
///
/// # Errors
///
/// [`ProtocolError::Io`] on write/flush failure.
pub fn write_line<W: Write>(writer: &mut W, frame: &str) -> Result<(), ProtocolError> {
    writer
        .write_all(frame.as_bytes())
        .and_then(|()| writer.write_all(b"\n"))
        .and_then(|()| writer.flush())
        .map_err(|e| io_err("write", &e))
}

/// Builds a typed error frame.
#[must_use]
pub fn error_frame(code: &str, message: &str) -> String {
    format!(
        "{{\"ok\": false, \"error\": \"{}\", \"message\": \"{}\"}}",
        json::escape(code),
        json::escape(message)
    )
}

/// Reads a `u64` field (counters stay far below 2^53, so the `f64`
/// round-trip is exact).
#[must_use]
pub fn u64_field(v: &JsonValue, key: &str) -> Option<u64> {
    let x = v.get(key)?.as_f64()?;
    (x >= 0.0 && x.fract() == 0.0).then_some(x as u64)
}

/// Turns a reply frame into `Ok(frame)` or the typed [`ProtocolError`]
/// its `"ok": false` body describes: `version-mismatch` frames become
/// [`ProtocolError::VersionMismatch`], `busy` frames become
/// [`ProtocolError::Busy`] (carrying the server's backoff hint),
/// everything else [`ProtocolError::Rejected`].
///
/// # Errors
///
/// See above; a frame without a boolean `ok` field is
/// [`ProtocolError::Malformed`].
pub fn check_reply(frame: JsonValue) -> Result<JsonValue, ProtocolError> {
    match frame.get("ok") {
        Some(JsonValue::Bool(true)) => Ok(frame),
        Some(JsonValue::Bool(false)) => {
            let code = frame
                .get("error")
                .and_then(JsonValue::as_str)
                .unwrap_or("unknown")
                .to_string();
            let message = frame
                .get("message")
                .and_then(JsonValue::as_str)
                .unwrap_or("")
                .to_string();
            if code == "version-mismatch" {
                if let (Some(found), Some(supported)) =
                    (u64_field(&frame, "found"), u64_field(&frame, "supported"))
                {
                    return Err(ProtocolError::VersionMismatch { found, supported });
                }
            }
            if code == "busy" {
                if let Some(retry_after_ms) = u64_field(&frame, "retry_after_ms") {
                    return Err(ProtocolError::Busy { retry_after_ms });
                }
            }
            Err(ProtocolError::Rejected { code, message })
        }
        _ => Err(ProtocolError::Malformed {
            why: "reply lacks a boolean 'ok' field".to_string(),
        }),
    }
}

/// Encodes the wire-carried [`StudyParams`] subset — exactly the
/// result-affecting parameters the journal fingerprint hashes (`scale`,
/// `threads`, `llc_mib`). Execution-mode parameters (parallelism, fault
/// policy, journaling, tracing) are deliberately not wire-carried: the
/// server owns its own execution strategy.
#[must_use]
pub fn params_to_wire(params: &StudyParams) -> String {
    let mut out = format!("{{\"scale\": {}", json::number(params.scale));
    if let Some(t) = &params.threads {
        out.push_str(", \"threads\": [");
        for (i, n) in t.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&n.to_string());
        }
        out.push(']');
    }
    if let Some(mib) = params.llc_mib {
        out.push_str(&format!(", \"llc_mib\": {mib}"));
    }
    out.push('}');
    out
}

/// Decodes a submit request's `params` object back into [`StudyParams`]
/// (missing fields keep their defaults; `None` means no object at all).
///
/// # Errors
///
/// A human-readable reason for the `bad-params` rejection.
pub fn params_from_wire(v: Option<&JsonValue>) -> Result<StudyParams, String> {
    let mut params = StudyParams::default();
    let Some(v) = v else {
        return Ok(params);
    };
    if !matches!(v, JsonValue::Object(_)) {
        return Err("params must be an object".to_string());
    }
    if let Some(s) = v.get("scale") {
        match s.as_f64() {
            Some(x) if x.is_finite() && x > 0.0 => params.scale = x,
            _ => return Err("scale must be a positive finite number".to_string()),
        }
    }
    if let Some(t) = v.get("threads") {
        let Some(arr) = t.as_array() else {
            return Err("threads must be an array of counts >= 1".to_string());
        };
        let mut counts = Vec::with_capacity(arr.len());
        for x in arr {
            match x.as_f64() {
                Some(n) if n.fract() == 0.0 && (1.0..=65_536.0).contains(&n) => {
                    counts.push(n as usize);
                }
                _ => return Err("threads must be an array of counts >= 1".to_string()),
            }
        }
        if counts.is_empty() {
            return Err("threads must not be empty".to_string());
        }
        params.threads = Some(counts);
    }
    if let Some(m) = v.get("llc_mib") {
        match m.as_f64() {
            Some(x) if x.fract() == 0.0 && (1.0..=1_048_576.0).contains(&x) => {
                params.llc_mib = Some(x as usize);
            }
            _ => return Err("llc_mib must be an integer capacity in MiB >= 1".to_string()),
        }
    }
    Ok(params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn bounded_read_splits_lines_and_handles_eof() {
        let mut r = BufReader::new(&b"one\ntwo\nthree"[..]);
        assert_eq!(read_line_bounded(&mut r, 64).unwrap().unwrap(), "one");
        assert_eq!(read_line_bounded(&mut r, 64).unwrap().unwrap(), "two");
        assert_eq!(read_line_bounded(&mut r, 64).unwrap().unwrap(), "three");
        assert!(read_line_bounded(&mut r, 64).unwrap().is_none());
    }

    #[test]
    fn bounded_read_rejects_oversized_without_accumulating() {
        let big = vec![b'x'; 1000];
        let mut r = BufReader::new(&big[..]);
        assert!(matches!(
            read_line_bounded(&mut r, 100),
            Err(ProtocolError::Oversized { limit: 100 })
        ));
    }

    #[test]
    fn bounded_read_rejects_non_utf8() {
        let mut r = BufReader::new(&[0xff, 0xfe, b'\n'][..]);
        assert!(matches!(
            read_line_bounded(&mut r, 64),
            Err(ProtocolError::Malformed { .. })
        ));
    }

    #[test]
    fn params_wire_round_trip_preserves_fingerprint() {
        // The cache key and journal identity hash the exact scale bits;
        // the wire must round-trip them bit for bit.
        for scale in [1.0, 0.05, 0.1 + 0.2, 1.0 / 3.0] {
            let params = StudyParams {
                scale,
                threads: Some(vec![2, 4, 16]),
                llc_mib: Some(8),
                ..StudyParams::default()
            };
            let wire = params_to_wire(&params);
            let parsed = json::parse(&wire).unwrap();
            let back = params_from_wire(Some(&parsed)).unwrap();
            assert_eq!(back.scale.to_bits(), params.scale.to_bits());
            assert_eq!(back.threads, params.threads);
            assert_eq!(back.llc_mib, params.llc_mib);
            assert_eq!(
                experiments::journal::fingerprint("fig6", &back),
                experiments::journal::fingerprint("fig6", &params)
            );
        }
    }

    #[test]
    fn params_from_wire_rejects_bad_shapes() {
        for bad in [
            "{\"scale\": 0}",
            "{\"scale\": \"x\"}",
            "{\"threads\": []}",
            "{\"threads\": [0]}",
            "{\"threads\": [1.5]}",
            "{\"threads\": 4}",
            "{\"llc_mib\": 0}",
            "[1]",
        ] {
            let v = json::parse(bad).unwrap();
            assert!(params_from_wire(Some(&v)).is_err(), "{bad} accepted");
        }
        assert_eq!(params_from_wire(None).unwrap(), StudyParams::default());
    }

    #[test]
    fn check_reply_maps_error_codes() {
        let ok = json::parse("{\"ok\": true, \"kind\": \"hello\"}").unwrap();
        assert!(check_reply(ok).is_ok());
        let rejected =
            json::parse("{\"ok\": false, \"error\": \"unknown-study\", \"message\": \"m\"}")
                .unwrap();
        assert!(matches!(
            check_reply(rejected),
            Err(ProtocolError::Rejected { code, .. }) if code == "unknown-study"
        ));
        let mismatch = json::parse(
            "{\"ok\": false, \"error\": \"version-mismatch\", \"message\": \"m\", \
             \"found\": 9, \"supported\": 1}",
        )
        .unwrap();
        assert!(matches!(
            check_reply(mismatch),
            Err(ProtocolError::VersionMismatch {
                found: 9,
                supported: 1
            })
        ));
        let busy = json::parse(
            "{\"ok\": false, \"error\": \"busy\", \"message\": \"m\", \"retry_after_ms\": 125}",
        )
        .unwrap();
        assert!(matches!(
            check_reply(busy),
            Err(ProtocolError::Busy {
                retry_after_ms: 125
            })
        ));
        let junk = json::parse("{\"kind\": \"x\"}").unwrap();
        assert!(matches!(
            check_reply(junk),
            Err(ProtocolError::Malformed { .. })
        ));
    }
}
