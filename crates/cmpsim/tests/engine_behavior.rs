//! Behavioural tests of the simulation engine: timing, synchronization,
//! scheduling, accounting and determinism.

use cmpsim::{simulate, MachineConfig, Op, OpStream, SimError, SpinDetectorKind, VecStream};
use speedup_stacks::{AccountingConfig, Component};

fn boxed(ops: Vec<Op>) -> Box<dyn OpStream> {
    Box::new(VecStream::new(ops))
}

fn small_machine(cores: usize) -> MachineConfig {
    MachineConfig::with_cores(cores)
}

#[test]
fn single_thread_compute_timing() {
    let r = simulate(small_machine(1), vec![boxed(vec![Op::Compute(123)])]).unwrap();
    assert_eq!(r.tp_cycles, 123);
    assert_eq!(r.counters[0].instructions, 123);
}

#[test]
fn two_independent_threads_run_in_parallel() {
    let r = simulate(
        small_machine(2),
        vec![
            boxed(vec![Op::Compute(1000)]),
            boxed(vec![Op::Compute(1000)]),
        ],
    )
    .unwrap();
    assert_eq!(r.tp_cycles, 1000, "threads must overlap fully");
}

#[test]
fn imbalance_recorded_via_active_end() {
    let r = simulate(
        small_machine(2),
        vec![
            boxed(vec![Op::Compute(1000)]),
            boxed(vec![Op::Compute(400)]),
        ],
    )
    .unwrap();
    assert_eq!(r.counters[0].active_end_cycle, 1000);
    assert_eq!(r.counters[1].active_end_cycle, 400);
    let stack = r.stack(&AccountingConfig::default()).unwrap();
    assert!((stack.component(Component::Imbalance) - 0.6).abs() < 1e-9);
}

#[test]
fn loads_stall_and_are_counted() {
    let r = simulate(
        small_machine(1),
        vec![boxed(vec![Op::Load(100), Op::Load(100), Op::Compute(10)])],
    )
    .unwrap();
    // First load: DRAM; second: L1 hit.
    assert_eq!(r.truth[0].llc_accesses, 1);
    assert_eq!(r.truth[0].llc_misses, 1);
    assert_eq!(r.counters[0].llc_load_misses, 1);
    assert!(r.counters[0].llc_load_miss_stall_cycles > 0.0);
    assert!(r.tp_cycles > 50, "DRAM latency must be visible");
}

#[test]
fn stores_do_not_stall() {
    let loads = simulate(small_machine(1), vec![boxed(vec![Op::Load(100)])]).unwrap();
    let stores = simulate(small_machine(1), vec![boxed(vec![Op::Store(100)])]).unwrap();
    assert!(stores.tp_cycles < loads.tp_cycles);
}

#[test]
fn lock_provides_mutual_exclusion_and_serializes() {
    // Two threads each hold the lock for 10_000 cycles of compute.
    let work = |_: usize| {
        boxed(vec![
            Op::LockAcquire(0),
            Op::Compute(10_000),
            Op::LockRelease(0),
        ])
    };
    let r = simulate(small_machine(2), vec![work(0), work(1)]).unwrap();
    // Critical sections serialize: total ≥ 20_000.
    assert!(r.tp_cycles >= 20_000, "tp={}", r.tp_cycles);
}

#[test]
fn short_contention_is_spinning_not_yielding() {
    // Holder keeps the lock for less than the spin threshold.
    let cfg = small_machine(2);
    let hold = (cfg.sync.spin_threshold / 2) as u32;
    let work = |_: usize| {
        boxed(vec![
            Op::LockAcquire(0),
            Op::Compute(hold),
            Op::LockRelease(0),
        ])
    };
    let r = simulate(cfg, vec![work(0), work(1)]).unwrap();
    let spin: u64 = r.truth.iter().map(|t| t.true_spin_cycles).sum();
    let yield_c: f64 = r.counters.iter().map(|c| c.yield_cycles).sum();
    assert!(spin > 0, "waiter must have spun");
    assert_eq!(yield_c, 0.0, "no yields expected below the spin threshold");
}

#[test]
fn long_contention_yields() {
    let cfg = small_machine(2);
    let hold = (cfg.sync.spin_threshold * 20) as u32;
    let work = |_: usize| {
        boxed(vec![
            Op::LockAcquire(0),
            Op::Compute(hold),
            Op::LockRelease(0),
        ])
    };
    let r = simulate(cfg, vec![work(0), work(1)]).unwrap();
    let yield_c: f64 = r.counters.iter().map(|c| c.yield_cycles).sum();
    let spin: u64 = r.truth.iter().map(|t| t.true_spin_cycles).sum();
    assert!(yield_c > 0.0, "long wait must be scheduled out");
    // The waiter spun exactly until the threshold before yielding.
    assert!(spin as u64 >= cfg.sync.spin_threshold);
}

#[test]
fn barrier_synchronizes_all_threads() {
    // Thread 0 computes 10_000 before the barrier; thread 1 is fast.
    let r = simulate(
        small_machine(2),
        vec![
            boxed(vec![Op::Compute(10_000), Op::Barrier(0), Op::Compute(100)]),
            boxed(vec![Op::Compute(10), Op::Barrier(0), Op::Compute(100)]),
        ],
    )
    .unwrap();
    // Thread 1 cannot finish before thread 0 reaches the barrier.
    assert!(r.counters[1].active_end_cycle >= 10_000);
    let waited: u64 = r.truth[1].true_spin_cycles + r.counters[1].yield_cycles as u64;
    assert!(waited > 5_000, "thread 1 must have waited at the barrier");
}

#[test]
fn barrier_reusable_across_phases() {
    let mk = |c: u32| {
        boxed(vec![
            Op::Compute(c),
            Op::Barrier(0),
            Op::Compute(c),
            Op::Barrier(0),
            Op::Compute(10),
        ])
    };
    let r = simulate(small_machine(2), vec![mk(100), mk(200)]).unwrap();
    assert!(r.tp_cycles >= 410);
}

#[test]
fn single_thread_barrier_passes_through() {
    let r = simulate(
        small_machine(1),
        vec![boxed(vec![Op::Barrier(0), Op::Compute(5)])],
    )
    .unwrap();
    assert!(r.tp_cycles < 100);
}

#[test]
fn more_threads_than_cores_all_finish_and_yield() {
    let streams: Vec<_> = (0..4).map(|_| boxed(vec![Op::Compute(50_000)])).collect();
    let r = simulate(small_machine(1), streams).unwrap();
    // Serialized on one core: at least 200k cycles.
    assert!(r.tp_cycles >= 200_000);
    let total_yield: f64 = r.counters.iter().map(|c| c.yield_cycles).sum();
    assert!(total_yield > 100_000.0, "queued threads are scheduled out");
}

#[test]
fn round_robin_preemption_shares_the_core() {
    let cfg = small_machine(1);
    // Preemption happens at op boundaries, so long work is chunked.
    let long = boxed(vec![Op::Compute(10_000); 100]);
    let short = boxed(vec![Op::Compute(10), Op::Compute(10)]);
    let r = simulate(cfg, vec![long, short]).unwrap();
    // The short thread must not wait for the long one to finish entirely:
    // it runs within roughly one quantum + context switches.
    assert!(
        r.counters[1].active_end_cycle < 300_000,
        "short thread starved: finished at {}",
        r.counters[1].active_end_cycle
    );
}

#[test]
fn deadlock_detected_for_unreleasable_lock() {
    // Thread 0 acquires and never releases; thread 1 blocks forever.
    let r = simulate(
        small_machine(2),
        vec![
            boxed(vec![Op::LockAcquire(0), Op::Compute(10)]),
            boxed(vec![Op::LockAcquire(0), Op::Compute(10)]),
        ],
    );
    match r {
        Err(SimError::Deadlock { unfinished, .. }) => assert_eq!(unfinished, vec![1]),
        other => panic!("expected deadlock, got {other:?}"),
    }
}

#[test]
fn releasing_unheld_lock_is_a_protocol_violation() {
    let r = simulate(small_machine(1), vec![boxed(vec![Op::LockRelease(0)])]);
    assert!(matches!(
        r,
        Err(SimError::ProtocolViolation { thread: 0, .. })
    ));
}

#[test]
fn recursive_acquire_is_a_protocol_violation() {
    let r = simulate(
        small_machine(1),
        vec![boxed(vec![Op::LockAcquire(0), Op::LockAcquire(0)])],
    );
    assert!(matches!(
        r,
        Err(SimError::ProtocolViolation { thread: 0, .. })
    ));
}

#[test]
fn determinism_same_config_same_result() {
    let mk_streams = || -> Vec<Box<dyn OpStream>> {
        (0..4)
            .map(|t| {
                let ops: Vec<Op> = (0..200)
                    .flat_map(|i| {
                        vec![
                            Op::Compute(5 + (i % 7)),
                            Op::Load((t * 1000 + i * 13) as u64),
                            Op::Store((i * 29) as u64),
                            Op::Barrier(0),
                        ]
                    })
                    .collect();
                boxed(ops)
            })
            .collect()
    };
    let a = simulate(small_machine(4), mk_streams()).unwrap();
    let b = simulate(small_machine(4), mk_streams()).unwrap();
    assert_eq!(a.tp_cycles, b.tp_cycles);
    assert_eq!(a.counters, b.counters);
    assert_eq!(a.truth, b.truth);
}

#[test]
fn tian_detector_misses_very_short_spins_oracle_does_not() {
    // A contended lock with hold times so short the spin episodes stay
    // below Tian's mark threshold.
    let mk = || {
        let ops: Vec<Op> = (0..50)
            .flat_map(|_| {
                vec![
                    Op::LockAcquire(0),
                    Op::Compute(40),
                    Op::LockRelease(0),
                    Op::Compute(5),
                ]
            })
            .collect();
        boxed(ops)
    };
    let mut cfg = small_machine(2);
    cfg.spin_detector = SpinDetectorKind::Tian { mark_threshold: 16 };
    let tian = simulate(cfg, vec![mk(), mk()]).unwrap();
    let mut cfg = small_machine(2);
    cfg.spin_detector = SpinDetectorKind::Oracle;
    let oracle = simulate(cfg, vec![mk(), mk()]).unwrap();

    let tian_detected: f64 = tian.counters.iter().map(|c| c.spin_cycles).sum();
    let oracle_detected: f64 = oracle.counters.iter().map(|c| c.spin_cycles).sum();
    let truth: u64 = oracle.truth.iter().map(|t| t.true_spin_cycles).sum();
    assert!(truth > 0);
    assert!((oracle_detected - truth as f64).abs() < 1e-9);
    assert!(
        tian_detected < oracle_detected,
        "Tian must under-detect short episodes (tian={tian_detected}, oracle={oracle_detected})"
    );
}

#[test]
fn coherence_traffic_counted() {
    // Both threads ping-pong stores to the same line.
    let mk = || {
        let ops: Vec<Op> = (0..100)
            .flat_map(|_| vec![Op::Store(5), Op::Compute(50)])
            .collect();
        boxed(ops)
    };
    let r = simulate(small_machine(2), vec![mk(), mk()]).unwrap();
    let invals: u64 = r.truth.iter().map(|t| t.invalidations_sent).sum();
    let coh: u64 = r.truth.iter().map(|t| t.coherency_misses).sum();
    assert!(invals > 0, "stores to a shared line must invalidate");
    assert!(
        coh > 0,
        "re-references after invalidation are coherency misses"
    );
}

#[test]
fn interthread_hits_truth_on_shared_reads() {
    // Thread 0 loads a region; thread 1 then reads the same region after a
    // barrier, hitting lines inserted by thread 0.
    let t0: Vec<Op> = (0..64)
        .map(|i| Op::Load(i as u64))
        .chain(std::iter::once(Op::Barrier(0)))
        .collect();
    let t1: Vec<Op> = std::iter::once(Op::Barrier(0))
        .chain((0..64).map(|i| Op::Load(i as u64)))
        .collect();
    let r = simulate(small_machine(2), vec![boxed(t0), boxed(t1)]).unwrap();
    assert!(
        r.truth[1].interthread_hits_truth > 32,
        "thread 1 must reuse thread 0's lines (got {})",
        r.truth[1].interthread_hits_truth
    );
}

#[test]
fn speedup_stack_integrates() {
    let mk = |c: u32| boxed(vec![Op::Compute(c), Op::Barrier(0)]);
    let r = simulate(
        small_machine(4),
        vec![mk(4000), mk(4000), mk(4000), mk(8000)],
    )
    .unwrap();
    let stack = r.stack(&AccountingConfig::default()).unwrap();
    assert_eq!(stack.num_threads(), 4);
    assert!(stack.is_valid());
    // Three threads wait ~4000 cycles on the barrier: spinning + yielding
    // + imbalance must be visible.
    assert!(
        stack.total_overhead() > 0.5,
        "overhead = {}",
        stack.total_overhead()
    );
}

#[test]
fn cycle_limit_enforced() {
    let mut cfg = small_machine(1);
    cfg.max_cycles = 100;
    let r = simulate(cfg, vec![boxed(vec![Op::Compute(1000), Op::Compute(1000)])]);
    assert!(matches!(r, Err(SimError::CycleLimitExceeded { .. })));
}

#[test]
fn out_of_range_sync_ids_are_protocol_violations() {
    // A rogue id must fail cleanly instead of growing the dense sync
    // tables towards u32::MAX entries (and aliasing lock lines into the
    // barrier region).
    for bad in [
        Op::LockAcquire(1 << 20),
        Op::LockRelease(u32::MAX),
        Op::Barrier(1 << 20),
    ] {
        let r = simulate(small_machine(1), vec![boxed(vec![bad])]);
        assert!(
            matches!(r, Err(SimError::ProtocolViolation { thread: 0, .. })),
            "op {bad:?} gave {r:?}"
        );
    }
    // The largest valid id still works.
    let ok = simulate(
        small_machine(1),
        vec![boxed(vec![
            Op::LockAcquire((1 << 20) - 1),
            Op::LockRelease((1 << 20) - 1),
        ])],
    );
    assert!(ok.is_ok());
}
