//! Whole-simulation equivalence between the timing-wheel event queue and
//! the original `BinaryHeap` reference.
//!
//! Both queues implement the identical `(time, seq)` total order, so the
//! engine must produce **bit-identical** results on any workload. These
//! tests drive randomized (but protocol-valid) op streams — compute,
//! clustered loads/stores, contended critical sections, transactions and
//! barrier rounds, with more threads than cores — through both engines
//! and compare final cycle counts, every raw counter, the full ground
//! truth and the processed event count.

use cmpsim::{simulate, EventQueueKind, MachineConfig, Op, OpStream, VecStream};

/// Deterministic SplitMix64 stream.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// Generates one thread's ops for one barrier round: a random mix of
/// compute, memory traffic, a contended critical section and a
/// transaction, closed by the shared barrier. Identical barrier counts
/// across threads keep the workload deadlock-free by construction.
fn round_ops(rng: &mut Rng, thread: usize, ops: &mut Vec<Op>) {
    let blocks = 1 + rng.below(6);
    for _ in 0..blocks {
        match rng.below(10) {
            0..=2 => ops.push(Op::Compute(1 + rng.below(700) as u32)),
            3 | 4 => ops.push(Op::Load(rng.below(2_048))),
            5 => ops.push(Op::Store(rng.below(512))),
            6 => {
                // Private traffic: per-thread region.
                ops.push(Op::Load(
                    100_000 + thread as u64 * 10_000 + rng.below(4_096),
                ));
            }
            7 | 8 => {
                let lock = rng.below(3) as u32;
                ops.push(Op::LockAcquire(lock));
                ops.push(Op::Compute(1 + rng.below(2_500) as u32));
                if rng.below(2) == 0 {
                    ops.push(Op::Store(900 + u64::from(lock)));
                }
                ops.push(Op::LockRelease(lock));
            }
            _ => {
                ops.push(Op::TxBegin);
                ops.push(Op::Load(7_000 + rng.below(4)));
                ops.push(Op::Compute(1 + rng.below(200) as u32));
                ops.push(Op::Store(7_000 + rng.below(4)));
                ops.push(Op::TxEnd);
            }
        }
    }
    ops.push(Op::Barrier(0));
}

fn random_streams(seed: u64, n_threads: usize, rounds: u64) -> Vec<Box<dyn OpStream>> {
    let mut rng = Rng(seed);
    (0..n_threads)
        .map(|t| {
            let mut ops = Vec::new();
            for _ in 0..rounds {
                round_ops(&mut rng, t, &mut ops);
            }
            Box::new(VecStream::new(ops)) as Box<dyn OpStream>
        })
        .collect()
}

fn assert_equivalent(mut cfg: MachineConfig, mk: impl Fn() -> Vec<Box<dyn OpStream>>, label: &str) {
    cfg.event_queue = EventQueueKind::TimingWheel;
    let wheel = simulate(cfg, mk()).unwrap();
    cfg.event_queue = EventQueueKind::BinaryHeap;
    let heap = simulate(cfg, mk()).unwrap();
    assert_eq!(wheel.tp_cycles, heap.tp_cycles, "{label}: tp_cycles");
    assert_eq!(wheel.counters, heap.counters, "{label}: counters");
    assert_eq!(wheel.truth, heap.truth, "{label}: truth");
    assert_eq!(wheel.events, heap.events, "{label}: events processed");
}

#[test]
fn randomized_streams_match_across_queues() {
    for seed in 0..12u64 {
        let n_threads = 2 + (seed % 5) as usize;
        let rounds = 3 + seed % 4;
        assert_equivalent(
            MachineConfig::with_cores(4),
            || random_streams(seed * 7 + 1, n_threads, rounds),
            &format!("seed {seed}"),
        );
    }
}

#[test]
fn oversubscribed_machine_matches_across_queues() {
    // More threads than cores: quanta and wake-ups go through the
    // overflow path of the wheel.
    for seed in 0..6u64 {
        assert_equivalent(
            MachineConfig::with_cores(2),
            || random_streams(0xBEEF + seed, 7, 4),
            &format!("oversub seed {seed}"),
        );
    }
}

#[test]
fn long_compute_blocks_cross_the_wheel_window() {
    // Compute blocks far beyond the wheel window (16384 cycles) force
    // overflow-heap round trips interleaved with short events.
    let mk = || -> Vec<Box<dyn cmpsim::OpStream>> {
        (0..3)
            .map(|t| {
                let mut ops = Vec::new();
                for i in 0..20u32 {
                    ops.push(Op::Compute(if i % 3 == 0 { 50_000 } else { 40 }));
                    ops.push(Op::Load((t * 1000 + i as usize) as u64));
                    ops.push(Op::Barrier(0));
                }
                Box::new(VecStream::new(ops)) as Box<dyn cmpsim::OpStream>
            })
            .collect()
    };
    assert_equivalent(MachineConfig::with_cores(2), mk, "long compute");
}

#[test]
fn region_snapshots_match_across_queues() {
    let mut cfg = MachineConfig::with_cores(3);
    cfg.record_regions = true;
    let mk = || random_streams(0x51AB, 3, 5);
    cfg.event_queue = EventQueueKind::TimingWheel;
    let wheel = simulate(cfg, mk()).unwrap();
    cfg.event_queue = EventQueueKind::BinaryHeap;
    let heap = simulate(cfg, mk()).unwrap();
    assert_eq!(wheel.regions.len(), heap.regions.len());
    for (a, b) in wheel.regions.iter().zip(&heap.regions) {
        assert_eq!(a.release_cycle, b.release_cycle);
        assert_eq!(a.arrivals, b.arrivals);
        assert_eq!(a.counters, b.counters);
    }
}
