//! Tests of the §4.3 transactional-memory extension: conflicting
//! transactions roll back, replay, and charge their wasted time as a
//! synchronization penalty.

use cmpsim::{simulate, MachineConfig, Op, OpStream, SimError, VecStream};
use speedup_stacks::{AccountingConfig, Component};

fn boxed(ops: Vec<Op>) -> Box<dyn OpStream> {
    Box::new(VecStream::new(ops))
}

fn tx_counter_update(iterations: u32, line: u64, work: u32) -> Vec<Op> {
    let mut ops = Vec::new();
    for _ in 0..iterations {
        ops.push(Op::TxBegin);
        ops.push(Op::Load(line));
        ops.push(Op::Compute(work));
        ops.push(Op::Store(line));
        ops.push(Op::TxEnd);
        ops.push(Op::Compute(50));
    }
    ops
}

#[test]
fn uncontended_transactions_commit_without_aborts() {
    // Two threads transact on disjoint lines: no conflicts.
    let r = simulate(
        MachineConfig::with_cores(2),
        vec![
            boxed(tx_counter_update(20, 100, 80)),
            boxed(tx_counter_update(20, 200, 80)),
        ],
    )
    .unwrap();
    let commits: u64 = r.truth.iter().map(|t| t.tx_commits).sum();
    let aborts: u64 = r.truth.iter().map(|t| t.tx_aborts).sum();
    assert_eq!(commits, 40);
    assert_eq!(aborts, 0);
}

#[test]
fn conflicting_transactions_abort_and_still_complete() {
    // Four threads hammer the same counter line transactionally.
    let streams: Vec<Box<dyn OpStream>> = (0..4)
        .map(|_| boxed(tx_counter_update(25, 7, 120)))
        .collect();
    let r = simulate(MachineConfig::with_cores(4), streams).unwrap();
    let commits: u64 = r.truth.iter().map(|t| t.tx_commits).sum();
    let aborts: u64 = r.truth.iter().map(|t| t.tx_aborts).sum();
    assert_eq!(commits, 100, "every transaction must eventually commit");
    assert!(aborts > 0, "contended counter must cause rollbacks");
}

#[test]
fn aborted_time_is_a_synchronization_penalty() {
    let streams: Vec<Box<dyn OpStream>> = (0..4)
        .map(|_| boxed(tx_counter_update(25, 7, 200)))
        .collect();
    let r = simulate(MachineConfig::with_cores(4), streams).unwrap();
    let aborts: u64 = r.truth.iter().map(|t| t.tx_aborts).sum();
    assert!(aborts > 0);
    let stack = r.stack(&AccountingConfig::default()).unwrap();
    assert!(
        stack.component(Component::Spinning) > 0.05,
        "rollback time must appear in the sync (spinning) component: {:?}",
        stack.overheads()
    );
}

#[test]
fn rollback_replays_the_whole_body() {
    // The replayed body re-executes loads/stores/compute, so total
    // committed work (instructions beyond aborts) stays consistent:
    // every thread commits all its transactions exactly once.
    let streams: Vec<Box<dyn OpStream>> = (0..2)
        .map(|_| boxed(tx_counter_update(30, 9, 60)))
        .collect();
    let r = simulate(MachineConfig::with_cores(2), streams).unwrap();
    for t in &r.truth {
        assert_eq!(t.tx_commits, 30);
    }
}

#[test]
fn transactions_are_deterministic() {
    let mk = || -> Vec<Box<dyn OpStream>> {
        (0..4)
            .map(|_| boxed(tx_counter_update(15, 3, 90)))
            .collect()
    };
    let a = simulate(MachineConfig::with_cores(4), mk()).unwrap();
    let b = simulate(MachineConfig::with_cores(4), mk()).unwrap();
    assert_eq!(a.tp_cycles, b.tp_cycles);
    assert_eq!(a.truth, b.truth);
}

#[test]
fn read_only_sharing_does_not_conflict() {
    // Concurrent transactional readers of the same line never abort.
    let reader = || {
        let mut ops = vec![Op::TxBegin];
        for _ in 0..10 {
            ops.push(Op::Load(42));
            ops.push(Op::Compute(100));
        }
        ops.push(Op::TxEnd);
        boxed(ops)
    };
    let r = simulate(
        MachineConfig::with_cores(4),
        vec![reader(), reader(), reader(), reader()],
    )
    .unwrap();
    let aborts: u64 = r.truth.iter().map(|t| t.tx_aborts).sum();
    assert_eq!(aborts, 0);
}

#[test]
fn nested_transaction_is_a_protocol_violation() {
    let r = simulate(
        MachineConfig::with_cores(1),
        vec![boxed(vec![Op::TxBegin, Op::TxBegin])],
    );
    assert!(matches!(r, Err(SimError::ProtocolViolation { .. })));
}

#[test]
fn commit_without_begin_is_a_protocol_violation() {
    let r = simulate(MachineConfig::with_cores(1), vec![boxed(vec![Op::TxEnd])]);
    assert!(matches!(r, Err(SimError::ProtocolViolation { .. })));
}

#[test]
fn ending_inside_transaction_is_a_protocol_violation() {
    let r = simulate(
        MachineConfig::with_cores(1),
        vec![boxed(vec![Op::TxBegin, Op::Compute(10)])],
    );
    assert!(matches!(r, Err(SimError::ProtocolViolation { .. })));
}

#[test]
fn locks_and_barriers_forbidden_inside_transactions() {
    for bad in [Op::LockAcquire(0), Op::Barrier(0)] {
        let r = simulate(
            MachineConfig::with_cores(1),
            vec![boxed(vec![Op::TxBegin, bad, Op::TxEnd])],
        );
        assert!(
            matches!(r, Err(SimError::ProtocolViolation { .. })),
            "op {bad:?}"
        );
    }
}

#[test]
fn tm_versus_locks_comparison_runs() {
    // A library use case: compare the same kernel with a lock vs TM.
    let lock_worker = || {
        let mut ops = Vec::new();
        for _ in 0..25 {
            ops.push(Op::LockAcquire(0));
            ops.push(Op::Load(7));
            ops.push(Op::Compute(120));
            ops.push(Op::Store(7));
            ops.push(Op::LockRelease(0));
            ops.push(Op::Compute(50));
        }
        boxed(ops)
    };
    let streams_lock: Vec<Box<dyn OpStream>> = (0..4).map(|_| lock_worker()).collect();
    let streams_tm: Vec<Box<dyn OpStream>> = (0..4)
        .map(|_| boxed(tx_counter_update(25, 7, 120)))
        .collect();
    let lock = simulate(MachineConfig::with_cores(4), streams_lock).unwrap();
    let tm = simulate(MachineConfig::with_cores(4), streams_tm).unwrap();
    // Both complete; each produces a valid stack.
    assert!(lock.stack(&AccountingConfig::default()).unwrap().is_valid());
    assert!(tm.stack(&AccountingConfig::default()).unwrap().is_valid());
}
