//! Event queues for the engine's near-monotonic event horizon.
//!
//! The engine pops events in `(time, seq)` order and only ever pushes
//! events at or after the last popped time, with the overwhelming
//! majority landing within a few thousand cycles (memory latencies, spin
//! thresholds, wake-ups). [`TimingWheel`] exploits that shape: a calendar
//! ring of single-cycle slots covering a sliding window ahead of the
//! cursor, with a 64-bit occupancy bitmap to skip empty slots in word
//! steps, and a small overflow heap for the rare far-future event
//! (scheduler quanta, transaction back-offs, multi-thousand-cycle compute
//! blocks). Push and pop are O(1) for in-window events.
//!
//! [`HeapQueue`] is the original `BinaryHeap` implementation, kept as the
//! reference: both queues implement the identical total order, which the
//! randomized tests in `tests/queue_equivalence.rs` and this module
//! verify. The engine selects the implementation through
//! [`EventQueueKind`](crate::config::EventQueueKind), so whole-simulation
//! equivalence can be asserted too.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Number of single-cycle slots in the wheel window. Covers every
/// latency the machine model produces on its hot paths (DRAM round
/// trips, spin thresholds, lock hand-offs, wake latencies) — only
/// scheduler quanta and large compute blocks overflow.
const WHEEL_SLOTS: usize = 16_384;

/// A timestamped entry: `(time, seq, payload)`. Ordering ignores the
/// payload.
#[derive(Debug, Clone, Copy)]
struct Entry<T> {
    time: u64,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        (self.time, self.seq) == (other.time, other.seq)
    }
}

impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// The reference event queue: a global binary heap (the original engine
/// representation).
#[derive(Debug)]
pub struct HeapQueue<T> {
    heap: BinaryHeap<Reverse<Entry<T>>>,
}

impl<T: Copy> HeapQueue<T> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        HeapQueue {
            heap: BinaryHeap::new(),
        }
    }

    /// Enqueues `payload` at `(time, seq)`.
    pub fn push(&mut self, time: u64, seq: u64, payload: T) {
        self.heap.push(Reverse(Entry { time, seq, payload }));
    }

    /// Dequeues the `(time, seq)`-minimal event.
    pub fn pop(&mut self) -> Option<(u64, u64, T)> {
        self.heap.pop().map(|Reverse(e)| (e.time, e.seq, e.payload))
    }

    /// Time of the earliest queued event without dequeuing it.
    #[must_use]
    pub fn peek_time(&mut self) -> Option<u64> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Number of queued events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<T: Copy> Default for HeapQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// Index of "no node" in the wheel's node pool.
const NIL: u32 = u32::MAX;

/// A pooled event node: slot chains are intrusive singly-linked lists
/// through a contiguous arena, so steady-state pushes and pops allocate
/// nothing (freed nodes go on a free list).
#[derive(Debug, Clone, Copy)]
struct Node<T> {
    seq: u64,
    payload: T,
    next: u32,
}

/// Indexed calendar/timing-wheel queue (see module docs).
///
/// # Monotonicity contract
///
/// `push(time, ..)` requires `time >=` the time of the last popped event
/// (debug-asserted). The engine satisfies this by construction: handlers
/// only schedule at or after `now`.
#[derive(Debug)]
pub struct TimingWheel<T> {
    /// Head node of `slots[t & (WHEEL_SLOTS-1)]`: the events for time `t`
    /// within the window `[cursor, cursor + WHEEL_SLOTS)`, chained in
    /// `seq` order.
    heads: Vec<u32>,
    /// Tail node per slot (O(1) append for the common increasing-seq
    /// push).
    tails: Vec<u32>,
    /// One bit per slot: slot non-empty.
    occupied: Vec<u64>,
    /// Node arena plus free list. In-flight events are bounded by the
    /// thread count, so this stays tiny and hot.
    pool: Vec<Node<T>>,
    free: u32,
    /// Time of the earliest event the window can currently hold; always
    /// `>=` the last popped time.
    cursor: u64,
    /// Far-future events (`time >= cursor + WHEEL_SLOTS` at push time).
    overflow: BinaryHeap<Reverse<Entry<T>>>,
    len: usize,
    /// Exact time of the earliest queued event, when known. Maintained by
    /// `peek_time`/`pop`/`push` so that the engine's inline-continuation
    /// peeks cost O(1): a peek computes it once, pushes lower it, a pop
    /// either keeps it (slot still has same-time events) or clears it.
    cached_next: Option<u64>,
}

impl<T: Copy> TimingWheel<T> {
    /// Creates an empty wheel with its window starting at time 0.
    #[must_use]
    pub fn new() -> Self {
        TimingWheel {
            heads: vec![NIL; WHEEL_SLOTS],
            tails: vec![NIL; WHEEL_SLOTS],
            occupied: vec![0; WHEEL_SLOTS / 64],
            pool: Vec::new(),
            free: NIL,
            cursor: 0,
            overflow: BinaryHeap::new(),
            len: 0,
            cached_next: None,
        }
    }

    /// Takes a node from the free list (or grows the pool).
    #[inline]
    fn alloc_node(&mut self, seq: u64, payload: T) -> u32 {
        if self.free != NIL {
            let i = self.free;
            self.free = self.pool[i as usize].next;
            self.pool[i as usize] = Node {
                seq,
                payload,
                next: NIL,
            };
            i
        } else {
            self.pool.push(Node {
                seq,
                payload,
                next: NIL,
            });
            (self.pool.len() - 1) as u32
        }
    }

    /// Returns a node to the free list.
    #[inline]
    fn free_node(&mut self, i: u32) {
        self.pool[i as usize].next = self.free;
        self.free = i;
    }

    /// Number of queued events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the queue is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn mark(&mut self, slot: usize) {
        self.occupied[slot / 64] |= 1 << (slot % 64);
    }

    #[inline]
    fn unmark(&mut self, slot: usize) {
        self.occupied[slot / 64] &= !(1 << (slot % 64));
    }

    /// Inserts into a window slot keeping the slot's `seq` order (slots
    /// hold only same-time events, so `seq` alone orders them; drained
    /// overflow events may carry smaller seqs than direct pushes).
    #[inline]
    fn insert_slot(&mut self, time: u64, seq: u64, payload: T) {
        debug_assert!(time >= self.cursor && time - self.cursor < WHEEL_SLOTS as u64);
        let slot = (time as usize) & (WHEEL_SLOTS - 1);
        let node = self.alloc_node(seq, payload);
        let tail = self.tails[slot];
        if tail == NIL {
            // Empty slot.
            self.heads[slot] = node;
            self.tails[slot] = node;
            self.mark(slot);
        } else if self.pool[tail as usize].seq < seq {
            // Common case: appended seqs are increasing.
            self.pool[tail as usize].next = node;
            self.tails[slot] = node;
        } else {
            // Rare: a drained overflow event with an older seq. Walk the
            // (tiny) chain to its ordered position.
            let head = self.heads[slot];
            if seq < self.pool[head as usize].seq {
                self.pool[node as usize].next = head;
                self.heads[slot] = node;
            } else {
                let mut prev = head;
                loop {
                    let next = self.pool[prev as usize].next;
                    if next == NIL || seq < self.pool[next as usize].seq {
                        self.pool[node as usize].next = next;
                        self.pool[prev as usize].next = node;
                        if next == NIL {
                            self.tails[slot] = node;
                        }
                        break;
                    }
                    prev = next;
                }
            }
        }
    }

    /// Enqueues `payload` at `(time, seq)`.
    ///
    /// `seq` must be unique per queue lifetime (the engine's event
    /// counter); `time` must be at or after the last popped time.
    pub fn push(&mut self, time: u64, seq: u64, payload: T) {
        debug_assert!(
            time >= self.cursor,
            "push at {time} before cursor {}",
            self.cursor
        );
        self.len += 1;
        if time - self.cursor < WHEEL_SLOTS as u64 {
            self.insert_slot(time, seq, payload);
        } else {
            self.overflow.push(Reverse(Entry { time, seq, payload }));
        }
        if self.cached_next.is_some_and(|m| time < m) {
            self.cached_next = Some(time);
        }
    }

    /// Moves every overflow event that now fits the window into slots.
    fn drain_overflow(&mut self) {
        while let Some(Reverse(e)) = self.overflow.peek() {
            if e.time - self.cursor >= WHEEL_SLOTS as u64 {
                break;
            }
            let Reverse(e) = self.overflow.pop().expect("peeked");
            self.insert_slot(e.time, e.seq, e.payload);
        }
    }

    /// Time of the earliest queued event without dequeuing it. Does not
    /// move the window (safe to call between engine pushes).
    pub fn peek_time(&mut self) -> Option<u64> {
        if self.cached_next.is_some() {
            return self.cached_next;
        }
        if self.len == 0 {
            return None;
        }
        // Everything within the window lives in slots; overflow events
        // beyond the window are never smaller than any slotted event.
        self.drain_overflow();
        let start = (self.cursor as usize) & (WHEEL_SLOTS - 1);
        let time = match self.find_occupied_from(start) {
            Some(slot) => {
                // Ring distance start -> slot gives the event time.
                let dist = slot.wrapping_sub(start) & (WHEEL_SLOTS - 1);
                self.cursor + dist as u64
            }
            // Window empty: the overflow head is the global minimum.
            None => self
                .overflow
                .peek()
                .map(|Reverse(e)| e.time)
                .expect("non-empty queue with empty window has overflow events"),
        };
        self.cached_next = Some(time);
        Some(time)
    }

    /// Dequeues the `(time, seq)`-minimal event.
    pub fn pop(&mut self) -> Option<(u64, u64, T)> {
        let time = self.peek_time()?;
        // Advance the window to the event (a jump past the old window end
        // re-homes pending overflow events first).
        self.cursor = time;
        self.drain_overflow();
        let slot = (time as usize) & (WHEEL_SLOTS - 1);
        let head = self.heads[slot];
        debug_assert!(head != NIL, "cached/scanned slot must be occupied");
        let Node { seq, payload, next } = self.pool[head as usize];
        self.heads[slot] = next;
        if next == NIL {
            self.tails[slot] = NIL;
            self.unmark(slot);
            // Opportunistic refresh: if another occupied slot lies in the
            // same bitmap word at or after this one, it is the exact next
            // minimum (later words hold later times within the window,
            // and all overflow events lie beyond the window after the
            // drain above). Saves the full scan on the next peek.
            self.cached_next = if self.len > 1 {
                let rest = self.occupied[slot / 64] & (!0u64 << (slot % 64));
                (rest != 0).then(|| {
                    let next_slot = (slot / 64) * 64 + rest.trailing_zeros() as usize;
                    time + (next_slot - slot) as u64
                })
            } else {
                None
            };
        } else {
            // Same-time events remain: the minimum is unchanged.
            self.cached_next = Some(time);
        }
        self.free_node(head);
        self.len -= 1;
        Some((time, seq, payload))
    }

    /// First occupied slot in ring order starting at `start`, or `None`
    /// if the whole ring is empty.
    fn find_occupied_from(&self, start: usize) -> Option<usize> {
        let words = self.occupied.len();
        let start_word = start / 64;
        // First word: mask off bits before `start`.
        let first = self.occupied[start_word] & (!0u64 << (start % 64));
        if first != 0 {
            return Some(start_word * 64 + first.trailing_zeros() as usize);
        }
        // Remaining words in ring order, including the wrapped-around
        // low bits of the start word.
        for k in 1..=words {
            let w = (start_word + k) % words;
            let mut bits = self.occupied[w];
            if w == start_word {
                bits &= !(!0u64 << (start % 64));
            }
            if bits != 0 {
                return Some(w * 64 + bits.trailing_zeros() as usize);
            }
        }
        None
    }
}

impl<T: Copy> Default for TimingWheel<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_a_cycle() {
        let mut q: TimingWheel<u32> = TimingWheel::new();
        q.push(5, 1, 10);
        q.push(5, 2, 20);
        q.push(5, 3, 30);
        assert_eq!(q.pop(), Some((5, 1, 10)));
        assert_eq!(q.pop(), Some((5, 2, 20)));
        assert_eq!(q.pop(), Some((5, 3, 30)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn time_order_across_slots() {
        let mut q: TimingWheel<u32> = TimingWheel::new();
        q.push(100, 1, 1);
        q.push(7, 2, 2);
        q.push(5000, 3, 3);
        assert_eq!(q.pop(), Some((7, 2, 2)));
        assert_eq!(q.pop(), Some((100, 1, 1)));
        assert_eq!(q.pop(), Some((5000, 3, 3)));
    }

    #[test]
    fn far_future_overflow_roundtrip() {
        let mut q: TimingWheel<u32> = TimingWheel::new();
        q.push(1_000_000, 1, 1); // overflow
        q.push(10, 2, 2);
        assert_eq!(q.pop(), Some((10, 2, 2)));
        // Push into the (still old) window, beyond it, and pop across the
        // jump.
        q.push(200_000, 3, 3); // also overflow
        assert_eq!(q.pop(), Some((200_000, 3, 3)));
        assert_eq!(q.pop(), Some((1_000_000, 1, 1)));
        assert!(q.is_empty());
    }

    #[test]
    fn overflow_drained_before_window_events() {
        // An event pushed to the overflow must not be overtaken by a
        // later direct push at a smaller time after the window advances.
        let mut q: TimingWheel<u32> = TimingWheel::new();
        q.push(WHEEL_SLOTS as u64 + 100, 1, 1); // overflow at push time
        q.push(0, 2, 2);
        assert_eq!(q.pop(), Some((0, 2, 2)));
        // Window now covers the overflow event's time; push a later-seq
        // event at a *later* time that is in-window.
        q.push(WHEEL_SLOTS as u64 + 200, 3, 3);
        assert_eq!(q.pop(), Some((WHEEL_SLOTS as u64 + 100, 1, 1)));
        assert_eq!(q.pop(), Some((WHEEL_SLOTS as u64 + 200, 3, 3)));
    }

    #[test]
    fn same_time_overflow_and_direct_push_order_by_seq() {
        let t = WHEEL_SLOTS as u64 + 50;
        let mut q: TimingWheel<u32> = TimingWheel::new();
        q.push(t, 1, 1); // overflow (window starts at 0)
        q.push(100, 2, 2);
        assert_eq!(q.pop(), Some((100, 2, 2)));
        // Window now includes t; direct push with a higher seq at the
        // same time must pop *after* the drained overflow event.
        q.push(t, 3, 3);
        assert_eq!(q.pop(), Some((t, 1, 1)));
        assert_eq!(q.pop(), Some((t, 3, 3)));
    }

    #[test]
    fn overflow_not_overtaken_by_later_slotted_event() {
        // cursor 0: events at 10 (slot), 16000 (slot), 17000 (overflow).
        // After popping 16000 the window covers both 17000 and a newly
        // pushed 18000; the drained overflow event must come first.
        let mut q: TimingWheel<u32> = TimingWheel::new();
        q.push(10, 1, 1);
        q.push(16_000, 2, 2);
        q.push(17_000, 3, 3); // beyond [0, 16384): overflow
        assert_eq!(q.pop(), Some((10, 1, 1)));
        assert_eq!(q.pop(), Some((16_000, 2, 2)));
        q.push(18_000, 4, 4); // in-window now
        assert_eq!(q.pop(), Some((17_000, 3, 3)));
        assert_eq!(q.pop(), Some((18_000, 4, 4)));
    }

    #[test]
    fn peek_time_is_stable_and_matches_pop() {
        let mut q: TimingWheel<u32> = TimingWheel::new();
        assert_eq!(q.peek_time(), None);
        q.push(50, 1, 1);
        q.push(40_000, 2, 2);
        assert_eq!(q.peek_time(), Some(50));
        // A smaller push lowers the cached minimum.
        q.push(20, 3, 3);
        assert_eq!(q.peek_time(), Some(20));
        assert_eq!(q.pop(), Some((20, 3, 3)));
        assert_eq!(q.peek_time(), Some(50));
        assert_eq!(q.pop(), Some((50, 1, 1)));
        // Window-empty case: the overflow head is the minimum.
        assert_eq!(q.peek_time(), Some(40_000));
        assert_eq!(q.pop(), Some((40_000, 2, 2)));
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn push_at_current_time_is_poppable() {
        let mut q: TimingWheel<u32> = TimingWheel::new();
        q.push(10, 1, 1);
        assert_eq!(q.pop(), Some((10, 1, 1)));
        q.push(10, 2, 2); // same cycle as the cursor
        assert_eq!(q.pop(), Some((10, 2, 2)));
    }

    #[test]
    fn len_tracks_both_regions() {
        let mut q: TimingWheel<u32> = TimingWheel::new();
        assert!(q.is_empty());
        q.push(1, 1, 1);
        q.push(100_000_000, 2, 2);
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    /// Randomized equivalence against the reference heap under an
    /// engine-shaped (monotonic `now`, bursty deltas) workload.
    #[test]
    fn wheel_equals_heap_on_random_streams() {
        let mut state = 0x8badf00d_u64;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for round in 0..20 {
            let mut wheel: TimingWheel<u64> = TimingWheel::new();
            let mut heap: HeapQueue<u64> = HeapQueue::new();
            let mut seq = 0u64;
            let mut now = 0u64;
            for step in 0..5_000 {
                let pushes = rnd() % 3;
                for _ in 0..pushes {
                    seq += 1;
                    // Engine-shaped deltas: mostly short, sometimes a
                    // quantum-or-backoff scale jump.
                    let delta = match rnd() % 10 {
                        0 => rnd() % 200_000,   // quantum / far future
                        1..=3 => rnd() % 8_000, // sync latencies
                        _ => rnd() % 400,       // compute / memory
                    };
                    wheel.push(now + delta, seq, seq);
                    heap.push(now + delta, seq, seq);
                }
                if rnd() % 4 == 0 {
                    assert_eq!(
                        wheel.peek_time(),
                        heap.peek_time(),
                        "round {round} step {step} peek"
                    );
                }
                if rnd() % 3 != 0 {
                    let a = wheel.pop();
                    let b = heap.pop();
                    assert_eq!(a, b, "round {round} step {step}");
                    if let Some((t, _, _)) = a {
                        now = t;
                    }
                }
                assert_eq!(wheel.len(), heap.len());
            }
            // Drain fully.
            loop {
                let a = wheel.pop();
                let b = heap.pop();
                assert_eq!(a, b);
                if a.is_none() {
                    break;
                }
            }
        }
    }
}
