//! Machine configuration: cores, memory, synchronization policy,
//! scheduler and spin-detection parameters.

use memsim::MemConfig;
use speedup_stacks::error::ConfigError;

/// Out-of-order core timing model.
///
/// The engine exposes `max(0, latency − overlap_window)` of every load's
/// beyond-L1 latency as stall cycles, modelling the paper's "only account
/// interference when the miss blocks the ROB head" rule (§4.1): short LLC
/// hits are fully hidden, DRAM accesses are mostly exposed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CoreModelConfig {
    /// Cycles of memory latency the out-of-order window can hide per load.
    /// Set to 0 for an in-order-style core (then coherency misses become
    /// visible, cf. §4.5).
    pub overlap_window: u64,
}

impl Default for CoreModelConfig {
    fn default() -> Self {
        CoreModelConfig { overlap_window: 30 }
    }
}

/// Synchronization substrate parameters (spin-then-yield policy).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SyncConfig {
    /// Cycles a waiter spins before the OS schedules it out (adaptive
    /// mutex / futex behaviour).
    pub spin_threshold: u64,
    /// Cycles from a release to a *spinning* waiter resuming (cache-line
    /// transfer of the lock word).
    pub lock_handoff: u64,
    /// Cycles from a release to a *yielded* waiter becoming runnable
    /// (futex wake path through the OS).
    pub wake_latency: u64,
    /// Cycles per spin-loop iteration (poll period of the lock word).
    pub spin_iter_cycles: u64,
    /// Instructions per spin-loop iteration (for the dynamic
    /// instruction-count overhead measure, §6).
    pub spin_iter_instrs: u64,
}

impl Default for SyncConfig {
    fn default() -> Self {
        SyncConfig {
            spin_threshold: 1_500,
            lock_handoff: 50,
            wake_latency: 4_000,
            spin_iter_cycles: 8,
            spin_iter_instrs: 4,
        }
    }
}

/// OS scheduler parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SchedConfig {
    /// Context-switch cost in cycles (charged to the incoming thread's
    /// scheduled-out time).
    pub context_switch: u64,
    /// Round-robin time slice when runnable threads exceed cores.
    pub quantum: u64,
}

impl Default for SchedConfig {
    fn default() -> Self {
        SchedConfig {
            context_switch: 1_000,
            quantum: 100_000,
        }
    }
}

/// Which event-queue implementation drives the engine.
///
/// The timing wheel is the production queue; the binary heap is the
/// original implementation, kept as a reference for equivalence testing
/// and baseline benchmarking. Both implement the identical `(time, seq)`
/// total order, so simulation results are bit-identical across the two.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum EventQueueKind {
    /// Indexed calendar/timing wheel with an overflow heap
    /// ([`TimingWheel`](crate::event_queue::TimingWheel)).
    #[default]
    TimingWheel,
    /// Global binary heap ([`HeapQueue`](crate::event_queue::HeapQueue)).
    BinaryHeap,
}

/// Which spin-detection mechanism feeds the accounting (§4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[non_exhaustive]
pub enum SpinDetectorKind {
    /// Tian et al.: a load table marks loads that reload identical data
    /// more than `mark_threshold` times; when a marked load's value
    /// changes (written by another core) the episode is counted.
    Tian {
        /// Same-value reload count before a load is marked as spinning.
        mark_threshold: u32,
    },
    /// Li et al.: backward-branch monitoring with a compact processor-state
    /// signature; detects after `confirm_iterations` unchanged iterations.
    Li {
        /// Loop iterations with unchanged state before confirmation.
        confirm_iterations: u32,
    },
    /// Perfect oracle (simulator ground truth); useful for isolating the
    /// detector's contribution to estimation error.
    Oracle,
}

impl Default for SpinDetectorKind {
    fn default() -> Self {
        SpinDetectorKind::Tian { mark_threshold: 16 }
    }
}

/// Full machine configuration for a simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MachineConfig {
    /// Number of hardware cores. Any non-zero count is supported: the
    /// memory hierarchy's coherence directory keeps an inline one-word
    /// sharer mask up to 64 cores and spills to compact multi-word masks
    /// above (`memsim::Directory`), so 128-core (and larger) machines
    /// simulate without configuration changes.
    pub n_cores: usize,
    /// Memory hierarchy parameters.
    pub mem: MemConfig,
    /// Core timing model.
    pub core: CoreModelConfig,
    /// Synchronization policy.
    pub sync: SyncConfig,
    /// OS scheduler.
    pub sched: SchedConfig,
    /// Spin detector used by the accounting.
    pub spin_detector: SpinDetectorKind,
    /// Event-queue implementation (timing wheel by default; the binary
    /// heap reference is for equivalence tests and baselines).
    pub event_queue: EventQueueKind,
    /// Record per-thread accounting snapshots at every barrier release,
    /// enabling per-region speedup stacks (§4.6: the imbalance before
    /// each barrier then quantifies barrier overhead).
    pub record_regions: bool,
    /// Safety valve: abort the simulation after this many cycles.
    pub max_cycles: u64,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            n_cores: 16,
            mem: MemConfig::default(),
            core: CoreModelConfig::default(),
            sync: SyncConfig::default(),
            sched: SchedConfig::default(),
            spin_detector: SpinDetectorKind::default(),
            event_queue: EventQueueKind::default(),
            record_regions: false,
            max_cycles: 50_000_000_000,
        }
    }
}

impl MachineConfig {
    /// A machine with `n_cores` cores and default parameters otherwise.
    /// There is no upper core-count limit; counts above 64 switch the
    /// coherence directory to its spilled multi-word sharer masks.
    ///
    /// ```
    /// let m = cmpsim::MachineConfig::with_cores(4);
    /// assert_eq!(m.n_cores, 4);
    /// let many = cmpsim::MachineConfig::with_cores(128);
    /// assert_eq!(many.n_cores, 128);
    /// ```
    #[must_use]
    pub fn with_cores(n_cores: usize) -> Self {
        MachineConfig {
            n_cores,
            ..MachineConfig::default()
        }
    }

    /// Checks the configuration before a simulation starts, replacing the
    /// engine's constructor `assert!`s with a typed error: the
    /// fault-tolerant sweep layer surfaces it as `SimError::Config`
    /// (exit code 3) instead of a panic.
    ///
    /// ```
    /// use cmpsim::MachineConfig;
    /// assert!(MachineConfig::default().validate().is_ok());
    /// assert!(MachineConfig::with_cores(0).validate().is_err());
    /// ```
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint: zero cores, a zero cycle
    /// limit, a zero scheduler quantum or a zero spin-poll period (the
    /// sync substrate divides by it), or a zero ATD sampling period.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.n_cores == 0 {
            return Err(ConfigError::zero("n_cores"));
        }
        if self.max_cycles == 0 {
            return Err(ConfigError::zero("max_cycles"));
        }
        if self.sched.quantum == 0 {
            return Err(ConfigError::zero("sched.quantum"));
        }
        if self.sync.spin_iter_cycles == 0 {
            return Err(ConfigError::zero("sync.spin_iter_cycles"));
        }
        if self.mem.atd_sample_period == 0 {
            return Err(ConfigError::zero("mem.atd_sample_period"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_sane() {
        let m = MachineConfig::default();
        assert_eq!(m.n_cores, 16);
        assert!(m.sync.spin_threshold < m.sched.quantum);
        assert!(m.sync.lock_handoff < m.sync.wake_latency);
    }

    #[test]
    fn with_cores() {
        assert_eq!(MachineConfig::with_cores(2).n_cores, 2);
    }

    #[test]
    fn validate_rejects_zero_counts() {
        assert!(MachineConfig::default().validate().is_ok());
        assert!(MachineConfig::with_cores(0).validate().is_err());
        let m = MachineConfig {
            max_cycles: 0,
            ..MachineConfig::default()
        };
        assert!(m.validate().is_err());
        let mut m = MachineConfig::default();
        m.sched.quantum = 0;
        assert!(m.validate().is_err());
        let mut m = MachineConfig::default();
        m.sync.spin_iter_cycles = 0;
        assert!(m.validate().is_err());
        let mut m = MachineConfig::default();
        m.mem.atd_sample_period = 0;
        assert!(m.validate().is_err());
    }
}
