//! The abstract operation stream executed by simulated threads.
//!
//! Workload models produce a deterministic stream of [`Op`]s per thread;
//! the engine interprets them against the machine model. The vocabulary is
//! deliberately minimal — computation, memory accesses and the two
//! synchronization primitives the paper analyses (locks and barriers).

use memsim::LineAddr;

/// Identifier of a lock variable within a workload.
pub type LockId = u32;
/// Identifier of a barrier within a workload.
pub type BarrierId = u32;

/// One abstract operation of a simulated thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// `n` cycles (and `n` instructions) of pure computation.
    Compute(u32),
    /// A load from the cache line `LineAddr`.
    Load(LineAddr),
    /// A store to the cache line `LineAddr`.
    Store(LineAddr),
    /// Acquire a lock (blocking; spin-then-yield while contended).
    LockAcquire(LockId),
    /// Release a previously acquired lock.
    LockRelease(LockId),
    /// Wait on a barrier shared by all threads of the workload.
    Barrier(BarrierId),
    /// Begin a transaction (§4.3 alternative to lock-based critical
    /// sections). Conflicting transactions are rolled back and replayed;
    /// the wasted time is charged as a synchronization (spin) penalty.
    TxBegin,
    /// Commit the current transaction.
    TxEnd,
}

/// A deterministic generator of a thread's operation stream.
///
/// Implementations must be deterministic: the engine's reproducibility
/// guarantee (same configuration ⇒ same cycle counts) depends on it.
pub trait OpStream {
    /// Produces the next operation, or `None` when the thread is done.
    fn next_op(&mut self) -> Option<Op>;
}

/// An [`OpStream`] over a pre-materialized vector (testing, tiny traces).
///
/// # Examples
///
/// ```
/// use cmpsim::{Op, OpStream, VecStream};
/// let mut s = VecStream::new(vec![Op::Compute(10), Op::Load(4)]);
/// assert_eq!(s.next_op(), Some(Op::Compute(10)));
/// assert_eq!(s.next_op(), Some(Op::Load(4)));
/// assert_eq!(s.next_op(), None);
/// ```
#[derive(Debug, Clone)]
pub struct VecStream {
    ops: std::vec::IntoIter<Op>,
}

impl VecStream {
    /// Wraps a vector of operations.
    #[must_use]
    pub fn new(ops: Vec<Op>) -> Self {
        VecStream {
            ops: ops.into_iter(),
        }
    }
}

impl OpStream for VecStream {
    fn next_op(&mut self) -> Option<Op> {
        self.ops.next()
    }
}

impl<F: FnMut() -> Option<Op>> OpStream for F {
    fn next_op(&mut self) -> Option<Op> {
        self()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_stream_order() {
        let mut s = VecStream::new(vec![Op::Store(1), Op::Barrier(0)]);
        assert_eq!(s.next_op(), Some(Op::Store(1)));
        assert_eq!(s.next_op(), Some(Op::Barrier(0)));
        assert_eq!(s.next_op(), None);
        assert_eq!(s.next_op(), None);
    }

    #[test]
    fn closures_are_streams() {
        let mut remaining = 2;
        let mut s = move || {
            if remaining > 0 {
                remaining -= 1;
                Some(Op::Compute(1))
            } else {
                None
            }
        };
        let stream: &mut dyn OpStream = &mut s;
        assert_eq!(stream.next_op(), Some(Op::Compute(1)));
        assert_eq!(stream.next_op(), Some(Op::Compute(1)));
        assert_eq!(stream.next_op(), None);
    }
}
