//! Spin-detection mechanisms (§4.3).
//!
//! The engine knows the ground-truth spin interval of every wait episode;
//! the *accounting* must instead rely on a hardware-plausible detector.
//! Both mechanisms from the paper are implemented:
//!
//! - [`TianDetector`] (Tian et al.): a small load table marks loads that
//!   reload identical data more than a threshold number of times; when a
//!   marked load finally observes a value written by another core, the
//!   elapsed time since the first occurrence is counted as spinning. Short
//!   episodes (fewer iterations than the mark threshold) go undetected —
//!   one of the paper's acknowledged error sources.
//! - [`LiDetector`] (Li et al.): backward-branch monitoring with a compact
//!   register-state signature; confirms a spin loop after a configurable
//!   number of unchanged iterations (typically far fewer than Tian's).
//! - [`OracleDetector`]: simulator ground truth, for ablation.

use crate::config::SpinDetectorKind;

/// One completed wait episode, as observed by the polling core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpinEpisode {
    /// Synthetic PC of the polling load (one per lock/barrier site).
    pub pc: u64,
    /// Cache line being polled.
    pub line: u64,
    /// Episode length in cycles (from first poll to the value change or
    /// the OS scheduling the thread out).
    pub cycles: u64,
    /// Poll-loop iteration period in cycles.
    pub iter_cycles: u64,
}

impl SpinEpisode {
    /// Number of same-value poll iterations in the episode.
    #[must_use]
    pub fn iterations(&self) -> u64 {
        self.cycles.checked_div(self.iter_cycles).unwrap_or(0)
    }
}

/// A spin detector consuming wait episodes and reporting detected cycles.
pub trait SpinDetector {
    /// Observes a completed episode, returning how many of its cycles the
    /// mechanism attributes to spinning.
    fn observe(&mut self, episode: &SpinEpisode) -> u64;
}

/// Builds the detector selected by a [`SpinDetectorKind`].
#[must_use]
pub fn build_detector(kind: SpinDetectorKind) -> Box<dyn SpinDetector> {
    match kind {
        SpinDetectorKind::Tian { mark_threshold } => Box::new(TianDetector::new(8, mark_threshold)),
        SpinDetectorKind::Li { confirm_iterations } => {
            Box::new(LiDetector::new(confirm_iterations))
        }
        SpinDetectorKind::Oracle => Box::new(OracleDetector),
    }
}

#[derive(Debug, Clone, Copy)]
struct LoadEntry {
    pc: u64,
    line: u64,
    lru: u64,
    valid: bool,
}

/// The Tian et al. load-table detector.
///
/// # Examples
///
/// ```
/// use cmpsim::spin::{SpinDetector, SpinEpisode, TianDetector};
/// let mut d = TianDetector::new(8, 16);
/// // 300 iterations of 8 cycles: marked, fully counted.
/// let long = SpinEpisode { pc: 1, line: 10, cycles: 2400, iter_cycles: 8 };
/// assert_eq!(d.observe(&long), 2400);
/// // 5 iterations: below the mark threshold, undetected.
/// let short = SpinEpisode { pc: 1, line: 10, cycles: 40, iter_cycles: 8 };
/// assert_eq!(d.observe(&short), 0);
/// ```
#[derive(Debug)]
pub struct TianDetector {
    entries: Vec<LoadEntry>,
    mark_threshold: u32,
    clock: u64,
}

impl TianDetector {
    /// Creates a detector with a `capacity`-entry load table (paper: 8,
    /// assuming a spin loop contains at most 8 loads) and the given
    /// same-value mark threshold.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize, mark_threshold: u32) -> Self {
        assert!(capacity > 0, "load table capacity must be non-zero");
        TianDetector {
            entries: vec![
                LoadEntry {
                    pc: 0,
                    line: 0,
                    lru: 0,
                    valid: false
                };
                capacity
            ],
            mark_threshold,
            clock: 0,
        }
    }
}

impl SpinDetector for TianDetector {
    fn observe(&mut self, episode: &SpinEpisode) -> u64 {
        self.clock += 1;
        let clock = self.clock;
        // Install / refresh the table entry for this polling load. The
        // entry survives across episodes of the same lock; under pressure
        // (more polled sites than entries) the LRU entry is replaced,
        // which in real hardware would lose the mark — modelled here by
        // table management only, since marking is re-established within
        // one episode anyway.
        let slot = match self
            .entries
            .iter()
            .position(|e| e.valid && e.pc == episode.pc && e.line == episode.line)
        {
            Some(i) => i,
            None => {
                let (i, _) = self
                    .entries
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, e)| if e.valid { e.lru } else { 0 })
                    .expect("non-empty table");
                i
            }
        };
        self.entries[slot] = LoadEntry {
            pc: episode.pc,
            line: episode.line,
            lru: clock,
            valid: true,
        };
        // Marked only if the load reloaded the same value often enough;
        // then the eventual value change (written by another core) counts
        // the full episode from the first-occurrence timestamp.
        if episode.iterations() > u64::from(self.mark_threshold) {
            episode.cycles
        } else {
            0
        }
    }
}

/// The Li et al. backward-branch detector: confirms spinning after
/// `confirm_iterations` iterations with an unchanged register-state
/// signature, then counts the full episode.
#[derive(Debug, Clone, Copy)]
pub struct LiDetector {
    confirm_iterations: u32,
}

impl LiDetector {
    /// Creates the detector with the given confirmation threshold.
    #[must_use]
    pub fn new(confirm_iterations: u32) -> Self {
        LiDetector { confirm_iterations }
    }
}

impl SpinDetector for LiDetector {
    fn observe(&mut self, episode: &SpinEpisode) -> u64 {
        if episode.iterations() >= u64::from(self.confirm_iterations.max(1)) {
            episode.cycles
        } else {
            0
        }
    }
}

/// Ground-truth detector: every wait cycle is reported as spinning.
#[derive(Debug, Clone, Copy)]
pub struct OracleDetector;

impl SpinDetector for OracleDetector {
    fn observe(&mut self, episode: &SpinEpisode) -> u64 {
        episode.cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ep(pc: u64, cycles: u64) -> SpinEpisode {
        SpinEpisode {
            pc,
            line: pc + 100,
            cycles,
            iter_cycles: 8,
        }
    }

    #[test]
    fn tian_detects_long_misses_short() {
        let mut d = TianDetector::new(8, 16);
        assert_eq!(d.observe(&ep(1, 8 * 100)), 800);
        assert_eq!(d.observe(&ep(1, 8 * 16)), 0); // exactly threshold: not "> threshold"
        assert_eq!(d.observe(&ep(1, 8 * 17)), 8 * 17);
    }

    #[test]
    fn tian_table_replacement_under_pressure() {
        let mut d = TianDetector::new(2, 4);
        for pc in 0..10 {
            // All long: always detected regardless of replacement.
            assert_eq!(d.observe(&ep(pc, 8 * 50)), 400);
        }
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn tian_rejects_zero_capacity() {
        let _ = TianDetector::new(0, 4);
    }

    #[test]
    fn li_has_lower_threshold() {
        let mut li = LiDetector::new(2);
        let mut tian = TianDetector::new(8, 16);
        let short = ep(1, 8 * 4); // 4 iterations
        assert_eq!(li.observe(&short), 32);
        assert_eq!(tian.observe(&short), 0);
    }

    #[test]
    fn oracle_counts_everything() {
        let mut o = OracleDetector;
        assert_eq!(o.observe(&ep(1, 3)), 3);
    }

    #[test]
    fn zero_iter_cycles_safe() {
        let e = SpinEpisode {
            pc: 0,
            line: 0,
            cycles: 100,
            iter_cycles: 0,
        };
        assert_eq!(e.iterations(), 0);
        let mut d = TianDetector::new(2, 1);
        assert_eq!(d.observe(&e), 0);
    }

    #[test]
    fn build_detector_dispatch() {
        let mut d = build_detector(SpinDetectorKind::Oracle);
        assert_eq!(d.observe(&ep(0, 10)), 10);
        let mut d = build_detector(SpinDetectorKind::Li {
            confirm_iterations: 1,
        });
        assert_eq!(d.observe(&ep(0, 10)), 10);
        let mut d = build_detector(SpinDetectorKind::default());
        assert_eq!(d.observe(&ep(0, 10)), 0);
    }
}
