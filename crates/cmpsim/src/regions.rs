//! Per-region speedup stacks (§4.6).
//!
//! The paper notes that hardware accounting cannot distinguish lock
//! spinning from barrier spinning, so program-wide stacks fold barrier
//! imbalance into the synchronization components — but "this problem can
//! be solved by computing speedup stacks for each region between
//! consecutive barriers; the imbalance before each barrier then
//! quantifies barrier overhead."
//!
//! This module implements exactly that: with
//! [`MachineConfig::record_regions`](crate::MachineConfig) enabled, the
//! engine snapshots cumulative counters at every barrier release;
//! [`region_counters`] turns consecutive snapshots into per-region
//! [`ThreadCounters`] where
//!
//! - each thread's `active_end_cycle` is its *arrival* at the boundary
//!   barrier (so the barrier wait becomes the imbalance component), and
//! - the spin/yield cycles spent waiting on that barrier are subtracted
//!   from the sync components (they are imbalance now, not
//!   synchronization).

use speedup_stacks::{AccountingConfig, SpeedupStack, StackError, ThreadCounters};

use crate::engine::{RegionSnapshot, SimResult};

/// A tail shorter than this after the last barrier is just the barrier's
/// own exit latency (handoff / wake-up), not a program region.
const TAIL_EPSILON_CYCLES: u64 = 1_000;

/// One barrier-delimited region, ready for stack construction.
#[derive(Debug, Clone)]
pub struct Region {
    /// First cycle of the region.
    pub start_cycle: u64,
    /// Last cycle of the region (the barrier release, or program end for
    /// the tail region).
    pub end_cycle: u64,
    /// Per-thread counters, rebased to the region (cycle 0 = `start_cycle`).
    pub counters: Vec<ThreadCounters>,
}

impl Region {
    /// Region duration in cycles.
    #[must_use]
    pub fn tp_cycles(&self) -> u64 {
        self.end_cycle - self.start_cycle
    }

    /// Builds this region's speedup stack.
    ///
    /// # Errors
    ///
    /// Propagates [`StackError`] for degenerate regions (zero duration).
    pub fn stack(&self, cfg: &AccountingConfig) -> Result<SpeedupStack, StackError> {
        SpeedupStack::from_counters(&self.counters, self.tp_cycles(), cfg)
    }
}

fn diff_counters(
    later: &ThreadCounters,
    earlier: &ThreadCounters,
    barrier_spin_delta: f64,
    barrier_yield_delta: f64,
    arrival_in_region: u64,
) -> ThreadCounters {
    ThreadCounters {
        // Arrival at the boundary barrier: the wait until the release
        // becomes imbalance (§4.6).
        active_end_cycle: arrival_in_region,
        spin_cycles: (later.spin_cycles - earlier.spin_cycles - barrier_spin_delta).max(0.0),
        yield_cycles: (later.yield_cycles - earlier.yield_cycles - barrier_yield_delta).max(0.0),
        mem_interference_cycles: later.mem_interference_cycles - earlier.mem_interference_cycles,
        sampled_interthread_miss_stall_cycles: later.sampled_interthread_miss_stall_cycles
            - earlier.sampled_interthread_miss_stall_cycles,
        sampled_interthread_misses: later.sampled_interthread_misses
            - earlier.sampled_interthread_misses,
        sampled_interthread_hits: later.sampled_interthread_hits - earlier.sampled_interthread_hits,
        sampled_llc_accesses: later.sampled_llc_accesses - earlier.sampled_llc_accesses,
        llc_accesses: later.llc_accesses - earlier.llc_accesses,
        llc_load_misses: later.llc_load_misses - earlier.llc_load_misses,
        llc_load_miss_stall_cycles: later.llc_load_miss_stall_cycles
            - earlier.llc_load_miss_stall_cycles,
        coherency_miss_cycles: later.coherency_miss_cycles - earlier.coherency_miss_cycles,
        instructions: later.instructions - earlier.instructions,
        spin_instructions: later.spin_instructions - earlier.spin_instructions,
    }
}

fn snapshot_region(start: u64, prev: Option<&RegionSnapshot>, cur: &RegionSnapshot) -> Region {
    let n = cur.counters.len();
    let zero_counters: Vec<ThreadCounters> = vec![ThreadCounters::default(); n];
    let zeros: Vec<f64> = vec![0.0; n];
    let (earlier_c, earlier_bs, earlier_by) = match prev {
        Some(p) => (&p.counters, &p.barrier_spin, &p.barrier_yield),
        None => (&zero_counters, &zeros, &zeros),
    };
    let counters = (0..n)
        .map(|i| {
            // A thread's arrival can precede the region start only through
            // boundary rounding (wake-up charged after release); clamp.
            let arrival = cur.arrivals[i].max(start) - start;
            diff_counters(
                &cur.counters[i],
                &earlier_c[i],
                cur.barrier_spin[i] - earlier_bs[i],
                cur.barrier_yield[i] - earlier_by[i],
                arrival,
            )
        })
        .collect();
    Region {
        start_cycle: start,
        end_cycle: cur.release_cycle,
        counters,
    }
}

/// Splits a region-recorded run into barrier-delimited [`Region`]s.
///
/// The final region (between the last barrier and program end) is
/// included when it is longer than the barrier exit latency; there the
/// true `active_end_cycle` is used, so end-of-program imbalance appears
/// as usual.
///
/// Returns an empty vector when the run recorded no snapshots (workload
/// without barriers, or [`record_regions`] disabled).
///
/// [`record_regions`]: crate::MachineConfig::record_regions
#[must_use]
pub fn region_counters(result: &SimResult) -> Vec<Region> {
    let mut out = Vec::with_capacity(result.regions.len() + 1);
    let mut start = 0u64;
    let mut prev: Option<&RegionSnapshot> = None;
    for snap in &result.regions {
        if snap.release_cycle > start {
            out.push(snapshot_region(start, prev, snap));
        }
        start = snap.release_cycle;
        prev = Some(snap);
    }
    // Tail region after the last barrier (ignoring the barrier's own
    // exit latency when the program ends right there).
    if let Some(last) = prev {
        if result.tp_cycles > last.release_cycle + TAIL_EPSILON_CYCLES {
            let tail = RegionSnapshot {
                release_cycle: result.tp_cycles,
                arrivals: result.counters.iter().map(|c| c.active_end_cycle).collect(),
                counters: result.counters.clone(),
                barrier_spin: last.barrier_spin.clone(),
                barrier_yield: last.barrier_yield.clone(),
            };
            out.push(snapshot_region(start, prev, &tail));
        }
    }
    out
}

/// Builds one speedup stack per barrier-delimited region.
///
/// # Errors
///
/// Propagates [`StackError`] from stack construction.
pub fn region_stacks(
    result: &SimResult,
    cfg: &AccountingConfig,
) -> Result<Vec<SpeedupStack>, StackError> {
    region_counters(result)
        .iter()
        .map(|r| r.stack(cfg))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MachineConfig, Op, OpStream, Simulation, VecStream};
    use speedup_stacks::Component;

    fn run_with_regions(streams: Vec<Box<dyn OpStream>>, cores: usize) -> SimResult {
        let mut cfg = MachineConfig::with_cores(cores);
        cfg.record_regions = true;
        Simulation::new(cfg, streams).run().unwrap()
    }

    fn boxed(ops: Vec<Op>) -> Box<dyn OpStream> {
        Box::new(VecStream::new(ops))
    }

    #[test]
    fn no_barriers_no_regions() {
        let r = run_with_regions(vec![boxed(vec![Op::Compute(100)])], 1);
        assert!(region_counters(&r).is_empty());
    }

    #[test]
    fn regions_cover_the_run() {
        let mk = |a: u32, b: u32| {
            boxed(vec![
                Op::Compute(a),
                Op::Barrier(0),
                Op::Compute(b),
                Op::Barrier(0),
            ])
        };
        let r = run_with_regions(vec![mk(1000, 2000), mk(1000, 2000)], 2);
        let regions = region_counters(&r);
        assert_eq!(regions.len(), 2);
        assert_eq!(regions[0].start_cycle, 0);
        assert_eq!(regions[0].end_cycle, regions[1].start_cycle);
        // The run ends at the last barrier (plus its exit latency, which
        // is not a region).
        assert!(regions[1].end_cycle <= r.tp_cycles);
        assert!(r.tp_cycles - regions[1].end_cycle < TAIL_EPSILON_CYCLES);
    }

    #[test]
    fn barrier_wait_becomes_region_imbalance() {
        // Thread 0 is slow in region 0: thread 1's barrier wait must show
        // as *imbalance* in region 0's stack, not as spinning/yielding.
        let t0 = boxed(vec![Op::Compute(50_000), Op::Barrier(0), Op::Compute(100)]);
        let t1 = boxed(vec![Op::Compute(100), Op::Barrier(0), Op::Compute(100)]);
        let r = run_with_regions(vec![t0, t1], 2);
        let stacks = region_stacks(&r, &AccountingConfig::default()).unwrap();
        assert_eq!(stacks.len(), 2);
        let region0 = &stacks[0];
        assert!(
            region0.component(Component::Imbalance) > 0.8,
            "barrier wait must be imbalance, got {:?}",
            region0.overheads()
        );
        assert!(
            region0.component(Component::Spinning) + region0.component(Component::Yielding) < 0.1,
            "sync components must be reclassified: {:?}",
            region0.overheads()
        );
    }

    #[test]
    fn lock_spinning_stays_synchronization_within_region() {
        // Contended lock inside a region: that spin must remain in the
        // spinning component (only *barrier* waits are reclassified).
        let mk = || {
            boxed(vec![
                Op::LockAcquire(0),
                Op::Compute(800),
                Op::LockRelease(0),
                Op::Barrier(0),
            ])
        };
        let r = run_with_regions(vec![mk(), mk()], 2);
        let stacks = region_stacks(&r, &AccountingConfig::default()).unwrap();
        let total_spin: f64 = stacks
            .iter()
            .map(|s| s.component(Component::Spinning))
            .sum();
        assert!(
            total_spin > 0.1,
            "lock spin must survive regioning: {total_spin}"
        );
    }

    #[test]
    fn tail_region_present_when_work_follows_last_barrier() {
        let mk = |tail: u32| boxed(vec![Op::Compute(500), Op::Barrier(0), Op::Compute(tail)]);
        let r = run_with_regions(vec![mk(5_000), mk(100)], 2);
        let regions = region_counters(&r);
        assert_eq!(regions.len(), 2);
        let tail = &regions[1];
        let stack = tail.stack(&AccountingConfig::default()).unwrap();
        // Thread 1 finishes early in the tail: end-of-program imbalance.
        assert!(stack.component(Component::Imbalance) > 0.5);
    }

    #[test]
    fn region_components_sum_to_whole_run_modulo_boundary() {
        // Sanity: total instructions across regions equal the run's.
        let mk = || {
            boxed(vec![
                Op::Compute(1_000),
                Op::Barrier(0),
                Op::Compute(2_000),
                Op::Barrier(0),
            ])
        };
        let r = run_with_regions(vec![mk(), mk()], 2);
        let regions = region_counters(&r);
        let per_region: u64 = regions
            .iter()
            .flat_map(|reg| reg.counters.iter().map(|c| c.instructions))
            .sum();
        let total: u64 = r.counters.iter().map(|c| c.instructions).sum();
        assert_eq!(per_region, total);
    }
}
