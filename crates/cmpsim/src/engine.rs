//! The event-driven simulation engine.
//!
//! The engine advances a set of software threads over `n_cores` hardware
//! cores in strict global time order, so all shared state — the memory
//! hierarchy, locks, barriers, the run queue — is mutated causally.
//! Everything is deterministic: identical configuration and op streams
//! produce identical cycle counts.
//!
//! ## Hot-path data structures
//!
//! Events flow through an **indexed timing wheel**
//! ([`event_queue::TimingWheel`](crate::event_queue::TimingWheel)): a
//! calendar ring of single-cycle slots with a bitmap index, sized for the
//! engine's near-monotonic event horizon, with an overflow heap for the
//! rare far-future event. The original `BinaryHeap` remains available as
//! [`EventQueueKind::BinaryHeap`](crate::config::EventQueueKind) — both
//! implement the same `(time, seq)` total order, so results are
//! bit-identical (asserted by the equivalence test-suite).
//!
//! Lock and barrier state lives in **dense `Vec`-indexed tables**: sync
//! ids are small integers minted by the workload generator, so resolving
//! a lock is an array index instead of a `HashMap` probe. Only the
//! transactional read/write line-sets — genuinely sparse over the line
//! address space — use a hash map, keyed with
//! [`memsim::fx::FxHasher`] rather than SipHash.
//!
//! ## Synchronization model
//!
//! Waiters on locks and barriers follow a *spin-then-yield* policy: a
//! waiter spins on its core for [`SyncConfig::spin_threshold`] cycles
//! (charged as spinning, detected by the configured spin detector), then
//! the OS schedules it out (charged as yielding until it next runs).
//! Releases hand off FIFO: still-spinning waiters resume after a cache-line
//! handoff; yielded waiters take the slow wake-up path through the
//! scheduler and wait for a free core.
//!
//! [`SyncConfig::spin_threshold`]: crate::config::SyncConfig::spin_threshold

use std::collections::VecDeque;
use std::fmt;

use memsim::{FxHashMap, LineAddr, MemoryHierarchy, ServedBy};
use speedup_stacks::{AccountingConfig, SpeedupStack, StackError, ThreadCounters};

use crate::config::{EventQueueKind, MachineConfig};
use crate::event_queue::{HeapQueue, TimingWheel};
use crate::ops::{Op, OpStream};
use crate::spin::{build_detector, SpinDetector, SpinEpisode};

/// Line-address region reserved for lock variables. Sits above every
/// workload data region but low enough that tags stay within `memsim`'s
/// compact-tag range for all supported cache geometries.
const LOCK_REGION: LineAddr = 1 << 33;
/// Line-address region reserved for barrier variables.
const BARRIER_REGION: LineAddr = (1 << 33) + (1 << 20);
/// Sync ids must stay below the lock/barrier region spacing — this also
/// bounds the dense lock/barrier tables (a rogue id would otherwise ask
/// for a gigantic allocation, and its lock line would alias a barrier
/// line).
const MAX_SYNC_IDS: u64 = 1 << 20;
/// Cycles to commit a transaction (write-set publication).
const TX_COMMIT_COST: u64 = 30;

type ThreadId = usize;

/// Errors terminating a simulation abnormally.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// The cycle safety valve ([`MachineConfig::max_cycles`]) fired.
    CycleLimitExceeded {
        /// Cycle count at abort.
        at: u64,
    },
    /// No more events but some threads never finished (e.g. a barrier that
    /// can never fill, or a lock released by nobody).
    Deadlock {
        /// Simulation time when the event queue drained.
        time: u64,
        /// Threads that had not finished.
        unfinished: Vec<usize>,
    },
    /// A thread released a lock it does not hold, or similar misuse.
    ProtocolViolation {
        /// Offending thread.
        thread: usize,
        /// Human-readable description.
        what: &'static str,
    },
    /// A cooperative per-run deadline ([`Simulation::with_deadline`])
    /// expired. Unlike [`SimError::CycleLimitExceeded`] this is not a
    /// config limit but a budget imposed by a sweep watchdog; the
    /// fault-tolerant runner treats it as a point failure.
    DeadlineExceeded {
        /// Cycle count at abort.
        at: u64,
    },
    /// The machine configuration failed [`MachineConfig::validate`].
    InvalidConfig(speedup_stacks::error::ConfigError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::CycleLimitExceeded { at } => write!(f, "cycle limit exceeded at cycle {at}"),
            SimError::Deadlock { time, unfinished } => {
                write!(
                    f,
                    "deadlock at cycle {time}: threads {unfinished:?} never finished"
                )
            }
            SimError::ProtocolViolation { thread, what } => {
                write!(f, "thread {thread} violated the sync protocol: {what}")
            }
            SimError::DeadlineExceeded { at } => {
                write!(f, "point deadline exceeded at cycle {at}")
            }
            SimError::InvalidConfig(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for SimError {}

impl From<SimError> for speedup_stacks::error::SimError {
    fn from(e: SimError) -> Self {
        match e {
            SimError::InvalidConfig(c) => speedup_stacks::error::SimError::Config(c),
            other => speedup_stacks::error::SimError::Engine {
                what: other.to_string(),
            },
        }
    }
}

/// Ground-truth statistics per thread (not available to real accounting
/// hardware; used for validation and ablations).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ThreadTruth {
    /// Exact cycles spent spinning (every wait episode's on-core portion).
    pub true_spin_cycles: u64,
    /// Exact inter-thread LLC hits (line inserted by another core).
    pub interthread_hits_truth: u64,
    /// LLC accesses (L1 misses).
    pub llc_accesses: u64,
    /// LLC misses (DRAM accesses).
    pub llc_misses: u64,
    /// L1 misses on lines previously invalidated by coherence.
    pub coherency_misses: u64,
    /// Remote L1 copies invalidated by this thread's stores.
    pub invalidations_sent: u64,
    /// Number of completed wait episodes (lock + barrier).
    pub wait_episodes: u64,
    /// Committed transactions.
    pub tx_commits: u64,
    /// Aborted (rolled back and replayed) transactions.
    pub tx_aborts: u64,
}

/// Cumulative per-thread accounting state captured at one barrier
/// release (the boundary between two barrier-delimited regions, §4.6).
#[derive(Debug, Clone)]
pub struct RegionSnapshot {
    /// Cycle of the barrier release that ends the region.
    pub release_cycle: u64,
    /// Per-thread arrival cycle at the boundary barrier.
    pub arrivals: Vec<u64>,
    /// Cumulative counters at the release.
    pub counters: Vec<ThreadCounters>,
    /// Cumulative detected spin cycles spent in *barrier* waits.
    pub barrier_spin: Vec<f64>,
    /// Cumulative yield cycles spent in *barrier* waits.
    pub barrier_yield: Vec<f64>,
}

/// Result of a completed simulation.
#[derive(Debug)]
pub struct SimResult {
    /// Duration of the run in cycles (`Tp`: finish time of the slowest
    /// thread).
    pub tp_cycles: u64,
    /// Raw accounting counters per thread (what the paper's hardware
    /// would expose).
    pub counters: Vec<ThreadCounters>,
    /// Ground truth per thread.
    pub truth: Vec<ThreadTruth>,
    /// Barrier-release snapshots, when
    /// [`MachineConfig::record_regions`] is enabled (§4.6 region stacks).
    pub regions: Vec<RegionSnapshot>,
    /// Engine events processed during the run (throughput accounting for
    /// the perf-trajectory reports).
    pub events: u64,
}

impl SimResult {
    /// Total dynamic instruction count across threads.
    #[must_use]
    pub fn total_instructions(&self) -> u64 {
        self.counters.iter().map(|c| c.instructions).sum()
    }

    /// Builds the speedup stack for this run.
    ///
    /// # Errors
    ///
    /// Propagates [`StackError`] when the counters are inconsistent
    /// (cannot happen for engine-produced results with `tp_cycles > 0`).
    pub fn stack(&self, cfg: &AccountingConfig) -> Result<SpeedupStack, StackError> {
        SpeedupStack::from_counters(&self.counters, self.tp_cycles, cfg)
    }
}

/// Event payloads are kept at 12 bytes (u32 fields) so queue nodes stay
/// small; core/thread counts are bounded far below 2^32 and wait tokens
/// count wait episodes (bounded by `max_cycles / spin_threshold`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EventKind {
    /// Execute the next op of `thread`, which is running on `core`.
    Run { core: u32, thread: u32 },
    /// Spin-threshold expiry: if `thread` still waits (token matches),
    /// schedule it out.
    YieldDeadline { thread: u32, token: u32 },
    /// A woken thread becomes runnable.
    Wakeup { thread: u32 },
}

/// The engine's event queue: the timing wheel in production, the original
/// binary heap as the equivalence/baseline reference (selected by
/// [`EventQueueKind`]). Both implement the identical `(time, seq)` order.
#[derive(Debug)]
enum EventQueue {
    Wheel(TimingWheel<EventKind>),
    Heap(HeapQueue<EventKind>),
}

impl EventQueue {
    fn new(kind: EventQueueKind) -> Self {
        match kind {
            EventQueueKind::TimingWheel => EventQueue::Wheel(TimingWheel::new()),
            EventQueueKind::BinaryHeap => EventQueue::Heap(HeapQueue::new()),
        }
    }

    #[inline]
    fn push(&mut self, time: u64, seq: u64, kind: EventKind) {
        match self {
            EventQueue::Wheel(q) => q.push(time, seq, kind),
            EventQueue::Heap(q) => q.push(time, seq, kind),
        }
    }

    #[inline]
    fn pop(&mut self) -> Option<(u64, u64, EventKind)> {
        match self {
            EventQueue::Wheel(q) => q.pop(),
            EventQueue::Heap(q) => q.pop(),
        }
    }

    /// Time of the earliest queued event, if any.
    #[inline]
    fn peek_time(&mut self) -> Option<u64> {
        match self {
            EventQueue::Wheel(q) => q.peek_time(),
            EventQueue::Heap(q) => q.peek_time(),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TState {
    /// Running (or actively spinning) on a core.
    Running { core: usize },
    /// In the scheduler's ready queue.
    Ready,
    /// Spinning on a contended lock while occupying a core.
    SpinLock { lock: u32, core: usize },
    /// Spinning on a barrier while occupying a core.
    SpinBarrier { core: usize },
    /// Scheduled out, waiting for a lock.
    YieldLock,
    /// Scheduled out, waiting for a barrier.
    YieldBarrier,
    /// Released/granted while scheduled out; wake-up event in flight.
    WakePending,
    /// Stream exhausted.
    Finished,
}

impl TState {
    fn is_spinning(self) -> bool {
        matches!(self, TState::SpinLock { .. } | TState::SpinBarrier { .. })
    }
}

#[derive(Debug, Default)]
struct TxState {
    start: u64,
    attempts: u32,
    ops: Vec<Op>,
    doomed: bool,
}

struct Thread {
    stream: Box<dyn OpStream>,
    state: TState,
    wait_token: u32,
    spin_start: u64,
    yield_start: u64,
    quantum_end: u64,
    last_core: usize,
    pending_acquire: Option<u32>,
    detector: Box<dyn SpinDetector>,
    /// Cycle at which this thread arrived at the most recent barrier.
    barrier_arrival: u64,
    /// Detected spin cycles attributable to barrier waits (cumulative).
    barrier_spin: f64,
    /// Yield cycles attributable to barrier waits (cumulative).
    barrier_yield: f64,
    /// The current scheduled-out episode started at a barrier.
    yield_from_barrier: bool,
    /// Active transaction, if any (§4.3).
    tx: Option<TxState>,
    /// Ops to replay after a transaction rollback, before reading the
    /// stream again.
    replay: VecDeque<Op>,
    /// An op fetched ahead by the compute-fusion fast path that turned
    /// out not to be fusible; consumed before reading the stream again.
    carried: Option<Op>,
    c: ThreadCounters,
    truth: ThreadTruth,
}

impl fmt::Debug for Thread {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Thread")
            .field("state", &self.state)
            .finish_non_exhaustive()
    }
}

#[derive(Debug, Default)]
struct LockState {
    holder: Option<ThreadId>,
    waiters: VecDeque<ThreadId>,
}

#[derive(Debug, Default)]
struct BarrierState {
    arrived: usize,
    waiters: Vec<ThreadId>,
}

/// A configured simulation, ready to [`run`](Simulation::run).
///
/// # Examples
///
/// ```
/// use cmpsim::{MachineConfig, Op, Simulation, VecStream};
///
/// let cfg = MachineConfig::with_cores(2);
/// let streams: Vec<Box<dyn cmpsim::OpStream>> = vec![
///     Box::new(VecStream::new(vec![Op::Compute(100)])),
///     Box::new(VecStream::new(vec![Op::Compute(50)])),
/// ];
/// let result = Simulation::new(cfg, streams).run()?;
/// assert_eq!(result.tp_cycles, 100);
/// # Ok::<(), cmpsim::SimError>(())
/// ```
pub struct Simulation {
    cfg: MachineConfig,
    mem: MemoryHierarchy,
    threads: Vec<Thread>,
    /// Dense lock table indexed by lock id (ids are small integers minted
    /// by the workload generator); grown on first touch.
    locks: Vec<LockState>,
    /// Dense barrier table indexed by barrier id.
    barriers: Vec<BarrierState>,
    cores: Vec<Option<ThreadId>>,
    ready: VecDeque<ThreadId>,
    queue: EventQueue,
    seq: u64,
    /// Events processed so far (exposed in [`SimResult::events`]).
    events: u64,
    finished: usize,
    regions: Vec<RegionSnapshot>,
    /// Lines read inside active transactions -> reading threads. Sparse
    /// over the line space, hence a (Fx-keyed) map rather than a table.
    tx_readers: FxHashMap<LineAddr, Vec<ThreadId>>,
    /// Lines written inside active transactions -> writing threads.
    tx_writers: FxHashMap<LineAddr, Vec<ThreadId>>,
    /// Cooperative per-run cycle deadline (see
    /// [`Simulation::with_deadline`]); `u64::MAX` sentinel = none.
    deadline: Option<std::sync::Arc<std::sync::atomic::AtomicU64>>,
}

impl fmt::Debug for Simulation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Simulation")
            .field("n_cores", &self.cores.len())
            .field("n_threads", &self.threads.len())
            .finish_non_exhaustive()
    }
}

impl Simulation {
    /// Creates a simulation of the given op streams (one per software
    /// thread) on the configured machine.
    ///
    /// # Panics
    ///
    /// Panics if `streams` is empty or the configuration has zero cores.
    #[must_use]
    pub fn new(cfg: MachineConfig, streams: Vec<Box<dyn OpStream>>) -> Self {
        assert!(!streams.is_empty(), "at least one thread required");
        assert!(cfg.n_cores > 0, "at least one core required");
        let mem = MemoryHierarchy::new(&cfg.mem, cfg.n_cores);
        let threads = streams
            .into_iter()
            .map(|stream| Thread {
                stream,
                state: TState::Ready,
                wait_token: 0,
                spin_start: 0,
                yield_start: 0,
                quantum_end: 0,
                last_core: 0,
                pending_acquire: None,
                detector: build_detector(cfg.spin_detector),
                barrier_arrival: 0,
                barrier_spin: 0.0,
                barrier_yield: 0.0,
                yield_from_barrier: false,
                tx: None,
                replay: VecDeque::new(),
                carried: None,
                c: ThreadCounters::default(),
                truth: ThreadTruth::default(),
            })
            .collect();
        Simulation {
            cfg,
            mem,
            threads,
            locks: Vec::new(),
            barriers: Vec::new(),
            cores: vec![None; cfg.n_cores],
            ready: VecDeque::new(),
            queue: EventQueue::new(cfg.event_queue),
            seq: 0,
            events: 0,
            finished: 0,
            regions: Vec::new(),
            tx_readers: FxHashMap::default(),
            tx_writers: FxHashMap::default(),
            deadline: None,
        }
    }

    /// Arms a cooperative cycle deadline: the run loop checks the shared
    /// budget at every event boundary and aborts with
    /// [`SimError::DeadlineExceeded`] once simulated time passes it. The
    /// watchdog (a sweep supervisor thread) can tighten the budget while
    /// the simulation runs by storing a lower value; storing `u64::MAX`
    /// disarms it. Deterministic when the stored budget is constant: the
    /// abort point depends only on simulated time, not wall-clock.
    #[must_use]
    pub fn with_deadline(mut self, deadline: std::sync::Arc<std::sync::atomic::AtomicU64>) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// The armed deadline at this instant (`u64::MAX` when disarmed).
    #[inline]
    fn deadline_cycles(&self) -> u64 {
        self.deadline
            .as_ref()
            .map_or(u64::MAX, |d| d.load(std::sync::atomic::Ordering::Relaxed))
    }

    fn push(&mut self, time: u64, kind: EventKind) {
        self.seq += 1;
        self.queue.push(time, self.seq, kind);
    }

    /// Validates a workload-supplied sync id against [`MAX_SYNC_IDS`]
    /// (dense-table bound, and the spacing of the lock/barrier line
    /// regions).
    fn check_sync_id(id: u32, thread: ThreadId) -> Result<(), SimError> {
        if u64::from(id) < MAX_SYNC_IDS {
            Ok(())
        } else {
            Err(SimError::ProtocolViolation {
                thread,
                what: "sync id out of range (must be < 2^20)",
            })
        }
    }

    /// The lock-table entry for `id` (validated), growing the dense table
    /// on first touch.
    #[inline]
    fn lock_mut(&mut self, id: u32) -> &mut LockState {
        let idx = id as usize;
        if idx >= self.locks.len() {
            self.locks.resize_with(idx + 1, LockState::default);
        }
        &mut self.locks[idx]
    }

    /// The barrier-table entry for `id` (validated), growing the dense
    /// table on first touch.
    #[inline]
    fn barrier_mut(&mut self, id: u32) -> &mut BarrierState {
        let idx = id as usize;
        if idx >= self.barriers.len() {
            self.barriers.resize_with(idx + 1, BarrierState::default);
        }
        &mut self.barriers[idx]
    }

    /// Runs the simulation to completion.
    ///
    /// # Errors
    ///
    /// [`SimError::CycleLimitExceeded`] if the safety valve fires,
    /// [`SimError::Deadlock`] if threads can never finish, and
    /// [`SimError::ProtocolViolation`] on sync misuse (releasing a lock
    /// not held, acquiring a lock twice without release).
    pub fn run(mut self) -> Result<SimResult, SimError> {
        // Initial placement: thread i on core i; the rest queue up and are
        // charged scheduled-out time from cycle 0 (this is what makes the
        // 16-threads-on-2-cores experiment of Figure 7 meaningful).
        let n_threads = self.threads.len();
        for t in 0..n_threads {
            if t < self.cores.len() {
                self.cores[t] = Some(t);
                self.threads[t].state = TState::Running { core: t };
                self.threads[t].last_core = t;
                self.threads[t].quantum_end = self.cfg.sched.quantum;
                self.push(
                    0,
                    EventKind::Run {
                        core: t as u32,
                        thread: t as u32,
                    },
                );
            } else {
                self.threads[t].state = TState::Ready;
                self.threads[t].yield_start = 0;
                self.ready.push_back(t);
            }
        }

        while let Some((time, _seq, kind)) = self.queue.pop() {
            if time > self.cfg.max_cycles {
                return Err(SimError::CycleLimitExceeded { at: time });
            }
            if time > self.deadline_cycles() {
                return Err(SimError::DeadlineExceeded { at: time });
            }
            self.events += 1;
            match kind {
                EventKind::Run { core, thread } => {
                    self.on_run(core as usize, thread as usize, time)?
                }
                EventKind::YieldDeadline { thread, token } => {
                    self.on_yield_deadline(thread as usize, token, time)
                }
                EventKind::Wakeup { thread } => self.on_wakeup(thread as usize, time),
            }
            if self.finished == n_threads {
                break;
            }
        }

        let unfinished: Vec<usize> = self
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.state != TState::Finished)
            .map(|(i, _)| i)
            .collect();
        let tp = self
            .threads
            .iter()
            .map(|t| t.c.active_end_cycle)
            .max()
            .unwrap_or(0);
        if !unfinished.is_empty() {
            return Err(SimError::Deadlock {
                time: tp,
                unfinished,
            });
        }

        Ok(SimResult {
            tp_cycles: tp,
            counters: self.threads.iter().map(|t| t.c).collect(),
            truth: self.threads.iter().map(|t| t.truth).collect(),
            regions: std::mem::take(&mut self.regions),
            events: self.events,
        })
    }

    // ---- event handlers -------------------------------------------------

    /// Handles a `Run` event at `now` — and then keeps running the same
    /// thread *inline* for as long as its next resumption time is
    /// strictly earlier than every queued event.
    ///
    /// Inlining `Run` at time `t` is exactly equivalent to pushing the
    /// event and immediately popping it: with `t <` every queued time it
    /// would be the queue minimum regardless of its sequence number, and
    /// no other handler can run in between to change the shared state the
    /// checks below observe (`ready`, doomed flags, lock holders). On a
    /// strict tie the event is pushed so the lower-seq queued event keeps
    /// its turn. This removes the queue round-trip from the common case —
    /// a single-threaded run needs almost no queue traffic at all.
    fn on_run(&mut self, core: usize, thread: ThreadId, mut now: u64) -> Result<(), SimError> {
        loop {
            debug_assert_eq!(self.threads[thread].state, TState::Running { core });

            // Round-robin preemption when others are waiting for a core.
            if now >= self.threads[thread].quantum_end && !self.ready.is_empty() {
                self.threads[thread].state = TState::Ready;
                self.threads[thread].yield_start = now;
                self.threads[thread].yield_from_barrier = false;
                self.ready.push_back(thread);
                self.cores[core] = None;
                self.dispatch(now);
                return Ok(());
            }

            // A thread woken to retry a lock acquisition does so before
            // consuming further ops.
            let next: Option<u64> = if let Some(id) = self.threads[thread].pending_acquire {
                self.acquire_or_wait(thread, core, id, now)?
            } else if self.threads[thread].tx.as_ref().is_some_and(|t| t.doomed) {
                // A doomed transaction rolls back at the next instruction
                // boundary (lazy conflict resolution): the elapsed
                // transaction time is a synchronization penalty (§4.3)
                // and the transaction body replays after a bounded
                // exponential backoff.
                self.rollback(thread, now);
                let backoff = {
                    let tx = self.threads[thread].tx.as_ref().expect("tx restarted");
                    100 * u64::from(1u32 << tx.attempts.min(6))
                };
                Some(now + backoff)
            } else {
                let th = &mut self.threads[thread];
                let from_stream = match th.carried.take() {
                    Some(op) => Some(op),
                    None => match th.replay.pop_front() {
                        Some(op) => Some(op),
                        None => th.stream.next_op(),
                    },
                };
                let Some(op) = from_stream else {
                    if self.threads[thread].tx.is_some() {
                        return Err(SimError::ProtocolViolation {
                            thread,
                            what: "thread ended inside a transaction",
                        });
                    }
                    self.threads[thread].c.active_end_cycle = now;
                    self.threads[thread].state = TState::Finished;
                    self.finished += 1;
                    self.cores[core] = None;
                    self.dispatch(now);
                    return Ok(());
                };
                self.execute_op(op, core, thread, now)?
            };

            // `Some(t)`: the thread resumes at `t`; `None`: it waits and
            // its continuation is already scheduled (or state-driven).
            let Some(mut t) = next else {
                return Ok(());
            };

            // Compute fusion: a `Compute` op touches only thread-local
            // state (its own clock and instruction counter), so the
            // global event order is irrelevant to it. As long as the
            // thread stays strictly inside its quantum (the preemption
            // check at each skipped boundary is then false regardless of
            // the ready queue), is outside any transaction (no doom flag
            // to observe) and under the cycle valve (checked by whoever
            // handles the boundary), consecutive compute work is absorbed
            // into the current event. Workload items interleave compute
            // with memory accesses, so this removes roughly the compute
            // half of all queue round-trips.
            if self.threads[thread].tx.is_none() {
                while t < self.threads[thread].quantum_end && t <= self.cfg.max_cycles {
                    let th = &mut self.threads[thread];
                    debug_assert!(
                        th.replay.is_empty(),
                        "replay is only non-empty inside a transaction"
                    );
                    match th.carried.take().or_else(|| th.stream.next_op()) {
                        Some(Op::Compute(n)) => {
                            th.c.instructions += u64::from(n);
                            t += u64::from(n);
                            self.events += 1;
                        }
                        // Not fusible: hold it for the next boundary.
                        other => {
                            self.threads[thread].carried = other;
                            break;
                        }
                    }
                }
            }
            // Inline continuation only when strictly ahead of the queue
            // (and the thread is done if the whole machine is idle).
            if self.queue.peek_time().is_none_or(|qmin| t < qmin) {
                // The cycle safety valve and the cooperative deadline
                // apply to inline continuations exactly as they do to
                // popped events.
                if t > self.cfg.max_cycles {
                    return Err(SimError::CycleLimitExceeded { at: t });
                }
                if t > self.deadline_cycles() {
                    return Err(SimError::DeadlineExceeded { at: t });
                }
                self.events += 1;
                now = t;
            } else {
                self.push(
                    t,
                    EventKind::Run {
                        core: core as u32,
                        thread: thread as u32,
                    },
                );
                return Ok(());
            }
        }
    }

    /// Executes one operation of `thread` at `now`. Returns the cycle at
    /// which the thread resumes, or `None` when it blocks (its wake-up is
    /// scheduled by the sync machinery).
    fn execute_op(
        &mut self,
        op: Op,
        core: usize,
        thread: ThreadId,
        now: u64,
    ) -> Result<Option<u64>, SimError> {
        match op {
            Op::Compute(n) => {
                self.threads[thread].c.instructions += u64::from(n);
                if let Some(tx) = self.threads[thread].tx.as_mut() {
                    tx.ops.push(op);
                }
                Ok(Some(now + u64::from(n)))
            }
            Op::Load(line) => {
                let stall = self.mem_access(core, thread, line, false, now, true);
                if self.threads[thread].tx.is_some() {
                    self.tx_track(thread, op, line, false);
                }
                Ok(Some(now + 1 + stall))
            }
            Op::Store(line) => {
                self.mem_access(core, thread, line, true, now, false);
                if self.threads[thread].tx.is_some() {
                    self.tx_track(thread, op, line, true);
                }
                Ok(Some(now + 1))
            }
            Op::LockAcquire(id) => {
                Self::check_sync_id(id, thread)?;
                if self.threads[thread].tx.is_some() {
                    return Err(SimError::ProtocolViolation {
                        thread,
                        what: "lock acquire inside a transaction",
                    });
                }
                // The atomic RMW on the lock word stalls like a load.
                let stall =
                    self.mem_access(core, thread, LOCK_REGION + u64::from(id), true, now, true);
                let t_op = now + 1 + stall;
                self.acquire_or_wait(thread, core, id, t_op)
            }
            Op::LockRelease(id) => {
                Self::check_sync_id(id, thread)?;
                self.mem_access(core, thread, LOCK_REGION + u64::from(id), true, now, false);
                let holder = self.locks.get(id as usize).and_then(|l| l.holder);
                if holder != Some(thread) {
                    return Err(SimError::ProtocolViolation {
                        thread,
                        what: "released a lock it does not hold",
                    });
                }
                self.locks[id as usize].holder = None;
                self.hand_over(id, now);
                Ok(Some(now + 1))
            }
            Op::Barrier(id) => {
                Self::check_sync_id(id, thread)?;
                if self.threads[thread].tx.is_some() {
                    return Err(SimError::ProtocolViolation {
                        thread,
                        what: "barrier inside a transaction",
                    });
                }
                self.mem_access(
                    core,
                    thread,
                    BARRIER_REGION + u64::from(id),
                    true,
                    now,
                    false,
                );
                self.threads[thread].barrier_arrival = now;
                let n_threads = self.threads.len();
                let barrier = self.barrier_mut(id);
                barrier.arrived += 1;
                if barrier.arrived == n_threads {
                    let waiters = std::mem::take(&mut barrier.waiters);
                    barrier.arrived = 0;
                    for w in waiters {
                        self.resume_waiter(w, id, now);
                    }
                    if self.cfg.record_regions {
                        // Snapshot after the resume loop so the boundary
                        // barrier's spin episodes are already accounted
                        // (and can be reclassified as imbalance).
                        self.regions.push(RegionSnapshot {
                            release_cycle: now,
                            arrivals: self.threads.iter().map(|t| t.barrier_arrival).collect(),
                            counters: self.threads.iter().map(|t| t.c).collect(),
                            barrier_spin: self.threads.iter().map(|t| t.barrier_spin).collect(),
                            barrier_yield: self.threads.iter().map(|t| t.barrier_yield).collect(),
                        });
                    }
                    Ok(Some(now + 1))
                } else {
                    barrier.waiters.push(thread);
                    let th = &mut self.threads[thread];
                    th.state = TState::SpinBarrier { core };
                    th.spin_start = now;
                    th.wait_token += 1;
                    let token = th.wait_token;
                    self.push(
                        now + self.cfg.sync.spin_threshold,
                        EventKind::YieldDeadline {
                            thread: thread as u32,
                            token,
                        },
                    );
                    Ok(None)
                }
            }
            Op::TxBegin => {
                let th = &mut self.threads[thread];
                if th.tx.is_some() {
                    return Err(SimError::ProtocolViolation {
                        thread,
                        what: "nested transaction",
                    });
                }
                th.c.instructions += 1;
                th.tx = Some(TxState {
                    start: now,
                    attempts: 0,
                    ops: Vec::new(),
                    doomed: false,
                });
                Ok(Some(now + 1))
            }
            Op::TxEnd => {
                let th = &mut self.threads[thread];
                if th.tx.is_none() {
                    return Err(SimError::ProtocolViolation {
                        thread,
                        what: "commit without a transaction",
                    });
                }
                th.c.instructions += 1;
                th.truth.tx_commits += 1;
                th.tx = None;
                self.tx_release_lines(thread);
                // Commit publishes the write set (coherence-visible).
                Ok(Some(now + TX_COMMIT_COST))
            }
        }
    }

    /// Records a transactional access and dooms conflicting transactions
    /// (requester wins: writer aborts concurrent readers and writers;
    /// reader aborts concurrent writers).
    fn tx_track(&mut self, thread: ThreadId, op: Op, line: LineAddr, write: bool) {
        let mut doom: Vec<ThreadId> = Vec::new();
        if write {
            for &t in self.tx_readers.get(&line).into_iter().flatten() {
                if t != thread {
                    doom.push(t);
                }
            }
        }
        for &t in self.tx_writers.get(&line).into_iter().flatten() {
            if t != thread {
                doom.push(t);
            }
        }
        for t in doom {
            if let Some(tx) = self.threads[t].tx.as_mut() {
                tx.doomed = true;
            }
        }
        let map = if write {
            &mut self.tx_writers
        } else {
            &mut self.tx_readers
        };
        let entry = map.entry(line).or_default();
        if !entry.contains(&thread) {
            entry.push(thread);
        }
        let tx = self.threads[thread].tx.as_mut().expect("in transaction");
        tx.ops.push(op);
    }

    /// Removes `thread` from all transactional conflict tracking.
    fn tx_release_lines(&mut self, thread: ThreadId) {
        self.tx_readers.retain(|_, v| {
            v.retain(|&t| t != thread);
            !v.is_empty()
        });
        self.tx_writers.retain(|_, v| {
            v.retain(|&t| t != thread);
            !v.is_empty()
        });
    }

    /// Rolls back `thread`'s doomed transaction at cycle `now`: the time
    /// since the (re)start is charged as a synchronization penalty
    /// (§4.3), tracked lines are released, and the recorded body is
    /// queued for replay.
    fn rollback(&mut self, thread: ThreadId, now: u64) {
        self.tx_release_lines(thread);
        let th = &mut self.threads[thread];
        let tx = th.tx.as_mut().expect("doomed transaction exists");
        let wasted = (now - tx.start) as f64;
        th.c.spin_cycles += wasted;
        th.truth.true_spin_cycles += wasted as u64;
        th.truth.tx_aborts += 1;
        let ops = std::mem::take(&mut tx.ops);
        let attempts = tx.attempts + 1;
        th.replay = ops.into();
        th.tx = Some(TxState {
            start: now,
            attempts,
            ops: Vec::new(),
            doomed: false,
        });
    }

    /// Attempts to take `id` for `thread` (running on `core`) at `t_op`;
    /// registers as a waiter otherwise (spin-then-yield). Also used to
    /// *retry* the acquire after a wake-up — the lock may have been barged
    /// by a spinning waiter or a fresh arrival in the meantime, which is
    /// exactly what keeps contended locks from convoying behind the slow
    /// OS wake path.
    ///
    /// Returns `Some(t_op)` when the lock was taken (the thread resumes
    /// then), `None` when it registered as a waiter.
    fn acquire_or_wait(
        &mut self,
        thread: ThreadId,
        core: usize,
        id: u32,
        t_op: u64,
    ) -> Result<Option<u64>, SimError> {
        let lock = self.lock_mut(id);
        if lock.holder.is_none() {
            lock.holder = Some(thread);
            self.threads[thread].pending_acquire = None;
            Ok(Some(t_op))
        } else if lock.holder == Some(thread) {
            Err(SimError::ProtocolViolation {
                thread,
                what: "recursive lock acquisition",
            })
        } else {
            if !lock.waiters.contains(&thread) {
                lock.waiters.push_back(thread);
            }
            let th = &mut self.threads[thread];
            th.pending_acquire = Some(id);
            th.state = TState::SpinLock { lock: id, core };
            th.spin_start = t_op;
            th.wait_token += 1;
            let token = th.wait_token;
            self.push(
                t_op + self.cfg.sync.spin_threshold,
                EventKind::YieldDeadline {
                    thread: thread as u32,
                    token,
                },
            );
            Ok(None)
        }
    }

    /// Passes a just-released lock on: the first still-spinning waiter (in
    /// FIFO order) gets it directly after a cache-line handoff; otherwise
    /// the first yielded waiter is woken to retry, leaving the lock free
    /// in the interim.
    fn hand_over(&mut self, id: u32, now: u64) {
        let Some(lock) = self.locks.get_mut(id as usize) else {
            return;
        };
        if let Some(pos) = {
            let threads = &self.threads;
            lock.waiters
                .iter()
                .position(|&w| threads[w].state.is_spinning())
        } {
            let w = lock.waiters.remove(pos).expect("position is valid");
            lock.holder = Some(w);
            let TState::SpinLock { core, .. } = self.threads[w].state else {
                unreachable!("spinning lock waiter has a core");
            };
            let resume = now + self.cfg.sync.lock_handoff;
            self.account_spin(w, id, resume);
            let th = &mut self.threads[w];
            th.wait_token += 1; // cancel the pending yield deadline
            th.pending_acquire = None;
            th.state = TState::Running { core };
            self.push(
                resume,
                EventKind::Run {
                    core: core as u32,
                    thread: w as u32,
                },
            );
        } else if let Some(pos) = {
            let threads = &self.threads;
            lock.waiters
                .iter()
                .position(|&w| threads[w].state == TState::YieldLock)
        } {
            let w = lock.waiters.remove(pos).expect("position is valid");
            self.threads[w].state = TState::WakePending;
            self.push(
                now + self.cfg.sync.wake_latency,
                EventKind::Wakeup { thread: w as u32 },
            );
        }
    }

    /// Resumes a barrier waiter at broadcast time `now`: still-spinning
    /// waiters restart on their own core after a handoff; yielded waiters
    /// take the wake-up path.
    fn resume_waiter(&mut self, w: ThreadId, sync_id: u32, now: u64) {
        match self.threads[w].state {
            TState::SpinBarrier { core } => {
                let resume = now + self.cfg.sync.lock_handoff;
                self.account_spin(w, sync_id, resume);
                self.threads[w].wait_token += 1; // cancel the yield deadline
                self.threads[w].state = TState::Running { core };
                self.push(
                    resume,
                    EventKind::Run {
                        core: core as u32,
                        thread: w as u32,
                    },
                );
            }
            TState::YieldBarrier => {
                self.threads[w].state = TState::WakePending;
                self.push(
                    now + self.cfg.sync.wake_latency,
                    EventKind::Wakeup { thread: w as u32 },
                );
            }
            other => unreachable!("resume_waiter on thread in state {other:?}"),
        }
    }

    fn on_yield_deadline(&mut self, thread: ThreadId, token: u32, now: u64) {
        let th = &self.threads[thread];
        if th.wait_token != token {
            return; // already granted or resumed
        }
        let (core, next_state, sync_id) = match th.state {
            TState::SpinLock { lock, core } => (core, TState::YieldLock, lock),
            TState::SpinBarrier { core } => (core, TState::YieldBarrier, u32::MAX),
            _ => return,
        };
        self.account_spin(thread, sync_id, now);
        let th = &mut self.threads[thread];
        th.yield_from_barrier = matches!(next_state, TState::YieldBarrier);
        th.state = next_state;
        th.yield_start = now;
        self.cores[core] = None;
        self.dispatch(now);
    }

    fn on_wakeup(&mut self, thread: ThreadId, now: u64) {
        debug_assert_eq!(self.threads[thread].state, TState::WakePending);
        self.threads[thread].state = TState::Ready;
        self.ready.push_back(thread);
        self.dispatch(now);
    }

    // ---- helpers ---------------------------------------------------------

    /// Closes the current spin interval of `thread` ending at `end`:
    /// accumulates ground truth, runs the configured detector for the
    /// accounted spin cycles, and charges spin-loop instructions.
    fn account_spin(&mut self, thread: ThreadId, sync_id: u32, end: u64) {
        let th = &mut self.threads[thread];
        let cycles = end.saturating_sub(th.spin_start);
        if cycles == 0 {
            return;
        }
        th.truth.true_spin_cycles += cycles;
        th.truth.wait_episodes += 1;
        let is_barrier = matches!(th.state, TState::SpinBarrier { .. });
        let (pc, line) = if is_barrier {
            (
                2_000_000 + u64::from(sync_id),
                BARRIER_REGION + u64::from(sync_id),
            )
        } else {
            (
                1_000_000 + u64::from(sync_id),
                LOCK_REGION + u64::from(sync_id),
            )
        };
        let episode = SpinEpisode {
            pc,
            line,
            cycles,
            iter_cycles: self.cfg.sync.spin_iter_cycles,
        };
        let detected = th.detector.observe(&episode) as f64;
        th.c.spin_cycles += detected;
        if is_barrier {
            th.barrier_spin += detected;
        }
        let iters = episode.iterations();
        let instrs = iters * self.cfg.sync.spin_iter_instrs;
        th.c.instructions += instrs;
        th.c.spin_instructions += instrs;
    }

    /// Fills idle cores from the ready queue, preferring each thread's
    /// last core to limit migration. Charges scheduled-out time.
    fn dispatch(&mut self, now: u64) {
        while !self.ready.is_empty() && self.cores.iter().any(Option::is_none) {
            let thread = self.ready.pop_front().expect("non-empty");
            let preferred = self.threads[thread].last_core;
            let core = if self.cores[preferred].is_none() {
                preferred
            } else {
                self.cores
                    .iter()
                    .position(Option::is_none)
                    .expect("an idle core exists")
            };
            let start = now + self.cfg.sched.context_switch;
            let th = &mut self.threads[thread];
            let charged = (start - th.yield_start) as f64;
            th.c.yield_cycles += charged;
            if th.yield_from_barrier {
                th.barrier_yield += charged;
                th.yield_from_barrier = false;
            }
            th.state = TState::Running { core };
            th.last_core = core;
            th.quantum_end = start + self.cfg.sched.quantum;
            self.cores[core] = Some(thread);
            self.push(
                start,
                EventKind::Run {
                    core: core as u32,
                    thread: thread as u32,
                },
            );
        }
    }

    /// Performs a memory access, updates accounting counters, and returns
    /// the exposed stall in cycles (0 for plain stores).
    fn mem_access(
        &mut self,
        core: usize,
        thread: ThreadId,
        line: LineAddr,
        write: bool,
        now: u64,
        stalls: bool,
    ) -> u64 {
        let ev = self.mem.access(core, line, write, now);
        let th = &mut self.threads[thread];
        th.c.instructions += 1;

        let exposed = if stalls {
            ev.latency_beyond_l1
                .saturating_sub(self.cfg.core.overlap_window)
        } else {
            0
        };

        if ev.level != ServedBy::L1 {
            th.c.llc_accesses += 1;
            th.truth.llc_accesses += 1;
            if ev.sampled {
                th.c.sampled_llc_accesses += 1;
            }
            if ev.interthread_hit_sampled {
                th.c.sampled_interthread_hits += 1;
            }
            if ev.interthread_hit_truth {
                th.truth.interthread_hits_truth += 1;
            }
        }
        if ev.level == ServedBy::Dram {
            th.truth.llc_misses += 1;
            if stalls {
                th.c.llc_load_misses += 1;
                th.c.llc_load_miss_stall_cycles += exposed as f64;
                if ev.interthread_miss_sampled {
                    th.c.sampled_interthread_misses += 1;
                    th.c.sampled_interthread_miss_stall_cycles += exposed as f64;
                }
                // Interference is the part of the exposed stall that would
                // vanish without the waits caused by other cores: compare
                // the exposure with and without those waits.
                let waits = ev.bus_wait_other + ev.bank_wait_other + ev.page_conflict_other;
                let base_exposed = (ev.latency_beyond_l1 - waits.min(ev.latency_beyond_l1))
                    .saturating_sub(self.cfg.core.overlap_window);
                th.c.mem_interference_cycles += exposed.saturating_sub(base_exposed) as f64;
            }
        }
        if ev.coherency_miss {
            th.truth.coherency_misses += 1;
            th.c.coherency_miss_cycles += exposed as f64;
        }
        th.truth.invalidations_sent += u64::from(ev.invalidations_sent);
        exposed
    }
}

/// Convenience: build and run a simulation in one call. Validates the
/// configuration first ([`MachineConfig::validate`]).
///
/// # Errors
///
/// [`SimError::InvalidConfig`] on a bad configuration; otherwise see
/// [`Simulation::run`].
pub fn simulate(
    cfg: MachineConfig,
    streams: Vec<Box<dyn OpStream>>,
) -> Result<SimResult, SimError> {
    cfg.validate().map_err(SimError::InvalidConfig)?;
    Simulation::new(cfg, streams).run()
}
