//! # cmpsim — deterministic chip-multiprocessor simulator
//!
//! An event-driven, cycle-approximate CMP simulator built as the execution
//! substrate for the speedup-stacks reproduction (ISPASS 2012). It plays
//! the role gem5 plays in the paper: it runs multi-threaded workloads on a
//! model of a multi-core machine and drives the per-thread cycle
//! accounting architecture.
//!
//! The machine model comprises:
//!
//! - `n` cores with an out-of-order stall-exposure model
//!   ([`CoreModelConfig`]),
//! - the full [`memsim`] memory hierarchy (private L1s, shared inclusive
//!   LLC with per-core ATDs, MESI-style coherence, banked open-page DRAM
//!   with ORAs),
//! - a spin-then-yield synchronization substrate (locks and barriers) and
//!   an OS scheduler with run queues, context-switch costs and round-robin
//!   preemption, so workloads may have more software threads than cores
//!   (Figure 7),
//! - hardware-plausible spin detectors ([`spin`]) feeding the accounting.
//!
//! Workloads are streams of abstract operations ([`Op`]) — compute, loads,
//! stores, lock acquire/release and barriers — one stream per thread.
//! Executions are **deterministic**: the same configuration and streams
//! produce bit-identical results.
//!
//! ## Example: measuring a speedup stack
//!
//! ```
//! use cmpsim::{simulate, MachineConfig, Op, VecStream};
//! use speedup_stacks::AccountingConfig;
//!
//! let mk = |n: u32| -> Box<dyn cmpsim::OpStream> {
//!     Box::new(VecStream::new(vec![Op::Compute(n * 1000), Op::Barrier(0)]))
//! };
//! let result = simulate(MachineConfig::with_cores(2), vec![mk(1), mk(2)])?;
//! let stack = result.stack(&AccountingConfig::default())?;
//! assert_eq!(stack.num_threads(), 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod config;
pub mod engine;
pub mod event_queue;
pub mod ops;
pub mod regions;
pub mod spin;

pub use config::{
    CoreModelConfig, EventQueueKind, MachineConfig, SchedConfig, SpinDetectorKind, SyncConfig,
};
pub use engine::{simulate, RegionSnapshot, SimError, SimResult, Simulation, ThreadTruth};
pub use ops::{BarrierId, LockId, Op, OpStream, VecStream};
pub use regions::{region_counters, region_stacks, Region};

/// Converts a byte address to a cache-line address (64-byte lines).
///
/// ```
/// assert_eq!(cmpsim::line_of(0), 0);
/// assert_eq!(cmpsim::line_of(64), 1);
/// assert_eq!(cmpsim::line_of(130), 2);
/// ```
#[must_use]
pub fn line_of(byte_addr: u64) -> memsim::LineAddr {
    byte_addr >> 6
}
