//! Equivalence of the flat (SoA + packed-LRU) cache against the original
//! timestamp-LRU semantics.
//!
//! The reference model below reimplements the pre-flattening `Cache`
//! exactly: per-way `lru` timestamps bumped from a global clock, victim
//! selection preferring a coherence-invalidated tag match, then the first
//! invalid way, then the minimum timestamp. Randomized op streams over
//! clustered line spaces must produce identical outcomes — hits,
//! coherency-miss classification, evictions (line, dirty, metadata) and
//! occupancy — at every step.

use memsim::{Cache, CacheConfig, CacheOutcome};

/// Deterministic SplitMix64 stream.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// The original cache representation, kept verbatim as the reference.
struct RefWay<M> {
    tag: u64,
    valid: bool,
    dirty: bool,
    coherence_invalidated: bool,
    lru: u64,
    meta: M,
}

struct RefCache<M> {
    cfg: CacheConfig,
    ways: Vec<RefWay<M>>,
    clock: u64,
}

impl<M: Copy + Default> RefCache<M> {
    fn new(cfg: CacheConfig) -> Self {
        let ways = (0..cfg.lines())
            .map(|_| RefWay {
                tag: 0,
                valid: false,
                dirty: false,
                coherence_invalidated: false,
                lru: 0,
                meta: M::default(),
            })
            .collect();
        RefCache {
            cfg,
            ways,
            clock: 0,
        }
    }

    fn set_range(&self, line: u64) -> std::ops::Range<usize> {
        let set = self.cfg.set_of(line);
        let start = set * self.cfg.ways();
        start..start + self.cfg.ways()
    }

    fn access(&mut self, line: u64, write: bool, fill_meta: M) -> CacheOutcome<M> {
        self.clock += 1;
        let clock = self.clock;
        let range = self.set_range(line);

        let set_start = range.start;
        for (w_idx, w) in self.ways[range.clone()].iter_mut().enumerate() {
            if w.valid && w.tag == line {
                w.lru = clock;
                if write {
                    w.dirty = true;
                }
                return CacheOutcome {
                    hit: true,
                    coherency_miss: false,
                    evicted: None,
                    hit_meta: Some(w.meta),
                    way: w_idx as u8,
                };
            }
        }

        let mut victim: Option<usize> = None;
        let mut victim_lru = u64::MAX;
        let mut coherency_miss = false;
        for i in range.clone() {
            if !self.ways[i].valid {
                if self.ways[i].coherence_invalidated && self.ways[i].tag == line {
                    coherency_miss = true;
                    victim = Some(i);
                    break;
                }
                if victim.is_none() || self.ways[victim.unwrap()].valid {
                    victim = Some(i);
                    victim_lru = 0;
                }
            } else if self.ways[i].lru < victim_lru {
                victim = Some(i);
                victim_lru = self.ways[i].lru;
            }
        }
        let vi = victim.expect("set has at least one way");
        let v = &mut self.ways[vi];
        let evicted = if v.valid {
            Some((v.tag, v.dirty, v.meta))
        } else {
            None
        };
        *v = RefWay {
            tag: line,
            valid: true,
            dirty: write,
            coherence_invalidated: false,
            lru: clock,
            meta: fill_meta,
        };
        CacheOutcome {
            hit: false,
            coherency_miss,
            evicted,
            hit_meta: None,
            way: (vi - set_start) as u8,
        }
    }

    fn contains(&self, line: u64) -> bool {
        self.ways[self.set_range(line)]
            .iter()
            .any(|w| w.valid && w.tag == line)
    }

    fn invalidate_coherence(&mut self, line: u64) -> Option<(bool, M)> {
        let range = self.set_range(line);
        for w in &mut self.ways[range] {
            if w.valid && w.tag == line {
                w.valid = false;
                w.coherence_invalidated = true;
                let dirty = w.dirty;
                w.dirty = false;
                return Some((dirty, w.meta));
            }
        }
        None
    }

    fn remove(&mut self, line: u64) -> Option<bool> {
        let range = self.set_range(line);
        for w in &mut self.ways[range] {
            if w.valid && w.tag == line {
                w.valid = false;
                w.coherence_invalidated = false;
                let dirty = w.dirty;
                w.dirty = false;
                return Some(dirty);
            }
        }
        None
    }

    fn mark_dirty(&mut self, line: u64) -> bool {
        let range = self.set_range(line);
        for w in &mut self.ways[range] {
            if w.valid && w.tag == line {
                w.dirty = true;
                return true;
            }
        }
        false
    }

    fn occupancy(&self) -> usize {
        self.ways.iter().filter(|w| w.valid).count()
    }
}

fn drive(cfg: CacheConfig, seed: u64, steps: u64, line_space: u64) {
    drive_cache(Cache::new(cfg), cfg, seed, steps, line_space);
}

/// Same randomized stream, but against the forced wide (byte-rank) LRU
/// encoding — pins the second encoding to the same timestamp-LRU
/// reference semantics on geometries where both encodings exist.
fn drive_wide(cfg: CacheConfig, seed: u64, steps: u64, line_space: u64) {
    drive_cache(Cache::with_wide_lru(cfg), cfg, seed, steps, line_space);
}

fn drive_cache(mut flat: Cache<u8>, cfg: CacheConfig, seed: u64, steps: u64, line_space: u64) {
    let mut rng = Rng(seed);
    let mut reference: RefCache<u8> = RefCache::new(cfg);
    for step in 0..steps {
        let line = rng.below(line_space);
        let op = rng.below(16);
        match op {
            // Accesses dominate, as in real streams.
            0..=10 => {
                let write = op.is_multiple_of(3);
                let meta = (step % 251) as u8;
                let a = flat.access(line, write, meta);
                let b = reference.access(line, write, meta);
                assert_eq!(a, b, "access mismatch at step {step}, line {line}");
            }
            11 | 12 => {
                assert_eq!(
                    flat.invalidate_coherence(line),
                    reference.invalidate_coherence(line),
                    "invalidate mismatch at step {step}"
                );
            }
            13 => {
                assert_eq!(
                    flat.remove(line),
                    reference.remove(line),
                    "remove mismatch at step {step}"
                );
            }
            14 => {
                assert_eq!(
                    flat.mark_dirty(line),
                    reference.mark_dirty(line),
                    "mark_dirty mismatch at step {step}"
                );
            }
            _ => {
                assert_eq!(flat.contains(line), reference.contains(line));
                assert_eq!(
                    flat.occupancy(),
                    reference.occupancy(),
                    "occupancy at step {step}"
                );
            }
        }
    }
    assert_eq!(flat.occupancy(), reference.occupancy());
}

#[test]
fn flat_cache_equals_timestamp_lru_reference_small_sets() {
    // High-pressure: 4 sets × 2 ways over 64 lines.
    drive(CacheConfig::new(4, 2), 0xAA, 60_000, 64);
}

#[test]
fn flat_cache_equals_timestamp_lru_reference_l1_geometry() {
    // The paper's L1: 128 sets × 8 ways, clustered working set.
    drive(CacheConfig::from_kib(64, 64, 8), 0xBB, 60_000, 4_096);
}

#[test]
fn flat_cache_equals_timestamp_lru_reference_16_way() {
    // Full associativity bound: 16 ways exercises every LRU rank,
    // including the rank-15 promotion.
    drive(CacheConfig::new(2, 16), 0xCC, 60_000, 96);
}

#[test]
fn flat_cache_equals_reference_across_seeds() {
    for seed in 0..8u64 {
        drive(CacheConfig::new(8, 4), 0x1000 + seed, 8_000, 256);
    }
}

#[test]
fn wide_lru_cache_equals_timestamp_lru_reference_17_way() {
    // Just past the packed bound: the first geometry that selects the
    // wide encoding automatically.
    drive(CacheConfig::new(2, 17), 0xDD, 60_000, 102);
}

#[test]
fn wide_lru_cache_equals_timestamp_lru_reference_32_way() {
    // The 32-way LLC geometry of the many-core scaling study.
    drive(CacheConfig::new(4, 32), 0xEE, 60_000, 384);
}

#[test]
fn wide_lru_cache_equals_timestamp_lru_reference_64_way() {
    // The associativity ceiling (per-set status masks are one u64).
    drive(CacheConfig::new(1, 64), 0xFF, 60_000, 192);
}

#[test]
fn forced_wide_lru_equals_reference_on_packed_geometries() {
    // The wide encoding must implement the identical semantics on
    // geometries the packed encoding normally owns.
    drive_wide(CacheConfig::new(4, 2), 0xAA, 60_000, 64);
    drive_wide(CacheConfig::new(2, 16), 0xCC, 60_000, 96);
}

/// Packed vs forced-wide on shared geometries: both encodings must agree
/// on every outcome of every operation, step for step (bit-identical
/// per-config LRU selection).
#[test]
fn packed_and_wide_lru_bit_identical() {
    for (cfg, line_space) in [
        (CacheConfig::new(4, 2), 64u64),
        (CacheConfig::new(8, 8), 512),
        (CacheConfig::new(2, 15), 90),
        (CacheConfig::new(2, 16), 96),
    ] {
        let mut packed: Cache<u8> = Cache::new(cfg);
        let mut wide: Cache<u8> = Cache::with_wide_lru(cfg);
        let mut rng = Rng(0xB0B ^ cfg.ways() as u64);
        for step in 0..50_000u64 {
            let line = rng.below(line_space);
            let op = rng.below(16);
            match op {
                0..=10 => {
                    let write = op.is_multiple_of(3);
                    let meta = (step % 251) as u8;
                    assert_eq!(
                        packed.access(line, write, meta),
                        wide.access(line, write, meta),
                        "access mismatch at step {step} ({} ways)",
                        cfg.ways()
                    );
                }
                11 | 12 => {
                    assert_eq!(
                        packed.invalidate_coherence(line),
                        wide.invalidate_coherence(line)
                    );
                }
                13 => {
                    assert_eq!(packed.remove(line), wide.remove(line));
                }
                14 => {
                    assert_eq!(packed.mark_dirty(line), wide.mark_dirty(line));
                }
                _ => {
                    assert_eq!(packed.contains(line), wide.contains(line));
                    assert_eq!(packed.occupancy(), wide.occupancy());
                }
            }
        }
    }
}
