//! Boundary-configuration coverage for the many-core representations,
//! exercised through the full hierarchy rather than unit tables:
//!
//! - core counts 63/64/65/128 straddle the inline→spilled switch of the
//!   coherence directory's sharer masks (one `u64` word up to 64 cores);
//! - associativities 15/16/17/32 straddle the packed→wide switch of the
//!   per-set LRU encoding (nibble-packed up to 16 ways).
//!
//! Every configuration must behave identically across the switch: stores
//! invalidate exactly the remote sharers, inclusion back-invalidation
//! reaches every holder, replacement is true LRU, and replay is
//! deterministic.

use memsim::{CacheConfig, MemConfig, MemoryHierarchy, ServedBy};

/// The boundary core counts around the 64-core inline-mask limit.
const CORE_BOUNDARIES: [usize; 4] = [63, 64, 65, 128];

/// The boundary associativities around the 16-way packed-LRU limit.
const WAY_BOUNDARIES: [usize; 4] = [15, 16, 17, 32];

fn config_with_llc_ways(ways: usize) -> MemConfig {
    MemConfig {
        l1: CacheConfig::new(4, 2),
        // Small but wide: 16 sets of `ways` ways keeps streams short.
        llc: CacheConfig::new(16, ways),
        atd_sample_period: 1,
        ..MemConfig::default()
    }
}

#[test]
fn store_invalidates_all_remote_sharers_at_core_boundaries() {
    for n in CORE_BOUNDARIES {
        let mut m = MemoryHierarchy::new(&MemConfig::default(), n);
        // Every core reads the line, so every L1 holds a copy.
        for c in 0..n {
            m.access(c, 7, false, (c as u64) * 10);
        }
        // A store by the last core invalidates the other n-1 copies.
        let st = m.access(n - 1, 7, true, n as u64 * 10);
        assert_eq!(st.invalidations_sent as usize, n - 1, "{n} cores");
        // Each remote core re-reads: a coherency miss, not an L1 hit.
        for c in [0, n / 2, n - 2] {
            let rd = m.access(c, 7, false, (n + c) as u64 * 10 + 1000);
            assert_ne!(rd.level, ServedBy::L1, "{n} cores, core {c}");
            assert!(rd.coherency_miss, "{n} cores, core {c}");
        }
        // The writer still hits.
        let wr = m.access(n - 1, 7, false, 10 * n as u64 + 5000);
        assert_eq!(wr.level, ServedBy::L1, "{n} cores");
    }
}

#[test]
fn inclusion_back_invalidation_reaches_high_cores() {
    // LLC with one tiny set per boundary count: force an eviction of a
    // line shared by the highest-numbered cores and verify their L1
    // copies die with it (directory take_line walks spilled masks).
    for n in CORE_BOUNDARIES {
        let cfg = MemConfig {
            l1: CacheConfig::new(4, 2),
            llc: CacheConfig::new(1, 2),
            atd_sample_period: 1,
            ..MemConfig::default()
        };
        let mut m = MemoryHierarchy::new(&cfg, n);
        // The two highest cores share line 0 (LLC way 1 of 2).
        m.access(n - 1, 0, false, 0);
        m.access(n - 2, 0, false, 10);
        m.access(0, 1, false, 20);
        // Third distinct line evicts the LRU LLC line (0) and must
        // back-invalidate both high cores' L1s.
        m.access(0, 2, false, 30);
        let a = m.access(n - 1, 0, false, 10_000);
        assert_eq!(a.level, ServedBy::Dram, "{n} cores: inclusion violated");
        assert!(!a.coherency_miss, "{n} cores: back-invalidation marked coh");
    }
}

#[test]
fn llc_replacement_is_true_lru_at_way_boundaries() {
    for ways in WAY_BOUNDARIES {
        let cfg = config_with_llc_ways(ways);
        let mut m = MemoryHierarchy::new(&cfg, 1);
        let set_stride = 16u64; // lines i*16 share LLC set 0
        let mut t = 0u64;
        let mut go = |m: &mut MemoryHierarchy, line: u64| {
            t += 100;
            m.access(0, line, false, t)
        };
        // L1 is 4x2 so at most 2 of these survive in the L1; the LLC set
        // fills with `ways` distinct lines.
        for i in 0..ways as u64 {
            go(&mut m, i * set_stride);
        }
        // Re-touch every line except victim `3`, oldest-first.
        for i in (0..ways as u64).filter(|&i| i != 3) {
            go(&mut m, i * set_stride);
        }
        // Next distinct line evicts line 3*16 from the LLC...
        go(&mut m, ways as u64 * set_stride);
        // ...so it must come back from DRAM, while a surviving line is
        // at worst an LLC hit.
        assert_eq!(
            go(&mut m, 3 * set_stride).level,
            ServedBy::Dram,
            "{ways} ways: LRU victim not evicted"
        );
    }
}

#[test]
fn coherency_miss_classification_at_way_boundaries() {
    for ways in WAY_BOUNDARIES {
        let cfg = config_with_llc_ways(ways);
        let mut m = MemoryHierarchy::new(&cfg, 2);
        m.access(0, 5, false, 0);
        m.access(1, 5, false, 100);
        let st = m.access(0, 5, true, 200);
        assert_eq!(st.invalidations_sent, 1, "{ways} ways");
        let rd = m.access(1, 5, false, 300);
        assert!(rd.coherency_miss, "{ways} ways");
    }
}

#[test]
fn atd_sampling_works_with_wide_llc() {
    // ATDs clone the LLC associativity; 17 and 32 ways must classify
    // inter-thread misses exactly as the narrow geometries do.
    for ways in WAY_BOUNDARIES {
        let cfg = config_with_llc_ways(ways);
        let mut m = MemoryHierarchy::new(&cfg, 2);
        m.access(0, 0, false, 0);
        // Core 1 floods LLC set 0 with `ways` distinct lines, evicting
        // core 0's line.
        for i in 1..=ways as u64 {
            m.access(1, i * 16, false, i * 100);
        }
        let ev = m.access(0, 0, false, 1_000_000);
        assert_eq!(ev.level, ServedBy::Dram, "{ways} ways");
        assert!(
            ev.interthread_miss_sampled,
            "{ways} ways: inter-thread miss not classified"
        );
    }
}

#[test]
fn deterministic_replay_across_boundary_grid() {
    // Every (core boundary × way boundary) pair replays bit-identically.
    for n in CORE_BOUNDARIES {
        for ways in WAY_BOUNDARIES {
            let cfg = config_with_llc_ways(ways);
            let mut m1 = MemoryHierarchy::new(&cfg, n);
            let mut m2 = MemoryHierarchy::new(&cfg, n);
            for i in 0..2_000u64 {
                let core = (i * 7) as usize % n;
                let line = (i * 13) % 256;
                let write = i % 3 == 0;
                assert_eq!(
                    m1.access(core, line, write, i * 10),
                    m2.access(core, line, write, i * 10),
                    "{n} cores, {ways} ways, step {i}"
                );
            }
        }
    }
}

#[test]
fn full_default_hierarchy_at_128_cores() {
    // The paper-default memory system, 128 cores: a mixed read/write
    // stream touching shared and private lines runs without violating
    // any debug invariant (directory sync asserts run in debug builds).
    let mut m = MemoryHierarchy::new(&MemConfig::default(), 128);
    for i in 0..20_000u64 {
        let core = (i % 128) as usize;
        let shared = i % 5 == 0;
        let line = if shared {
            i % 64
        } else {
            1_000 + core as u64 * 512 + (i / 128) % 512
        };
        m.access(core, line, i % 7 == 0, i * 3);
    }
    assert_eq!(m.num_cores(), 128);
}
