//! Property-style tests of the memory-hierarchy invariants.
//!
//! No proptest offline: deterministic randomized sweeps via SplitMix64
//! (stable case streams; failures reproduce exactly).

use memsim::{Cache, CacheConfig, Dram, DramConfig, MemConfig, MemoryHierarchy, ServedBy};

/// Deterministic SplitMix64 stream (inlined: memsim has no deps).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }

    fn chance(&mut self) -> bool {
        self.next() & 1 == 1
    }
}

#[test]
fn cache_never_exceeds_capacity() {
    let mut rng = Rng(0x10);
    for _ in 0..48 {
        let sets_log2 = 1 + rng.below(5) as u32;
        let ways = 1 + rng.below(8) as usize;
        let cfg = CacheConfig::new(1 << sets_log2, ways);
        let mut c: Cache<()> = Cache::new(cfg);
        let n_accesses = 1 + rng.below(399);
        for _ in 0..n_accesses {
            let line = rng.below(4096);
            let write = rng.chance();
            c.access(line, write, ());
            assert!(c.occupancy() <= cfg.lines());
        }
    }
}

#[test]
fn cache_hit_after_access_until_capacity() {
    // With fewer distinct lines than ways in the set, a line stays
    // resident.
    let mut rng = Rng(0x20);
    for _ in 0..48 {
        let line = rng.below(10_000);
        let mut c: Cache<()> = Cache::new(CacheConfig::new(1, 8));
        c.access(line, false, ());
        let n_others = rng.below(4);
        for _ in 0..n_others {
            c.access(rng.below(10_000), false, ());
        }
        assert!(c.contains(line));
    }
}

#[test]
fn invalidated_lines_are_not_hits() {
    let mut rng = Rng(0x30);
    for _ in 0..48 {
        let mut c: Cache<()> = Cache::new(CacheConfig::new(8, 4));
        let n = 1 + rng.below(49);
        for _ in 0..n {
            let l = rng.below(256);
            c.access(l, true, ());
            c.invalidate_coherence(l);
            assert!(!c.contains(l));
        }
    }
}

#[test]
fn dram_latency_bounds() {
    let mut rng = Rng(0x40);
    for _ in 0..48 {
        let cfg = DramConfig::default();
        let mut d = Dram::new(cfg, 4);
        let mut now = 0u64;
        let n = 1 + rng.below(299);
        for _ in 0..n {
            let core = rng.below(4) as usize;
            let line = rng.below(100_000);
            now += rng.below(50);
            let a = d.access(core, line, now);
            // Lower bound: a row hit with a free bus.
            assert!(a.latency >= cfg.row_hit_latency() + cfg.t_bus);
            // All attributed waits are within the total latency.
            assert!(a.bank_wait_other + a.bus_wait_other <= a.latency);
            assert!(a.page_conflict_other <= cfg.row_conflict_latency());
        }
    }
}

#[test]
fn hierarchy_event_consistency() {
    let mut rng = Rng(0x50);
    for _ in 0..48 {
        let cfg = MemConfig {
            l1: CacheConfig::new(16, 2),
            llc: CacheConfig::new(64, 4),
            atd_sample_period: 8,
            ..MemConfig::default()
        };
        let mut m = MemoryHierarchy::new(&cfg, 4);
        let mut now = 0u64;
        let n = 1 + rng.below(299);
        for _ in 0..n {
            let core = rng.below(4) as usize;
            let line = rng.below(4096);
            let write = rng.chance();
            now += rng.below(100);
            let ev = m.access(core, line, write, now);
            match ev.level {
                ServedBy::L1 => assert_eq!(ev.latency_beyond_l1, 0),
                ServedBy::Llc => assert_eq!(ev.latency_beyond_l1, cfg.llc_hit_latency),
                ServedBy::Dram => assert!(ev.latency_beyond_l1 > cfg.llc_hit_latency),
            }
            // Sampled classifications imply a sampled set.
            if ev.interthread_hit_sampled || ev.interthread_miss_sampled {
                assert!(ev.sampled);
            }
            // A hit cannot be an inter-thread miss and vice versa.
            assert!(!(ev.interthread_hit_sampled && ev.interthread_miss_sampled));
            // Interference attribution only on DRAM accesses.
            if ev.level != ServedBy::Dram {
                assert_eq!(
                    ev.bus_wait_other + ev.bank_wait_other + ev.page_conflict_other,
                    0
                );
            }
        }
    }
}

#[test]
fn atd_matches_private_cache_of_same_geometry() {
    // An ATD with sampling period 1 must behave exactly like a private
    // cache with the LLC's geometry.
    let mut rng = Rng(0x60);
    for _ in 0..48 {
        let llc_cfg = CacheConfig::new(32, 2);
        let mut atd = memsim::Atd::new(llc_cfg, 1);
        let mut reference: Cache<()> = Cache::new(llc_cfg);
        let n = 1 + rng.below(399);
        for _ in 0..n {
            let line = rng.below(2048);
            let atd_hit = atd.access(line, false).expect("period 1 samples all").hit;
            let ref_hit = reference.access(line, false, ()).hit;
            assert_eq!(atd_hit, ref_hit);
        }
    }
}
