//! Property-based tests of the memory-hierarchy invariants.

use memsim::{Cache, CacheConfig, Dram, DramConfig, MemConfig, MemoryHierarchy, ServedBy};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cache_never_exceeds_capacity(
        sets_log2 in 1u32..6, ways in 1usize..9, accesses in prop::collection::vec((0u64..4096, prop::bool::ANY), 1..400)
    ) {
        let cfg = CacheConfig::new(1 << sets_log2, ways);
        let mut c: Cache<()> = Cache::new(cfg);
        for (line, write) in accesses {
            c.access(line, write, ());
            prop_assert!(c.occupancy() <= cfg.lines());
        }
    }

    #[test]
    fn cache_hit_after_access_until_capacity(
        line in 0u64..10_000, others in prop::collection::vec(0u64..10_000, 0..4)
    ) {
        // With fewer distinct lines than ways in the set, a line stays
        // resident.
        let mut c: Cache<()> = Cache::new(CacheConfig::new(1, 8));
        c.access(line, false, ());
        for o in others {
            c.access(o, false, ());
        }
        prop_assert!(c.contains(line));
    }

    #[test]
    fn invalidated_lines_are_not_hits(
        lines in prop::collection::vec(0u64..256, 1..50)
    ) {
        let mut c: Cache<()> = Cache::new(CacheConfig::new(8, 4));
        for &l in &lines {
            c.access(l, true, ());
            c.invalidate_coherence(l);
            prop_assert!(!c.contains(l));
        }
    }

    #[test]
    fn dram_latency_bounds(
        accesses in prop::collection::vec((0usize..4, 0u64..100_000, 0u64..50), 1..300)
    ) {
        let cfg = DramConfig::default();
        let mut d = Dram::new(cfg, 4);
        let mut now = 0u64;
        for (core, line, gap) in accesses {
            now += gap;
            let a = d.access(core, line, now);
            // Lower bound: a row hit with a free bus.
            prop_assert!(a.latency >= cfg.row_hit_latency() + cfg.t_bus);
            // All attributed waits are within the total latency.
            prop_assert!(a.bank_wait_other + a.bus_wait_other <= a.latency);
            prop_assert!(a.page_conflict_other <= cfg.row_conflict_latency());
        }
    }

    #[test]
    fn hierarchy_event_consistency(
        accesses in prop::collection::vec((0usize..4, 0u64..4096, prop::bool::ANY, 0u64..100), 1..300)
    ) {
        let cfg = MemConfig {
            l1: CacheConfig::new(16, 2),
            llc: CacheConfig::new(64, 4),
            atd_sample_period: 8,
            ..MemConfig::default()
        };
        let mut m = MemoryHierarchy::new(&cfg, 4);
        let mut now = 0u64;
        for (core, line, write, gap) in accesses {
            now += gap;
            let ev = m.access(core, line, write, now);
            match ev.level {
                ServedBy::L1 => prop_assert_eq!(ev.latency_beyond_l1, 0),
                ServedBy::Llc => prop_assert_eq!(ev.latency_beyond_l1, cfg.llc_hit_latency),
                ServedBy::Dram => prop_assert!(ev.latency_beyond_l1 > cfg.llc_hit_latency),
            }
            // Sampled classifications imply a sampled set.
            if ev.interthread_hit_sampled || ev.interthread_miss_sampled {
                prop_assert!(ev.sampled);
            }
            // A hit cannot be an inter-thread miss and vice versa.
            prop_assert!(!(ev.interthread_hit_sampled && ev.interthread_miss_sampled));
            // Interference attribution only on DRAM accesses.
            if ev.level != ServedBy::Dram {
                prop_assert_eq!(ev.bus_wait_other + ev.bank_wait_other + ev.page_conflict_other, 0);
            }
        }
    }

    #[test]
    fn atd_matches_private_cache_of_same_geometry(
        accesses in prop::collection::vec(0u64..2048, 1..400)
    ) {
        // An ATD with sampling period 1 must behave exactly like a
        // private cache with the LLC's geometry.
        let llc_cfg = CacheConfig::new(32, 2);
        let mut atd = memsim::Atd::new(llc_cfg, 1);
        let mut reference: Cache<()> = Cache::new(llc_cfg);
        for line in accesses {
            let atd_hit = atd.access(line, false).expect("period 1 samples all").hit;
            let ref_hit = reference.access(line, false, ()).hit;
            prop_assert_eq!(atd_hit, ref_hit);
        }
    }
}
