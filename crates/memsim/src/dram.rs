//! Banked open-page DRAM with a shared memory bus and per-core open row
//! arrays (ORAs).
//!
//! Models the three memory-subsystem interference sources of §3.1/§4.1:
//!
//! - **bus conflicts** — the single data bus serves one transfer at a time;
//!   waiting for a transfer of *another* core is interference;
//! - **bank conflicts** — a busy bank delays accesses; waiting for another
//!   core's access is interference;
//! - **open-page conflicts** — under the open-page policy a row stays open
//!   in the row buffer; if a core finds its row closed *and its ORA says it
//!   opened that row most recently*, another core must have closed it, and
//!   the extra precharge+activate latency is interference.

use crate::{CoreId, LineAddr};

/// DRAM timing and geometry parameters (all times in core cycles).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DramConfig {
    /// Number of banks (paper: 8).
    pub banks: usize,
    /// log2 of the number of cache lines per DRAM row (6 → 64 lines ×
    /// 64 B = 4 KB rows).
    pub lines_per_row_log2: u32,
    /// Row activate time.
    pub t_act: u64,
    /// Precharge time.
    pub t_pre: u64,
    /// Column access time.
    pub t_cas: u64,
    /// Data-bus occupancy per transfer.
    pub t_bus: u64,
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig {
            banks: 8,
            lines_per_row_log2: 6,
            t_act: 30,
            t_pre: 30,
            t_cas: 40,
            t_bus: 8,
        }
    }
}

impl DramConfig {
    /// The DRAM row holding a line.
    #[must_use]
    pub fn row_of(&self, line: LineAddr) -> u64 {
        line >> self.lines_per_row_log2
    }

    /// The bank holding a line (rows interleave across banks).
    #[must_use]
    pub fn bank_of(&self, line: LineAddr) -> usize {
        (self.row_of(line) % self.banks as u64) as usize
    }

    /// Service latency for a row-buffer hit.
    #[must_use]
    pub fn row_hit_latency(&self) -> u64 {
        self.t_cas
    }

    /// Service latency when the bank has no open row.
    #[must_use]
    pub fn row_empty_latency(&self) -> u64 {
        self.t_act + self.t_cas
    }

    /// Service latency when another row must first be closed.
    #[must_use]
    pub fn row_conflict_latency(&self) -> u64 {
        self.t_pre + self.t_act + self.t_cas
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Bank {
    busy_until: u64,
    open_row: Option<u64>,
    last_user: Option<CoreId>,
}

/// One core's open row array: the row this core most recently opened in
/// each bank (§4.1).
#[derive(Debug, Clone)]
struct Ora {
    rows: Vec<Option<u64>>,
}

/// Result of one DRAM access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramAccess {
    /// Total latency from issue to data return.
    pub latency: u64,
    /// Cycles waited on a bank busy with another core's access.
    pub bank_wait_other: u64,
    /// Cycles waited for the data bus while used by another core.
    pub bus_wait_other: u64,
    /// Extra service latency caused by another core closing this core's
    /// open page (per the ORA), versus the row hit it would have had.
    pub page_conflict_other: u64,
    /// The access hit the open row.
    pub row_hit: bool,
}

/// The DRAM subsystem shared by all cores.
///
/// # Examples
///
/// ```
/// use memsim::{Dram, DramConfig};
/// let mut dram = Dram::new(DramConfig::default(), 2);
/// let first = dram.access(0, 0, 0);
/// assert!(!first.row_hit);                       // cold bank
/// let second = dram.access(0, 1, first.latency); // same row, later
/// assert!(second.row_hit);
/// assert!(second.latency < first.latency);
/// ```
#[derive(Debug, Clone)]
pub struct Dram {
    cfg: DramConfig,
    banks: Vec<Bank>,
    oras: Vec<Ora>,
    bus_free: u64,
    bus_last_user: Option<CoreId>,
}

impl Dram {
    /// Creates a DRAM shared by `n_cores` cores.
    ///
    /// # Panics
    ///
    /// Panics if the config has zero banks or `n_cores` is zero.
    #[must_use]
    pub fn new(cfg: DramConfig, n_cores: usize) -> Self {
        assert!(cfg.banks > 0, "banks must be non-zero");
        assert!(n_cores > 0, "n_cores must be non-zero");
        Dram {
            cfg,
            banks: vec![Bank::default(); cfg.banks],
            oras: vec![
                Ora {
                    rows: vec![None; cfg.banks],
                };
                n_cores
            ],
            bus_free: 0,
            bus_last_user: None,
        }
    }

    /// The DRAM parameters.
    #[must_use]
    pub fn config(&self) -> DramConfig {
        self.cfg
    }

    /// Performs one access by `core` to `line` starting at cycle `now`.
    ///
    /// Works identically for demand accesses and writebacks; the caller
    /// decides whether the returned latency stalls anyone.
    pub fn access(&mut self, core: CoreId, line: LineAddr, now: u64) -> DramAccess {
        let row = self.cfg.row_of(line);
        let bank_idx = self.cfg.bank_of(line);
        let bank = &mut self.banks[bank_idx];

        // Wait for the bank.
        let bank_wait = bank.busy_until.saturating_sub(now);
        let bank_wait_other = if bank.last_user.is_some_and(|u| u != core) {
            bank_wait
        } else {
            0
        };
        let start = now + bank_wait;

        // Row buffer state.
        let (service, row_hit) = match bank.open_row {
            Some(open) if open == row => (self.cfg.row_hit_latency(), true),
            Some(_) => (self.cfg.row_conflict_latency(), false),
            None => (self.cfg.row_empty_latency(), false),
        };

        // Open-page interference per the ORA: the row was open for us and
        // someone else replaced it.
        let ora = &mut self.oras[core];
        let page_conflict_other = if !row_hit
            && bank.open_row.is_some()
            && ora.rows[bank_idx] == Some(row)
            && bank.last_user.is_some_and(|u| u != core)
        {
            self.cfg.row_conflict_latency() - self.cfg.row_hit_latency()
        } else {
            0
        };
        ora.rows[bank_idx] = Some(row);

        let data_ready = start + service;

        // Wait for the shared data bus.
        let bus_wait = self.bus_free.saturating_sub(data_ready);
        let bus_wait_other = if self.bus_last_user.is_some_and(|u| u != core) {
            bus_wait
        } else {
            0
        };
        let finish = data_ready + bus_wait + self.cfg.t_bus;

        bank.busy_until = data_ready;
        bank.open_row = Some(row);
        bank.last_user = Some(core);
        self.bus_free = finish;
        self.bus_last_user = Some(core);

        DramAccess {
            latency: finish - now,
            bank_wait_other,
            bus_wait_other,
            page_conflict_other,
            row_hit,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dram() -> Dram {
        Dram::new(DramConfig::default(), 4)
    }

    #[test]
    fn cold_access_latency() {
        let mut d = dram();
        let a = d.access(0, 0, 0);
        let cfg = d.config();
        assert_eq!(a.latency, cfg.row_empty_latency() + cfg.t_bus);
        assert!(!a.row_hit);
        assert_eq!(a.bank_wait_other, 0);
        assert_eq!(a.page_conflict_other, 0);
    }

    #[test]
    fn row_hit_is_faster() {
        let mut d = dram();
        let a = d.access(0, 0, 0);
        let b = d.access(0, 1, a.latency + 10);
        assert!(b.row_hit);
        assert_eq!(b.latency, d.config().row_hit_latency() + d.config().t_bus);
    }

    #[test]
    fn row_conflict_same_core_not_interference() {
        let mut d = dram();
        let cfg = d.config();
        d.access(0, 0, 0);
        // Same bank, different row: row 8 maps to bank 0 with 8 banks.
        let lines_per_row = 1u64 << cfg.lines_per_row_log2;
        let other_row_line = 8 * lines_per_row;
        assert_eq!(cfg.bank_of(other_row_line), 0);
        let b = d.access(0, other_row_line, 1000);
        assert!(!b.row_hit);
        assert_eq!(b.page_conflict_other, 0); // self-inflicted
    }

    #[test]
    fn page_conflict_attributed_to_other_core() {
        let mut d = dram();
        let cfg = d.config();
        let lines_per_row = 1u64 << cfg.lines_per_row_log2;
        // Core 0 opens row 0 in bank 0.
        d.access(0, 0, 0);
        // Core 1 opens row 8 (same bank), closing core 0's row.
        d.access(1, 8 * lines_per_row, 1000);
        // Core 0 returns to row 0: closed by core 1 → interference.
        let back = d.access(0, 1, 2000);
        assert!(!back.row_hit);
        assert_eq!(
            back.page_conflict_other,
            cfg.row_conflict_latency() - cfg.row_hit_latency()
        );
    }

    #[test]
    fn bank_wait_attributed_to_other_core() {
        let mut d = dram();
        d.access(0, 0, 0); // bank 0 busy until t_act+t_cas = 70
        let b = d.access(1, 1, 10); // same bank, row hit after wait
        assert!(b.bank_wait_other > 0);
    }

    #[test]
    fn bank_wait_self_not_interference() {
        let mut d = dram();
        d.access(0, 0, 0);
        let b = d.access(0, 1, 10);
        assert_eq!(b.bank_wait_other, 0);
    }

    #[test]
    fn bus_contention_across_banks() {
        let mut d = dram();
        let cfg = d.config();
        let lines_per_row = 1u64 << cfg.lines_per_row_log2;
        // Two cores, different banks, same time: second transfer waits for bus.
        let a = d.access(0, 0, 0);
        let b = d.access(1, lines_per_row, 0); // bank 1
        assert_eq!(a.bus_wait_other, 0);
        assert!(b.bus_wait_other > 0 || b.latency > a.latency - cfg.t_bus);
    }

    #[test]
    fn deterministic() {
        let mut d1 = dram();
        let mut d2 = dram();
        for i in 0..100u64 {
            let a = d1.access((i % 4) as usize, i * 3, i * 7);
            let b = d2.access((i % 4) as usize, i * 3, i * 7);
            assert_eq!(a, b);
        }
    }
}
