//! Auxiliary tag directories (ATDs) with set sampling (§4.1–4.2).
//!
//! One ATD per core tracks what that core's LLC accesses would have done
//! in a *private* LLC of the same size. To bound hardware cost only every
//! `sample_period`-th LLC set is monitored; penalties are later
//! extrapolated by the sampling factor.
//!
//! Classification (performed by the hierarchy, from the two outcomes):
//!
//! - shared-LLC **miss** that **hits** in the ATD → *inter-thread miss*
//!   (negative interference: another thread evicted this thread's data);
//! - shared-LLC **hit** that **misses** in the ATD → *inter-thread hit*
//!   (positive interference: another thread prefetched this data).

use crate::cache::{Cache, CacheConfig};
use crate::LineAddr;

/// Outcome of an ATD probe for a sampled set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AtdOutcome {
    /// The access would have hit in a private LLC.
    pub hit: bool,
}

/// One core's auxiliary tag directory.
///
/// # Examples
///
/// ```
/// use memsim::{Atd, CacheConfig};
/// // LLC with 64 sets, sampling every 8th set: the ATD holds 8 sets.
/// let mut atd = Atd::new(CacheConfig::new(64, 4), 8);
/// assert!(atd.is_sampled(0));
/// assert!(!atd.is_sampled(1));
/// // Line 0 maps to LLC set 0 (sampled): first access misses, second hits.
/// assert_eq!(atd.access(0, false).map(|o| o.hit), Some(false));
/// assert_eq!(atd.access(0, false).map(|o| o.hit), Some(true));
/// // Line 1 maps to set 1 (not sampled): no outcome.
/// assert_eq!(atd.access(1, false), None);
/// ```
#[derive(Debug, Clone)]
pub struct Atd {
    llc_cfg: CacheConfig,
    sample_period: usize,
    /// `log2(sample_period)`; the period is a power of two because both
    /// the LLC set count and the sampled set count are.
    period_shift: u32,
    tags: Cache<()>,
}

impl Atd {
    /// Creates an ATD for an LLC with geometry `llc_cfg`, monitoring every
    /// `sample_period`-th set.
    ///
    /// # Panics
    ///
    /// Panics if `sample_period` is zero, exceeds the set count, or does
    /// not divide it into a power of two (the backing store is itself a
    /// power-of-two cache).
    #[must_use]
    pub fn new(llc_cfg: CacheConfig, sample_period: usize) -> Self {
        assert!(sample_period > 0, "sample period must be non-zero");
        assert!(
            sample_period <= llc_cfg.sets(),
            "sample period exceeds LLC set count"
        );
        let sampled_sets = llc_cfg.sets() / sample_period;
        assert!(
            sampled_sets.is_power_of_two(),
            "LLC sets / sample period must be a power of two"
        );
        assert!(
            sample_period.is_power_of_two(),
            "sample period must be a power of two"
        );
        Atd {
            llc_cfg,
            sample_period,
            period_shift: sample_period.trailing_zeros(),
            tags: Cache::new(CacheConfig::new(sampled_sets, llc_cfg.ways())),
        }
    }

    /// The sampling period (an LLC set is monitored iff
    /// `set % sample_period == 0`).
    #[must_use]
    pub fn sample_period(&self) -> usize {
        self.sample_period
    }

    /// Whether an LLC set index is monitored.
    #[must_use]
    #[inline]
    pub fn is_sampled(&self, llc_set: usize) -> bool {
        llc_set & (self.sample_period - 1) == 0
    }

    /// Probes the ATD for `line`. Returns `None` when the line's LLC set
    /// is not monitored; otherwise updates the ATD (fill on miss, LRU on
    /// hit) and reports whether a private LLC would have hit.
    pub fn access(&mut self, line: LineAddr, write: bool) -> Option<AtdOutcome> {
        let llc_set = self.llc_cfg.set_of(line);
        if !self.is_sampled(llc_set) {
            return None;
        }
        // Re-index the line into the compact sampled-set store. Dividing
        // the set bits by the period keeps distinct sampled sets distinct.
        let sampled_index = (llc_set >> self.period_shift) as u64;
        let tag_bits = line >> self.llc_cfg.sets().trailing_zeros();
        let compact = (tag_bits << self.tags.config().sets().trailing_zeros()) | sampled_index;
        let out = self.tags.access(compact, write, ());
        Some(AtdOutcome { hit: out.hit })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn atd() -> Atd {
        Atd::new(CacheConfig::new(64, 2), 8)
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn rejects_zero_period() {
        let _ = Atd::new(CacheConfig::new(64, 2), 0);
    }

    #[test]
    fn sampling_filter() {
        let a = atd();
        assert!(a.is_sampled(0));
        assert!(a.is_sampled(8));
        assert!(!a.is_sampled(9));
    }

    #[test]
    fn unsampled_lines_return_none() {
        let mut a = atd();
        assert_eq!(a.access(3, false), None);
    }

    #[test]
    fn private_lru_behaviour() {
        let mut a = atd();
        // Lines mapping to sampled LLC set 0: multiples of 64.
        assert!(!a.access(0, false).unwrap().hit);
        assert!(!a.access(64, false).unwrap().hit);
        assert!(a.access(0, false).unwrap().hit);
        // Third distinct line evicts LRU (64) in the 2-way set.
        assert!(!a.access(128, false).unwrap().hit);
        assert!(!a.access(64, false).unwrap().hit);
    }

    #[test]
    fn distinct_sampled_sets_do_not_collide() {
        let mut a = atd();
        // LLC sets 0 and 8 are both sampled and must map to different ATD sets.
        assert!(!a.access(0, false).unwrap().hit);
        assert!(!a.access(8, false).unwrap().hit);
        assert!(a.access(0, false).unwrap().hit);
        assert!(a.access(8, false).unwrap().hit);
    }

    #[test]
    fn full_sampling_period_one() {
        let mut a = Atd::new(CacheConfig::new(64, 2), 1);
        for line in 0..64u64 {
            assert!(a.access(line, false).is_some());
        }
    }
}
