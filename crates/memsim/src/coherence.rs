//! A directory tracking which private L1 caches hold each line.
//!
//! The hierarchy keeps the directory in sync with the actual L1 contents
//! (fills, evictions, invalidations) so that a store only walks the cores
//! that genuinely share the line. This models the coherence traffic the
//! paper attributes to cache coherency (§3.2, §4.5): upgrades invalidate
//! remote copies, and re-references of invalidated lines are *coherency
//! misses*.
//!
//! ## Representation
//!
//! The directory is probed on every store and updated on every L1 fill
//! and eviction, so it is kept *flat*: a single contiguous open-addressing
//! table of `(line, sharer-bitmask)` pairs with linear probing and
//! backward-shift deletion. Compared to the original
//! `HashMap<LineAddr, u64>` this removes the SipHash per probe and — via
//! [`Directory::sharers_other_than`] returning a bitmask instead of a
//! `Vec` — the per-store allocation. Capacity grows geometrically; an
//! entry exists only while some L1 holds the line, so the table size is
//! bounded by total L1 capacity.
//!
//! ## Core-count scaling
//!
//! Sharer masks are stored as `ceil(n_cores / 64)` words per slot, laid
//! out contiguously (`masks[slot * words ..][..words]`). For machines of
//! up to 64 cores this is exactly one word — the identical single-`u64`
//! hot path as before — and [`SharerSet`] stays inline (no allocation
//! anywhere on the access path). Above 64 cores the masks *spill* to
//! multiple words and sharer sets to a compact heap-allocated bitset;
//! operation-stream equivalence between the two representations is pinned
//! by the `spilled_directory_equivalence` tests (forced multi-word masks
//! on a ≤64-core directory must behave bit-for-bit like the inline one).

use crate::{CoreId, LineAddr};

/// A set of sharer cores, as a bitmask over core ids.
///
/// Machines of up to 64 cores use the allocation-free [`Inline`] word;
/// wider machines spill to a compact multi-word bitset. Iterate with
/// [`SharerSet::iter`] (or `&set` / the consuming `IntoIterator`);
/// iteration yields core indices in ascending order.
///
/// [`Inline`]: SharerSet::Inline
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SharerSet {
    /// Single-word bitmask (core counts up to 64). Bit `c` set means core
    /// `c` holds the line.
    Inline(u64),
    /// Multi-word bitmask (core counts above 64): word `c / 64`, bit
    /// `c % 64`.
    Spilled(Box<[u64]>),
}

impl Default for SharerSet {
    fn default() -> Self {
        SharerSet::Inline(0)
    }
}

impl SharerSet {
    /// The empty set (inline representation).
    #[must_use]
    pub fn empty() -> Self {
        SharerSet::Inline(0)
    }

    fn words(&self) -> &[u64] {
        match self {
            SharerSet::Inline(w) => std::slice::from_ref(w),
            SharerSet::Spilled(ws) => ws,
        }
    }

    /// Whether no core is in the set.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words().iter().all(|&w| w == 0)
    }

    /// Number of cores in the set.
    #[must_use]
    pub fn len(&self) -> u32 {
        self.words().iter().map(|w| w.count_ones()).sum()
    }

    /// Whether `core` is in the set.
    #[must_use]
    pub fn contains(&self, core: CoreId) -> bool {
        self.words()
            .get(core / 64)
            .is_some_and(|w| w >> (core % 64) & 1 == 1)
    }

    /// The cores as a vector (diagnostics/tests; iteration is
    /// allocation-free).
    #[must_use]
    pub fn to_vec(&self) -> Vec<CoreId> {
        self.iter().collect()
    }

    /// Iterates the member cores in ascending order, without consuming
    /// the set.
    #[must_use]
    pub fn iter(&self) -> SharerIter<'_> {
        SharerIter {
            words: self.words(),
            word_index: 0,
            current: self.words().first().copied().unwrap_or(0),
        }
    }
}

impl<'a> IntoIterator for &'a SharerSet {
    type Item = CoreId;
    type IntoIter = SharerIter<'a>;

    fn into_iter(self) -> SharerIter<'a> {
        self.iter()
    }
}

/// Borrowing iterator over a [`SharerSet`], yielding core ids in
/// ascending order.
#[derive(Debug, Clone)]
pub struct SharerIter<'a> {
    words: &'a [u64],
    word_index: usize,
    current: u64,
}

impl Iterator for SharerIter<'_> {
    type Item = CoreId;

    #[inline]
    fn next(&mut self) -> Option<CoreId> {
        while self.current == 0 {
            self.word_index += 1;
            self.current = *self.words.get(self.word_index)?;
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        Some(self.word_index * 64 + bit)
    }
}

/// Sentinel marking an empty slot in the `lines` array. Real line
/// addresses never take this value: the largest addresses the simulator
/// mints are the lock/barrier regions just above 2^33 (kept low for the
/// caches' compact-tag range).
const EMPTY_LINE: LineAddr = LineAddr::MAX;

/// Sharer directory for the private L1s.
///
/// Supports any non-zero core count: up to 64 cores the sharer masks are
/// single `u64` words (the allocation-free fast path); above that they
/// are stored as `ceil(n_cores / 64)` contiguous words per slot.
///
/// # Examples
///
/// ```
/// use memsim::Directory;
/// let mut dir = Directory::new(4);
/// dir.add_sharer(0, 100);
/// dir.add_sharer(2, 100);
/// assert_eq!(dir.sharers_other_than(1, 100).to_vec(), vec![0, 2]);
///
/// // Core counts beyond 64 spill to multi-word masks transparently.
/// let mut wide = Directory::new(128);
/// wide.add_sharer(127, 9);
/// assert!(wide.sharers(9).contains(127));
/// ```
#[derive(Debug, Clone)]
pub struct Directory {
    /// Slot keys ([`EMPTY_LINE`] = free). Kept separate from the masks so
    /// a probe walks only this dense 8-byte-per-slot array.
    lines: Vec<LineAddr>,
    /// Sharer bitmask words, `mask_words` per slot (meaningful only where
    /// `lines` is occupied).
    masks: Vec<u64>,
    /// Words per sharer mask: `ceil(n_cores / 64)`, so 1 for every
    /// machine of up to 64 cores.
    mask_words: usize,
    /// `lines.len() - 1`; capacity is a power of two.
    index_mask: usize,
    /// Right-shift turning a 64-bit hash into a slot index (top bits).
    hash_shift: u32,
    len: usize,
    n_cores: usize,
}

/// Fibonacci multiplicative hash; the top bits index the table.
#[inline]
fn hash(line: LineAddr) -> u64 {
    line.wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

impl Directory {
    const INITIAL_CAP: usize = 1024;

    /// Creates a directory for `n_cores` cores. Any non-zero count is
    /// supported; counts above 64 use multi-word sharer masks.
    ///
    /// # Panics
    ///
    /// Panics if `n_cores` is zero.
    #[must_use]
    pub fn new(n_cores: usize) -> Self {
        assert!(n_cores > 0, "at least one core required");
        Self::with_mask_words(n_cores, n_cores.div_ceil(64))
    }

    /// Testing constructor: a directory for `n_cores` cores that always
    /// uses the *spilled* multi-word mask layout (at least two words per
    /// slot), even when `n_cores` would fit inline. The equivalence suite
    /// drives this against [`Directory::new`] to pin the two layouts to
    /// bit-identical behaviour.
    ///
    /// # Panics
    ///
    /// Panics if `n_cores` is zero.
    #[must_use]
    pub fn new_spilled(n_cores: usize) -> Self {
        assert!(n_cores > 0, "at least one core required");
        Self::with_mask_words(n_cores, n_cores.div_ceil(64).max(2))
    }

    fn with_mask_words(n_cores: usize, mask_words: usize) -> Self {
        Directory {
            lines: vec![EMPTY_LINE; Self::INITIAL_CAP],
            masks: vec![0; Self::INITIAL_CAP * mask_words],
            mask_words,
            index_mask: Self::INITIAL_CAP - 1,
            hash_shift: 64 - Self::INITIAL_CAP.trailing_zeros(),
            len: 0,
            n_cores,
        }
    }

    /// Index of the slot holding `line`, or of the empty slot where it
    /// would be inserted.
    #[inline]
    fn probe(&self, line: LineAddr) -> usize {
        debug_assert_ne!(line, EMPTY_LINE, "LineAddr::MAX is reserved");
        let mut i = (hash(line) >> self.hash_shift) as usize;
        loop {
            let l = self.lines[i];
            if l == line || l == EMPTY_LINE {
                return i;
            }
            i = (i + 1) & self.index_mask;
        }
    }

    /// The sharer set stored at slot `i` (empty mask for free slots).
    #[inline]
    fn set_at(&self, i: usize) -> SharerSet {
        if self.mask_words == 1 {
            SharerSet::Inline(self.masks[i])
        } else {
            let base = i * self.mask_words;
            SharerSet::Spilled(self.masks[base..base + self.mask_words].into())
        }
    }

    /// Whether slot `i`'s mask has no bits set.
    #[inline]
    fn mask_is_empty(&self, i: usize) -> bool {
        let base = i * self.mask_words;
        self.masks[base..base + self.mask_words]
            .iter()
            .all(|&w| w == 0)
    }

    /// Clears slot `i`'s mask.
    #[inline]
    fn clear_mask(&mut self, i: usize) {
        let base = i * self.mask_words;
        self.masks[base..base + self.mask_words].fill(0);
    }

    /// Copies slot `from`'s mask into slot `to` (within `self.masks`).
    #[inline]
    fn move_mask(&mut self, from: usize, to: usize) {
        if self.mask_words == 1 {
            self.masks[to] = self.masks[from];
        } else {
            let w = self.mask_words;
            self.masks.copy_within(from * w..(from + 1) * w, to * w);
        }
    }

    fn grow(&mut self) {
        let new_cap = self.lines.len() * 2;
        let w = self.mask_words;
        let old_lines = std::mem::replace(&mut self.lines, vec![EMPTY_LINE; new_cap]);
        let old_masks = std::mem::replace(&mut self.masks, vec![0; new_cap * w]);
        self.index_mask = new_cap - 1;
        self.hash_shift = 64 - new_cap.trailing_zeros();
        for (slot, line) in old_lines.into_iter().enumerate() {
            if line != EMPTY_LINE {
                let i = self.probe(line);
                self.lines[i] = line;
                self.masks[i * w..(i + 1) * w]
                    .copy_from_slice(&old_masks[slot * w..(slot + 1) * w]);
            }
        }
    }

    /// Removes the entry at `i`, back-shifting the displaced cluster tail
    /// so probe sequences stay intact (Knuth 6.4 algorithm R).
    fn delete_at(&mut self, mut i: usize) {
        self.len -= 1;
        let mut j = i;
        loop {
            j = (j + 1) & self.index_mask;
            let line = self.lines[j];
            if line == EMPTY_LINE {
                break;
            }
            let home = (hash(line) >> self.hash_shift) as usize;
            // Move the entry back to i unless its home lies within (i, j].
            let dist_home = j.wrapping_sub(home) & self.index_mask;
            let dist_i = j.wrapping_sub(i) & self.index_mask;
            if dist_home >= dist_i {
                self.lines[i] = line;
                self.move_mask(j, i);
                i = j;
            }
        }
        self.lines[i] = EMPTY_LINE;
        self.clear_mask(i);
    }

    /// Records that `core`'s L1 now holds `line`.
    pub fn add_sharer(&mut self, core: CoreId, line: LineAddr) {
        debug_assert!(core < self.n_cores);
        let i = self.probe(line);
        if self.lines[i] == EMPTY_LINE {
            // Keep the load factor below 1/2.
            if (self.len + 1) * 2 > self.lines.len() {
                self.grow();
                return self.add_sharer(core, line);
            }
            self.lines[i] = line;
            self.clear_mask(i);
            self.masks[i * self.mask_words + core / 64] = 1u64 << (core % 64);
            self.len += 1;
        } else {
            self.masks[i * self.mask_words + core / 64] |= 1u64 << (core % 64);
        }
    }

    /// Records that `core`'s L1 no longer holds `line`.
    pub fn remove_sharer(&mut self, core: CoreId, line: LineAddr) {
        let i = self.probe(line);
        if self.lines[i] != EMPTY_LINE {
            self.masks[i * self.mask_words + core / 64] &= !(1u64 << (core % 64));
            if self.mask_is_empty(i) {
                self.delete_at(i);
            }
        }
    }

    /// Drops the whole entry for `line` (all sharers at once; used for
    /// LLC back-invalidation, where every L1 copy dies together).
    pub fn clear_line(&mut self, line: LineAddr) {
        let i = self.probe(line);
        if self.lines[i] != EMPTY_LINE {
            self.delete_at(i);
        }
    }

    /// Removes and returns `line`'s sharer set in a single probe
    /// (`sharers` + `clear_line` fused for the LLC-eviction path).
    pub fn take_line(&mut self, line: LineAddr) -> SharerSet {
        let i = self.probe(line);
        if self.lines[i] == EMPTY_LINE {
            return SharerSet::empty();
        }
        let set = self.set_at(i);
        self.delete_at(i);
        set
    }

    /// All cores whose L1 holds `line`.
    #[must_use]
    pub fn sharers(&self, line: LineAddr) -> SharerSet {
        self.set_at(self.probe(line))
    }

    /// Cores other than `core` whose L1 holds `line` (the invalidation
    /// targets of a store by `core`). Allocation-free for machines of up
    /// to 64 cores.
    #[must_use]
    pub fn sharers_other_than(&self, core: CoreId, line: LineAddr) -> SharerSet {
        let i = self.probe(line);
        if self.mask_words == 1 {
            SharerSet::Inline(self.masks[i] & !(1u64 << core))
        } else {
            let base = i * self.mask_words;
            let mut words: Box<[u64]> = self.masks[base..base + self.mask_words].into();
            words[core / 64] &= !(1u64 << (core % 64));
            SharerSet::Spilled(words)
        }
    }

    /// Whether any core's L1 holds `line`.
    #[must_use]
    pub fn is_shared(&self, line: LineAddr) -> bool {
        self.lines[self.probe(line)] != EMPTY_LINE
    }

    /// Number of tracked lines (diagnostics).
    #[must_use]
    pub fn tracked_lines(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "at least one core")]
    fn rejects_zero_cores() {
        let _ = Directory::new(0);
    }

    #[test]
    fn add_remove_sharers() {
        let mut d = Directory::new(8);
        d.add_sharer(1, 5);
        d.add_sharer(3, 5);
        assert!(d.is_shared(5));
        assert_eq!(d.sharers_other_than(1, 5).to_vec(), vec![3]);
        d.remove_sharer(3, 5);
        assert!(d.sharers_other_than(1, 5).is_empty());
        d.remove_sharer(1, 5);
        assert!(!d.is_shared(5));
        assert_eq!(d.tracked_lines(), 0);
    }

    #[test]
    fn self_excluded_from_invalidation_targets() {
        let mut d = Directory::new(4);
        d.add_sharer(2, 9);
        assert!(d.sharers_other_than(2, 9).is_empty());
    }

    #[test]
    fn idempotent_add() {
        let mut d = Directory::new(4);
        d.add_sharer(0, 1);
        d.add_sharer(0, 1);
        assert_eq!(d.sharers_other_than(3, 1).to_vec(), vec![0]);
        assert_eq!(d.tracked_lines(), 1);
    }

    #[test]
    fn remove_absent_is_noop() {
        let mut d = Directory::new(4);
        d.remove_sharer(0, 123);
        assert_eq!(d.tracked_lines(), 0);
    }

    #[test]
    fn clear_line_drops_all_sharers() {
        let mut d = Directory::new(8);
        for c in 0..8 {
            d.add_sharer(c, 77);
        }
        assert_eq!(d.sharers(77).len(), 8);
        d.clear_line(77);
        assert!(!d.is_shared(77));
        assert_eq!(d.tracked_lines(), 0);
        // Clearing an absent line is a no-op.
        d.clear_line(77);
        assert_eq!(d.tracked_lines(), 0);
    }

    #[test]
    fn grows_past_initial_capacity() {
        let mut d = Directory::new(2);
        for line in 0..10_000u64 {
            d.add_sharer((line % 2) as usize, line);
        }
        assert_eq!(d.tracked_lines(), 10_000);
        for line in 0..10_000u64 {
            assert_eq!(
                d.sharers(line).to_vec(),
                vec![(line % 2) as usize],
                "line {line}"
            );
        }
        for line in 0..10_000u64 {
            d.remove_sharer((line % 2) as usize, line);
        }
        assert_eq!(d.tracked_lines(), 0);
    }

    #[test]
    fn sharer_set_iteration_order() {
        let s = SharerSet::Inline(0b1010_0001);
        assert_eq!(s.to_vec(), vec![0, 5, 7]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn spilled_sharer_set_iteration_spans_words() {
        let s = SharerSet::Spilled(vec![1 << 63, 0b11, 0, 1 << 5].into());
        assert_eq!(s.to_vec(), vec![63, 64, 65, 197]);
        assert_eq!(s.len(), 4);
        assert!(s.contains(63) && s.contains(64) && s.contains(197));
        assert!(!s.contains(62) && !s.contains(128));
    }

    #[test]
    fn wide_directory_tracks_high_cores() {
        let mut d = Directory::new(128);
        d.add_sharer(0, 42);
        d.add_sharer(63, 42);
        d.add_sharer(64, 42);
        d.add_sharer(127, 42);
        assert_eq!(d.sharers(42).to_vec(), vec![0, 63, 64, 127]);
        assert_eq!(d.sharers_other_than(64, 42).to_vec(), vec![0, 63, 127]);
        d.remove_sharer(0, 42);
        d.remove_sharer(63, 42);
        d.remove_sharer(127, 42);
        assert_eq!(d.sharers(42).to_vec(), vec![64]);
        d.remove_sharer(64, 42);
        assert!(!d.is_shared(42));
        assert_eq!(d.tracked_lines(), 0);
    }

    /// Randomized equivalence against the original `HashMap<LineAddr,
    /// u64>` semantics: every operation must agree on a long random
    /// add/remove/clear stream with clustered keys (exercises
    /// backward-shift deletion inside probe clusters).
    #[test]
    fn equivalent_to_hashmap_reference() {
        use std::collections::HashMap;

        let mut rng = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        let n_cores = 16;
        let mut dir = Directory::new(n_cores);
        let mut reference: HashMap<LineAddr, u64> = HashMap::new();
        for step in 0..200_000u64 {
            // Clustered key space so probe chains form.
            let line = next() % 4096;
            let core = (next() % n_cores as u64) as usize;
            match next() % 5 {
                0 | 1 => {
                    dir.add_sharer(core, line);
                    *reference.entry(line).or_insert(0) |= 1 << core;
                }
                2 => {
                    dir.remove_sharer(core, line);
                    if let Some(m) = reference.get_mut(&line) {
                        *m &= !(1 << core);
                        if *m == 0 {
                            reference.remove(&line);
                        }
                    }
                }
                3 => {
                    dir.clear_line(line);
                    reference.remove(&line);
                }
                _ => {
                    let taken = dir.take_line(line);
                    assert_eq!(
                        taken,
                        SharerSet::Inline(reference.remove(&line).unwrap_or(0)),
                        "take at step {step}"
                    );
                }
            }
            let expect = reference.get(&line).copied().unwrap_or(0);
            assert_eq!(
                dir.sharers(line),
                SharerSet::Inline(expect),
                "step {step}, line {line}"
            );
            assert_eq!(dir.is_shared(line), expect != 0);
            assert_eq!(
                dir.sharers_other_than(core, line),
                SharerSet::Inline(expect & !(1 << core))
            );
            if step % 4096 == 0 {
                assert_eq!(dir.tracked_lines(), reference.len(), "step {step}");
            }
        }
        assert_eq!(dir.tracked_lines(), reference.len());
    }

    /// The spilled (multi-word) layout, forced onto a ≤64-core machine,
    /// must track the inline u64 layout bit-for-bit across a long random
    /// operation stream — the many-core representation is pinned to the
    /// original directory's behaviour.
    #[test]
    fn spilled_directory_equivalence() {
        let mut rng = 0xfeed_f00d_dead_beefu64;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        let n_cores = 48;
        let mut inline = Directory::new(n_cores);
        let mut spilled = Directory::new_spilled(n_cores);
        for step in 0..120_000u64 {
            let line = next() % 2048;
            let core = (next() % n_cores as u64) as usize;
            match next() % 5 {
                0 | 1 => {
                    inline.add_sharer(core, line);
                    spilled.add_sharer(core, line);
                }
                2 => {
                    inline.remove_sharer(core, line);
                    spilled.remove_sharer(core, line);
                }
                3 => {
                    inline.clear_line(line);
                    spilled.clear_line(line);
                }
                _ => {
                    assert_eq!(
                        inline.take_line(line).to_vec(),
                        spilled.take_line(line).to_vec(),
                        "take at step {step}"
                    );
                }
            }
            assert_eq!(
                inline.sharers(line).to_vec(),
                spilled.sharers(line).to_vec(),
                "step {step}, line {line}"
            );
            assert_eq!(
                inline.sharers_other_than(core, line).to_vec(),
                spilled.sharers_other_than(core, line).to_vec()
            );
            assert_eq!(inline.is_shared(line), spilled.is_shared(line));
            assert_eq!(inline.tracked_lines(), spilled.tracked_lines());
        }
    }
}
