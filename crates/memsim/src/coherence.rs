//! A directory tracking which private L1 caches hold each line.
//!
//! The hierarchy keeps the directory in sync with the actual L1 contents
//! (fills, evictions, invalidations) so that a store only walks the cores
//! that genuinely share the line. This models the coherence traffic the
//! paper attributes to cache coherency (§3.2, §4.5): upgrades invalidate
//! remote copies, and re-references of invalidated lines are *coherency
//! misses*.
//!
//! ## Representation
//!
//! The directory is probed on every store and updated on every L1 fill
//! and eviction, so it is kept *flat*: a single contiguous open-addressing
//! table of `(line, sharer-bitmask)` pairs with linear probing and
//! backward-shift deletion. Compared to the original
//! `HashMap<LineAddr, u64>` this removes the SipHash per probe and — via
//! [`Directory::sharers_other_than`] returning a bitmask instead of a
//! `Vec` — the per-store allocation. Capacity grows geometrically; an
//! entry exists only while some L1 holds the line, so the table size is
//! bounded by total L1 capacity.

use crate::{CoreId, LineAddr};

/// A set of sharer cores, as a bitmask over core ids.
///
/// Iterating yields core indices in ascending order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SharerSet(pub u64);

impl SharerSet {
    /// Whether no core is in the set.
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of cores in the set.
    #[must_use]
    pub fn len(self) -> u32 {
        self.0.count_ones()
    }

    /// The cores as a vector (diagnostics/tests; iteration is
    /// allocation-free).
    #[must_use]
    pub fn to_vec(self) -> Vec<CoreId> {
        self.into_iter().collect()
    }
}

impl Iterator for SharerSet {
    type Item = CoreId;

    #[inline]
    fn next(&mut self) -> Option<CoreId> {
        if self.0 == 0 {
            return None;
        }
        let core = self.0.trailing_zeros() as CoreId;
        self.0 &= self.0 - 1;
        Some(core)
    }
}

/// Sentinel marking an empty slot in the `lines` array. Real line
/// addresses never take this value: the largest addresses the simulator
/// mints are the lock/barrier regions just above 2^33 (kept low for the
/// caches' compact-tag range).
const EMPTY_LINE: LineAddr = LineAddr::MAX;

/// Sharer directory for the private L1s. Supports up to 64 cores.
///
/// # Examples
///
/// ```
/// use memsim::Directory;
/// let mut dir = Directory::new(4);
/// dir.add_sharer(0, 100);
/// dir.add_sharer(2, 100);
/// assert_eq!(dir.sharers_other_than(1, 100).to_vec(), vec![0, 2]);
/// ```
#[derive(Debug, Clone)]
pub struct Directory {
    /// Slot keys ([`EMPTY_LINE`] = free). Kept separate from the masks so
    /// a probe walks only this dense 8-byte-per-slot array.
    lines: Vec<LineAddr>,
    /// Sharer bitmask per slot (meaningful only where `lines` is
    /// occupied).
    masks: Vec<u64>,
    /// `lines.len() - 1`; capacity is a power of two.
    index_mask: usize,
    /// Right-shift turning a 64-bit hash into a slot index (top bits).
    hash_shift: u32,
    len: usize,
    n_cores: usize,
}

/// Fibonacci multiplicative hash; the top bits index the table.
#[inline]
fn hash(line: LineAddr) -> u64 {
    line.wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

impl Directory {
    const INITIAL_CAP: usize = 1024;

    /// Creates a directory for `n_cores` cores.
    ///
    /// # Panics
    ///
    /// Panics if `n_cores` is zero or greater than 64.
    #[must_use]
    pub fn new(n_cores: usize) -> Self {
        assert!(n_cores > 0 && n_cores <= 64, "1..=64 cores supported");
        Directory {
            lines: vec![EMPTY_LINE; Self::INITIAL_CAP],
            masks: vec![0; Self::INITIAL_CAP],
            index_mask: Self::INITIAL_CAP - 1,
            hash_shift: 64 - Self::INITIAL_CAP.trailing_zeros(),
            len: 0,
            n_cores,
        }
    }

    /// Index of the slot holding `line`, or of the empty slot where it
    /// would be inserted.
    #[inline]
    fn probe(&self, line: LineAddr) -> usize {
        debug_assert_ne!(line, EMPTY_LINE, "LineAddr::MAX is reserved");
        let mut i = (hash(line) >> self.hash_shift) as usize;
        loop {
            let l = self.lines[i];
            if l == line || l == EMPTY_LINE {
                return i;
            }
            i = (i + 1) & self.index_mask;
        }
    }

    fn grow(&mut self) {
        let new_cap = self.lines.len() * 2;
        let old_lines = std::mem::replace(&mut self.lines, vec![EMPTY_LINE; new_cap]);
        let old_masks = std::mem::replace(&mut self.masks, vec![0; new_cap]);
        self.index_mask = new_cap - 1;
        self.hash_shift = 64 - new_cap.trailing_zeros();
        for (line, mask) in old_lines.into_iter().zip(old_masks) {
            if line != EMPTY_LINE {
                let i = self.probe(line);
                self.lines[i] = line;
                self.masks[i] = mask;
            }
        }
    }

    /// Removes the entry at `i`, back-shifting the displaced cluster tail
    /// so probe sequences stay intact (Knuth 6.4 algorithm R).
    fn delete_at(&mut self, mut i: usize) {
        self.len -= 1;
        let mut j = i;
        loop {
            j = (j + 1) & self.index_mask;
            let line = self.lines[j];
            if line == EMPTY_LINE {
                break;
            }
            let home = (hash(line) >> self.hash_shift) as usize;
            // Move the entry back to i unless its home lies within (i, j].
            let dist_home = j.wrapping_sub(home) & self.index_mask;
            let dist_i = j.wrapping_sub(i) & self.index_mask;
            if dist_home >= dist_i {
                self.lines[i] = line;
                self.masks[i] = self.masks[j];
                i = j;
            }
        }
        self.lines[i] = EMPTY_LINE;
        self.masks[i] = 0;
    }

    /// Records that `core`'s L1 now holds `line`.
    pub fn add_sharer(&mut self, core: CoreId, line: LineAddr) {
        debug_assert!(core < self.n_cores);
        let i = self.probe(line);
        if self.lines[i] == EMPTY_LINE {
            // Keep the load factor below 1/2.
            if (self.len + 1) * 2 > self.lines.len() {
                self.grow();
                return self.add_sharer(core, line);
            }
            self.lines[i] = line;
            self.masks[i] = 1 << core;
            self.len += 1;
        } else {
            self.masks[i] |= 1 << core;
        }
    }

    /// Records that `core`'s L1 no longer holds `line`.
    pub fn remove_sharer(&mut self, core: CoreId, line: LineAddr) {
        let i = self.probe(line);
        if self.lines[i] != EMPTY_LINE {
            self.masks[i] &= !(1 << core);
            if self.masks[i] == 0 {
                self.delete_at(i);
            }
        }
    }

    /// Drops the whole entry for `line` (all sharers at once; used for
    /// LLC back-invalidation, where every L1 copy dies together).
    pub fn clear_line(&mut self, line: LineAddr) {
        let i = self.probe(line);
        if self.lines[i] != EMPTY_LINE {
            self.delete_at(i);
        }
    }

    /// Removes and returns `line`'s sharer set in a single probe
    /// (`sharers` + `clear_line` fused for the LLC-eviction path).
    pub fn take_line(&mut self, line: LineAddr) -> SharerSet {
        let i = self.probe(line);
        if self.lines[i] == EMPTY_LINE {
            return SharerSet(0);
        }
        let mask = self.masks[i];
        self.delete_at(i);
        SharerSet(mask)
    }

    /// All cores whose L1 holds `line`.
    #[must_use]
    pub fn sharers(&self, line: LineAddr) -> SharerSet {
        SharerSet(self.masks[self.probe(line)])
    }

    /// Cores other than `core` whose L1 holds `line` (the invalidation
    /// targets of a store by `core`). Allocation-free.
    #[must_use]
    pub fn sharers_other_than(&self, core: CoreId, line: LineAddr) -> SharerSet {
        SharerSet(self.masks[self.probe(line)] & !(1 << core))
    }

    /// Whether any core's L1 holds `line`.
    #[must_use]
    pub fn is_shared(&self, line: LineAddr) -> bool {
        self.lines[self.probe(line)] != EMPTY_LINE
    }

    /// Number of tracked lines (diagnostics).
    #[must_use]
    pub fn tracked_lines(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "1..=64")]
    fn rejects_zero_cores() {
        let _ = Directory::new(0);
    }

    #[test]
    fn add_remove_sharers() {
        let mut d = Directory::new(8);
        d.add_sharer(1, 5);
        d.add_sharer(3, 5);
        assert!(d.is_shared(5));
        assert_eq!(d.sharers_other_than(1, 5).to_vec(), vec![3]);
        d.remove_sharer(3, 5);
        assert!(d.sharers_other_than(1, 5).is_empty());
        d.remove_sharer(1, 5);
        assert!(!d.is_shared(5));
        assert_eq!(d.tracked_lines(), 0);
    }

    #[test]
    fn self_excluded_from_invalidation_targets() {
        let mut d = Directory::new(4);
        d.add_sharer(2, 9);
        assert!(d.sharers_other_than(2, 9).is_empty());
    }

    #[test]
    fn idempotent_add() {
        let mut d = Directory::new(4);
        d.add_sharer(0, 1);
        d.add_sharer(0, 1);
        assert_eq!(d.sharers_other_than(3, 1).to_vec(), vec![0]);
        assert_eq!(d.tracked_lines(), 1);
    }

    #[test]
    fn remove_absent_is_noop() {
        let mut d = Directory::new(4);
        d.remove_sharer(0, 123);
        assert_eq!(d.tracked_lines(), 0);
    }

    #[test]
    fn clear_line_drops_all_sharers() {
        let mut d = Directory::new(8);
        for c in 0..8 {
            d.add_sharer(c, 77);
        }
        assert_eq!(d.sharers(77).len(), 8);
        d.clear_line(77);
        assert!(!d.is_shared(77));
        assert_eq!(d.tracked_lines(), 0);
        // Clearing an absent line is a no-op.
        d.clear_line(77);
        assert_eq!(d.tracked_lines(), 0);
    }

    #[test]
    fn grows_past_initial_capacity() {
        let mut d = Directory::new(2);
        for line in 0..10_000u64 {
            d.add_sharer((line % 2) as usize, line);
        }
        assert_eq!(d.tracked_lines(), 10_000);
        for line in 0..10_000u64 {
            assert_eq!(d.sharers(line).0, 1 << (line % 2), "line {line}");
        }
        for line in 0..10_000u64 {
            d.remove_sharer((line % 2) as usize, line);
        }
        assert_eq!(d.tracked_lines(), 0);
    }

    #[test]
    fn sharer_set_iteration_order() {
        let s = SharerSet(0b1010_0001);
        assert_eq!(s.to_vec(), vec![0, 5, 7]);
        assert_eq!(s.len(), 3);
    }

    /// Randomized equivalence against the original `HashMap<LineAddr,
    /// u64>` semantics: every operation must agree on a long random
    /// add/remove/clear stream with clustered keys (exercises
    /// backward-shift deletion inside probe clusters).
    #[test]
    fn equivalent_to_hashmap_reference() {
        use std::collections::HashMap;

        let mut rng = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        let n_cores = 16;
        let mut dir = Directory::new(n_cores);
        let mut reference: HashMap<LineAddr, u64> = HashMap::new();
        for step in 0..200_000u64 {
            // Clustered key space so probe chains form.
            let line = next() % 4096;
            let core = (next() % n_cores as u64) as usize;
            match next() % 5 {
                0 | 1 => {
                    dir.add_sharer(core, line);
                    *reference.entry(line).or_insert(0) |= 1 << core;
                }
                2 => {
                    dir.remove_sharer(core, line);
                    if let Some(m) = reference.get_mut(&line) {
                        *m &= !(1 << core);
                        if *m == 0 {
                            reference.remove(&line);
                        }
                    }
                }
                3 => {
                    dir.clear_line(line);
                    reference.remove(&line);
                }
                _ => {
                    let taken = dir.take_line(line);
                    assert_eq!(
                        taken.0,
                        reference.remove(&line).unwrap_or(0),
                        "take at step {step}"
                    );
                }
            }
            let expect = reference.get(&line).copied().unwrap_or(0);
            assert_eq!(dir.sharers(line).0, expect, "step {step}, line {line}");
            assert_eq!(dir.is_shared(line), expect != 0);
            assert_eq!(dir.sharers_other_than(core, line).0, expect & !(1 << core));
            if step % 4096 == 0 {
                assert_eq!(dir.tracked_lines(), reference.len(), "step {step}");
            }
        }
        assert_eq!(dir.tracked_lines(), reference.len());
    }
}
