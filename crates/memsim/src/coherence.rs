//! A directory tracking which private L1 caches hold each line.
//!
//! The hierarchy keeps the directory in sync with the actual L1 contents
//! (fills, evictions, invalidations) so that a store only walks the cores
//! that genuinely share the line. This models the coherence traffic the
//! paper attributes to cache coherency (§3.2, §4.5): upgrades invalidate
//! remote copies, and re-references of invalidated lines are *coherency
//! misses*.

use std::collections::HashMap;

use crate::{CoreId, LineAddr};

/// Sharer directory for the private L1s. Supports up to 64 cores.
///
/// # Examples
///
/// ```
/// use memsim::Directory;
/// let mut dir = Directory::new(4);
/// dir.add_sharer(0, 100);
/// dir.add_sharer(2, 100);
/// assert_eq!(dir.sharers_other_than(1, 100), vec![0, 2]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Directory {
    sharers: HashMap<LineAddr, u64>,
    n_cores: usize,
}

impl Directory {
    /// Creates a directory for `n_cores` cores.
    ///
    /// # Panics
    ///
    /// Panics if `n_cores` is zero or greater than 64.
    #[must_use]
    pub fn new(n_cores: usize) -> Self {
        assert!(n_cores > 0 && n_cores <= 64, "1..=64 cores supported");
        Directory {
            sharers: HashMap::new(),
            n_cores,
        }
    }

    /// Records that `core`'s L1 now holds `line`.
    pub fn add_sharer(&mut self, core: CoreId, line: LineAddr) {
        debug_assert!(core < self.n_cores);
        *self.sharers.entry(line).or_insert(0) |= 1 << core;
    }

    /// Records that `core`'s L1 no longer holds `line`.
    pub fn remove_sharer(&mut self, core: CoreId, line: LineAddr) {
        if let Some(mask) = self.sharers.get_mut(&line) {
            *mask &= !(1 << core);
            if *mask == 0 {
                self.sharers.remove(&line);
            }
        }
    }

    /// Cores other than `core` whose L1 holds `line` (the invalidation
    /// targets of a store by `core`).
    #[must_use]
    pub fn sharers_other_than(&self, core: CoreId, line: LineAddr) -> Vec<CoreId> {
        let mask = self.sharers.get(&line).copied().unwrap_or(0) & !(1 << core);
        (0..self.n_cores).filter(|c| mask & (1 << c) != 0).collect()
    }

    /// Whether any core's L1 holds `line`.
    #[must_use]
    pub fn is_shared(&self, line: LineAddr) -> bool {
        self.sharers.get(&line).is_some_and(|m| *m != 0)
    }

    /// Number of tracked lines (diagnostics).
    #[must_use]
    pub fn tracked_lines(&self) -> usize {
        self.sharers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "1..=64")]
    fn rejects_zero_cores() {
        let _ = Directory::new(0);
    }

    #[test]
    fn add_remove_sharers() {
        let mut d = Directory::new(8);
        d.add_sharer(1, 5);
        d.add_sharer(3, 5);
        assert!(d.is_shared(5));
        assert_eq!(d.sharers_other_than(1, 5), vec![3]);
        d.remove_sharer(3, 5);
        assert_eq!(d.sharers_other_than(1, 5), Vec::<usize>::new());
        d.remove_sharer(1, 5);
        assert!(!d.is_shared(5));
        assert_eq!(d.tracked_lines(), 0);
    }

    #[test]
    fn self_excluded_from_invalidation_targets() {
        let mut d = Directory::new(4);
        d.add_sharer(2, 9);
        assert!(d.sharers_other_than(2, 9).is_empty());
    }

    #[test]
    fn idempotent_add() {
        let mut d = Directory::new(4);
        d.add_sharer(0, 1);
        d.add_sharer(0, 1);
        assert_eq!(d.sharers_other_than(3, 1), vec![0]);
    }

    #[test]
    fn remove_absent_is_noop() {
        let mut d = Directory::new(4);
        d.remove_sharer(0, 123);
        assert_eq!(d.tracked_lines(), 0);
    }
}
