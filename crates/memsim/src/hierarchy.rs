//! The full memory hierarchy: private L1s → shared inclusive LLC → DRAM,
//! with coherence, ATD classification and interference attribution.

use crate::atd::Atd;
use crate::cache::{Cache, CacheConfig};
use crate::coherence::Directory;
use crate::dram::{Dram, DramConfig};
use crate::llc::SharedLlc;
use crate::{CoreId, LineAddr};

/// Configuration of the whole memory hierarchy.
///
/// Defaults follow the paper's setup (§5): 64 KB 8-way private L1 data
/// caches, a 2 MB 16-way shared L2 as the LLC, 8 memory banks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MemConfig {
    /// Private L1 data cache geometry.
    pub l1: CacheConfig,
    /// Shared LLC geometry.
    pub llc: CacheConfig,
    /// ATD set-sampling period (monitor every n-th LLC set).
    pub atd_sample_period: usize,
    /// L1 hit latency in cycles (typically fully hidden).
    pub l1_hit_latency: u64,
    /// LLC hit latency in cycles, beyond the L1.
    pub llc_hit_latency: u64,
    /// DRAM parameters.
    pub dram: DramConfig,
}

impl Default for MemConfig {
    fn default() -> Self {
        MemConfig {
            l1: CacheConfig::from_kib(64, 64, 8),
            llc: CacheConfig::from_kib(2048, 64, 16),
            atd_sample_period: 8,
            l1_hit_latency: 1,
            llc_hit_latency: 20,
            dram: DramConfig::default(),
        }
    }
}

impl MemConfig {
    /// Returns a copy with the LLC resized to `mib` MiB (same line size
    /// and associativity), as used by the Figure 9 LLC sweep.
    #[must_use]
    pub fn with_llc_mib(mut self, mib: usize) -> Self {
        self.llc = CacheConfig::from_kib(mib * 1024, 64, self.llc.ways());
        self
    }
}

/// Which level served an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ServedBy {
    /// Private L1 hit.
    L1,
    /// Shared LLC hit.
    Llc,
    /// Served by DRAM (LLC miss).
    Dram,
}

/// Everything the accounting architecture needs to know about one access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessEvent {
    /// Level that served the access.
    pub level: ServedBy,
    /// Latency beyond the L1 hit latency (0 for an L1 hit). This is the
    /// raw latency; stall exposure is the core model's concern.
    pub latency_beyond_l1: u64,
    /// DRAM bus wait caused by other cores.
    pub bus_wait_other: u64,
    /// DRAM bank wait caused by other cores.
    pub bank_wait_other: u64,
    /// Extra DRAM latency from an open-page conflict caused by another
    /// core (ORA-attributed).
    pub page_conflict_other: u64,
    /// The access mapped to an ATD-sampled LLC set.
    pub sampled: bool,
    /// Sampled classification: LLC miss that hit the private ATD
    /// (negative interference, §4.1).
    pub interthread_miss_sampled: bool,
    /// Sampled classification: LLC hit that missed the private ATD
    /// (positive interference, §4.2).
    pub interthread_hit_sampled: bool,
    /// Ground truth: LLC hit on a line inserted by another core.
    pub interthread_hit_truth: bool,
    /// The L1 miss re-fetched a line previously invalidated by coherence.
    pub coherency_miss: bool,
    /// Number of remote L1 copies this store invalidated.
    pub invalidations_sent: u32,
}

impl AccessEvent {
    fn l1_hit() -> Self {
        AccessEvent {
            level: ServedBy::L1,
            latency_beyond_l1: 0,
            bus_wait_other: 0,
            bank_wait_other: 0,
            page_conflict_other: 0,
            sampled: false,
            interthread_miss_sampled: false,
            interthread_hit_sampled: false,
            interthread_hit_truth: false,
            coherency_miss: false,
            invalidations_sent: 0,
        }
    }
}

/// The complete shared memory system of an `n`-core CMP.
///
/// All mutation happens through [`MemoryHierarchy::access`], which the
/// caller must invoke in global time order.
#[derive(Debug, Clone)]
pub struct MemoryHierarchy {
    cfg: MemConfig,
    /// Private L1s. Each line's metadata is the LLC way holding the line
    /// (stable under inclusion until back-invalidation), so dirty
    /// writebacks set the LLC dirty bit without a probe.
    l1s: Vec<Cache<u8>>,
    llc: SharedLlc,
    atds: Vec<Atd>,
    dir: Directory,
    dram: Dram,
}

impl MemoryHierarchy {
    /// Creates the hierarchy for `n_cores` cores. Any non-zero core count
    /// is supported: the coherence directory switches to multi-word
    /// sharer masks above 64 cores ([`Directory`]).
    ///
    /// # Panics
    ///
    /// Panics if `n_cores` is zero, or the ATD sampling period is invalid
    /// for the LLC geometry.
    #[must_use]
    pub fn new(cfg: &MemConfig, n_cores: usize) -> Self {
        assert!(n_cores > 0, "at least one core required");
        MemoryHierarchy {
            cfg: *cfg,
            l1s: (0..n_cores).map(|_| Cache::new(cfg.l1)).collect(),
            llc: SharedLlc::new(cfg.llc),
            atds: (0..n_cores)
                .map(|_| Atd::new(cfg.llc, cfg.atd_sample_period))
                .collect(),
            dir: Directory::new(n_cores),
            dram: Dram::new(cfg.dram, n_cores),
        }
    }

    /// The hierarchy configuration.
    #[must_use]
    pub fn config(&self) -> &MemConfig {
        &self.cfg
    }

    /// Number of cores sharing the hierarchy.
    #[must_use]
    pub fn num_cores(&self) -> usize {
        self.l1s.len()
    }

    /// Performs one load (`write == false`) or store (`write == true`) by
    /// `core` to `line` at cycle `now`.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn access(&mut self, core: CoreId, line: LineAddr, write: bool, now: u64) -> AccessEvent {
        assert!(core < self.l1s.len(), "core {core} out of range");
        // A single-core hierarchy has no remote sharers: every directory
        // probe would be a no-op, so skip the bookkeeping wholesale (the
        // single-threaded reference runs of every figure take this path).
        let single_core = self.l1s.len() == 1;

        // 1. Coherence: a store invalidates all remote L1 copies. The
        // directory names exactly the sharing cores, so this walks only
        // genuine sharers (no allocation: the sharer set is a bitmask).
        let mut invalidations_sent = 0;
        if write && !single_core {
            for target in self.dir.sharers_other_than(core, line).iter() {
                if let Some((dirty, llc_way)) = self.l1s[target].invalidate_coherence(line) {
                    invalidations_sent += 1;
                    if dirty {
                        self.llc.writeback_at(line, llc_way);
                    }
                }
                self.dir.remove_sharer(target, line);
            }
        }

        // 2. Private L1.
        let l1_out = self.l1s[core].access(line, write, 0);
        if l1_out.hit {
            let mut ev = AccessEvent::l1_hit();
            ev.invalidations_sent = invalidations_sent;
            return ev;
        }
        if let Some((evicted, dirty, llc_way)) = l1_out.evicted {
            if !single_core {
                self.dir.remove_sharer(core, evicted);
            }
            if dirty {
                self.llc.writeback_at(evicted, llc_way);
            }
        }
        if !single_core {
            self.dir.add_sharer(core, line);
        }

        // 3. ATD probe (every LLC access, sampled sets only).
        let atd_out = self.atds[core].access(line, write);

        // 4. Shared LLC.
        let llc_out = self.llc.access(core, line, write);
        // Remember the line's LLC way in the just-filled L1 way (a direct
        // store — both ways are known from the two access outcomes).
        self.l1s[core].set_meta_at(line, l1_out.way, llc_out.way);
        if let Some((evicted, dirty)) = llc_out.evicted {
            // Inclusion: back-invalidate every L1 copy. The directory is
            // kept in sync with the L1 contents, so only actual holders
            // are walked (checked against all L1s under debug asserts).
            if single_core {
                self.l1s[0].remove(evicted);
            } else {
                let holders = self.dir.take_line(evicted);
                for c in holders.iter() {
                    self.l1s[c].remove(evicted);
                }
                #[cfg(debug_assertions)]
                for (c, l1) in self.l1s.iter().enumerate() {
                    debug_assert!(
                        holders.contains(c) || !l1.contains(evicted),
                        "directory out of sync: core {c} holds line {evicted} untracked"
                    );
                }
            }
            if dirty {
                // Writeback occupies a bank and the bus; nobody stalls on it.
                let _ = self
                    .dram
                    .access(core, evicted, now + self.cfg.llc_hit_latency);
            }
        }

        let (interthread_miss_sampled, interthread_hit_sampled) = match atd_out {
            Some(a) => (!llc_out.hit && a.hit, llc_out.hit && !a.hit),
            None => (false, false),
        };

        if llc_out.hit {
            return AccessEvent {
                level: ServedBy::Llc,
                latency_beyond_l1: self.cfg.llc_hit_latency,
                bus_wait_other: 0,
                bank_wait_other: 0,
                page_conflict_other: 0,
                sampled: atd_out.is_some(),
                interthread_miss_sampled: false,
                interthread_hit_sampled,
                interthread_hit_truth: llc_out.interthread_hit_truth,
                coherency_miss: l1_out.coherency_miss,
                invalidations_sent,
            };
        }

        // 5. DRAM.
        let dram_out = self.dram.access(core, line, now + self.cfg.llc_hit_latency);
        AccessEvent {
            level: ServedBy::Dram,
            latency_beyond_l1: self.cfg.llc_hit_latency + dram_out.latency,
            bus_wait_other: dram_out.bus_wait_other,
            bank_wait_other: dram_out.bank_wait_other,
            page_conflict_other: dram_out.page_conflict_other,
            sampled: atd_out.is_some(),
            interthread_miss_sampled,
            interthread_hit_sampled: false,
            interthread_hit_truth: false,
            coherency_miss: l1_out.coherency_miss,
            invalidations_sent,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> MemConfig {
        MemConfig {
            l1: CacheConfig::new(4, 2),
            llc: CacheConfig::new(16, 2),
            atd_sample_period: 1,
            ..MemConfig::default()
        }
    }

    #[test]
    fn l1_hit_after_fill() {
        let mut m = MemoryHierarchy::new(&tiny_config(), 2);
        let a = m.access(0, 100, false, 0);
        assert_eq!(a.level, ServedBy::Dram);
        let b = m.access(0, 100, false, 500);
        assert_eq!(b.level, ServedBy::L1);
        assert_eq!(b.latency_beyond_l1, 0);
    }

    #[test]
    fn llc_hit_after_l1_eviction() {
        let mut m = MemoryHierarchy::new(&tiny_config(), 1);
        // L1 has 4 sets × 2 ways; lines 0, 4, 8 share L1 set 0.
        m.access(0, 0, false, 0);
        m.access(0, 4, false, 100);
        m.access(0, 8, false, 200); // evicts 0 from L1; still in LLC
        let back = m.access(0, 0, false, 300);
        assert_eq!(back.level, ServedBy::Llc);
    }

    #[test]
    fn interthread_hit_detected_by_atd_and_truth() {
        let mut m = MemoryHierarchy::new(&tiny_config(), 2);
        m.access(0, 7, false, 0); // core 0 brings line into LLC
        let ev = m.access(1, 7, false, 500); // core 1: LLC hit, private ATD miss
        assert_eq!(ev.level, ServedBy::Llc);
        assert!(ev.sampled);
        assert!(ev.interthread_hit_sampled);
        assert!(ev.interthread_hit_truth);
    }

    #[test]
    fn interthread_miss_detected_by_atd() {
        // LLC set 0 (16 sets, 2 ways): lines 0, 16, 32 collide.
        let mut m = MemoryHierarchy::new(&tiny_config(), 2);
        m.access(0, 0, false, 0);
        // Other core floods the set.
        m.access(1, 16, false, 100);
        m.access(1, 32, false, 200); // evicts line 0 from shared LLC
                                     // Core 0 misses in LLC but would have hit privately → inter-thread miss.
        let ev = m.access(0, 0, false, 10_000);
        assert_eq!(ev.level, ServedBy::Dram);
        assert!(ev.interthread_miss_sampled);
    }

    #[test]
    fn own_capacity_miss_not_interthread() {
        let mut m = MemoryHierarchy::new(&tiny_config(), 1);
        m.access(0, 0, false, 0);
        m.access(0, 16, false, 100);
        m.access(0, 32, false, 200); // self-evicts line 0
        let ev = m.access(0, 0, false, 10_000);
        assert_eq!(ev.level, ServedBy::Dram);
        assert!(
            !ev.interthread_miss_sampled,
            "self-inflicted miss misclassified"
        );
    }

    #[test]
    fn store_invalidates_remote_copy_and_counts() {
        let mut m = MemoryHierarchy::new(&tiny_config(), 2);
        m.access(0, 5, false, 0);
        m.access(1, 5, false, 100);
        let st = m.access(0, 5, true, 200);
        assert_eq!(st.invalidations_sent, 1);
        // Core 1 re-reads: L1 miss flagged as coherency miss.
        let rd = m.access(1, 5, false, 300);
        assert_ne!(rd.level, ServedBy::L1);
        assert!(rd.coherency_miss);
    }

    #[test]
    fn store_to_private_line_sends_no_invalidations() {
        let mut m = MemoryHierarchy::new(&tiny_config(), 2);
        m.access(0, 5, false, 0);
        let st = m.access(0, 5, true, 100);
        assert_eq!(st.invalidations_sent, 0);
    }

    #[test]
    fn llc_eviction_back_invalidates_l1() {
        let mut m = MemoryHierarchy::new(&tiny_config(), 1);
        // Fill LLC set 0 beyond capacity: lines 0, 16, 32.
        m.access(0, 0, false, 0);
        m.access(0, 16, false, 100);
        m.access(0, 32, false, 200); // LLC evicts line 0 → back-invalidate L1
        let ev = m.access(0, 0, false, 300);
        assert_eq!(
            ev.level,
            ServedBy::Dram,
            "inclusion violated: L1 still had line 0"
        );
        // Back-invalidation is not a coherency miss.
        assert!(!ev.coherency_miss);
    }

    #[test]
    fn dram_interference_between_cores() {
        let cfg = tiny_config();
        let mut m = MemoryHierarchy::new(&cfg, 2);
        // Two cores miss everything to the same bank at the same time.
        let a = m.access(0, 0, false, 0);
        let b = m.access(1, 1, false, 0); // same row/bank, issued same cycle
        assert_eq!(a.level, ServedBy::Dram);
        assert_eq!(b.level, ServedBy::Dram);
        assert!(b.bank_wait_other > 0 || b.bus_wait_other > 0);
    }

    #[test]
    fn llc_resize_helper() {
        let cfg = MemConfig::default().with_llc_mib(8);
        assert_eq!(cfg.llc.lines() * 64, 8 * 1024 * 1024);
        assert_eq!(cfg.llc.ways(), 16);
    }

    #[test]
    fn deterministic_replay() {
        let cfg = tiny_config();
        let mut m1 = MemoryHierarchy::new(&cfg, 4);
        let mut m2 = MemoryHierarchy::new(&cfg, 4);
        for i in 0..500u64 {
            let core = (i % 4) as usize;
            let line = (i * 13) % 64;
            let write = i % 3 == 0;
            assert_eq!(
                m1.access(core, line, write, i * 10),
                m2.access(core, line, write, i * 10)
            );
        }
    }
}
