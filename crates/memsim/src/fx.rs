//! A fast, non-cryptographic hasher for the simulator's hot-path maps.
//!
//! `std`'s default SipHash is DoS-resistant but costs tens of cycles per
//! lookup — far too slow for structures probed on every memory access.
//! This is the classic multiply-rotate "Fx" construction (as used by the
//! Rust compiler): one rotate + xor + multiply per 8-byte word. All keys
//! hashed here are simulator-internal (line addresses, sync ids), so
//! hash-flooding is not a concern.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-rotate hasher; one multiply per written word.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add_to_hash(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<K> = HashSet<K, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u64, u32> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(i * 7, i as u32);
        }
        for i in 0..1000u64 {
            assert_eq!(m.get(&(i * 7)), Some(&(i as u32)));
        }
        assert_eq!(m.get(&3), None);
    }

    #[test]
    fn hash_is_deterministic_and_spreads() {
        let h = |x: u64| {
            let mut f = FxHasher::default();
            f.write_u64(x);
            f.finish()
        };
        assert_eq!(h(42), h(42));
        // Sequential keys must not collide in the high bits (used by the
        // open-addressing directory).
        let mut tops: Vec<u64> = (0..64).map(|i| h(i) >> 58).collect();
        tops.sort_unstable();
        tops.dedup();
        assert!(
            tops.len() > 16,
            "only {} distinct top-6-bit buckets",
            tops.len()
        );
    }

    #[test]
    fn byte_writes_cover_remainder_path() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 0]);
        // Not asserting equality/difference semantics — only stability.
        assert_eq!(a.finish(), {
            let mut c = FxHasher::default();
            c.write(&[1, 2, 3]);
            c.finish()
        });
        let _ = b.finish();
    }
}
