//! # memsim — memory-hierarchy substrate
//!
//! A deterministic, cycle-approximate model of the memory system of a
//! chip-multiprocessor, built as the substrate for the speedup-stacks
//! reproduction (ISPASS 2012). It models exactly the structures the
//! paper's accounting architecture observes:
//!
//! - per-core private L1 data caches with MESI-style invalidation
//!   ([`cache`], [`coherence`]),
//! - a shared, inclusive last-level cache ([`llc`]),
//! - per-core **auxiliary tag directories** with set sampling, which
//!   classify inter-thread misses (negative interference) and inter-thread
//!   hits (positive interference) ([`atd`]),
//! - a banked DRAM with a shared bus and an open-page policy, attributing
//!   bus/bank/page waits to interfering cores ([`dram`]), including the
//!   per-core **open row arrays** (ORA).
//!
//! The top-level entry point is [`MemoryHierarchy::access`], which performs
//! one load or store on behalf of a core at a given cycle and returns an
//! [`AccessEvent`] describing where it was served, its latency and every
//! interference classification the accounting architecture needs.
//!
//! The crate is intentionally free of any notion of threads or
//! instructions — that lives in `cmpsim`. All state here is advanced in
//! global time order by the caller.
//!
//! ## Hot-path representation
//!
//! Every structure on the access path is *flat*: caches are
//! structure-of-arrays tables with compact 32-bit tags, per-set status
//! bitmasks and per-set LRU orderings — nibble-packed up to 16 ways,
//! byte-ranked up to 64 ways, selected per config ([`cache`]); the
//! coherence directory is a contiguous open-addressing table returning
//! sharer bitmasks instead of allocating vectors, one word per slot up
//! to 64 cores and spilling to multi-word masks above ([`coherence`]);
//! the maps that must stay sparse hash with the multiply-rotate [`fx`]
//! hasher instead of SipHash. For machines of up to 64 cores an access
//! allocates nothing.
//!
//! ## Example
//!
//! ```
//! use memsim::{MemConfig, MemoryHierarchy, ServedBy};
//!
//! let mut mem = MemoryHierarchy::new(&MemConfig::default(), 2);
//! // Core 0 loads line 42 at cycle 0: cold miss, served by DRAM.
//! let ev = mem.access(0, 42, false, 0);
//! assert_eq!(ev.level, ServedBy::Dram);
//! // Second access hits in the L1.
//! let ev = mem.access(0, 42, false, ev.latency_beyond_l1);
//! assert_eq!(ev.level, ServedBy::L1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod atd;
pub mod cache;
pub mod coherence;
pub mod dram;
pub mod fx;
pub mod hierarchy;
pub mod llc;

pub use atd::Atd;
pub use cache::{Cache, CacheConfig, CacheOutcome};
pub use coherence::{Directory, SharerIter, SharerSet};
pub use dram::{Dram, DramAccess, DramConfig};
pub use fx::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use hierarchy::{AccessEvent, MemConfig, MemoryHierarchy, ServedBy};
pub use llc::{LlcOutcome, SharedLlc};

/// A cache-line address: the byte address divided by the line size.
///
/// All of `memsim` operates on line addresses; byte-to-line conversion
/// (typically `addr >> 6` for 64-byte lines) is the caller's concern.
pub type LineAddr = u64;

/// Index of a hardware core.
pub type CoreId = usize;
