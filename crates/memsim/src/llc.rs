//! The shared, inclusive last-level cache.
//!
//! Each LLC line remembers the core that inserted it, giving the
//! *ground-truth* inter-thread hit signal ("data previously brought into
//! the shared LLC by another thread", §4.2) against which the sampled ATD
//! classification can be validated.

use crate::cache::{Cache, CacheConfig};
use crate::{CoreId, LineAddr};

/// Per-line LLC metadata: the inserting core (kept at 16 bits to bound
/// the metadata array; caps the simulator at 65 536 cores, far above the
/// directory's practical range).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct LlcMeta {
    inserter: u16,
}

/// Result of an LLC access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LlcOutcome {
    /// The access hit in the shared LLC.
    pub hit: bool,
    /// Ground truth: the access hit a line inserted by *another* core.
    pub interthread_hit_truth: bool,
    /// A valid line was evicted to make room: `(line, was_dirty)`. The
    /// caller must back-invalidate L1 copies (inclusion) and write back
    /// dirty data.
    pub evicted: Option<(LineAddr, bool)>,
    /// The way now holding the line. Stable until the line is evicted
    /// (which back-invalidates all L1 copies), so L1s may keep it as a
    /// probe-free writeback handle for [`SharedLlc::writeback_at`].
    pub way: u8,
}

/// The shared LLC.
///
/// # Examples
///
/// ```
/// use memsim::{CacheConfig, SharedLlc};
/// let mut llc = SharedLlc::new(CacheConfig::new(64, 4));
/// assert!(!llc.access(0, 7, false).hit);        // core 0 brings the line in
/// let out = llc.access(1, 7, false);            // core 1 reuses it
/// assert!(out.hit && out.interthread_hit_truth);
/// ```
#[derive(Debug, Clone)]
pub struct SharedLlc {
    cache: Cache<LlcMeta>,
}

impl SharedLlc {
    /// Creates an empty LLC with the given geometry.
    #[must_use]
    pub fn new(cfg: CacheConfig) -> Self {
        SharedLlc {
            cache: Cache::new(cfg),
        }
    }

    /// The LLC geometry.
    #[must_use]
    pub fn config(&self) -> CacheConfig {
        self.cache.config()
    }

    /// Accesses `line` on behalf of `core`.
    pub fn access(&mut self, core: CoreId, line: LineAddr, write: bool) -> LlcOutcome {
        debug_assert!(core <= usize::from(u16::MAX), "inserter id overflows u16");
        let meta = LlcMeta {
            inserter: core as u16,
        };
        let out = self.cache.access(line, write, meta);
        LlcOutcome {
            hit: out.hit,
            interthread_hit_truth: out.hit_meta.is_some_and(|m| m.inserter as usize != core),
            evicted: out.evicted.map(|(l, d, _)| (l, d)),
            way: out.way,
        }
    }

    /// Marks a resident line dirty (L1 writeback landing in the LLC).
    /// Returns `true` if the line was resident.
    pub fn writeback(&mut self, line: LineAddr) -> bool {
        self.cache.mark_dirty(line)
    }

    /// Probe-free writeback: marks `line` dirty at its known `way` (the
    /// handle from [`LlcOutcome::way`]; valid while any L1 holds the
    /// line, since evicting the LLC line back-invalidates every copy).
    #[inline]
    pub fn writeback_at(&mut self, line: LineAddr, way: u8) {
        self.cache.mark_dirty_at(line, way);
    }

    /// Non-destructive presence check.
    #[must_use]
    pub fn contains(&self, line: LineAddr) -> bool {
        self.cache.contains(line)
    }

    /// Number of resident lines (diagnostics).
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.cache.occupancy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_core_reuse_is_not_interthread() {
        let mut llc = SharedLlc::new(CacheConfig::new(16, 2));
        llc.access(0, 5, false);
        let out = llc.access(0, 5, false);
        assert!(out.hit);
        assert!(!out.interthread_hit_truth);
    }

    #[test]
    fn other_core_reuse_is_interthread() {
        let mut llc = SharedLlc::new(CacheConfig::new(16, 2));
        llc.access(3, 5, false);
        let out = llc.access(0, 5, false);
        assert!(out.interthread_hit_truth);
    }

    #[test]
    fn inserter_not_overwritten_by_hit() {
        let mut llc = SharedLlc::new(CacheConfig::new(16, 2));
        llc.access(3, 5, false);
        llc.access(0, 5, false);
        // Core 3 hits its own line again: still not inter-thread.
        let out = llc.access(3, 5, false);
        assert!(!out.interthread_hit_truth);
    }

    #[test]
    fn eviction_reported_for_inclusion() {
        let mut llc = SharedLlc::new(CacheConfig::new(1, 2));
        llc.access(0, 1, true);
        llc.access(0, 2, false);
        let out = llc.access(0, 3, false);
        assert_eq!(out.evicted, Some((1, true)));
    }

    #[test]
    fn writeback_marks_dirty() {
        let mut llc = SharedLlc::new(CacheConfig::new(1, 2));
        llc.access(0, 1, false);
        assert!(llc.writeback(1));
        llc.access(0, 2, false);
        let out = llc.access(0, 3, false);
        assert_eq!(out.evicted, Some((1, true)));
        assert!(!llc.writeback(99));
    }
}
