//! Generic set-associative cache with true-LRU replacement.
//!
//! Used for the private L1s, the shared LLC and the ATDs. The cache is
//! generic over per-line metadata `M` (the LLC stores the inserting core,
//! the L1s and ATDs store nothing).
//!
//! Invalidations keep the tag in place with the valid bit cleared, so a
//! later refill of the same line can be recognized as a *coherency miss*
//! (paper §4.5: "in case of an invalidation, usually only the status bits
//! are adapted, while the tag remains in the tag array").

use crate::LineAddr;

/// Geometry of a set-associative cache.
///
/// # Examples
///
/// ```
/// use memsim::CacheConfig;
/// let c = CacheConfig::new(2048, 16);
/// assert_eq!(c.lines(), 32768); // 2 MB at 64-byte lines
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CacheConfig {
    sets: usize,
    ways: usize,
}

impl CacheConfig {
    /// Creates a geometry with `sets` sets of `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is zero or not a power of two, or if `ways` is
    /// zero.
    #[must_use]
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(sets > 0 && sets.is_power_of_two(), "sets must be a power of two");
        assert!(ways > 0, "ways must be non-zero");
        CacheConfig { sets, ways }
    }

    /// Geometry from a capacity in kibibytes, a line size in bytes and an
    /// associativity.
    ///
    /// # Panics
    ///
    /// Panics if the derived set count is zero or not a power of two.
    ///
    /// ```
    /// use memsim::CacheConfig;
    /// let llc = CacheConfig::from_kib(2048, 64, 16); // 2 MB, 16-way
    /// assert_eq!(llc.sets(), 2048);
    /// ```
    #[must_use]
    pub fn from_kib(kib: usize, line_bytes: usize, ways: usize) -> Self {
        let lines = kib * 1024 / line_bytes;
        Self::new(lines / ways, ways)
    }

    /// Number of sets.
    #[must_use]
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Number of ways per set.
    #[must_use]
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Total line capacity.
    #[must_use]
    pub fn lines(&self) -> usize {
        self.sets * self.ways
    }

    /// Set index for a line address.
    #[must_use]
    pub fn set_of(&self, line: LineAddr) -> usize {
        (line as usize) & (self.sets - 1)
    }
}

#[derive(Debug, Clone, Copy)]
struct Way<M> {
    tag: LineAddr,
    valid: bool,
    dirty: bool,
    /// Tag is present but was invalidated by coherence (valid == false).
    coherence_invalidated: bool,
    lru: u64,
    meta: M,
}

/// Result of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheOutcome<M> {
    /// The access hit a valid line.
    pub hit: bool,
    /// On a miss, the refilled line's tag matched an invalid entry that was
    /// invalidated by coherence — a *coherency miss*.
    pub coherency_miss: bool,
    /// On a miss that evicted a valid line: `(line, was_dirty, metadata)`.
    pub evicted: Option<(LineAddr, bool, M)>,
    /// Metadata of the line *before* this access (for hits: the line's
    /// stored metadata, e.g. the LLC inserter).
    pub hit_meta: Option<M>,
}

/// A set-associative, write-back, allocate-on-miss cache with true LRU.
#[derive(Debug, Clone)]
pub struct Cache<M> {
    cfg: CacheConfig,
    ways: Vec<Way<M>>,
    clock: u64,
}

impl<M: Copy + Default> Cache<M> {
    /// Creates an empty cache with the given geometry.
    #[must_use]
    pub fn new(cfg: CacheConfig) -> Self {
        let ways = vec![
            Way {
                tag: 0,
                valid: false,
                dirty: false,
                coherence_invalidated: false,
                lru: 0,
                meta: M::default(),
            };
            cfg.lines()
        ];
        Cache { cfg, ways, clock: 0 }
    }

    /// The cache geometry.
    #[must_use]
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    fn set_range(&self, line: LineAddr) -> core::ops::Range<usize> {
        let set = self.cfg.set_of(line);
        let start = set * self.cfg.ways();
        start..start + self.cfg.ways()
    }

    /// Accesses `line`; on a miss the line is allocated with metadata
    /// `fill_meta`, evicting the LRU way if necessary. `write` marks the
    /// line dirty.
    pub fn access(&mut self, line: LineAddr, write: bool, fill_meta: M) -> CacheOutcome<M> {
        self.clock += 1;
        let clock = self.clock;
        let range = self.set_range(line);

        // Hit?
        for w in &mut self.ways[range.clone()] {
            if w.valid && w.tag == line {
                w.lru = clock;
                if write {
                    w.dirty = true;
                }
                return CacheOutcome {
                    hit: true,
                    coherency_miss: false,
                    evicted: None,
                    hit_meta: Some(w.meta),
                };
            }
        }

        // Miss: prefer an invalid way (remembering coherence invalidation),
        // else evict LRU.
        let mut victim: Option<usize> = None;
        let mut victim_lru = u64::MAX;
        let mut coherency_miss = false;
        for i in range.clone() {
            if !self.ways[i].valid {
                if self.ways[i].coherence_invalidated && self.ways[i].tag == line {
                    coherency_miss = true;
                    victim = Some(i);
                    break;
                }
                if victim.is_none() || self.ways[victim.unwrap()].valid {
                    victim = Some(i);
                    victim_lru = 0;
                }
            } else if self.ways[i].lru < victim_lru {
                victim = Some(i);
                victim_lru = self.ways[i].lru;
            }
        }
        let vi = victim.expect("set has at least one way");
        let v = &mut self.ways[vi];
        let evicted = if v.valid {
            Some((v.tag, v.dirty, v.meta))
        } else {
            None
        };
        *v = Way {
            tag: line,
            valid: true,
            dirty: write,
            coherence_invalidated: false,
            lru: clock,
            meta: fill_meta,
        };
        CacheOutcome {
            hit: false,
            coherency_miss,
            evicted,
            hit_meta: None,
        }
    }

    /// Non-destructive lookup: is the line present and valid?
    #[must_use]
    pub fn contains(&self, line: LineAddr) -> bool {
        self.ways[self.set_range(line)]
            .iter()
            .any(|w| w.valid && w.tag == line)
    }

    /// Invalidates `line` due to a coherence action. The tag is retained so
    /// a later refill can be classified as a coherency miss. Returns
    /// `Some(was_dirty)` if the line was present and valid.
    pub fn invalidate_coherence(&mut self, line: LineAddr) -> Option<bool> {
        let range = self.set_range(line);
        for w in &mut self.ways[range] {
            if w.valid && w.tag == line {
                w.valid = false;
                w.coherence_invalidated = true;
                let dirty = w.dirty;
                w.dirty = false;
                return Some(dirty);
            }
        }
        None
    }

    /// Silently removes `line` (back-invalidation on LLC eviction; no
    /// coherency-miss marking). Returns `Some(was_dirty)` if present.
    pub fn remove(&mut self, line: LineAddr) -> Option<bool> {
        let range = self.set_range(line);
        for w in &mut self.ways[range] {
            if w.valid && w.tag == line {
                w.valid = false;
                w.coherence_invalidated = false;
                let dirty = w.dirty;
                w.dirty = false;
                return Some(dirty);
            }
        }
        None
    }

    /// Marks an already-present line dirty (used when an L1 writeback
    /// lands in the LLC). Returns `true` if the line was present.
    pub fn mark_dirty(&mut self, line: LineAddr) -> bool {
        let range = self.set_range(line);
        for w in &mut self.ways[range] {
            if w.valid && w.tag == line {
                w.dirty = true;
                return true;
            }
        }
        false
    }

    /// Number of valid lines currently resident (O(capacity); for tests
    /// and diagnostics).
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.ways.iter().filter(|w| w.valid).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache<()> {
        Cache::new(CacheConfig::new(4, 2))
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_pow2_sets() {
        let _ = CacheConfig::new(3, 2);
    }

    #[test]
    fn from_kib_geometry() {
        let cfg = CacheConfig::from_kib(64, 64, 8); // 64 KB L1
        assert_eq!(cfg.lines(), 1024);
        assert_eq!(cfg.sets(), 128);
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small();
        let first = c.access(100, false, ());
        assert!(!first.hit);
        assert!(first.evicted.is_none());
        let second = c.access(100, false, ());
        assert!(second.hit);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = small();
        // Set 0 holds lines 0, 4, 8, ... (4 sets). Fill both ways.
        c.access(0, false, ());
        c.access(4, false, ());
        // Touch 0 so 4 is LRU.
        c.access(0, false, ());
        let out = c.access(8, false, ());
        assert_eq!(out.evicted, Some((4, false, ())));
        assert!(c.contains(0));
        assert!(!c.contains(4));
    }

    #[test]
    fn dirty_eviction_reported() {
        let mut c = small();
        c.access(0, true, ());
        c.access(4, false, ());
        let out = c.access(8, false, ());
        assert_eq!(out.evicted, Some((0, true, ())));
    }

    #[test]
    fn write_marks_dirty_on_hit() {
        let mut c = small();
        c.access(0, false, ());
        c.access(0, true, ());
        c.access(4, false, ());
        let out = c.access(8, false, ());
        // line 0 was LRU? 0 accessed twice then 4: LRU is 0? no: order 0,0,4 → 0 older.
        assert_eq!(out.evicted, Some((0, true, ())));
    }

    #[test]
    fn coherence_invalidation_and_coherency_miss() {
        let mut c = small();
        c.access(0, false, ());
        assert_eq!(c.invalidate_coherence(0), Some(false));
        assert!(!c.contains(0));
        let refill = c.access(0, false, ());
        assert!(!refill.hit);
        assert!(refill.coherency_miss);
        // A second invalidate on absent line returns None.
        assert_eq!(c.invalidate_coherence(99), None);
    }

    #[test]
    fn remove_does_not_mark_coherency() {
        let mut c = small();
        c.access(0, true, ());
        assert_eq!(c.remove(0), Some(true));
        let refill = c.access(0, false, ());
        assert!(!refill.coherency_miss);
    }

    #[test]
    fn mark_dirty() {
        let mut c = small();
        c.access(0, false, ());
        assert!(c.mark_dirty(0));
        assert!(!c.mark_dirty(4));
        c.access(4, false, ());
        let out = c.access(8, false, ());
        assert_eq!(out.evicted, Some((0, true, ())));
    }

    #[test]
    fn metadata_stored_and_returned() {
        let mut c: Cache<u16> = Cache::new(CacheConfig::new(4, 2));
        c.access(0, false, 7);
        let out = c.access(0, false, 9);
        assert_eq!(out.hit_meta, Some(7)); // fill meta ignored on hit
    }

    #[test]
    fn occupancy_bounded_by_capacity() {
        let mut c = small();
        for line in 0..100u64 {
            c.access(line, false, ());
        }
        assert!(c.occupancy() <= c.config().lines());
        assert_eq!(c.occupancy(), 8);
    }
}
