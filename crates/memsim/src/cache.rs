//! Generic set-associative cache with true-LRU replacement.
//!
//! Used for the private L1s, the shared LLC and the ATDs. The cache is
//! generic over per-line metadata `M` (the LLC stores the inserting core,
//! the L1s and ATDs store nothing).
//!
//! Invalidations keep the tag in place with the valid bit cleared, so a
//! later refill of the same line can be recognized as a *coherency miss*
//! (paper §4.5: "in case of an invalidation, usually only the status bits
//! are adapted, while the tag remains in the tag array").
//!
//! ## Representation
//!
//! The cache is flat structure-of-arrays state:
//!
//! - `tags` — compact 32-bit tags (`line >> log2(sets)`), contiguous per
//!   set, probed with a branchless equality scan that reduces to a
//!   bitmask (an 8-way probe touches 32 bytes, a 16-way probe one cache
//!   line);
//! - `valid`/`dirty`/`coh` — per-set way bitmasks, so status checks and
//!   victim selection are O(1) bit arithmetic over the probe mask;
//! - `lru` — one of **two per-set recency encodings, selected per
//!   config**: associativities up to 16 use the *packed*
//!   ordering (one `u64` per set holding way indices as nibbles,
//!   most-recent in the low nibble; a touch is a SWAR rank lookup plus
//!   shifts), wider sets use the *wide* ordering (one byte per way per
//!   set, most-recent first; a touch is a scan plus `copy_within`). The
//!   two encodings implement identical true-LRU semantics — pinned
//!   bit-for-bit by `tests/flat_equivalence.rs`, which drives a
//!   forced-wide cache against the packed one on ≤16-way geometries.
//!
//! No per-way timestamps, no clock, no allocation anywhere on the access
//! path. Associativity is bounded at 64 ways (the per-set status
//! bitmasks are single `u64` words), asserted in [`CacheConfig::new`];
//! randomized op streams are checked against a reference implementation
//! of the original timestamp-LRU semantics in
//! `tests/flat_equivalence.rs`.

use crate::LineAddr;

/// Geometry of a set-associative cache.
///
/// # Examples
///
/// ```
/// use memsim::CacheConfig;
/// let c = CacheConfig::new(2048, 16);
/// assert_eq!(c.lines(), 32768); // 2 MB at 64-byte lines
/// // Wider associativities (up to 64 ways) are supported too:
/// let wide = CacheConfig::new(1024, 32);
/// assert_eq!(wide.lines(), 32768);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CacheConfig {
    sets: usize,
    ways: usize,
}

impl CacheConfig {
    /// Creates a geometry with `sets` sets of `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is zero or not a power of two, or if `ways` is
    /// zero or greater than 64 (per-way status lives in one `u64` bitmask
    /// per set).
    #[must_use]
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(
            sets > 0 && sets.is_power_of_two(),
            "sets must be a power of two"
        );
        assert!(ways > 0, "ways must be non-zero");
        assert!(ways <= 64, "at most 64 ways supported (per-set bitmasks)");
        CacheConfig { sets, ways }
    }

    /// Geometry from a capacity in kibibytes, a line size in bytes and an
    /// associativity.
    ///
    /// # Panics
    ///
    /// Panics if the derived set count is zero or not a power of two.
    ///
    /// ```
    /// use memsim::CacheConfig;
    /// let llc = CacheConfig::from_kib(2048, 64, 16); // 2 MB, 16-way
    /// assert_eq!(llc.sets(), 2048);
    /// ```
    #[must_use]
    pub fn from_kib(kib: usize, line_bytes: usize, ways: usize) -> Self {
        let lines = kib * 1024 / line_bytes;
        Self::new(lines / ways, ways)
    }

    /// Number of sets.
    #[must_use]
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Number of ways per set.
    #[must_use]
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Total line capacity.
    #[must_use]
    pub fn lines(&self) -> usize {
        self.sets * self.ways
    }

    /// Set index for a line address.
    #[must_use]
    pub fn set_of(&self, line: LineAddr) -> usize {
        (line as usize) & (self.sets - 1)
    }
}

// Per-way status lives in per-set bitmasks (one bit per way), so the
// probe and victim selection are pure bit arithmetic over a branchless
// tag scan.

/// Result of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheOutcome<M> {
    /// The access hit a valid line.
    pub hit: bool,
    /// On a miss, the refilled line's tag matched an invalid entry that was
    /// invalidated by coherence — a *coherency miss*.
    pub coherency_miss: bool,
    /// On a miss that evicted a valid line: `(line, was_dirty, metadata)`.
    pub evicted: Option<(LineAddr, bool, M)>,
    /// Metadata of the line *before* this access (for hits: the line's
    /// stored metadata, e.g. the LLC inserter).
    pub hit_meta: Option<M>,
    /// The way the line lives in after this access (hit way or fill way).
    /// A line keeps its way until eviction, so callers may cache it as a
    /// probe-free handle (see [`Cache::set_meta_at`] /
    /// [`crate::SharedLlc::writeback_at`]).
    pub way: u8,
}

/// Packed recency ordering of one set: way indices as nibbles, rank 0
/// (most recent) in the low nibble.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct LruOrder(u64);

impl LruOrder {
    /// Identity permutation: way 0 most recent, way `w-1` least recent.
    fn identity(ways: usize) -> Self {
        let mut order = 0u64;
        for w in (0..ways).rev() {
            order = (order << 4) | w as u64;
        }
        LruOrder(order)
    }

    /// Recency rank of `way` (0 = most recent). Branch-free SWAR: XOR
    /// with the way replicated into every nibble zeroes exactly the
    /// nibble holding `way` (the order is a permutation); the classic
    /// zero-nibble detector then locates it in O(1).
    #[inline]
    fn rank_of(self, way: usize, ways: usize) -> usize {
        let x = (self.0 ^ (way as u64).wrapping_mul(0x1111_1111_1111_1111)) & mask_nibbles(ways);
        let zero_nibbles =
            x.wrapping_sub(0x1111_1111_1111_1111) & !x & 0x8888_8888_8888_8888 & mask_nibbles(ways);
        debug_assert!(
            zero_nibbles != 0,
            "way {way} missing from LRU order {:x}",
            self.0
        );
        (zero_nibbles.trailing_zeros() / 4) as usize
    }

    /// Promotes `way` to rank 0.
    #[inline]
    fn touch(self, way: usize, ways: usize) -> Self {
        // Fast path: already most recent (the common case for hits with
        // temporal locality).
        if (self.0 & 0xF) as usize == way {
            return self;
        }
        let r = self.rank_of(way, ways);
        let below = self.0 & ((1u64 << (4 * r)) - 1);
        // Two-step shift: `4 * (r + 1)` is 64 when promoting rank 15.
        let above = (self.0 >> (4 * r) >> 4) << (4 * r);
        let without = below | above;
        LruOrder(((without << 4) | way as u64) & mask_nibbles(ways))
    }

    /// The least-recently-used way (rank `ways - 1`).
    #[inline]
    fn lru(self, ways: usize) -> usize {
        ((self.0 >> (4 * (ways - 1))) & 0xF) as usize
    }
}

#[inline]
fn mask_nibbles(ways: usize) -> u64 {
    if ways == 16 {
        u64::MAX
    } else {
        (1u64 << (4 * ways)) - 1
    }
}

/// Per-set true-LRU recency state, in one of two encodings selected by
/// the configured associativity:
///
/// - [`Packed`](Lru::Packed) (ways ≤ 16): one `u64` per set holding the
///   recency permutation as nibbles — the PR 1 hot-path encoding;
/// - [`Wide`](Lru::Wide) (ways 17..=64): one byte per way per set,
///   most-recent first, updated with a scan + `copy_within`.
///
/// Both encode the same permutation semantics; `tests/flat_equivalence.rs`
/// pins them to bit-identical outcomes on shared geometries.
#[derive(Debug, Clone)]
enum Lru {
    /// Nibble-packed per-set orderings (associativity ≤ 16).
    Packed(Vec<LruOrder>),
    /// Byte-per-way per-set orderings (associativity 17..=64): the slice
    /// `[set * ways .. (set + 1) * ways]` lists way indices most-recent
    /// first.
    Wide(Vec<u8>),
}

impl Lru {
    /// Maximum associativity of the packed (nibble) encoding.
    const PACKED_MAX_WAYS: usize = 16;

    /// Identity-initialized state for `cfg`, choosing the encoding by
    /// associativity.
    fn new(cfg: CacheConfig) -> Self {
        if cfg.ways() <= Self::PACKED_MAX_WAYS {
            Lru::Packed(vec![LruOrder::identity(cfg.ways()); cfg.sets()])
        } else {
            Self::new_wide(cfg)
        }
    }

    /// Identity-initialized *wide* state regardless of associativity
    /// (used by [`Cache::with_wide_lru`] for the equivalence suite).
    fn new_wide(cfg: CacheConfig) -> Self {
        let mut order = vec![0u8; cfg.lines()];
        for set in 0..cfg.sets() {
            for w in 0..cfg.ways() {
                order[set * cfg.ways() + w] = w as u8;
            }
        }
        Lru::Wide(order)
    }

    /// Promotes `way` to most-recent in `set`.
    #[inline]
    fn touch(&mut self, set: usize, way: usize, ways: usize) {
        match self {
            Lru::Packed(orders) => orders[set] = orders[set].touch(way, ways),
            Lru::Wide(orders) => {
                let slice = &mut orders[set * ways..(set + 1) * ways];
                if slice[0] as usize == way {
                    return;
                }
                let r = slice
                    .iter()
                    .position(|&w| w as usize == way)
                    .expect("way present in LRU order");
                slice.copy_within(0..r, 1);
                slice[0] = way as u8;
            }
        }
    }

    /// The least-recently-used way of `set`.
    #[inline]
    fn lru(&self, set: usize, ways: usize) -> usize {
        match self {
            Lru::Packed(orders) => orders[set].lru(ways),
            Lru::Wide(orders) => orders[set * ways + ways - 1] as usize,
        }
    }
}

/// A set-associative, write-back, allocate-on-miss cache with true LRU.
///
/// Tags are stored *compactly*: the per-way tag is `line >> log2(sets)`
/// narrowed to 32 bits, so an 8-way probe touches 32 bytes and a 16-way
/// probe one cache line. This bounds supported line addresses to
/// `line >> log2(sets) <= u32::MAX` (e.g. 2^39 for a 128-set L1),
/// asserted on every access — far above every address the simulator
/// mints (workload regions live below 2^32, lock/barrier regions at
/// 2^33).
#[derive(Debug, Clone)]
pub struct Cache<M> {
    cfg: CacheConfig,
    /// log2(sets): the tag is `line >> set_shift`.
    set_shift: u32,
    tags: Vec<u32>,
    /// Per-set way bitmask: way holds a valid line.
    valid: Vec<u64>,
    /// Per-set way bitmask: line is dirty.
    dirty: Vec<u64>,
    /// Per-set way bitmask: tag retained after a coherence invalidation.
    coh: Vec<u64>,
    meta: Vec<M>,
    lru: Lru,
}

impl<M: Copy + Default> Cache<M> {
    /// Creates an empty cache with the given geometry.
    #[must_use]
    pub fn new(cfg: CacheConfig) -> Self {
        Self::with_lru(cfg, Lru::new(cfg))
    }

    /// Testing constructor: forces the *wide* (byte-per-way) LRU encoding
    /// regardless of associativity. The packed/wide equivalence suite
    /// drives this against [`Cache::new`] on ≤16-way geometries to pin
    /// the two encodings to bit-identical behaviour.
    #[must_use]
    pub fn with_wide_lru(cfg: CacheConfig) -> Self {
        Self::with_lru(cfg, Lru::new_wide(cfg))
    }

    fn with_lru(cfg: CacheConfig, lru: Lru) -> Self {
        Cache {
            cfg,
            set_shift: cfg.sets().trailing_zeros(),
            tags: vec![0; cfg.lines()],
            valid: vec![0; cfg.sets()],
            dirty: vec![0; cfg.sets()],
            coh: vec![0; cfg.sets()],
            meta: vec![M::default(); cfg.lines()],
            lru,
        }
    }

    /// The cache geometry.
    #[must_use]
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    #[inline]
    fn base(&self, line: LineAddr) -> (usize, usize) {
        let set = self.cfg.set_of(line);
        (set, set * self.cfg.ways)
    }

    /// The compact tag for `line`.
    ///
    /// # Panics
    ///
    /// Panics if the address exceeds the compact-tag range for this
    /// geometry (`line >> log2(sets)` must fit 32 bits).
    #[inline]
    fn tag_of(&self, line: LineAddr) -> u32 {
        let tag = line >> self.set_shift;
        assert!(
            tag <= u64::from(u32::MAX),
            "line {line:#x} beyond compact-tag range"
        );
        tag as u32
    }

    /// Reconstructs the full line address of `set`'s way holding `tag`.
    #[inline]
    fn line_of(&self, set: usize, tag: u32) -> LineAddr {
        (u64::from(tag) << self.set_shift) | set as u64
    }

    /// Bitmask of ways whose tag equals `tag` (valid or not). The scan is
    /// branchless over the contiguous per-set tag slice, so it
    /// vectorizes; combined with the per-set status masks every lookup
    /// below is O(1) bit arithmetic on top of this.
    #[inline]
    fn tag_matches(&self, base: usize, tag: u32) -> u64 {
        let tags = &self.tags[base..base + self.cfg.ways];
        let mut eq = 0u64;
        for (w, &t) in tags.iter().enumerate() {
            eq |= u64::from(t == tag) << w;
        }
        eq
    }

    /// Index of the valid way holding `line`, if any.
    #[inline]
    fn find_valid(&self, set: usize, base: usize, line: LineAddr) -> Option<usize> {
        let hit = self.tag_matches(base, self.tag_of(line)) & self.valid[set];
        (hit != 0).then(|| hit.trailing_zeros() as usize)
    }

    /// Accesses `line`; on a miss the line is allocated with metadata
    /// `fill_meta`, evicting the LRU way if necessary. `write` marks the
    /// line dirty.
    pub fn access(&mut self, line: LineAddr, write: bool, fill_meta: M) -> CacheOutcome<M> {
        let ways = self.cfg.ways;
        let (set, base) = self.base(line);
        let tag = self.tag_of(line);

        let eq = self.tag_matches(base, tag);

        // Hit?
        let hit = eq & self.valid[set];
        if hit != 0 {
            let w = hit.trailing_zeros() as usize;
            self.lru.touch(set, w, ways);
            self.dirty[set] |= u64::from(write) << w;
            return CacheOutcome {
                hit: true,
                coherency_miss: false,
                evicted: None,
                hit_meta: Some(self.meta[base + w]),
                way: w as u8,
            };
        }

        // Miss: prefer the coherence-invalidated way with a matching tag
        // (a coherency miss), else the first invalid way, else true LRU.
        let invalid = !self.valid[set] & ways_mask(ways);
        let coh_match = eq & invalid & self.coh[set];
        let (w, coherency_miss) = if coh_match != 0 {
            (coh_match.trailing_zeros() as usize, true)
        } else if invalid != 0 {
            (invalid.trailing_zeros() as usize, false)
        } else {
            (self.lru.lru(set, ways), false)
        };
        let bit = 1u64 << w;
        let i = base + w;
        let evicted = (self.valid[set] & bit != 0).then(|| {
            (
                self.line_of(set, self.tags[i]),
                self.dirty[set] & bit != 0,
                self.meta[i],
            )
        });
        self.tags[i] = tag;
        self.valid[set] |= bit;
        self.coh[set] &= !bit;
        self.dirty[set] = (self.dirty[set] & !bit) | (u64::from(write) << w);
        self.meta[i] = fill_meta;
        self.lru.touch(set, w, ways);
        CacheOutcome {
            hit: false,
            coherency_miss,
            evicted,
            hit_meta: None,
            way: w as u8,
        }
    }

    /// Overwrites the metadata of `line`'s way `way` without a probe
    /// (`way` from the access that filled the line; lines keep their way
    /// until eviction).
    #[inline]
    pub fn set_meta_at(&mut self, line: LineAddr, way: u8, meta: M) {
        let (set, base) = self.base(line);
        debug_assert_eq!(self.tags[base + way as usize], self.tag_of(line));
        debug_assert!(self.valid[set] & (1 << way) != 0);
        self.meta[base + way as usize] = meta;
    }

    /// Non-destructive lookup: is the line present and valid?
    #[must_use]
    pub fn contains(&self, line: LineAddr) -> bool {
        let (set, base) = self.base(line);
        self.tag_matches(base, self.tag_of(line)) & self.valid[set] != 0
    }

    /// Invalidates `line` due to a coherence action. The tag is retained so
    /// a later refill can be classified as a coherency miss. Returns
    /// `Some((was_dirty, metadata))` if the line was present and valid.
    pub fn invalidate_coherence(&mut self, line: LineAddr) -> Option<(bool, M)> {
        let (set, base) = self.base(line);
        let w = self.find_valid(set, base, line)?;
        let bit = 1u64 << w;
        let dirty = self.dirty[set] & bit != 0;
        self.valid[set] &= !bit;
        self.coh[set] |= bit;
        self.dirty[set] &= !bit;
        Some((dirty, self.meta[base + w]))
    }

    /// Silently removes `line` (back-invalidation on LLC eviction; no
    /// coherency-miss marking). Returns `Some(was_dirty)` if present.
    pub fn remove(&mut self, line: LineAddr) -> Option<bool> {
        let (set, base) = self.base(line);
        let w = self.find_valid(set, base, line)?;
        let bit = 1u64 << w;
        let dirty = self.dirty[set] & bit != 0;
        self.valid[set] &= !bit;
        self.coh[set] &= !bit;
        self.dirty[set] &= !bit;
        Some(dirty)
    }

    /// Marks `line` dirty at its known `way` without a probe (see
    /// [`CacheOutcome::way`]).
    #[inline]
    pub fn mark_dirty_at(&mut self, line: LineAddr, way: u8) {
        let set = self.cfg.set_of(line);
        debug_assert_eq!(
            self.tags[set * self.cfg.ways + way as usize],
            self.tag_of(line)
        );
        debug_assert!(self.valid[set] & (1 << way) != 0);
        self.dirty[set] |= 1 << way;
    }

    /// Marks an already-present line dirty (used when an L1 writeback
    /// lands in the LLC). Returns `true` if the line was present.
    pub fn mark_dirty(&mut self, line: LineAddr) -> bool {
        let (set, base) = self.base(line);
        match self.find_valid(set, base, line) {
            Some(w) => {
                self.dirty[set] |= 1 << w;
                true
            }
            None => false,
        }
    }

    /// Number of valid lines currently resident (O(sets); for tests and
    /// diagnostics).
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.valid.iter().map(|v| v.count_ones() as usize).sum()
    }
}

/// Bitmask selecting the low `ways` bits.
#[inline]
fn ways_mask(ways: usize) -> u64 {
    if ways == 64 {
        u64::MAX
    } else {
        (1u64 << ways) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache<()> {
        Cache::new(CacheConfig::new(4, 2))
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_pow2_sets() {
        let _ = CacheConfig::new(3, 2);
    }

    #[test]
    #[should_panic(expected = "at most 64 ways")]
    fn rejects_too_many_ways() {
        let _ = CacheConfig::new(4, 65);
    }

    #[test]
    fn seventeen_ways_selects_wide_lru() {
        let c: Cache<()> = Cache::new(CacheConfig::new(4, 17));
        assert!(matches!(c.lru, Lru::Wide(_)));
        let c16: Cache<()> = Cache::new(CacheConfig::new(4, 16));
        assert!(matches!(c16.lru, Lru::Packed(_)));
    }

    #[test]
    fn from_kib_geometry() {
        let cfg = CacheConfig::from_kib(64, 64, 8); // 64 KB L1
        assert_eq!(cfg.lines(), 1024);
        assert_eq!(cfg.sets(), 128);
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small();
        let first = c.access(100, false, ());
        assert!(!first.hit);
        assert!(first.evicted.is_none());
        let second = c.access(100, false, ());
        assert!(second.hit);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = small();
        // Set 0 holds lines 0, 4, 8, ... (4 sets). Fill both ways.
        c.access(0, false, ());
        c.access(4, false, ());
        // Touch 0 so 4 is LRU.
        c.access(0, false, ());
        let out = c.access(8, false, ());
        assert_eq!(out.evicted, Some((4, false, ())));
        assert!(c.contains(0));
        assert!(!c.contains(4));
    }

    #[test]
    fn dirty_eviction_reported() {
        let mut c = small();
        c.access(0, true, ());
        c.access(4, false, ());
        let out = c.access(8, false, ());
        assert_eq!(out.evicted, Some((0, true, ())));
    }

    #[test]
    fn write_marks_dirty_on_hit() {
        let mut c = small();
        c.access(0, false, ());
        c.access(0, true, ());
        c.access(4, false, ());
        let out = c.access(8, false, ());
        // line 0 was LRU? 0 accessed twice then 4: LRU is 0? no: order 0,0,4 → 0 older.
        assert_eq!(out.evicted, Some((0, true, ())));
    }

    #[test]
    fn coherence_invalidation_and_coherency_miss() {
        let mut c = small();
        c.access(0, false, ());
        assert_eq!(c.invalidate_coherence(0), Some((false, ())));
        assert!(!c.contains(0));
        let refill = c.access(0, false, ());
        assert!(!refill.hit);
        assert!(refill.coherency_miss);
        // A second invalidate on absent line returns None.
        assert_eq!(c.invalidate_coherence(99), None);
    }

    #[test]
    fn remove_does_not_mark_coherency() {
        let mut c = small();
        c.access(0, true, ());
        assert_eq!(c.remove(0), Some(true));
        let refill = c.access(0, false, ());
        assert!(!refill.coherency_miss);
    }

    #[test]
    fn mark_dirty() {
        let mut c = small();
        c.access(0, false, ());
        assert!(c.mark_dirty(0));
        assert!(!c.mark_dirty(4));
        c.access(4, false, ());
        let out = c.access(8, false, ());
        assert_eq!(out.evicted, Some((0, true, ())));
    }

    #[test]
    fn metadata_stored_and_returned() {
        let mut c: Cache<u16> = Cache::new(CacheConfig::new(4, 2));
        c.access(0, false, 7);
        let out = c.access(0, false, 9);
        assert_eq!(out.hit_meta, Some(7)); // fill meta ignored on hit
    }

    #[test]
    fn occupancy_bounded_by_capacity() {
        let mut c = small();
        for line in 0..100u64 {
            c.access(line, false, ());
        }
        assert!(c.occupancy() <= c.config().lines());
        assert_eq!(c.occupancy(), 8);
    }

    #[test]
    fn packed_lru_permutation_ops() {
        let o = LruOrder::identity(4);
        assert_eq!(o.0, 0x3210);
        assert_eq!(o.lru(4), 3);
        let o = o.touch(2, 4); // 2,0,1,3
        assert_eq!(o.0, 0x3102);
        assert_eq!(o.rank_of(2, 4), 0);
        assert_eq!(o.rank_of(0, 4), 1);
        let o = o.touch(3, 4); // 3,2,0,1
        assert_eq!(o.0, 0x1023);
        assert_eq!(o.lru(4), 1);
        // Touching the MRU way is a no-op.
        assert_eq!(o.touch(3, 4), o);
    }

    #[test]
    fn packed_lru_sixteen_ways() {
        let mut o = LruOrder::identity(16);
        assert_eq!(o.lru(16), 15);
        for w in (0..16).rev() {
            o = o.touch(w, 16);
        }
        // Touched in order 15..0: way 15 is now least recent... after
        // touching 15 first then 14..0, the LRU is 15.
        assert_eq!(o.lru(16), 15);
        assert_eq!(o.rank_of(0, 16), 0);
        // All ways still present exactly once.
        let mut seen = [false; 16];
        for r in 0..16 {
            seen[((o.0 >> (4 * r)) & 0xF) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn wide_lru_permutation_ops() {
        let mut l = Lru::new_wide(CacheConfig::new(1, 4));
        assert_eq!(l.lru(0, 4), 3);
        l.touch(0, 2, 4); // 2,0,1,3
        assert_eq!(l.lru(0, 4), 3);
        l.touch(0, 3, 4); // 3,2,0,1
        assert_eq!(l.lru(0, 4), 1);
        // Touching the MRU way is a no-op.
        l.touch(0, 3, 4);
        assert_eq!(l.lru(0, 4), 1);
    }

    #[test]
    fn thirty_two_way_set_evicts_true_lru() {
        // One set, 32 ways: fill, then re-touch everything except way 7's
        // line; the next fill must evict exactly that line.
        let mut c: Cache<()> = Cache::new(CacheConfig::new(1, 32));
        for line in 0..32u64 {
            c.access(line, false, ());
        }
        for line in (0..32u64).filter(|&l| l != 7) {
            c.access(line, false, ());
        }
        let out = c.access(100, false, ());
        assert_eq!(out.evicted, Some((7, false, ())));
        assert_eq!(c.occupancy(), 32);
    }

    #[test]
    fn sixty_four_way_fill_and_coherency() {
        let mut c: Cache<()> = Cache::new(CacheConfig::new(1, 64));
        for line in 0..64u64 {
            c.access(line, false, ());
        }
        assert_eq!(c.occupancy(), 64);
        assert_eq!(c.invalidate_coherence(63), Some((false, ())));
        let refill = c.access(63, false, ());
        assert!(refill.coherency_miss);
        // The 65th distinct line evicts the true LRU (line 0).
        let out = c.access(200, false, ());
        assert_eq!(out.evicted, Some((0, false, ())));
    }
}
