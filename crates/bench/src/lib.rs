//! # bench_support — in-repo benchmark harness and perf reporting
//!
//! The container this workspace is developed in has no registry access,
//! so Criterion is unavailable; the benches under `benches/` run on this
//! minimal harness instead (`harness = false` targets). It keeps the
//! parts that matter for tracking simulator performance across PRs:
//! warm-up, repeated samples, min/mean/max wall-time and element
//! throughput, plus a `--smoke` mode for CI.
//!
//! The [`report`] module emits the machine-readable `BENCH_PR*.json`
//! perf-trajectory files (see the `bench_report` binary) by converting
//! the measurements into the shared
//! [`speedup_stacks::report::Report`] value model and using its JSON
//! emitter.
//!
//! ## Example
//!
//! ```
//! use bench_support::report::{Entry, PerfReport};
//!
//! let mut report = PerfReport::default();
//! report.meta("report", "demo");
//! report.push(Entry {
//!     name: "sweep".into(),
//!     config: "default".into(),
//!     wall_s: 0.5,
//!     events: 1_000_000,
//!     points: 12,
//! });
//! let json = report.to_json();
//! assert!(speedup_stacks::report::json::parse(&json).is_ok());
//! assert!(json.contains("events_per_sec"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod harness;
pub mod report;

pub use harness::Harness;
