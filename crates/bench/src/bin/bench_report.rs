//! `bench_report` — emits the `BENCH_PR*.json` perf-trajectory file.
//!
//! Four measured workloads:
//!
//! - the paper's full validation grid (the Figure 4 sweep): all 28
//!   benchmarks × {2, 4, 8, 16} threads plus one single-threaded
//!   reference per benchmark — 140 independent simulations;
//! - the Figure 6 classification sweep (16 threads only);
//! - the **many-core scaling study** (`experiments::scaling`): speedup
//!   stacks across a 1→128-core sweep of weak-scaling workloads and a
//!   multi-program rate mix on a 4 MiB 32-way LLC — the sweep that
//!   exercises the spilled (>64-core) coherence directory and the wide
//!   (>16-way) LRU encoding end to end;
//! - the **studyd service** (`service_fig6`): the Figure 6 grid submitted
//!   to an in-process `studyd` over loopback — cold submission, cache-
//!   served submission, first-frame latency and a 10-request cached burst;
//! - the **federation** (`fed_fig6`): the same grid sharded across a
//!   fleet by the coordinator — cold 1-backend vs 2-backend runs, and
//!   kill-one-mid-sweep failover against a chaos-killed child backend.
//!
//! The figure grids are measured under three in-binary configurations:
//!
//! - `timingwheel-parallel` — the shipped defaults (indexed timing wheel,
//!   flat sync/coherence tables, parallel driver);
//! - `timingwheel-serial`   — same engine, serial driver;
//! - `binaryheap-serial`    — the original `BinaryHeap` event queue with
//!   the serial driver (results are bit-identical across queues).
//!
//! The scaling study is measured with the parallel and serial drivers
//! (the seed engine cannot run it at all: it capped the directory at 64
//! cores and the caches at 16 ways).
//!
//! `--baseline-repro PATH` points at a `repro` binary built from the
//! seed data structures (`BinaryHeap` + `std` SipHash `HashMap`s, serial
//! driver); its `fig4`/`fig6` sweeps are then timed **interleaved** with
//! this binary's sweeps, so host-speed drift hits both sides equally.
//!
//! ```text
//! bench_report [--out PATH] [--scale F] [--samples N] [--baseline-repro PATH]
//! ```

use std::time::Instant;

use bench_support::report::{Entry, PerfReport};
use cmpsim::EventQueueKind;
use experiments::{run_grid, scaled_profile, Parallelism, RunOptions};

/// The two figure sweeps: the Figure 4 validation grid and the Figure 6
/// classification sweep (16 threads only).
const SWEEPS: [(&str, &str, &[usize]); 2] = [
    ("fig4_grid", "fig4", &[2, 4, 8, 16]),
    ("fig6_grid", "fig6", &[16]),
];

fn sweep(
    scale: f64,
    counts: &[usize],
    queue: EventQueueKind,
    mode: Parallelism,
) -> (f64, u64, u64) {
    let profiles: Vec<workloads::WorkloadProfile> = workloads::paper_suite()
        .iter()
        .map(|p| scaled_profile(p, scale))
        .collect();
    let t0 = Instant::now();
    let grid = run_grid(
        &profiles,
        counts,
        &|_, n| RunOptions {
            queue,
            ..RunOptions::symmetric(n)
        },
        mode,
    );
    let wall = t0.elapsed().as_secs_f64();
    let events: u64 = grid.iter().flatten().map(|o| o.mt.events).sum();
    let points = (profiles.len() * (counts.len() + 1)) as u64;
    (wall, events, points)
}

/// One timed run of the 1→128-core scaling study.
fn scaling_sweep(scale: f64, mode: Parallelism) -> (f64, u64, u64) {
    let t0 = Instant::now();
    let study = experiments::scaling::run_with(scale, &experiments::scaling::CORE_COUNTS, mode);
    let wall = t0.elapsed().as_secs_f64();
    (wall, study.total_events(), study.total_points())
}

fn time_external(repro: &str, fig: &str, scale: f64) -> f64 {
    let t0 = Instant::now();
    let status = std::process::Command::new(repro)
        .args([fig, "--scale", &format!("{scale}")])
        .stdout(std::process::Stdio::null())
        .status()
        .expect("run baseline repro");
    assert!(status.success(), "baseline {fig} failed");
    t0.elapsed().as_secs_f64()
}

/// Round trip the warm path raw so the first-frame latency — submit
/// line written to first `point` frame read — is measured without the
/// client's reassembly work.
fn first_frame_latency(addr: &str, scale: f64) -> f64 {
    use std::io::{BufRead, BufReader, Write};
    let stream = std::net::TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    let mut send = |line: &str| {
        writer.write_all(line.as_bytes()).expect("send");
        writer.write_all(b"\n").expect("send");
        writer.flush().expect("flush");
    };
    let mut recv = || {
        let mut line = String::new();
        reader.read_line(&mut line).expect("recv");
        line
    };
    send(&format!(
        "{{\"op\": \"hello\", \"proto\": {}}}",
        service::proto::PROTO_VERSION
    ));
    recv();
    let t0 = Instant::now();
    send(&format!(
        "{{\"op\": \"submit\", \"study\": \"fig6\", \"params\": {{\"scale\": {scale}}}}}"
    ));
    recv(); // accepted
    recv(); // first point frame
    let latency = t0.elapsed().as_secs_f64();
    loop {
        if recv().contains("\"kind\": \"done\"") {
            break;
        }
    }
    latency
}

/// The `studyd` service over loopback: cold submission, cache-served
/// submission, first-frame latency and cached request throughput.
fn service_bench(scale: f64, samples: usize, report: &mut PerfReport) {
    use experiments::study::StudyParams;
    use service::client::Client;
    use service::server::{serve, ServeConfig};

    let params = StudyParams::with_scale(scale);
    let mut best_cold = f64::MAX;
    let mut best_cached = f64::MAX;
    let mut best_first = f64::MAX;
    let mut points = 0u64;
    for _ in 0..samples.max(1) {
        // A fresh server per sample keeps the cold path genuinely cold.
        let server = serve(&ServeConfig::default()).expect("bind loopback");
        let addr = server.local_addr().to_string();
        let mut client = Client::connect(&addr).expect("connect");
        let t0 = Instant::now();
        let outcome = client.submit("fig6", &params).expect("cold submit");
        best_cold = best_cold.min(t0.elapsed().as_secs_f64());
        points = (outcome.computed + outcome.cached) as u64;
        let t0 = Instant::now();
        client.submit("fig6", &params).expect("cached submit");
        best_cached = best_cached.min(t0.elapsed().as_secs_f64());
        best_first = best_first.min(first_frame_latency(&addr, scale));
        server.stop();
    }

    // Cached throughput: one warm server, ten back-to-back submissions.
    const BURST: u64 = 10;
    let server = serve(&ServeConfig::default()).expect("bind loopback");
    let mut client = Client::connect(&server.local_addr().to_string()).expect("connect");
    client.submit("fig6", &params).expect("warm submit");
    let t0 = Instant::now();
    for _ in 0..BURST {
        client.submit("fig6", &params).expect("burst submit");
    }
    let burst_wall = t0.elapsed().as_secs_f64();
    server.stop();

    for (config, wall, pts) in [
        ("cold-submit", best_cold, points),
        ("cached-submit", best_cached, points),
        ("cached-first-frame", best_first, 1),
        ("cached-submit-x10", burst_wall, BURST * points),
    ] {
        eprintln!("service_fig6/{config}: {wall:.4} s");
        report.push(Entry {
            name: "service_fig6".into(),
            config: config.into(),
            wall_s: wall,
            events: 0,
            points: pts,
        });
    }
}

/// PR 9 hardening paths: duplicate cold submits collapsing onto one
/// computation, a restarted daemon serving warm from the cache spill,
/// and the busy-rejection fast path under admission control.
fn hardening_bench(scale: f64, samples: usize, report: &mut PerfReport) {
    use experiments::study::StudyParams;
    use service::client::Client;
    use service::server::{serve, ServeConfig};

    let params = StudyParams::with_scale(scale);
    let spill =
        std::env::temp_dir().join(format!("studyd-bench-spill-{}.ndjson", std::process::id()));
    let mut best_coalesced = f64::MAX;
    let mut best_restart = f64::MAX;
    let mut best_busy = f64::MAX;
    let mut points = 0u64;
    for _ in 0..samples.max(1) {
        // Eight identical concurrent cold submits: one owner computes
        // each unit, seven subscribers ride the coalesced fan-out.
        let server = serve(&ServeConfig::default()).expect("bind loopback");
        let addr = server.local_addr().to_string();
        let t0 = Instant::now();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let addr = &addr;
                let params = &params;
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    client.submit("fig6", params).expect("coalesced submit");
                });
            }
        });
        best_coalesced = best_coalesced.min(t0.elapsed().as_secs_f64());
        server.stop();

        // Restart-warm: a fresh daemon recovers the spill and serves
        // the resubmit without recomputing (compare with cold-submit).
        std::fs::remove_file(&spill).ok();
        let server = serve(&ServeConfig {
            cache_spill: Some(spill.clone()),
            ..ServeConfig::default()
        })
        .expect("bind loopback");
        let mut client = Client::connect(&server.local_addr().to_string()).expect("connect");
        let outcome = client.submit("fig6", &params).expect("cold submit");
        points = (outcome.computed + outcome.cached) as u64;
        server.stop();
        let server = serve(&ServeConfig {
            cache_spill: Some(spill.clone()),
            ..ServeConfig::default()
        })
        .expect("rebind");
        let mut client = Client::connect(&server.local_addr().to_string()).expect("reconnect");
        let t0 = Instant::now();
        client.submit("fig6", &params).expect("restart-warm submit");
        best_restart = best_restart.min(t0.elapsed().as_secs_f64());
        server.stop();

        // Busy-rejection fast path: with the queue full, the typed
        // `busy` answer must come back without touching the pool.
        let server = serve(&ServeConfig {
            workers: 1,
            max_queued_units: 1,
            ..ServeConfig::default()
        })
        .expect("bind loopback");
        let addr = server.local_addr().to_string();
        let heavy = {
            let addr = addr.clone();
            let params = params.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr).expect("connect");
                client.submit("fig6", &params).expect("heavy submit");
            })
        };
        while server.scheduler().status().queued_units < 1 {
            std::thread::yield_now();
        }
        let light = StudyParams {
            scale: scale.min(0.01),
            threads: Some(vec![2]),
            ..StudyParams::default()
        };
        let mut probe = Client::connect(&addr).expect("connect");
        let t0 = Instant::now();
        probe
            .submit("fig1", &light)
            .expect_err("queue is full: typed busy");
        best_busy = best_busy.min(t0.elapsed().as_secs_f64());
        heavy.join().unwrap();
        server.stop();
    }
    std::fs::remove_file(&spill).ok();

    for (config, wall, pts) in [
        ("coalesced-cold-x8", best_coalesced, points),
        ("restart-warm-submit", best_restart, points),
        ("busy-reject", best_busy, 1),
    ] {
        eprintln!("service_fig6/{config}: {wall:.4} s");
        report.push(Entry {
            name: "service_fig6".into(),
            config: config.into(),
            wall_s: wall,
            events: 0,
            points: pts,
        });
    }
}

/// PR 10 federation: the fig6 grid sharded across a fleet by the
/// in-process coordinator — one backend vs two, and kill-one-mid-sweep
/// failover against a real child backend dying via `exit-unit` chaos.
fn federation_bench(scale: f64, samples: usize, report: &mut PerfReport) {
    use experiments::decompose::decompose;
    use experiments::study::StudyParams;
    use service::federation::{assemble_events, Federation, FleetConfig};
    use service::server::{serve, ServeConfig};
    use service::session::Dispatch;

    let params = StudyParams::with_scale(scale);
    let grid = decompose("fig6", &params).expect("fig6 decomposes");
    let n = grid.n_points() as u64;

    let run_fleet = |backends: Vec<String>| -> f64 {
        let fed = Federation::start(FleetConfig {
            backends,
            hedge_after_ms: None,
            heartbeat_ms: 100,
            dead_after: 1,
            ..FleetConfig::default()
        })
        .expect("start fleet");
        let t0 = Instant::now();
        let (_, rx) = fed
            .submit_units(grid.clone(), params.clone(), None)
            .expect("admitted");
        assemble_events(&grid, &params, &rx).expect("reassemble");
        let wall = t0.elapsed().as_secs_f64();
        fed.stop();
        wall
    };

    let mut best_one = f64::MAX;
    let mut best_two = f64::MAX;
    for _ in 0..samples.max(1) {
        // Fresh backends per sample keep the fleet genuinely cold.
        let a = serve(&ServeConfig::default()).expect("bind loopback");
        best_one = best_one.min(run_fleet(vec![a.local_addr().to_string()]));
        a.stop();
        let a = serve(&ServeConfig::default()).expect("bind loopback");
        let b = serve(&ServeConfig::default()).expect("bind loopback");
        best_two = best_two.min(run_fleet(vec![
            a.local_addr().to_string(),
            b.local_addr().to_string(),
        ]));
        a.stop();
        b.stop();
    }

    // Kill-one needs a real process death; the studyd binary sits next
    // to bench_report in a workspace build. Skip loudly if absent.
    let studyd = std::env::current_exe()
        .ok()
        .and_then(|p| p.parent().map(|d| d.join("studyd")))
        .filter(|p| p.exists());
    let mut best_kill = f64::MAX;
    if let Some(studyd) = &studyd {
        use std::io::{BufRead, BufReader};
        for _ in 0..samples.max(1) {
            let a = serve(&ServeConfig::default()).expect("bind loopback");
            let mut child = std::process::Command::new(studyd)
                .args(["--addr", "127.0.0.1:0", "--workers", "1"])
                .env("STUDYD_CHAOS", "exit-unit=2")
                .stdout(std::process::Stdio::piped())
                .stderr(std::process::Stdio::null())
                .spawn()
                .expect("spawn studyd");
            let mut banner = String::new();
            BufReader::new(child.stdout.take().expect("stdout piped"))
                .read_line(&mut banner)
                .expect("read banner");
            let b_addr = banner
                .trim()
                .strip_prefix("studyd: listening on ")
                .expect("studyd banner")
                .to_string();
            best_kill = best_kill.min(run_fleet(vec![a.local_addr().to_string(), b_addr]));
            a.stop();
            child.kill().ok();
            child.wait().ok();
        }
    } else {
        eprintln!("fed_fig6/kill-one-mid-sweep: skipped (no studyd binary next to bench_report)");
    }

    for (config, wall) in [
        ("cold-1-backend", best_one),
        ("cold-2-backends", best_two),
        ("kill-one-mid-sweep", best_kill),
    ] {
        if wall == f64::MAX {
            continue;
        }
        eprintln!("fed_fig6/{config}: {wall:.4} s");
        report.push(Entry {
            name: "fed_fig6".into(),
            config: config.into(),
            wall_s: wall,
            events: 0,
            points: n,
        });
    }
}

fn main() {
    let mut out = String::from("BENCH_PR10.json");
    let mut scale = 1.0f64;
    let mut samples = 3usize;
    let mut baseline_repro: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out = args.next().expect("--out PATH"),
            "--scale" => scale = args.next().and_then(|v| v.parse().ok()).expect("--scale F"),
            "--samples" => {
                samples = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--samples N")
            }
            "--baseline-repro" => {
                baseline_repro = Some(args.next().expect("--baseline-repro PATH"))
            }
            other => panic!("unknown argument: {other}"),
        }
    }

    let configs: [(&str, EventQueueKind, Parallelism); 3] = [
        (
            "timingwheel-parallel",
            EventQueueKind::TimingWheel,
            Parallelism::Auto,
        ),
        (
            "timingwheel-serial",
            EventQueueKind::TimingWheel,
            Parallelism::Serial,
        ),
        (
            "binaryheap-serial",
            EventQueueKind::BinaryHeap,
            Parallelism::Serial,
        ),
    ];

    let mut report = PerfReport::default();
    report.meta("report", "speedup-stacks simulator perf trajectory, PR 10");
    report.meta(
        "workload",
        format!(
            "fig4_grid: 28 benchmarks x {{2,4,8,16}} threads + 1 ST reference each; \
             fig6_grid: 28 benchmarks x 16 threads + 1 ST reference each; \
             scaling_1_to_128: 3 weak-scaling workloads + 1 rate mix x \
             {{1,2,4,8,16,32,64,128}} cores on a 4 MiB 32-way LLC; \
             service_fig6: the fig6 grid submitted to an in-process studyd \
             over loopback (cold vs cache-served, first-frame latency, 10x \
             cached burst, 8x coalesced cold submits, restart-warm from the \
             cache spill, busy-rejection fast path); \
             fed_fig6: the fig6 grid sharded by the federation coordinator \
             (cold 1-backend vs 2-backend fleets, and kill-one-mid-sweep \
             failover against a chaos-killed child backend); scale {scale}"
        ),
    );
    report.meta(
        "method",
        format!(
            "best of {samples} samples per config, baseline interleaved with new-engine runs; \
             events = engine events of the multi-threaded runs"
        ),
    );
    report.meta(
        "host_cpus",
        std::thread::available_parallelism().map_or(0, |n| n.get()),
    );
    report.meta(
        "note",
        "all in-binary configs produce bit-identical figures; the scaling study has no \
         seed-baseline entry because the seed engine hard-capped the coherence directory at \
         64 cores and the packed LRU at 16 ways — the 128-core points are new capability, \
         not a speedup over the seed",
    );

    for (entry_name, fig, counts) in SWEEPS {
        let mut best: Vec<f64> = vec![f64::MAX; configs.len()];
        let mut best_baseline = f64::MAX;
        let mut events = 0u64;
        let mut points = 0u64;
        for _ in 0..samples.max(1) {
            // Interleave the baseline with every config so host-speed
            // drift cancels.
            if let Some(repro) = &baseline_repro {
                best_baseline = best_baseline.min(time_external(repro, fig, scale));
            }
            for (i, (_, queue, mode)) in configs.iter().enumerate() {
                let (wall, ev, pts) = sweep(scale, counts, *queue, *mode);
                best[i] = best[i].min(wall);
                events = ev;
                points = pts;
            }
        }
        for (i, (name, _, _)) in configs.iter().enumerate() {
            eprintln!("{entry_name}/{name}: {:.3} s, {events} events", best[i]);
            report.push(Entry {
                name: entry_name.into(),
                config: (*name).into(),
                wall_s: best[i],
                events,
                points,
            });
        }
        if baseline_repro.is_some() {
            eprintln!("{entry_name}/seed-baseline: {best_baseline:.3} s");
            report.push(Entry {
                name: entry_name.into(),
                config: "seed-binaryheap-hashmap-serial".into(),
                wall_s: best_baseline,
                // The seed engine predates the event counter *and* used
                // `rand`-generated op streams, so its event count is
                // neither recorded nor equal to the new engine's — wall
                // time over the same figure points is the comparison.
                events: 0,
                points,
            });
        }
    }

    // The many-core scaling study: 1→128 cores, parallel and serial
    // drivers (queue differences are covered by the figure grids above;
    // the study runs the default timing wheel).
    let scaling_modes: [(&str, Parallelism); 2] = [
        ("timingwheel-parallel", Parallelism::Auto),
        ("timingwheel-serial", Parallelism::Serial),
    ];
    let mut best = [f64::MAX; 2];
    let mut events = 0u64;
    let mut points = 0u64;
    for _ in 0..samples.max(1) {
        for (i, (_, mode)) in scaling_modes.iter().enumerate() {
            let (wall, ev, pts) = scaling_sweep(scale, *mode);
            best[i] = best[i].min(wall);
            events = ev;
            points = pts;
        }
    }
    for (i, (name, _)) in scaling_modes.iter().enumerate() {
        eprintln!("scaling_1_to_128/{name}: {:.3} s, {events} events", best[i]);
        report.push(Entry {
            name: "scaling_1_to_128".into(),
            config: (*name).into(),
            wall_s: best[i],
            events,
            points,
        });
    }

    // The studyd service: cold vs cache-served submissions, first-frame
    // latency and cached request throughput over loopback.
    service_bench(scale, samples, &mut report);

    // The hardening paths: coalescing, spill-warm restart, busy reject.
    hardening_bench(scale, samples, &mut report);

    // The federation: fleet sharding and kill-one failover.
    federation_bench(scale, samples, &mut report);

    std::fs::write(&out, report.to_json()).expect("write report");
    eprintln!("wrote {out}");
}
