//! Minimal benchmark harness: warm-up, sampling, throughput.
//!
//! Usage from a `harness = false` bench target:
//!
//! ```no_run
//! let mut h = bench_support::Harness::from_args();
//! h.bench("my_case", || 40 + 2);
//! h.finish();
//! ```
//!
//! CLI: an optional substring filters cases by name; `--smoke` runs one
//! sample per case (CI compile-and-run coverage); `--samples N` overrides
//! the sample count. The `BENCH_SMOKE=1` environment variable is
//! equivalent to `--smoke`.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// One case's timing summary.
#[derive(Debug, Clone)]
pub struct CaseResult {
    /// Case name.
    pub name: String,
    /// Wall-time per sample.
    pub samples: Vec<Duration>,
    /// Elements processed per sample (for throughput), if declared.
    pub elements: Option<u64>,
}

impl CaseResult {
    /// Mean sample duration.
    #[must_use]
    pub fn mean(&self) -> Duration {
        let total: Duration = self.samples.iter().sum();
        total / self.samples.len().max(1) as u32
    }

    /// Fastest sample.
    #[must_use]
    pub fn min(&self) -> Duration {
        self.samples.iter().min().copied().unwrap_or_default()
    }

    /// Slowest sample.
    #[must_use]
    pub fn max(&self) -> Duration {
        self.samples.iter().max().copied().unwrap_or_default()
    }

    /// Elements per second at the mean sample time.
    #[must_use]
    pub fn throughput(&self) -> Option<f64> {
        let elems = self.elements? as f64;
        let secs = self.mean().as_secs_f64();
        (secs > 0.0).then(|| elems / secs)
    }
}

/// The harness: collects and prints case results.
#[derive(Debug)]
pub struct Harness {
    filter: Option<String>,
    samples: usize,
    smoke: bool,
    results: Vec<CaseResult>,
}

impl Harness {
    /// Builds a harness from the process arguments (see module docs).
    #[must_use]
    pub fn from_args() -> Self {
        let mut filter = None;
        let mut samples = 10usize;
        let mut smoke = std::env::var_os("BENCH_SMOKE").is_some();
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--smoke" => smoke = true,
                "--samples" => {
                    samples = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--samples requires a positive integer");
                }
                // `cargo bench` passes --bench to harness=false targets.
                "--bench" => {}
                other if !other.starts_with('-') => filter = Some(other.to_string()),
                other => panic!("unknown argument: {other}"),
            }
        }
        if smoke {
            samples = 1;
        }
        Harness {
            filter,
            samples: samples.max(1),
            smoke,
            results: Vec::new(),
        }
    }

    /// Whether smoke mode is active (`--smoke` or `BENCH_SMOKE=1`; an
    /// explicit `--samples 1` is *not* smoke mode — cases gated on smoke
    /// still run in full).
    #[must_use]
    pub fn is_smoke(&self) -> bool {
        self.smoke
    }

    fn selected(&self, name: &str) -> bool {
        self.filter
            .as_ref()
            .is_none_or(|f| name.contains(f.as_str()))
    }

    fn run_case<R>(&mut self, name: &str, elements: Option<u64>, mut f: impl FnMut() -> R) {
        if !self.selected(name) {
            return;
        }
        // Warm-up sample (not recorded) only when sampling repeatedly.
        if self.samples > 1 {
            black_box(f());
        }
        let mut samples = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(f());
            samples.push(t0.elapsed());
        }
        let case = CaseResult {
            name: name.to_string(),
            samples,
            elements,
        };
        let mean = case.mean();
        match case.throughput() {
            Some(tp) => println!(
                "{name:<44} {:>10.3} ms  [{:.3} .. {:.3}]  {:>12.0} elem/s",
                mean.as_secs_f64() * 1e3,
                case.min().as_secs_f64() * 1e3,
                case.max().as_secs_f64() * 1e3,
                tp
            ),
            None => println!(
                "{name:<44} {:>10.3} ms  [{:.3} .. {:.3}]",
                mean.as_secs_f64() * 1e3,
                case.min().as_secs_f64() * 1e3,
                case.max().as_secs_f64() * 1e3,
            ),
        }
        self.results.push(case);
    }

    /// Times `f` over the configured number of samples.
    pub fn bench<R>(&mut self, name: &str, f: impl FnMut() -> R) {
        self.run_case(name, None, f);
    }

    /// Times `f`, reporting throughput for `elements` processed per call.
    pub fn bench_elems<R>(&mut self, name: &str, elements: u64, f: impl FnMut() -> R) {
        self.run_case(name, Some(elements), f);
    }

    /// All collected results.
    #[must_use]
    pub fn results(&self) -> &[CaseResult] {
        &self.results
    }

    /// Prints the closing summary line.
    pub fn finish(self) {
        println!(
            "-- {} case(s), {} sample(s) each --",
            self.results.len(),
            self.samples
        );
    }
}
