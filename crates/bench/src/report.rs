//! Machine-readable perf reports (`BENCH_PR*.json`) on the shared
//! report model.
//!
//! [`PerfReport`] collects measured sweep entries and converts them into
//! a [`speedup_stacks::report::Report`] — the same structured value
//! model the study registry produces — so the perf-trajectory JSON is
//! emitted by the shared `core` JSON emitter instead of private
//! plumbing (and can equally be rendered as text or CSV).

use speedup_stacks::report::{Block, Column, Report, Table, Unit, Value};

/// One measured entry of a perf report.
#[derive(Debug, Clone)]
pub struct Entry {
    /// Entry name (e.g. `fig1_sweep`).
    pub name: String,
    /// Configuration label (e.g. `wheel+parallel`).
    pub config: String,
    /// Wall time in seconds.
    pub wall_s: f64,
    /// Engine events processed.
    pub events: u64,
    /// Simulation points in the sweep.
    pub points: u64,
}

impl Entry {
    /// Events per wall-clock second.
    #[must_use]
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_s > 0.0 {
            self.events as f64 / self.wall_s
        } else {
            0.0
        }
    }
}

/// A whole perf report: free-form metadata plus measured entries.
#[derive(Debug, Clone, Default)]
pub struct PerfReport {
    /// Free-form metadata (`key: value`), echoed as report parameters.
    pub meta: Vec<(String, String)>,
    /// The measured entries.
    pub entries: Vec<Entry>,
}

impl PerfReport {
    /// Adds a metadata pair.
    pub fn meta(&mut self, key: &str, value: impl ToString) {
        self.meta.push((key.to_string(), value.to_string()));
    }

    /// Adds a measured entry.
    pub fn push(&mut self, entry: Entry) {
        self.entries.push(entry);
    }

    /// Converts the measurements into the shared structured
    /// [`Report`]: metadata as parameters, entries as one typed table.
    #[must_use]
    pub fn to_report(&self) -> Report {
        let mut report = Report::new("bench", "Simulator perf trajectory");
        for (k, v) in &self.meta {
            report.param(k.clone(), Value::str(v.clone()));
        }
        let mut table = Table::new(
            "entries",
            vec![
                Column::new("name"),
                Column::new("config"),
                Column::new("wall_s").unit(Unit::Seconds),
                Column::new("points").unit(Unit::Count),
                Column::new("events").unit(Unit::Count),
                Column::new("events_per_sec").unit(Unit::Count),
            ],
        );
        for e in &self.entries {
            table.row(vec![
                Value::str(&e.name),
                Value::str(&e.config),
                e.wall_s.into(),
                e.points.into(),
                e.events.into(),
                e.events_per_sec().round().into(),
            ]);
        }
        report.push(Block::Table(table));
        report
    }

    /// Serializes the report as JSON via the shared emitter.
    #[must_use]
    pub fn to_json(&self) -> String {
        self.to_report().to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use speedup_stacks::report::json;

    fn demo() -> PerfReport {
        let mut r = PerfReport::default();
        r.meta("note", "a \"quoted\"\nline");
        r.push(Entry {
            name: "sweep".into(),
            config: "baseline".into(),
            wall_s: 1.5,
            events: 3_000_000,
            points: 12,
        });
        r
    }

    #[test]
    fn json_parses_and_carries_the_entries() {
        let doc = json::parse(&demo().to_json()).expect("valid JSON");
        assert_eq!(doc.get("study").unwrap().as_str(), Some("bench"));
        assert_eq!(
            doc.get("params").unwrap().get("note").unwrap().as_str(),
            Some("a \"quoted\"\nline")
        );
        let blocks = doc.get("blocks").unwrap().as_array().unwrap();
        let rows = blocks[0].get("rows").unwrap().as_array().unwrap();
        let row = rows[0].as_array().unwrap();
        assert_eq!(row[0].as_str(), Some("sweep"));
        assert_eq!(row[2].as_f64(), Some(1.5));
        assert_eq!(row[5].as_f64(), Some(2_000_000.0));
    }

    #[test]
    fn shared_report_renders_all_formats() {
        let report = demo().to_report();
        assert!(report.to_csv().contains("table,entries"));
        assert!(report.to_text().contains("sweep"));
    }

    #[test]
    fn events_per_sec_zero_guard() {
        let e = Entry {
            name: "x".into(),
            config: "c".into(),
            wall_s: 0.0,
            events: 10,
            points: 1,
        };
        assert_eq!(e.events_per_sec(), 0.0);
    }
}
