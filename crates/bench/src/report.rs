//! Machine-readable perf reports (`BENCH_PR*.json`).
//!
//! No serde offline, so this is a tiny hand-rolled JSON writer for the
//! flat structure the perf-trajectory files need: a report header plus a
//! list of measured sweep entries.

use std::fmt::Write as _;

/// One measured entry of a perf report.
#[derive(Debug, Clone)]
pub struct Entry {
    /// Entry name (e.g. `fig1_sweep`).
    pub name: String,
    /// Configuration label (e.g. `wheel+parallel`).
    pub config: String,
    /// Wall time in seconds.
    pub wall_s: f64,
    /// Engine events processed.
    pub events: u64,
    /// Simulation points in the sweep.
    pub points: u64,
}

impl Entry {
    /// Events per wall-clock second.
    #[must_use]
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_s > 0.0 {
            self.events as f64 / self.wall_s
        } else {
            0.0
        }
    }
}

/// A whole report.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Free-form metadata (`key: value`) rendered into the header.
    pub meta: Vec<(String, String)>,
    /// The measured entries.
    pub entries: Vec<Entry>,
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

impl Report {
    /// Adds a metadata pair.
    pub fn meta(&mut self, key: &str, value: impl ToString) {
        self.meta.push((key.to_string(), value.to_string()));
    }

    /// Adds a measured entry.
    pub fn push(&mut self, entry: Entry) {
        self.entries.push(entry);
    }

    /// Serializes the report as pretty-printed JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        for (k, v) in &self.meta {
            let _ = writeln!(s, "  \"{}\": \"{}\",", esc(k), esc(v));
        }
        s.push_str("  \"entries\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            let comma = if i + 1 < self.entries.len() { "," } else { "" };
            let _ = writeln!(
                s,
                "    {{\"name\": \"{}\", \"config\": \"{}\", \"wall_s\": {:.6}, \"points\": {}, \"events\": {}, \"events_per_sec\": {:.0}}}{}",
                esc(&e.name),
                esc(&e.config),
                e.wall_s,
                e.points,
                e.events,
                e.events_per_sec(),
                comma
            );
        }
        s.push_str("  ]\n}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape_and_escaping() {
        let mut r = Report::default();
        r.meta("note", "a \"quoted\"\nline");
        r.push(Entry {
            name: "sweep".into(),
            config: "baseline".into(),
            wall_s: 1.5,
            events: 3_000_000,
            points: 12,
        });
        let json = r.to_json();
        assert!(json.contains("\\\"quoted\\\"\\n"));
        assert!(json.contains("\"events_per_sec\": 2000000"));
        assert!(json.starts_with('{') && json.ends_with("}\n"));
    }

    #[test]
    fn events_per_sec_zero_guard() {
        let e = Entry {
            name: "x".into(),
            config: "c".into(),
            wall_s: 0.0,
            events: 10,
            points: 1,
        };
        assert_eq!(e.events_per_sec(), 0.0);
    }
}
