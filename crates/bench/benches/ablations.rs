//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! - **spin detector**: Tian load-table (paper's choice) vs Li
//!   backward-branch vs a perfect oracle — how much detected spin and
//!   estimation accuracy each gives on the spin-dominated benchmark;
//! - **ATD set sampling**: full tagging vs the paper's 1-in-8 sampling vs
//!   aggressive 1-in-32 — accuracy of the extrapolated interference;
//! - **stall exposure**: out-of-order overlap window vs an in-order core
//!   (window 0, where coherency charging matters, §4.5).

use std::hint::black_box;

use bench_support::Harness;
use cmpsim::{simulate, MachineConfig, SpinDetectorKind};
use experiments::{run_profile, scaled_profile, RunOptions};
use speedup_stacks::AccountingConfig;
use workloads::{find, streams_for, Suite};

fn cholesky(scale: f64) -> workloads::WorkloadProfile {
    scaled_profile(
        &find("cholesky", Suite::Splash2).expect("catalog entry"),
        scale,
    )
}

fn main() {
    let mut h = Harness::from_args();

    let p = cholesky(0.25);
    for (label, det) in [
        ("tian", SpinDetectorKind::Tian { mark_threshold: 16 }),
        (
            "li",
            SpinDetectorKind::Li {
                confirm_iterations: 2,
            },
        ),
        ("oracle", SpinDetectorKind::Oracle),
    ] {
        let p = p.clone();
        h.bench(&format!("ablation_spin_detector/{label}"), move || {
            let mut cfg = MachineConfig::with_cores(16);
            cfg.spin_detector = det;
            let r = simulate(cfg, streams_for(&p, 16)).unwrap();
            let spin: f64 = r.counters.iter().map(|t| t.spin_cycles).sum();
            black_box((r.tp_cycles, spin))
        });
    }

    let p = scaled_profile(
        &find("facesim", Suite::ParsecMedium).expect("catalog entry"),
        0.5,
    );
    for period in [1usize, 8, 32] {
        let p = p.clone();
        h.bench(
            &format!("ablation_atd_sampling/period_{period}"),
            move || {
                let mut opts = RunOptions::symmetric(16);
                opts.mem.atd_sample_period = period;
                let out = run_profile(&p, &opts, None).unwrap();
                black_box((out.estimated, out.actual))
            },
        );
    }

    let p = scaled_profile(&find("srad", Suite::Rodinia).expect("catalog entry"), 0.25);
    for (label, window, charge_coherency) in [
        ("out_of_order_w30", 30u64, false),
        ("in_order_w0_coherency_charged", 0, true),
    ] {
        let p = p.clone();
        h.bench(&format!("ablation_core_model/{label}"), move || {
            let mut cfg = MachineConfig::with_cores(16);
            cfg.core.overlap_window = window;
            let r = simulate(cfg, streams_for(&p, 16)).unwrap();
            let acct = AccountingConfig {
                charge_coherency,
                ..AccountingConfig::default()
            };
            black_box(r.stack(&acct).unwrap())
        });
    }

    h.finish();
}
