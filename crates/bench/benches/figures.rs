//! One bench per paper table/figure: each case regenerates its figure's
//! data at reduced workload scale, so the harness both exercises the full
//! pipeline and tracks regeneration cost.
//!
//! (`repro --scale 1.0 <figN>` prints the full-scale numbers; these
//! benches use smaller scales to keep wall-clock sane. Figures whose
//! *content* depends on absolute LLC pressure — 4, 6, 8, 9 — still verify
//! their headline property on every iteration at the reduced scale where
//! it remains observable. Smoke mode skips the two 28-benchmark grids.)

use std::hint::black_box;

use bench_support::Harness;
use experiments::{fig1, fig23, fig45, fig6, fig7, fig89, hwcost};

fn main() {
    let mut h = Harness::from_args();
    let smoke = h.is_smoke();

    h.bench("fig1/three_benchmarks_1_to_16_threads", || {
        let fig = fig1::run(black_box(0.25));
        assert!(fig.curves[0].at(16).unwrap() > 8.0);
        black_box(fig)
    });

    h.bench("fig2/facesim_16t_stack", || {
        black_box(fig23::run_fig2(black_box(0.25)))
    });

    h.bench("fig3/cholesky_4t_breakup", || {
        black_box(fig23::run_fig3(black_box(0.25)))
    });

    if !smoke {
        h.bench("fig4/all_28_benchmarks_4_thread_counts", || {
            let fig = fig45::run(black_box(0.2));
            assert_eq!(fig.points.len(), 112);
            black_box(fig)
        });
    }

    h.bench("fig5/three_benchmarks_2_to_16_threads", || {
        black_box(fig45::run_fig5(black_box(0.25)))
    });

    if !smoke {
        h.bench("fig6/classify_28_benchmarks_16t", || {
            let fig = fig6::run(black_box(0.25));
            assert_eq!(fig.tree.entries().len(), 28);
            black_box(fig)
        });
    }

    h.bench("fig7/threads_vs_cores_sweep", || {
        black_box(fig7::run(black_box(0.25)))
    });

    h.bench("fig8/seven_benchmarks_neg_pos_net", || {
        let fig = fig89::run_fig8(black_box(0.5));
        assert_eq!(fig.bars.len(), 7);
        black_box(fig)
    });

    h.bench("fig9/cholesky_2_to_16_mb", || {
        let fig = fig89::run_fig9(black_box(0.5));
        // Negative interference never grows with LLC size.
        assert!(fig.bars[0].negative >= fig.bars[3].negative);
        black_box(fig)
    });

    h.bench("hwcost/table", || {
        let cost = hwcost::run();
        assert_eq!(cost.model.total_bytes_per_core(), 1169);
        black_box(cost)
    });

    h.finish();
}
