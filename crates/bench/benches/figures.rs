//! One Criterion bench per paper table/figure: each target regenerates
//! its figure's data at reduced workload scale, so the harness both
//! exercises the full pipeline and tracks regeneration cost.
//!
//! (`repro --scale 1.0 <figN>` prints the full-scale numbers; these
//! benches use smaller scales to keep wall-clock sane. Figures whose
//! *content* depends on absolute LLC pressure — 4, 6, 8, 9 — still verify
//! their headline property on every iteration at the reduced scale where
//! it remains observable.)

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use experiments::{fig1, fig23, fig45, fig6, fig7, fig89, hwcost};

fn bench_fig1_speedup_curves(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1_speedup_curves");
    g.sample_size(10);
    g.bench_function("three_benchmarks_1_to_16_threads", |b| {
        b.iter(|| {
            let fig = fig1::run(black_box(0.25));
            assert!(fig.curves[0].at(16).unwrap() > 8.0);
            black_box(fig)
        });
    });
    g.finish();
}

fn bench_fig2_stack_render(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2_stack");
    g.sample_size(10);
    g.bench_function("facesim_16t_stack", |b| {
        b.iter(|| black_box(fig23::run_fig2(black_box(0.25))));
    });
    g.finish();
}

fn bench_fig3_per_thread_breakup(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3_breakup");
    g.sample_size(10);
    g.bench_function("cholesky_4t_breakup", |b| {
        b.iter(|| black_box(fig23::run_fig3(black_box(0.25))));
    });
    g.finish();
}

fn bench_fig4_validation(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4_validation");
    g.sample_size(10);
    g.bench_function("all_28_benchmarks_4_thread_counts", |b| {
        b.iter(|| {
            let fig = fig45::run(black_box(0.2));
            assert_eq!(fig.points.len(), 112);
            black_box(fig)
        });
    });
    g.finish();
}

fn bench_fig5_stacks(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_stacks");
    g.sample_size(10);
    g.bench_function("three_benchmarks_2_to_16_threads", |b| {
        b.iter(|| black_box(fig45::run_fig5(black_box(0.25))));
    });
    g.finish();
}

fn bench_fig6_classification(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_classification");
    g.sample_size(10);
    g.bench_function("classify_28_benchmarks_16t", |b| {
        b.iter(|| {
            let fig = fig6::run(black_box(0.25));
            assert_eq!(fig.tree.entries().len(), 28);
            black_box(fig)
        });
    });
    g.finish();
}

fn bench_fig7_ferret_cores(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_ferret_cores");
    g.sample_size(10);
    g.bench_function("threads_vs_cores_sweep", |b| {
        b.iter(|| black_box(fig7::run(black_box(0.25))));
    });
    g.finish();
}

fn bench_fig8_llc_interference(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_llc_interference");
    g.sample_size(10);
    g.bench_function("seven_benchmarks_neg_pos_net", |b| {
        b.iter(|| {
            let fig = fig89::run_fig8(black_box(0.5));
            assert_eq!(fig.bars.len(), 7);
            black_box(fig)
        });
    });
    g.finish();
}

fn bench_fig9_llc_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9_llc_sweep");
    g.sample_size(10);
    g.bench_function("cholesky_2_to_16_mb", |b| {
        b.iter(|| {
            let fig = fig89::run_fig9(black_box(0.5));
            // Negative interference never grows with LLC size.
            assert!(fig.bars[0].negative >= fig.bars[3].negative);
            black_box(fig)
        });
    });
    g.finish();
}

fn bench_hwcost(c: &mut Criterion) {
    c.bench_function("hwcost_table", |b| {
        b.iter(|| {
            let cost = hwcost::run();
            assert_eq!(cost.model.total_bytes_per_core(), 1169);
            black_box(cost)
        });
    });
}

criterion_group!(
    figures,
    bench_fig1_speedup_curves,
    bench_fig2_stack_render,
    bench_fig3_per_thread_breakup,
    bench_fig4_validation,
    bench_fig5_stacks,
    bench_fig6_classification,
    bench_fig7_ferret_cores,
    bench_fig8_llc_interference,
    bench_fig9_llc_sweep,
    bench_hwcost,
);
criterion_main!(figures);
