//! Microbenchmarks of the substrates: raw throughput of the cache model,
//! ATD, DRAM model, full hierarchy, and the event engine. These guard the
//! simulator's own performance (the accounting architecture is supposed
//! to be cheap).

use std::hint::black_box;

use bench_support::Harness;
use cmpsim::{simulate, MachineConfig, Op, OpStream, VecStream};
use memsim::{Atd, Cache, CacheConfig, Dram, DramConfig, MemConfig, MemoryHierarchy};

fn main() {
    let mut h = Harness::from_args();
    let n = 10_000u64;

    h.bench_elems("micro_cache/set_assoc_lru_access", n, {
        let mut cache: Cache<()> = Cache::new(CacheConfig::from_kib(64, 64, 8));
        let mut i = 0u64;
        move || {
            for _ in 0..n {
                i = i.wrapping_mul(6364136223846793005).wrapping_add(1);
                black_box(cache.access(i % 4096, i.is_multiple_of(3), ()));
            }
        }
    });

    h.bench_elems("micro_atd/sampled_probe", n, {
        let mut atd = Atd::new(CacheConfig::from_kib(2048, 64, 16), 8);
        let mut i = 0u64;
        move || {
            for _ in 0..n {
                i = i.wrapping_mul(6364136223846793005).wrapping_add(1);
                black_box(atd.access(i % 100_000, false));
            }
        }
    });

    h.bench_elems("micro_dram/banked_open_page", n, {
        let mut dram = Dram::new(DramConfig::default(), 16);
        let mut t = 0u64;
        move || {
            for i in 0..n {
                t += 50;
                black_box(dram.access((i % 16) as usize, i * 7, t));
            }
        }
    });

    h.bench_elems("micro_hierarchy/full_access_path", n, {
        let mut mem = MemoryHierarchy::new(&MemConfig::default(), 16);
        let mut t = 0u64;
        let mut i = 0u64;
        move || {
            for _ in 0..n {
                i = i.wrapping_mul(6364136223846793005).wrapping_add(1);
                t += 10;
                black_box(mem.access((i % 16) as usize, i % 200_000, i.is_multiple_of(5), t));
            }
        }
    });

    let ops_per_thread = 4_000usize;
    h.bench_elems(
        "micro_engine/event_loop_8_threads",
        (ops_per_thread * 8) as u64,
        move || {
            let streams: Vec<Box<dyn OpStream>> = (0..8)
                .map(|t| {
                    let ops: Vec<Op> = (0..ops_per_thread)
                        .map(|i| match i % 4 {
                            0 => Op::Compute(20),
                            1 => Op::Load((t * 100_000 + i) as u64),
                            2 => Op::Store((i * 31) as u64 % 1000),
                            _ => Op::Compute(5),
                        })
                        .collect();
                    Box::new(VecStream::new(ops)) as Box<dyn OpStream>
                })
                .collect();
            black_box(simulate(MachineConfig::with_cores(8), streams).unwrap())
        },
    );

    h.finish();
}
