//! Microbenchmarks of the substrates: raw throughput of the cache model,
//! ATD, DRAM model, full hierarchy, and the event engine. These guard the
//! simulator's own performance (the accounting architecture is supposed
//! to be cheap).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use cmpsim::{simulate, MachineConfig, Op, OpStream, VecStream};
use memsim::{Atd, Cache, CacheConfig, Dram, DramConfig, MemConfig, MemoryHierarchy};

fn bench_cache_access(c: &mut Criterion) {
    let mut g = c.benchmark_group("micro_cache");
    let n = 10_000u64;
    g.throughput(Throughput::Elements(n));
    g.bench_function("set_assoc_lru_access", |b| {
        let mut cache: Cache<()> = Cache::new(CacheConfig::from_kib(64, 64, 8));
        let mut i = 0u64;
        b.iter(|| {
            for _ in 0..n {
                i = i.wrapping_mul(6364136223846793005).wrapping_add(1);
                black_box(cache.access(i % 4096, i.is_multiple_of(3), ()));
            }
        });
    });
    g.finish();
}

fn bench_atd_probe(c: &mut Criterion) {
    let mut g = c.benchmark_group("micro_atd");
    let n = 10_000u64;
    g.throughput(Throughput::Elements(n));
    g.bench_function("sampled_probe", |b| {
        let mut atd = Atd::new(CacheConfig::from_kib(2048, 64, 16), 8);
        let mut i = 0u64;
        b.iter(|| {
            for _ in 0..n {
                i = i.wrapping_mul(6364136223846793005).wrapping_add(1);
                black_box(atd.access(i % 100_000, false));
            }
        });
    });
    g.finish();
}

fn bench_dram_access(c: &mut Criterion) {
    let mut g = c.benchmark_group("micro_dram");
    let n = 10_000u64;
    g.throughput(Throughput::Elements(n));
    g.bench_function("banked_open_page", |b| {
        let mut dram = Dram::new(DramConfig::default(), 16);
        let mut t = 0u64;
        b.iter(|| {
            for i in 0..n {
                t += 50;
                black_box(dram.access((i % 16) as usize, i * 7, t));
            }
        });
    });
    g.finish();
}

fn bench_hierarchy(c: &mut Criterion) {
    let mut g = c.benchmark_group("micro_hierarchy");
    let n = 10_000u64;
    g.throughput(Throughput::Elements(n));
    g.bench_function("full_access_path", |b| {
        let mut mem = MemoryHierarchy::new(&MemConfig::default(), 16);
        let mut t = 0u64;
        let mut i = 0u64;
        b.iter(|| {
            for _ in 0..n {
                i = i.wrapping_mul(6364136223846793005).wrapping_add(1);
                t += 10;
                black_box(mem.access((i % 16) as usize, i % 200_000, i.is_multiple_of(5), t));
            }
        });
    });
    g.finish();
}

fn bench_engine_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("micro_engine");
    let ops_per_thread = 4_000usize;
    g.throughput(Throughput::Elements((ops_per_thread * 8) as u64));
    g.bench_function("event_loop_8_threads", |b| {
        b.iter(|| {
            let streams: Vec<Box<dyn OpStream>> = (0..8)
                .map(|t| {
                    let ops: Vec<Op> = (0..ops_per_thread)
                        .map(|i| match i % 4 {
                            0 => Op::Compute(20),
                            1 => Op::Load((t * 100_000 + i) as u64),
                            2 => Op::Store((i * 31) as u64 % 1000),
                            _ => Op::Compute(5),
                        })
                        .collect();
                    Box::new(VecStream::new(ops)) as Box<dyn OpStream>
                })
                .collect();
            black_box(simulate(MachineConfig::with_cores(8), streams).unwrap())
        });
    });
    g.finish();
}

criterion_group!(
    micro,
    bench_cache_access,
    bench_atd_probe,
    bench_dram_access,
    bench_hierarchy,
    bench_engine_ops
);
criterion_main!(micro);
