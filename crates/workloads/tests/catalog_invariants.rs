//! Catalog-wide invariants: every benchmark model must be well-formed
//! and structurally consistent with its paper identity, without running
//! any simulation.

use workloads::{display_name, paper_suite, streams_for, Suite};

/// The 2 MB LLC holds this many 64-byte lines.
const LLC_LINES: u64 = 32_768;

#[test]
fn every_profile_generates_nonempty_terminating_streams() {
    for p in paper_suite() {
        for n in [1usize, 4, 16] {
            let mut streams = streams_for(&p, n);
            let mut ops = 0usize;
            let mut stream = streams.remove(0);
            while let Some(_op) = cmpsim::OpStream::next_op(&mut *stream) {
                ops += 1;
                assert!(
                    ops < 50_000_000,
                    "{} at {n} threads: stream does not terminate",
                    display_name(&p)
                );
            }
            assert!(ops > 0, "{} at {n} threads: empty stream", display_name(&p));
        }
    }
}

#[test]
fn work_is_conserved_across_thread_counts() {
    for p in paper_suite() {
        let single: u64 = (0..p.phases).map(|ph| p.items_for(0, ph, 1)).sum();
        for n in [2usize, 8, 16] {
            let total: u64 = (0..p.phases)
                .map(|ph| (0..n).map(|t| p.items_for(t, ph, n)).sum::<u64>())
                .sum();
            let slack = u64::from(p.phases) * n as u64;
            assert!(
                total + slack >= single && total <= single + slack,
                "{}: {n}-thread total {total} vs single {single}",
                display_name(&p)
            );
        }
    }
}

#[test]
fn paper_speedups_define_the_published_classes() {
    let suite = paper_suite();
    let good: Vec<_> = suite.iter().filter(|p| p.paper_speedup16 >= 10.0).collect();
    let poor: Vec<_> = suite.iter().filter(|p| p.paper_speedup16 < 5.0).collect();
    assert_eq!(good.len(), 5, "paper has 5 good scalers");
    // Poor scalers per Figure 6: ferret_s/m?, water-spatial, dedup x2,
    // freqmine x2, swaptions_s, bodytrack, needle, ferret_s.
    assert!(
        poor.len() >= 9,
        "paper has a large poor class, got {}",
        poor.len()
    );
    assert!(poor
        .iter()
        .any(|p| p.name == "ferret" && p.suite == Suite::ParsecSmall));
}

#[test]
fn fig8_benchmarks_pressure_the_llc() {
    // The Figure 8 set needs footprints beyond the LLC to exhibit
    // negative interference.
    for (name, suite) in [
        ("cholesky", Suite::Splash2),
        ("lu.cont", Suite::Splash2),
        ("lu.ncont", Suite::Splash2),
        ("canneal", Suite::ParsecSmall),
        ("canneal", Suite::ParsecMedium),
        ("bfs", Suite::Rodinia),
        ("needle", Suite::Rodinia),
    ] {
        let p = workloads::find(name, suite).expect("catalog entry");
        assert!(
            p.private_lines + p.shared_lines > LLC_LINES,
            "{}: footprint {} lines fits the LLC",
            display_name(&p),
            p.private_lines + p.shared_lines
        );
        assert!(
            p.shared_lines > 0 && p.shared_read_frac > 0.05,
            "{name} needs sharing for positive interference"
        );
    }
}

#[test]
fn spin_dominated_benchmarks_have_short_sections() {
    // Spinning requires waits below the default 1500-cycle spin
    // threshold at 16-way contention.
    let cholesky = workloads::find("cholesky", Suite::Splash2).unwrap();
    let cs = cholesky.cs.unwrap();
    assert!(cs.len_cycles < 150);
    // Yield-dominated pipelines have sections well above it.
    for name in ["dedup", "freqmine", "bodytrack", "ferret"] {
        let suite = paper_suite();
        let p = suite
            .iter()
            .find(|p| p.name == name && p.cs.is_some())
            .unwrap_or_else(|| panic!("{name} has a CS model"));
        assert!(
            p.cs.unwrap().len_cycles > 1_000,
            "{name} should yield, not spin"
        );
    }
}

#[test]
fn input_sizes_scale_work_not_identity() {
    for name in [
        "blackscholes",
        "swaptions",
        "canneal",
        "dedup",
        "freqmine",
        "ferret",
        "facesim",
    ] {
        let small = workloads::find(name, Suite::ParsecSmall);
        let medium = workloads::find(name, Suite::ParsecMedium);
        if let (Some(s), Some(m)) = (small, medium) {
            assert!(
                m.total_items > s.total_items || m.paper_speedup16 != s.paper_speedup16,
                "{name}: medium input must differ from small"
            );
        }
    }
}

#[test]
fn seeds_are_distinct_enough() {
    let suite = paper_suite();
    let mut seeds: Vec<u64> = suite.iter().map(|p| p.seed).collect();
    seeds.sort_unstable();
    seeds.dedup();
    // At least most benchmarks get distinct address streams.
    assert!(
        seeds.len() >= suite.len() - 4,
        "too many duplicate seeds: {}",
        seeds.len()
    );
}
