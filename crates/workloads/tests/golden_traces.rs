//! Golden trace fixtures: two small captured profiles, committed under
//! `tests/goldens/`, pinned byte for byte. A fresh capture of the same
//! profile must reproduce the committed file exactly (the generators and
//! the codec are both deterministic), and the committed file must pass
//! full verification with the pinned statistics.
//!
//! Regenerate after an *intentional* format change with:
//!
//! ```text
//! UPDATE_GOLDENS=1 cargo test -p workloads --test golden_traces
//! ```
//!
//! and bump `FORMAT_VERSION` if the change breaks old readers. The
//! `experiments` crate's `trace_replay` test replays these same fixtures
//! through the sweep and pins the replayed report against a generated
//! run.

use std::path::PathBuf;

use workloads::trace::{verify, TraceWriter, FORMAT_VERSION};
use workloads::{display_name, find, Suite, WorkloadProfile};

/// The identity every golden is captured under (the replaying test must
/// open them with exactly this pair).
const GOLDEN_STUDY: &str = "golden";
const GOLDEN_FINGERPRINT: &str = "golden-v1";

/// The workload scale of the goldens — small enough to keep the
/// committed fixtures a few hundred KiB.
const GOLDEN_SCALE: f64 = 0.05;

/// Pinned sizes of the committed fixtures. A change here means the trace
/// format or the generators changed — both are observable compatibility
/// events.
const GOLDEN_SIZES: [(&str, u64); 2] = [
    ("blackscholes_small.sstrace", 42_660),
    ("cholesky.sstrace", 77_882),
];

fn goldens_dir() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/goldens"))
}

/// The same scaling rule as `experiments::scaled_profile`, restated here
/// so the goldens don't depend on the experiments crate: at least 16
/// items per phase survive any downscale.
fn golden_profile(name: &str, suite: Suite) -> WorkloadProfile {
    let mut p = find(name, suite).expect("catalog entry");
    let min_items = u64::from(p.phases.max(1)) * 16;
    p.total_items = ((p.total_items as f64 * GOLDEN_SCALE) as u64).max(min_items);
    p
}

fn fixtures() -> [(&'static str, WorkloadProfile); 2] {
    [
        (
            "blackscholes_small.sstrace",
            golden_profile("blackscholes", Suite::ParsecSmall),
        ),
        (
            "cholesky.sstrace",
            golden_profile("cholesky", Suite::Splash2),
        ),
    ]
}

/// Captures one golden: the grid shape the sweep replays — the 1-thread
/// reference run plus one 2-thread point.
fn capture(profile: &WorkloadProfile, path: &PathBuf) {
    let mut w =
        TraceWriter::create(path, GOLDEN_STUDY, GOLDEN_FINGERPRINT).expect("create capture");
    let name = display_name(profile);
    for n in [1usize, 2] {
        w.add_run(&name, workloads::streams_for(profile, n))
            .expect("capture run");
    }
    w.finish().expect("finish capture");
}

#[test]
fn golden_traces_are_bit_identical_to_a_fresh_capture() {
    let update = std::env::var_os("UPDATE_GOLDENS").is_some();
    for (file, profile) in fixtures() {
        let golden = goldens_dir().join(file);
        if update {
            capture(&profile, &golden);
            eprintln!(
                "updated {} ({} bytes)",
                golden.display(),
                std::fs::metadata(&golden).unwrap().len()
            );
            continue;
        }
        let committed = std::fs::read(&golden).unwrap_or_else(|e| {
            panic!(
                "missing golden {} ({e}); regenerate with UPDATE_GOLDENS=1",
                golden.display()
            )
        });
        let fresh_path = std::env::temp_dir().join(format!("golden-{}-{file}", std::process::id()));
        capture(&profile, &fresh_path);
        let fresh = std::fs::read(&fresh_path).expect("fresh capture");
        let _ = std::fs::remove_file(&fresh_path);
        assert_eq!(
            committed, fresh,
            "{file}: committed golden differs from a fresh capture — either the \
             generators or the trace format changed (bump FORMAT_VERSION and \
             regenerate with UPDATE_GOLDENS=1 if intentional)"
        );
    }
}

#[test]
fn golden_traces_verify_with_pinned_stats() {
    if std::env::var_os("UPDATE_GOLDENS").is_some() {
        return; // sizes are asserted on the next clean run
    }
    for (file, pinned_bytes) in GOLDEN_SIZES {
        let golden = goldens_dir().join(file);
        let stats = verify(&golden)
            .unwrap_or_else(|e| panic!("golden {} fails verification: {e}", golden.display()));
        assert_eq!(stats.version, FORMAT_VERSION, "{file}");
        assert_eq!(stats.study, GOLDEN_STUDY, "{file}");
        assert_eq!(stats.fingerprint, GOLDEN_FINGERPRINT, "{file}");
        assert_eq!(stats.runs, 2, "{file}: 1-thread reference + 2-thread point");
        assert!(stats.ops > 0, "{file}");
        assert_eq!(
            stats.bytes, pinned_bytes,
            "{file}: byte size changed — format or generator change"
        );
    }
}
