//! Round-trip property tests for the binary trace codec: deterministic
//! randomized op streams (seeded in-repo [`workloads::rng::SmallRng`])
//! must survive encode → write → read → decode exactly, and the varint
//! primitives must round-trip their boundary values.

use std::path::PathBuf;

use cmpsim::{Op, OpStream, VecStream};
use workloads::rng::SmallRng;
use workloads::trace::{
    decode_svarint, decode_uvarint, encode_svarint, encode_uvarint, verify, TraceReader,
    TraceWriter,
};

fn tmp(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("trace-rt-{}-{tag}.sstrace", std::process::id()))
}

fn drain(stream: &mut dyn OpStream) -> Vec<Op> {
    let mut out = Vec::new();
    while let Some(op) = stream.next_op() {
        out.push(op);
    }
    out
}

/// One random op, drawn across every tag and the full address space —
/// including boundary addresses (0, max) and backwards jumps, which
/// stress the wrapping delta encoder.
fn random_op(rng: &mut SmallRng) -> Op {
    match rng.gen_range(0u32..10) {
        0 => Op::Compute(rng.gen_range(1u32..10_000)),
        1 => Op::Load(rng.next_u64()),
        2 => Op::Store(rng.next_u64()),
        3 => Op::Load(
            *[0u64, 1, u64::MAX, u64::MAX - 1]
                .get(rng.gen_range(0usize..4))
                .unwrap(),
        ),
        4 => Op::Store(rng.gen_range(0u64..64)),
        5 => Op::LockAcquire(rng.gen_range(0u32..8)),
        6 => Op::LockRelease(rng.gen_range(0u32..8)),
        7 => Op::Barrier(rng.gen_range(0u32..4)),
        8 => Op::TxBegin,
        _ => Op::TxEnd,
    }
}

#[test]
fn randomized_streams_round_trip_bit_exactly() {
    let path = tmp("prop");
    for seed in 0..20u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let n_threads = rng.gen_range(1usize..5);
        let n_runs = rng.gen_range(1usize..4);
        let mut expected: Vec<(String, Vec<Vec<Op>>)> = Vec::new();
        let mut w = TraceWriter::create(&path, "prop", &format!("seed-{seed}")).unwrap();
        for run_idx in 0..n_runs {
            let name = format!("run{run_idx}");
            let threads: Vec<Vec<Op>> = (0..n_threads)
                .map(|_| {
                    let len = rng.gen_range(0usize..3000);
                    (0..len).map(|_| random_op(&mut rng)).collect()
                })
                .collect();
            w.add_run(
                &name,
                threads
                    .iter()
                    .map(|ops| Box::new(VecStream::new(ops.clone())) as Box<dyn OpStream>)
                    .collect(),
            )
            .unwrap();
            expected.push((name, threads));
        }
        let stats = w.finish().unwrap();
        assert_eq!(stats.runs, n_runs, "seed {seed}");
        let total: u64 = expected
            .iter()
            .flat_map(|(_, t)| t.iter())
            .map(|ops| ops.len() as u64)
            .sum();
        assert_eq!(stats.ops, total, "seed {seed}");

        let r = TraceReader::open(&path, Some(("prop", &format!("seed-{seed}")))).unwrap();
        for (name, threads) in &expected {
            let mut run = r.run_streams(name, n_threads).unwrap();
            for (t, ops) in threads.iter().enumerate() {
                assert_eq!(
                    &drain(run.streams[t].as_mut()),
                    ops,
                    "seed {seed} {name} thread {t}"
                );
            }
            assert!(run.fault.take().is_none(), "seed {seed} {name}");
        }
        // Full verification agrees with the writer's statistics.
        assert_eq!(verify(&path).unwrap(), stats, "seed {seed}");
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn uvarint_round_trips_boundaries_and_random_values() {
    let mut cases = vec![
        0u64,
        1,
        127,
        128,
        16_383,
        16_384,
        u64::from(u32::MAX),
        u64::MAX - 1,
        u64::MAX,
    ];
    let mut rng = SmallRng::seed_from_u64(7);
    cases.extend((0..500).map(|_| rng.next_u64()));
    // Shifted values exercise every encoded length (1–10 bytes).
    cases.extend((0..64).map(|s| 1u64 << s));
    for v in cases {
        let mut buf = Vec::new();
        encode_uvarint(v, &mut buf);
        assert!(buf.len() <= 10);
        let mut pos = 0;
        assert_eq!(decode_uvarint(&buf, &mut pos).unwrap(), v);
        assert_eq!(pos, buf.len(), "trailing bytes for {v}");
    }
}

#[test]
fn svarint_round_trips_boundaries_and_random_deltas() {
    let mut cases = vec![0i64, 1, -1, 63, 64, -64, -65, i64::MAX, i64::MIN];
    let mut rng = SmallRng::seed_from_u64(11);
    // Random deltas, including the backwards (negative) jumps produced
    // when a thread returns to a lower line address.
    #[allow(clippy::cast_possible_wrap)]
    cases.extend((0..500).map(|_| rng.next_u64() as i64));
    for v in cases {
        let mut buf = Vec::new();
        encode_svarint(v, &mut buf);
        let mut pos = 0;
        assert_eq!(decode_svarint(&buf, &mut pos).unwrap(), v);
        assert_eq!(pos, buf.len(), "trailing bytes for {v}");
    }
}

#[test]
fn generated_profile_streams_round_trip() {
    // Not hand-built vectors but the real generators: capture a catalog
    // profile's streams, replay, and compare against a fresh generation
    // (the generators are deterministic).
    let profile = workloads::find("blackscholes", workloads::Suite::ParsecSmall).unwrap();
    let n = 2usize;
    let path = tmp("gen");
    let mut w = TraceWriter::create(&path, "prop", "gen").unwrap();
    w.add_run("bs", workloads::streams_for(&profile, n))
        .unwrap();
    w.finish().unwrap();
    let r = TraceReader::open(&path, None).unwrap();
    let mut run = r.run_streams("bs", n).unwrap();
    let fresh = workloads::streams_for(&profile, n);
    for (t, mut f) in fresh.into_iter().enumerate() {
        assert_eq!(
            drain(run.streams[t].as_mut()),
            drain(f.as_mut()),
            "thread {t}"
        );
    }
    assert!(run.fault.take().is_none());
    let _ = std::fs::remove_file(&path);
}
