//! Workload profiles: the parameter space of the synthetic benchmark
//! models.
//!
//! Each paper benchmark is modelled as a [`WorkloadProfile`] built from
//! parallel-pattern primitives:
//!
//! - **barrier-phased** execution with a *rotating heavy thread*
//!   (`phase_skew`), which shapes barrier waiting (spinning/yielding) and
//!   the achievable speedup `S ≈ 1 + (n−1)/(1+skew)`;
//! - **critical sections** (`cs`), which serialize a fraction `f` of the
//!   work and cap speedup at `≈ 1/f`, with short sections producing
//!   spinning and long sections producing yielding;
//! - **memory behaviour** (working sets, load/store mix, sharing
//!   fractions), which produces LLC and memory-subsystem interference.

/// Benchmark suite labels matching the paper's Figure 6 column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// SPLASH-2.
    Splash2,
    /// PARSEC with the `simsmall` input.
    ParsecSmall,
    /// PARSEC with the `simmedium` input.
    ParsecMedium,
    /// Rodinia.
    Rodinia,
}

impl Suite {
    /// The label used in the paper's tree figure.
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            Suite::Splash2 => "splash2",
            Suite::ParsecSmall => "parsec_small",
            Suite::ParsecMedium => "parsec_medium",
            Suite::Rodinia => "rodinia",
        }
    }
}

impl std::fmt::Display for Suite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// How a thread walks its private data partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessPattern {
    /// Uniform random accesses within the partition (pointer-chasing,
    /// hash-table style reuse).
    Random,
    /// Sequential streaming through the partition with wrap-around
    /// (radix/sort/stencil style; row-buffer friendly, no temporal reuse
    /// beyond the L1).
    Streaming,
}

/// Critical-section behaviour of a workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CsProfile {
    /// Enter a critical section every `every_items` work items.
    pub every_items: u32,
    /// Compute cycles inside the critical section. Short sections (below
    /// the machine's spin threshold × contention) manifest as spinning,
    /// long ones as yielding.
    pub len_cycles: u32,
    /// Number of independent locks the sections are striped over
    /// (1 = fully contended global lock).
    pub n_locks: u32,
}

/// A complete synthetic workload model.
///
/// # Examples
///
/// ```
/// use workloads::{Suite, WorkloadProfile};
/// let p = WorkloadProfile::compute_bound("demo", Suite::Splash2, 4_000);
/// assert_eq!(p.name, "demo");
/// assert!(p.cs.is_none());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadProfile {
    /// Benchmark name (with input-size suffix where applicable).
    pub name: &'static str,
    /// Originating suite.
    pub suite: Suite,
    /// Total work items across all threads (strong scaling divides these
    /// over the threads).
    pub total_items: u64,
    /// Number of barrier-delimited phases (≥ 1; the final barrier is the
    /// convergence point of the parallel section).
    pub phases: u32,
    /// Extra work multiplier of the per-phase heavy thread (the heavy
    /// role rotates round-robin across phases). 0.0 = balanced.
    pub phase_skew: f64,
    /// Compute cycles per item.
    pub item_compute: u32,
    /// Loads per item.
    pub item_loads: u32,
    /// Stores per item.
    pub item_stores: u32,
    /// **Total** private data footprint, in cache lines. Threads work on
    /// disjoint `1/n` slices (strong scaling); the single-threaded
    /// reference walks the whole footprint, exactly like a real
    /// partitioned workload.
    pub private_lines: u64,
    /// How the private partition is accessed.
    pub access_pattern: AccessPattern,
    /// Shared working set, in cache lines.
    pub shared_lines: u64,
    /// Fraction of loads targeting the shared working set.
    pub shared_read_frac: f64,
    /// Fraction of stores targeting the shared working set.
    pub shared_write_frac: f64,
    /// Critical-section behaviour, if any.
    pub cs: Option<CsProfile>,
    /// Extra instructions per item when running multi-threaded, as a
    /// fraction of `item_compute` (parallelization overhead, §3.5 — the
    /// accounting deliberately cannot see this).
    pub par_overhead: f64,
    /// Weak scaling: hold *per-thread* work constant instead of dividing
    /// `total_items` over the threads, so total work grows linearly with
    /// the thread count. Under weak scaling, `total_items / phases` is
    /// the per-thread per-phase item count (the same work a
    /// single-threaded run does), and the rotating heavy thread still
    /// carries `1 + phase_skew` times that share. This is the scaling
    /// regime of the >16-thread many-core studies, where a strong-scaled
    /// catalog input would starve 128 threads of work.
    pub weak_scaling: bool,
    /// RNG seed for address generation.
    pub seed: u64,
    /// The paper's reported 16-thread speedup (for EXPERIMENTS.md
    /// comparisons; not used by the generator).
    pub paper_speedup16: f64,
}

impl WorkloadProfile {
    /// A balanced, compute-heavy profile that should scale almost
    /// linearly (the blackscholes archetype).
    #[must_use]
    pub fn compute_bound(name: &'static str, suite: Suite, total_items: u64) -> Self {
        WorkloadProfile {
            name,
            suite,
            total_items,
            phases: 4,
            phase_skew: 0.0,
            item_compute: 400,
            item_loads: 2,
            item_stores: 1,
            private_lines: 8_192,
            access_pattern: AccessPattern::Random,
            shared_lines: 256,
            shared_read_frac: 0.05,
            shared_write_frac: 0.0,
            cs: None,
            par_overhead: 0.01,
            weak_scaling: false,
            seed: 0x5eed,
            paper_speedup16: 16.0,
        }
    }

    /// Items for `thread` in `phase` when running with `n_threads`.
    ///
    /// The heavy role rotates: thread `phase % n` carries `1 + phase_skew`
    /// times the balanced share. Under strong scaling (the default) the
    /// phase's `total_items / phases` items are divided over the threads;
    /// under [`weak_scaling`](Self::weak_scaling) every thread gets the
    /// full single-thread share (the heavy thread proportionally more),
    /// so total work grows with `n_threads`. Shares are exact in
    /// expectation; rounding keeps totals within one item per thread.
    #[must_use]
    pub fn items_for(&self, thread: usize, phase: u32, n_threads: usize) -> u64 {
        let per_phase = self.total_items / u64::from(self.phases.max(1));
        if n_threads <= 1 {
            return per_phase;
        }
        let heavy = phase as usize % n_threads;
        let k = 1.0 + self.phase_skew;
        let w = if thread == heavy { k } else { 1.0 };
        if self.weak_scaling {
            // Per-thread work held constant: every thread does the
            // single-thread share, the heavy thread `k` times it.
            return ((per_phase as f64) * w).round() as u64;
        }
        let sum_w = (n_threads - 1) as f64 + k;
        ((per_phase as f64) * w / sum_w).round() as u64
    }

    /// The weak-scaling variant of this profile for the many-core
    /// studies: per-thread work is held constant at the share a thread
    /// gets in the paper's 16-thread strong-scaling evaluation, so a
    /// 128-thread weak run does 8× the original total work rather than
    /// starving each thread.
    #[must_use]
    pub fn weak_variant(&self) -> Self {
        let mut p = self.clone();
        p.weak_scaling = true;
        p.total_items = (self.total_items / 16).max(u64::from(self.phases.max(1)));
        p
    }

    /// Effective compute cycles per item for an `n_threads` run,
    /// including parallelization overhead.
    #[must_use]
    pub fn effective_compute(&self, n_threads: usize) -> u32 {
        if n_threads > 1 {
            (f64::from(self.item_compute) * (1.0 + self.par_overhead)).round() as u32
        } else {
            self.item_compute
        }
    }

    /// Analytic speedup bound from the rotating heavy thread alone:
    /// `1 + (n−1)/(1+skew)` — useful for choosing `phase_skew` to target a
    /// paper speedup.
    #[must_use]
    pub fn skew_speedup_bound(&self, n_threads: usize) -> f64 {
        1.0 + (n_threads as f64 - 1.0) / (1.0 + self.phase_skew)
    }

    /// Checks the profile before it is handed to the stream generator,
    /// so a malformed catalog entry or scaled-down profile becomes a
    /// typed `SimError::Config` in the sweep layer rather than a panic
    /// (or a silently degenerate simulation) deep inside a worker.
    ///
    /// ```
    /// use workloads::{Suite, WorkloadProfile};
    /// let mut p = WorkloadProfile::compute_bound("demo", Suite::Splash2, 4_000);
    /// assert!(p.validate().is_ok());
    /// p.shared_read_frac = 1.5;
    /// assert!(p.validate().is_err());
    /// ```
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint: zero items/phases/footprint,
    /// a non-finite or negative skew or overhead, or a sharing fraction
    /// outside `[0, 1]`.
    pub fn validate(&self) -> Result<(), speedup_stacks::error::ConfigError> {
        use speedup_stacks::error::ConfigError;
        if self.total_items == 0 {
            return Err(ConfigError::zero("total_items"));
        }
        if self.phases == 0 {
            return Err(ConfigError::zero("phases"));
        }
        if self.private_lines == 0 {
            return Err(ConfigError::zero("private_lines"));
        }
        if !(self.phase_skew.is_finite() && self.phase_skew >= 0.0) {
            return Err(ConfigError::range(
                "phase_skew",
                "must be finite and non-negative",
            ));
        }
        if !(self.par_overhead.is_finite() && self.par_overhead >= 0.0) {
            return Err(ConfigError::range(
                "par_overhead",
                "must be finite and non-negative",
            ));
        }
        if !(0.0..=1.0).contains(&self.shared_read_frac) {
            return Err(ConfigError::range("shared_read_frac", "must be in [0, 1]"));
        }
        if !(0.0..=1.0).contains(&self.shared_write_frac) {
            return Err(ConfigError::range("shared_write_frac", "must be in [0, 1]"));
        }
        if self.shared_lines == 0 && (self.shared_read_frac > 0.0 || self.shared_write_frac > 0.0) {
            return Err(ConfigError::range(
                "shared_lines",
                "must be non-zero when sharing fractions are",
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_labels() {
        assert_eq!(Suite::Splash2.label(), "splash2");
        assert_eq!(Suite::ParsecMedium.to_string(), "parsec_medium");
    }

    #[test]
    fn items_balanced_split() {
        let p = WorkloadProfile::compute_bound("x", Suite::Rodinia, 16_000);
        // 4 phases → 4000 per phase; 4 threads balanced → 1000 each.
        for t in 0..4 {
            assert_eq!(p.items_for(t, 0, 4), 1000);
        }
    }

    #[test]
    fn items_skewed_heavy_rotates() {
        let mut p = WorkloadProfile::compute_bound("x", Suite::Rodinia, 16_000);
        p.phase_skew = 3.0; // heavy thread does 4× a balanced share
        let heavy0 = p.items_for(0, 0, 4);
        let light0 = p.items_for(1, 0, 4);
        assert!(heavy0 > 3 * light0);
        // Phase 1: heavy role moves to thread 1.
        assert_eq!(p.items_for(1, 1, 4), heavy0);
        assert_eq!(p.items_for(0, 1, 4), light0);
        // Total is approximately preserved.
        let total: u64 = (0..4).map(|t| p.items_for(t, 0, 4)).sum();
        assert!((total as i64 - 4000).abs() <= 2);
    }

    #[test]
    fn weak_scaling_holds_per_thread_work() {
        let mut p = WorkloadProfile::compute_bound("x", Suite::Rodinia, 16_000);
        p.weak_scaling = true;
        // 4 phases → 4000 per thread per phase, at any thread count.
        for n in [2usize, 16, 128] {
            for t in 1..n.min(4) {
                // Thread 0 is the phase-0 heavy thread; others get the
                // single-thread share.
                assert_eq!(p.items_for(t, 0, n), 4000, "n={n} t={t}");
            }
        }
        // Total work grows with n (balanced profile: skew 0).
        let total_32: u64 = (0..32).map(|t| p.items_for(t, 0, 32)).sum();
        assert_eq!(total_32, 32 * 4000);
    }

    #[test]
    fn weak_scaling_heavy_thread_rotates() {
        let mut p = WorkloadProfile::compute_bound("x", Suite::Rodinia, 16_000);
        p.weak_scaling = true;
        p.phase_skew = 1.0;
        assert_eq!(p.items_for(0, 0, 8), 8000); // heavy: 2× the share
        assert_eq!(p.items_for(1, 0, 8), 4000);
        assert_eq!(p.items_for(1, 1, 8), 8000); // heavy role moved on
    }

    #[test]
    fn weak_variant_matches_sixteen_thread_share() {
        let p = WorkloadProfile::compute_bound("x", Suite::Rodinia, 16_000);
        let w = p.weak_variant();
        assert!(w.weak_scaling);
        // A thread of the weak run does what a 16-thread strong run
        // gives each thread (skew 0 ⇒ exact).
        assert_eq!(w.items_for(1, 0, 64), p.items_for(1, 0, 16));
        // Degenerate inputs keep at least one item per phase.
        let tiny = WorkloadProfile::compute_bound("t", Suite::Rodinia, 4).weak_variant();
        assert!(tiny.items_for(0, 0, 2) >= 1);
    }

    #[test]
    fn single_thread_gets_everything() {
        let p = WorkloadProfile::compute_bound("x", Suite::Rodinia, 16_000);
        assert_eq!(p.items_for(0, 0, 1), 4000);
    }

    #[test]
    fn par_overhead_only_multithreaded() {
        let mut p = WorkloadProfile::compute_bound("x", Suite::Rodinia, 100);
        p.par_overhead = 0.26;
        assert_eq!(p.effective_compute(1), 400);
        assert_eq!(p.effective_compute(16), 504);
    }

    #[test]
    fn validate_rejects_degenerate_profiles() {
        let good = WorkloadProfile::compute_bound("x", Suite::Rodinia, 100);
        assert!(good.validate().is_ok());
        let mut p = good.clone();
        p.total_items = 0;
        assert!(p.validate().is_err());
        let mut p = good.clone();
        p.phases = 0;
        assert!(p.validate().is_err());
        let mut p = good.clone();
        p.phase_skew = f64::NAN;
        assert!(p.validate().is_err());
        let mut p = good.clone();
        p.par_overhead = -0.1;
        assert!(p.validate().is_err());
        let mut p = good.clone();
        p.shared_write_frac = 1.01;
        assert!(p.validate().is_err());
        let mut p = good.clone();
        p.shared_lines = 0;
        assert!(p.validate().is_err(), "sharing fraction without lines");
        p.shared_read_frac = 0.0;
        assert!(p.validate().is_ok(), "no sharing at all is fine");
    }

    #[test]
    fn skew_bound_formula() {
        let mut p = WorkloadProfile::compute_bound("x", Suite::Rodinia, 100);
        p.phase_skew = 3.0;
        assert!((p.skew_speedup_bound(16) - 4.75).abs() < 1e-12);
        assert!((p.skew_speedup_bound(1) - 1.0).abs() < 1e-12);
    }
}
