//! # workloads — synthetic multi-threaded benchmark models
//!
//! The speedup-stacks paper evaluates 28 benchmark/input pairs from
//! SPLASH-2, PARSEC and Rodinia on gem5. Those binaries (and an Alpha
//! full-system simulator to run them) are not reproducible here, so this
//! crate substitutes *synthetic workload models*: deterministic op-stream
//! generators parameterized per benchmark so that each model's scaling
//! class and dominant scaling bottlenecks match the paper's Figure 6
//! (see DESIGN.md for the substitution argument).
//!
//! - [`WorkloadProfile`] — the parameter space (work distribution, barrier
//!   phases with a rotating heavy thread, critical sections, working sets
//!   and sharing fractions, parallelization overhead, strong/weak
//!   scaling).
//! - [`streams_for`] — builds the per-thread [`cmpsim::OpStream`]s.
//! - [`paper_suite`] — the 28 paper benchmark models;
//!   [`weak_scaling_suite`] — their weak-scaling variants for >16-thread
//!   many-core studies (per-thread work held constant).
//! - [`rate_mix_streams`] — multi-program rate mixes: independent
//!   single-threaded programs contending only through the memory system.
//! - [`trace`] — versioned binary trace capture and bit-identical replay
//!   of any generated run ([`TraceWriter`], [`TraceReader`]).
//!
//! ## Example
//!
//! ```
//! use cmpsim::{simulate, MachineConfig};
//! use workloads::{find, streams_for, Suite};
//!
//! let profile = find("blackscholes", Suite::ParsecSmall).unwrap();
//! let cfg = MachineConfig::with_cores(4);
//! let result = simulate(cfg, streams_for(&profile, 4))?;
//! assert!(result.tp_cycles > 0);
//! # Ok::<(), cmpsim::SimError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod catalog;
pub mod generator;
pub mod mix;
pub mod profile;
pub mod rng;
pub mod trace;

pub use catalog::{display_name, find, paper_suite, weak_scaling_suite};
pub use generator::{streams_for, ProfileStream};
pub use mix::{default_rate_mix, rate_mix_streams, RateMixStream};
pub use profile::{AccessPattern, CsProfile, Suite, WorkloadProfile};
pub use trace::{TraceReader, TraceRun, TraceSpec, TraceStats, TraceWriter};
