//! The 28 benchmark models of the paper's evaluation (Figure 6):
//! SPLASH-2, PARSEC (simsmall / simmedium) and Rodinia analogues.
//!
//! Each model is a [`WorkloadProfile`] whose parameters were chosen so the
//! *shape* of the paper's results holds: the 16-thread speedup class
//! (good ≥ 10×, moderate, poor < 5×) and the dominant stack components
//! match Figure 6. Parameters derive from two analytic knobs —
//! `phase_skew` (barrier-limited speedup `1 + (n−1)/(1+skew)`) and the
//! critical-section fraction (`S ≈ item/(cs)` when the lock saturates) —
//! plus working-set sizes chosen relative to the 2 MB LLC.

use crate::profile::{AccessPattern, CsProfile, Suite, WorkloadProfile};

/// Builds one catalog entry. Only the fields that vary per benchmark are
/// parameters; the rest use the archetype defaults. `private_lines` is the
/// *total* data footprint (threads work on disjoint slices).
#[allow(clippy::too_many_arguments)]
fn profile(
    name: &'static str,
    suite: Suite,
    paper_speedup16: f64,
    total_items: u64,
    phases: u32,
    phase_skew: f64,
    item_compute: u32,
    item_loads: u32,
    item_stores: u32,
    private_lines: u64,
    pattern: AccessPattern,
    shared_lines: u64,
    shared_read_frac: f64,
    cs: Option<CsProfile>,
    par_overhead: f64,
) -> WorkloadProfile {
    WorkloadProfile {
        name,
        suite,
        total_items,
        phases,
        phase_skew,
        item_compute,
        item_loads,
        item_stores,
        private_lines,
        access_pattern: pattern,
        shared_lines,
        shared_read_frac,
        shared_write_frac: 0.02,
        cs,
        par_overhead,
        weak_scaling: false,
        seed: 0xD15C0 ^ name.len() as u64 ^ (total_items << 1),
        paper_speedup16,
    }
}

const fn cs(every_items: u32, len_cycles: u32, n_locks: u32) -> Option<CsProfile> {
    Some(CsProfile {
        every_items,
        len_cycles,
        n_locks,
    })
}

/// All 28 benchmark models, in the paper's Figure 6 order (good →
/// moderate → poor scaling).
///
/// # Examples
///
/// ```
/// let suite = workloads::paper_suite();
/// assert_eq!(suite.len(), 28);
/// assert!(suite.iter().any(|p| p.name == "cholesky"));
/// ```
#[must_use]
pub fn paper_suite() -> Vec<WorkloadProfile> {
    use AccessPattern::{Random, Streaming};
    use Suite::{ParsecMedium, ParsecSmall, Rodinia, Splash2};
    vec![
        // ---- good scaling (speedup >= 10x at 16 threads) -----------------
        // blackscholes: embarrassingly parallel, tiny working set.
        profile(
            "blackscholes",
            ParsecMedium,
            15.94,
            48_000,
            2,
            0.02,
            400,
            2,
            1,
            8_192,
            Random,
            256,
            0.05,
            None,
            0.01,
        ),
        profile(
            "blackscholes",
            ParsecSmall,
            15.71,
            24_000,
            2,
            0.03,
            400,
            2,
            1,
            8_192,
            Random,
            256,
            0.05,
            None,
            0.01,
        ),
        // radix: streaming sort, memory-bandwidth bound, mild phase skew.
        profile(
            "radix", Splash2, 11.60, 24_000, 8, 0.25, 1_100, 1, 1, 524_288, Streaming, 1_024, 0.02,
            None, 0.02,
        ),
        // swaptions simmedium: enough work per thread to scale well.
        profile(
            "swaptions",
            ParsecMedium,
            12.99,
            32_000,
            2,
            0.15,
            600,
            2,
            1,
            16_384,
            Random,
            128,
            0.02,
            None,
            0.10,
        ),
        // heartwall: barrier-phased tracking with moderate imbalance.
        profile(
            "heartwall",
            Rodinia,
            10.39,
            24_000,
            12,
            0.38,
            560,
            2,
            1,
            24_576,
            Random,
            512,
            0.05,
            None,
            0.03,
        ),
        // ---- moderate scaling --------------------------------------------
        // srad: stencil phases + heavy memory traffic + LLC pressure.
        profile(
            "srad", Rodinia, 5.20, 16_000, 16, 0.90, 420, 5, 2, 131_072, Random, 1_024, 0.05, None,
            0.04,
        ),
        // cholesky: task queue with short, hot critical sections (spinning)
        // and a large read-shared factor working set (positive interference).
        profile(
            "cholesky",
            Splash2,
            5.02,
            20_000,
            2,
            0.20,
            260,
            4,
            1,
            98_304,
            Random,
            6_144,
            0.13,
            cs(1, 60, 1),
            0.04,
        ),
        // lud: triangular solve, strong rotating imbalance.
        profile(
            "lud", Rodinia, 5.77, 16_000, 24, 2.10, 400, 2, 1, 16_384, Random, 512, 0.10, None,
            0.03,
        ),
        // water-nsquared: long force-update critical sections.
        profile(
            "water-nsquared",
            Splash2,
            5.77,
            8_000,
            4,
            0.30,
            1_400,
            3,
            1,
            16_384,
            Random,
            1_024,
            0.15,
            cs(1, 230, 1),
            0.04,
        ),
        // fluidanimate: fine-grain cell locks + barrier phases.
        profile(
            "fluidanimate",
            ParsecMedium,
            5.71,
            12_000,
            8,
            1.70,
            420,
            4,
            2,
            16_384,
            Random,
            2_048,
            0.15,
            cs(1, 40, 32),
            0.18,
        ),
        // lu non-contiguous: block solver, shared blocks, LLC pressure.
        profile(
            "lu.ncont", Splash2, 5.53, 20_000, 12, 1.45, 400, 6, 1, 65_536, Random, 6_144, 0.12,
            None, 0.05,
        ),
        // lu contiguous: same structure, friendlier layout.
        profile(
            "lu.cont", Splash2, 5.79, 20_000, 12, 1.55, 400, 6, 1, 49_152, Random, 6_144, 0.12,
            None, 0.04,
        ),
        // facesim: physics phases, per-thread partitions overflow the LLC.
        profile(
            "facesim",
            ParsecMedium,
            5.50,
            18_000,
            10,
            1.35,
            450,
            5,
            2,
            40_960,
            Random,
            1_024,
            0.05,
            None,
            0.06,
        ),
        profile(
            "facesim",
            ParsecSmall,
            5.46,
            14_000,
            10,
            1.35,
            450,
            5,
            2,
            40_960,
            Random,
            1_024,
            0.05,
            None,
            0.06,
        ),
        // fft: all-to-all transpose phases, bandwidth-sensitive.
        profile(
            "fft", Splash2, 9.43, 20_000, 10, 0.45, 400, 3, 1, 32_768, Random, 2_048, 0.10, None,
            0.03,
        ),
        // canneal: random walks over a big shared netlist.
        profile(
            "canneal",
            ParsecMedium,
            7.61,
            16_000,
            6,
            1.00,
            450,
            6,
            1,
            45_056,
            Random,
            6_144,
            0.10,
            None,
            0.05,
        ),
        profile(
            "canneal",
            ParsecSmall,
            6.93,
            13_000,
            6,
            1.20,
            450,
            6,
            1,
            40_960,
            Random,
            6_144,
            0.10,
            None,
            0.05,
        ),
        // bfs: level-synchronous traversal, frontier imbalance, shared graph.
        profile(
            "bfs", Rodinia, 5.65, 16_000, 12, 1.50, 360, 6, 1, 40_960, Random, 6_144, 0.12, None,
            0.05,
        ),
        // ferret simmedium: pipeline; stage queues serialize.
        profile(
            "ferret",
            ParsecMedium,
            4.77,
            6_000,
            2,
            0.20,
            6_200,
            4,
            1,
            16_384,
            Random,
            2_048,
            0.20,
            cs(1, 1_650, 1),
            0.06,
        ),
        // water-spatial: spatial decomposition, long neighbour-list sections.
        profile(
            "water-spatial",
            Splash2,
            4.57,
            5_000,
            4,
            0.30,
            7_000,
            3,
            1,
            16_384,
            Random,
            1_024,
            0.15,
            cs(1, 1_550, 1),
            0.04,
        ),
        // ---- poor scaling (speedup < 5x at 16 threads) -------------------
        // dedup simmedium: pipeline with a hot hash-table lock.
        profile(
            "dedup",
            ParsecMedium,
            4.12,
            5_000,
            2,
            0.20,
            8_340,
            4,
            2,
            16_384,
            Random,
            2_048,
            0.20,
            cs(1, 2_000, 1),
            0.08,
        ),
        // freqmine: FP-tree mining, coarse sections.
        profile(
            "freqmine",
            ParsecSmall,
            4.09,
            5_000,
            2,
            0.20,
            6_850,
            3,
            1,
            16_384,
            Random,
            1_024,
            0.10,
            cs(1, 2_000, 1),
            0.05,
        ),
        profile(
            "freqmine",
            ParsecMedium,
            3.89,
            6_000,
            2,
            0.20,
            7_150,
            3,
            1,
            16_384,
            Random,
            1_024,
            0.10,
            cs(1, 2_000, 1),
            0.05,
        ),
        // swaptions simsmall: too little work per thread and 26%
        // parallelization overhead (weak-scaling contrast, sec. 6).
        profile(
            "swaptions",
            ParsecSmall,
            3.81,
            800,
            10,
            1.60,
            600,
            2,
            1,
            16_384,
            Random,
            128,
            0.02,
            None,
            0.26,
        ),
        profile(
            "dedup",
            ParsecSmall,
            3.56,
            4_000,
            2,
            0.20,
            6_380,
            4,
            2,
            16_384,
            Random,
            2_048,
            0.20,
            cs(1, 2_000, 1),
            0.08,
        ),
        // bodytrack: pipeline + per-frame barriers.
        profile(
            "bodytrack",
            ParsecSmall,
            3.02,
            4_000,
            6,
            0.40,
            6_130,
            3,
            1,
            16_384,
            Random,
            1_024,
            0.10,
            cs(1, 2_000, 1),
            0.07,
        ),
        // ferret simsmall: the paper's worst scaler.
        profile(
            "ferret",
            ParsecSmall,
            2.94,
            4_000,
            2,
            0.20,
            5_390,
            5,
            1,
            16_384,
            Random,
            2_048,
            0.25,
            cs(1, 2_000, 1),
            0.06,
        ),
        // needle (Needleman-Wunsch): wavefront with severe edge imbalance.
        profile(
            "needle", Rodinia, 4.14, 14_000, 20, 2.90, 400, 6, 1, 49_152, Random, 6_144, 0.12,
            None, 0.05,
        ),
    ]
}

/// Weak-scaling variants of the whole catalog for the many-core
/// (>16-thread) studies: per-thread work is held constant at the paper's
/// 16-thread share ([`WorkloadProfile::weak_variant`]), so total work
/// grows with the thread count instead of starving wide machines.
///
/// # Examples
///
/// ```
/// let weak = workloads::weak_scaling_suite();
/// assert_eq!(weak.len(), 28);
/// assert!(weak.iter().all(|p| p.weak_scaling));
/// ```
#[must_use]
pub fn weak_scaling_suite() -> Vec<WorkloadProfile> {
    paper_suite()
        .iter()
        .map(WorkloadProfile::weak_variant)
        .collect()
}

/// Looks up a benchmark by name and suite.
///
/// ```
/// use workloads::{find, Suite};
/// assert!(find("cholesky", Suite::Splash2).is_some());
/// assert!(find("cholesky", Suite::Rodinia).is_none());
/// ```
#[must_use]
pub fn find(name: &str, suite: Suite) -> Option<WorkloadProfile> {
    paper_suite()
        .into_iter()
        .find(|p| p.name == name && p.suite == suite)
}

/// Display name with the input-size suffix the paper uses
/// (e.g. `swaptions_small`), plus a `_weak` suffix for weak-scaling
/// variants.
#[must_use]
pub fn display_name(p: &WorkloadProfile) -> String {
    let base = match p.suite {
        Suite::ParsecSmall => format!("{}_small", p.name),
        Suite::ParsecMedium => format!("{}_medium", p.name),
        _ => p.name.to_string(),
    };
    if p.weak_scaling {
        format!("{base}_weak")
    } else {
        base
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_eight_benchmarks() {
        assert_eq!(paper_suite().len(), 28);
    }

    #[test]
    fn names_unique_per_suite() {
        let suite = paper_suite();
        let mut keys: Vec<(&str, Suite)> = suite.iter().map(|p| (p.name, p.suite)).collect();
        keys.sort_by_key(|(n, s)| (n.to_string(), s.label()));
        keys.dedup();
        assert_eq!(keys.len(), 28);
    }

    #[test]
    fn five_good_scalers_like_the_paper() {
        let good = paper_suite()
            .iter()
            .filter(|p| p.paper_speedup16 >= 10.0)
            .count();
        assert_eq!(good, 5);
    }

    #[test]
    fn swaptions_weak_scaling_contrast() {
        let small = find("swaptions", Suite::ParsecSmall).unwrap();
        let medium = find("swaptions", Suite::ParsecMedium).unwrap();
        assert!(medium.total_items > 10 * small.total_items);
        assert!(small.par_overhead > 0.2);
    }

    #[test]
    fn display_names() {
        let small = find("ferret", Suite::ParsecSmall).unwrap();
        assert_eq!(display_name(&small), "ferret_small");
        let radix = find("radix", Suite::Splash2).unwrap();
        assert_eq!(display_name(&radix), "radix");
    }

    #[test]
    fn cholesky_models_its_paper_signature() {
        let c = find("cholesky", Suite::Splash2).unwrap();
        // Short hot critical sections: spinning dominates.
        assert!(c.cs.is_some());
        assert!(
            c.cs.unwrap().len_cycles < 200,
            "cholesky sections must be short (spinning)"
        );
        // A read-shared region for positive interference...
        assert!(c.shared_lines > 0 && c.shared_read_frac > 0.05);
        // ...and a footprint beyond the 2 MB LLC (32768 lines) so the
        // Figure 9 sweep has negative interference to shrink.
        assert!(c.private_lines > 32_768);
    }
}
