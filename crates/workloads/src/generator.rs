//! Deterministic op-stream generation from a [`WorkloadProfile`].
//!
//! Each thread gets a [`ProfileStream`]: a lazy state machine that emits
//! the ops of one work item at a time (compute, loads, stores, optional
//! critical section) and a barrier at every phase boundary. The final
//! phase barrier is the convergence point of the parallel section, so the
//! end-of-program imbalance component stays near zero, as in the paper's
//! measurement setup (§7.1).

use cmpsim::{Op, OpStream};

use crate::profile::{AccessPattern, WorkloadProfile};
use crate::rng::SmallRng;

/// Base line address of the shared working set.
const SHARED_BASE: u64 = 1 << 30;
/// Base line address of the (partitioned) private working set.
const PRIVATE_BASE: u64 = 2 << 30;

/// Lazy op stream for one thread of a profiled workload.
#[derive(Debug)]
pub struct ProfileStream {
    profile: WorkloadProfile,
    thread: usize,
    n_threads: usize,
    rng: SmallRng,
    /// Ops of the current item, drained front-to-back via `buf_head`
    /// (refilled in place — cheaper than a deque on the per-op path).
    buf: Vec<Op>,
    buf_head: usize,
    phase: u32,
    items_left: u64,
    item_counter: u64,
    /// This thread's slice of the private footprint: `[start, start+len)`.
    slice_start: u64,
    slice_len: u64,
    /// Streaming cursor within the slice.
    cursor: u64,
    /// `profile.effective_compute(n_threads)`, precomputed (the rounding
    /// arithmetic showed up in per-item profiles).
    item_compute: u32,
    done: bool,
}

impl ProfileStream {
    /// Creates the stream for `thread` of an `n_threads` run.
    ///
    /// # Panics
    ///
    /// Panics if `thread >= n_threads` or `n_threads == 0`.
    #[must_use]
    pub fn new(profile: &WorkloadProfile, thread: usize, n_threads: usize) -> Self {
        assert!(n_threads > 0, "n_threads must be non-zero");
        assert!(thread < n_threads, "thread index out of range");
        let items = profile.items_for(thread, 0, n_threads);
        let slice_len = (profile.private_lines / n_threads as u64).max(1);
        let slice_start = PRIVATE_BASE + thread as u64 * slice_len;
        let mut rng = SmallRng::seed_from_u64(
            profile.seed ^ (thread as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
        );
        // Streaming threads start at a random offset within their slice:
        // real partitioned kernels do not march through DRAM banks in
        // lockstep, and bank-aligned slices otherwise serialize all
        // threads on one bank.
        let cursor = rng.gen_range(0..slice_len);
        ProfileStream {
            profile: profile.clone(),
            thread,
            n_threads,
            rng,
            buf: Vec::with_capacity(32),
            buf_head: 0,
            phase: 0,
            items_left: items,
            item_counter: 0,
            slice_start,
            slice_len,
            cursor,
            item_compute: profile.effective_compute(n_threads),
            done: false,
        }
    }

    fn pick_line(&mut self, shared_frac: f64, shared_lines: u64) -> u64 {
        let shared = shared_lines > 0 && self.rng.gen_bool(shared_frac.clamp(0.0, 1.0));
        if shared {
            SHARED_BASE + self.rng.gen_range(0..shared_lines)
        } else {
            match self.profile.access_pattern {
                AccessPattern::Random => self.slice_start + self.rng.gen_range(0..self.slice_len),
                AccessPattern::Streaming => {
                    let line = self.slice_start + self.cursor;
                    self.cursor = (self.cursor + 1) % self.slice_len;
                    line
                }
            }
        }
    }

    fn emit_item(&mut self) {
        // Copy out the scalar parameters the item needs: cloning the
        // whole profile per item showed up in the sweep profile.
        let cs = self.profile.cs;
        let item_loads = self.profile.item_loads;
        let item_stores = self.profile.item_stores;
        let shared_read_frac = self.profile.shared_read_frac;
        let shared_write_frac = self.profile.shared_write_frac;
        let shared_lines = self.profile.shared_lines;
        let compute = self.item_compute;
        self.item_counter += 1;

        // Optional critical section first (task-queue style: grab work,
        // then compute on it).
        if let Some(cs) = cs {
            if cs.every_items > 0 && self.item_counter.is_multiple_of(u64::from(cs.every_items)) {
                let lock = if cs.n_locks > 1 {
                    self.rng.gen_range(0..cs.n_locks)
                } else {
                    0
                };
                self.buf.push(Op::LockAcquire(lock));
                if cs.len_cycles > 0 {
                    self.buf.push(Op::Compute(cs.len_cycles));
                }
                self.buf.push(Op::LockRelease(lock));
            }
        }

        // Interleave compute with memory accesses so loads spread out in
        // time (burstiness would overstate bank conflicts).
        let accesses = item_loads + item_stores;
        let slice = if accesses > 0 {
            compute / (accesses + 1)
        } else {
            compute
        };
        let mut emitted = 0u32;
        for _ in 0..item_loads {
            if slice > 0 {
                self.buf.push(Op::Compute(slice));
                emitted += slice;
            }
            let line = self.pick_line(shared_read_frac, shared_lines);
            self.buf.push(Op::Load(line));
        }
        for _ in 0..item_stores {
            if slice > 0 {
                self.buf.push(Op::Compute(slice));
                emitted += slice;
            }
            let line = self.pick_line(shared_write_frac, shared_lines);
            self.buf.push(Op::Store(line));
        }
        if compute > emitted {
            self.buf.push(Op::Compute(compute - emitted));
        }
    }

    fn advance_phase(&mut self) {
        // Phase boundary: a barrier shared by all threads.
        self.buf.push(Op::Barrier(0));
        self.phase += 1;
        if self.phase >= self.profile.phases.max(1) {
            self.done = true;
        } else {
            self.items_left = self
                .profile
                .items_for(self.thread, self.phase, self.n_threads);
        }
    }
}

impl OpStream for ProfileStream {
    fn next_op(&mut self) -> Option<Op> {
        loop {
            if let Some(&op) = self.buf.get(self.buf_head) {
                self.buf_head += 1;
                return Some(op);
            }
            if self.done {
                return None;
            }
            self.buf.clear();
            self.buf_head = 0;
            if self.items_left == 0 {
                self.advance_phase();
                continue;
            }
            self.items_left -= 1;
            self.emit_item();
        }
    }
}

/// Builds the per-thread op streams for an `n_threads` run of `profile`.
///
/// # Examples
///
/// ```
/// use workloads::{streams_for, Suite, WorkloadProfile};
/// let p = WorkloadProfile::compute_bound("demo", Suite::Splash2, 1_000);
/// let streams = streams_for(&p, 4);
/// assert_eq!(streams.len(), 4);
/// ```
#[must_use]
pub fn streams_for(profile: &WorkloadProfile, n_threads: usize) -> Vec<Box<dyn OpStream>> {
    (0..n_threads)
        .map(|t| Box::new(ProfileStream::new(profile, t, n_threads)) as Box<dyn OpStream>)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{AccessPattern, CsProfile, Suite};

    fn demo() -> WorkloadProfile {
        let mut p = WorkloadProfile::compute_bound("demo", Suite::Splash2, 64);
        p.phases = 2;
        p.item_loads = 2;
        p.item_stores = 1;
        p
    }

    fn drain(mut s: ProfileStream) -> Vec<Op> {
        let mut out = Vec::new();
        while let Some(op) = s.next_op() {
            out.push(op);
            assert!(out.len() < 1_000_000, "stream does not terminate");
        }
        out
    }

    #[test]
    fn stream_terminates_with_phase_barriers() {
        let ops = drain(ProfileStream::new(&demo(), 0, 4));
        let barriers = ops.iter().filter(|o| matches!(o, Op::Barrier(_))).count();
        assert_eq!(barriers, 2);
        assert_eq!(*ops.last().unwrap(), Op::Barrier(0));
    }

    #[test]
    fn deterministic_streams() {
        let a = drain(ProfileStream::new(&demo(), 1, 4));
        let b = drain(ProfileStream::new(&demo(), 1, 4));
        assert_eq!(a, b);
    }

    #[test]
    fn threads_have_distinct_address_streams() {
        let a = drain(ProfileStream::new(&demo(), 0, 4));
        let b = drain(ProfileStream::new(&demo(), 1, 4));
        assert_ne!(a, b);
    }

    #[test]
    fn loads_and_stores_emitted_per_item() {
        let p = demo();
        let ops = drain(ProfileStream::new(&p, 0, 4));
        // 64 items / 2 phases / 4 threads = 8 per phase → 16 items total.
        let loads = ops.iter().filter(|o| matches!(o, Op::Load(_))).count();
        let stores = ops.iter().filter(|o| matches!(o, Op::Store(_))).count();
        assert_eq!(loads, 32);
        assert_eq!(stores, 16);
    }

    #[test]
    fn critical_sections_balanced() {
        let mut p = demo();
        p.cs = Some(CsProfile {
            every_items: 1,
            len_cycles: 50,
            n_locks: 1,
        });
        let ops = drain(ProfileStream::new(&p, 0, 4));
        let acquires = ops
            .iter()
            .filter(|o| matches!(o, Op::LockAcquire(_)))
            .count();
        let releases = ops
            .iter()
            .filter(|o| matches!(o, Op::LockRelease(_)))
            .count();
        assert_eq!(acquires, releases);
        assert_eq!(acquires, 16);
        // Acquire always precedes its release.
        let mut held = false;
        for op in &ops {
            match op {
                Op::LockAcquire(_) => {
                    assert!(!held);
                    held = true;
                }
                Op::LockRelease(_) => {
                    assert!(held);
                    held = false;
                }
                _ => {}
            }
        }
    }

    #[test]
    fn addresses_stay_in_declared_regions() {
        let p = demo();
        let ops = drain(ProfileStream::new(&p, 2, 4));
        let slice = p.private_lines / 4;
        let pb = PRIVATE_BASE + 2 * slice;
        for op in ops {
            if let Op::Load(l) | Op::Store(l) = op {
                let in_shared = (SHARED_BASE..SHARED_BASE + p.shared_lines).contains(&l);
                let in_private = (pb..pb + slice).contains(&l);
                assert!(in_shared || in_private, "line {l} outside regions");
            }
        }
    }

    #[test]
    fn partitions_are_disjoint_and_cover_footprint() {
        let p = demo();
        let slice = p.private_lines / 4;
        for t in 0..4usize {
            let ops = drain(ProfileStream::new(&p, t, 4));
            let base = PRIVATE_BASE + t as u64 * slice;
            for op in ops {
                if let Op::Load(l) | Op::Store(l) = op {
                    if l < SHARED_BASE + p.shared_lines && l >= SHARED_BASE {
                        continue;
                    }
                    assert!((base..base + slice).contains(&l));
                }
            }
        }
        // Single-threaded: the whole footprint is reachable.
        let ops = drain(ProfileStream::new(&p, 0, 1));
        let max = ops
            .iter()
            .filter_map(|o| match o {
                Op::Load(l) | Op::Store(l) if *l >= PRIVATE_BASE => Some(*l),
                _ => None,
            })
            .max()
            .unwrap();
        assert!(
            max >= PRIVATE_BASE + p.private_lines / 2,
            "ST must roam the full footprint"
        );
    }

    #[test]
    fn streaming_pattern_is_sequential() {
        let mut p = demo();
        p.access_pattern = AccessPattern::Streaming;
        p.shared_read_frac = 0.0;
        p.shared_write_frac = 0.0;
        let ops = drain(ProfileStream::new(&p, 0, 4));
        let lines: Vec<u64> = ops
            .iter()
            .filter_map(|o| match o {
                Op::Load(l) => Some(*l),
                _ => None,
            })
            .collect();
        for w in lines.windows(2) {
            let d = if w[1] > w[0] {
                w[1] - w[0]
            } else {
                w[0] + p.private_lines / 4 - w[1]
            };
            assert!(d <= 2, "streaming stride too large: {w:?}");
        }
    }

    #[test]
    fn compute_cycles_sum_to_item_compute() {
        let p = demo();
        let ops = drain(ProfileStream::new(&p, 0, 4));
        let compute: u64 = ops
            .iter()
            .map(|o| {
                if let Op::Compute(c) = o {
                    u64::from(*c)
                } else {
                    0
                }
            })
            .sum();
        // 16 items × effective compute (400 × 1.01 = 404).
        assert_eq!(compute, 16 * u64::from(p.effective_compute(4)));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_thread_index() {
        let _ = ProfileStream::new(&demo(), 4, 4);
    }
}
