//! Multi-program (rate-mode) workload mixes.
//!
//! A *rate mix* runs `n` independent copies of single-threaded programs
//! side by side, one per hardware thread — SPEC-rate style. The programs
//! never synchronize with each other: they contend only through the
//! shared LLC and the memory subsystem, which makes rate mixes the pure
//! *interference* workload for the many-core scaling studies (no
//! spinning, yielding or imbalance components, only cache and memory
//! sharing).
//!
//! Each mix member wraps a single-threaded [`ProfileStream`] and
//! rewrites its op stream:
//!
//! - **barriers are stripped** — independent programs have no common
//!   phases (the engine would otherwise block every member on a barrier
//!   only its own program arrives at);
//! - **data addresses are relocated** into a per-member address band, so
//!   members touch disjoint private *and* "shared" regions (a member's
//!   shared region is shared among its own accesses only);
//! - **lock ids are remapped** into a per-member band, so two members'
//!   internal critical sections never contend with each other.
//!
//! The single-threaded reference of each member program is just the
//! member run alone, which is what [`crate::streams_for`] with one
//! thread produces — the scaling study uses exactly that to compute a
//! rate speedup `Σᵢ Ts(i) / Tp`.

use cmpsim::{Op, OpStream};

use crate::generator::ProfileStream;
use crate::profile::{Suite, WorkloadProfile};

/// Line-address stride between members' address bands: 2^21 lines
/// (128 MiB of data at 64-byte lines), far above any catalog footprint.
const MEMBER_LINE_STRIDE: u64 = 1 << 21;

/// Sync-id stride between members' lock bands. The catalog's widest lock
/// striping is 32 locks; the engine's 2^20 sync-id cap leaves room for
/// far more than [`MAX_MEMBERS`] bands.
const MEMBER_SYNC_STRIDE: u32 = 64;

/// Maximum members of one mix. The binding constraint is the address
/// layout: the generator's shared and private region bases sit 2^30
/// lines apart, so member `m`'s relocated shared band
/// (`2^30 + m * 2^21`) stays below member 0's private band (`2^31`)
/// only for `m < 2^30 / 2^21 = 512`.
pub const MAX_MEMBERS: usize = 512;

/// One member of a rate mix: a single-threaded program whose op stream
/// is relocated into its own address and sync-id bands, with barriers
/// stripped.
#[derive(Debug)]
pub struct RateMixStream {
    inner: ProfileStream,
    line_offset: u64,
    sync_offset: u32,
}

impl RateMixStream {
    /// Creates the stream for mix member `member` running `profile` as an
    /// independent single-threaded program.
    ///
    /// # Panics
    ///
    /// Panics if `member >= MAX_MEMBERS`, the profile's working sets
    /// overflow the per-member address band, or the profile stripes its
    /// critical sections over more locks than the per-member sync band
    /// holds.
    #[must_use]
    pub fn new(profile: &WorkloadProfile, member: usize) -> Self {
        assert!(member < MAX_MEMBERS, "at most {MAX_MEMBERS} mix members");
        assert!(
            profile.shared_lines <= MEMBER_LINE_STRIDE
                && profile.private_lines <= MEMBER_LINE_STRIDE,
            "profile working sets overflow the member address band"
        );
        assert!(
            profile.cs.map_or(0, |c| c.n_locks) <= MEMBER_SYNC_STRIDE,
            "profile stripes over more locks than the member sync band"
        );
        // Distinct members running the same program must not walk their
        // (relocated) addresses in lockstep: perturb the seed per member.
        let mut p = profile.clone();
        p.seed ^= (member as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        RateMixStream {
            inner: ProfileStream::new(&p, 0, 1),
            line_offset: member as u64 * MEMBER_LINE_STRIDE,
            sync_offset: member as u32 * MEMBER_SYNC_STRIDE,
        }
    }
}

impl OpStream for RateMixStream {
    fn next_op(&mut self) -> Option<Op> {
        loop {
            return Some(match self.inner.next_op()? {
                // Independent programs do not share phases.
                Op::Barrier(_) => continue,
                Op::Load(line) => Op::Load(line + self.line_offset),
                Op::Store(line) => Op::Store(line + self.line_offset),
                Op::LockAcquire(id) => Op::LockAcquire(id + self.sync_offset),
                Op::LockRelease(id) => Op::LockRelease(id + self.sync_offset),
                other => other,
            });
        }
    }
}

/// Builds the per-thread op streams of an `n_threads` rate mix: member
/// `i` runs `profiles[i % profiles.len()]` as an independent
/// single-threaded program in its own address/sync bands.
///
/// # Panics
///
/// Panics if `profiles` is empty or `n_threads` exceeds [`MAX_MEMBERS`].
///
/// # Examples
///
/// ```
/// use workloads::{default_rate_mix, rate_mix_streams};
/// let streams = rate_mix_streams(&default_rate_mix(), 8);
/// assert_eq!(streams.len(), 8);
/// ```
#[must_use]
pub fn rate_mix_streams(profiles: &[WorkloadProfile], n_threads: usize) -> Vec<Box<dyn OpStream>> {
    assert!(!profiles.is_empty(), "a mix needs at least one program");
    (0..n_threads)
        .map(|i| {
            Box::new(RateMixStream::new(&profiles[i % profiles.len()], i)) as Box<dyn OpStream>
        })
        .collect()
}

/// A representative four-program mix spanning the paper's scaling
/// classes: a compute-bound scaler (blackscholes), a streaming
/// bandwidth hog (radix), an LLC-pressure program (cholesky) and a
/// critical-section-bound program (dedup). Locks and barriers are
/// internal to each member; across members only the memory system is
/// shared.
///
/// # Panics
///
/// Panics if the catalog loses one of the four members (guarded by the
/// catalog invariants tests).
#[must_use]
pub fn default_rate_mix() -> Vec<WorkloadProfile> {
    [
        ("blackscholes", Suite::ParsecMedium),
        ("radix", Suite::Splash2),
        ("cholesky", Suite::Splash2),
        ("dedup", Suite::ParsecMedium),
    ]
    .into_iter()
    .map(|(name, suite)| crate::catalog::find(name, suite).expect("catalog member"))
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::find;

    fn drain(mut s: RateMixStream) -> Vec<Op> {
        let mut out = Vec::new();
        while let Some(op) = s.next_op() {
            out.push(op);
            assert!(out.len() < 10_000_000, "stream does not terminate");
        }
        out
    }

    fn small_profile() -> WorkloadProfile {
        let mut p = WorkloadProfile::compute_bound("mixdemo", Suite::Splash2, 64);
        p.phases = 2;
        p.cs = Some(crate::profile::CsProfile {
            every_items: 4,
            len_cycles: 50,
            n_locks: 4,
        });
        p
    }

    #[test]
    fn barriers_stripped() {
        let ops = drain(RateMixStream::new(&small_profile(), 0));
        assert!(!ops.iter().any(|o| matches!(o, Op::Barrier(_))));
        assert!(!ops.is_empty());
    }

    #[test]
    fn members_use_disjoint_address_bands() {
        use std::collections::BTreeSet;
        let p = small_profile();
        let lines = |member| -> BTreeSet<u64> {
            drain(RateMixStream::new(&p, member))
                .iter()
                .filter_map(|o| match o {
                    Op::Load(l) | Op::Store(l) => Some(*l),
                    _ => None,
                })
                .collect()
        };
        let (la, lb) = (lines(0), lines(1));
        assert!(!la.is_empty() && !lb.is_empty());
        assert!(
            la.is_disjoint(&lb),
            "members 0 and 1 touch overlapping lines"
        );
        // Member 1's regions are member 0's, relocated by one stride
        // (generator regions: shared at 2^30, private at 2^31).
        let in_band = |l: u64, m: u64| {
            let off = m * MEMBER_LINE_STRIDE;
            let shared = ((1 << 30) + off..(1 << 30) + off + p.shared_lines).contains(&l);
            let private = ((2 << 30) + off..(2 << 30) + off + p.private_lines).contains(&l);
            shared || private
        };
        assert!(la.iter().all(|&l| in_band(l, 0)));
        assert!(lb.iter().all(|&l| in_band(l, 1)));
    }

    #[test]
    fn members_use_disjoint_lock_bands() {
        let p = small_profile();
        let locks = |member| -> Vec<u32> {
            drain(RateMixStream::new(&p, member))
                .iter()
                .filter_map(|o| match o {
                    Op::LockAcquire(id) => Some(*id),
                    _ => None,
                })
                .collect()
        };
        let l0 = locks(0);
        let l2 = locks(2);
        assert!(!l0.is_empty() && !l2.is_empty());
        assert!(l0.iter().all(|&id| id < MEMBER_SYNC_STRIDE));
        assert!(l2
            .iter()
            .all(|&id| (2 * MEMBER_SYNC_STRIDE..3 * MEMBER_SYNC_STRIDE).contains(&id)));
    }

    #[test]
    fn same_program_members_diverge() {
        let p = small_profile();
        let strip = |ops: Vec<Op>| -> Vec<Op> {
            // Compare op shapes net of the deliberate band offsets.
            ops.into_iter()
                .map(|o| match o {
                    Op::Load(l) => Op::Load(l % MEMBER_LINE_STRIDE),
                    Op::Store(l) => Op::Store(l % MEMBER_LINE_STRIDE),
                    Op::LockAcquire(id) => Op::LockAcquire(id % MEMBER_SYNC_STRIDE),
                    Op::LockRelease(id) => Op::LockRelease(id % MEMBER_SYNC_STRIDE),
                    other => other,
                })
                .collect()
        };
        let a = strip(drain(RateMixStream::new(&p, 0)));
        let b = strip(drain(RateMixStream::new(&p, 1)));
        assert_ne!(a, b, "two members of the same program run in lockstep");
    }

    #[test]
    fn deterministic() {
        let p = small_profile();
        assert_eq!(
            drain(RateMixStream::new(&p, 3)),
            drain(RateMixStream::new(&p, 3))
        );
    }

    #[test]
    fn default_mix_spans_classes() {
        let mix = default_rate_mix();
        assert_eq!(mix.len(), 4);
        assert!(mix.iter().any(|p| p.cs.is_some()));
        assert!(mix.iter().any(|p| p.cs.is_none()));
    }

    #[test]
    fn mix_runs_end_to_end() {
        use cmpsim::{simulate, MachineConfig};
        let mut quick: Vec<WorkloadProfile> = default_rate_mix();
        for p in &mut quick {
            p.total_items = (p.total_items / 50).max(u64::from(p.phases) * 4);
        }
        let result = simulate(MachineConfig::with_cores(4), rate_mix_streams(&quick, 4))
            .expect("rate mix completes without deadlock");
        assert_eq!(result.counters.len(), 4);
        assert!(result.tp_cycles > 0);
        // No barriers and per-member locks: no cross-program waiting.
        assert!(result.truth.iter().all(|t| t.wait_episodes == 0));
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn rejects_too_many_members() {
        let _ = RateMixStream::new(&small_profile(), MAX_MEMBERS);
    }

    #[test]
    fn last_member_band_stays_clear_of_private_regions() {
        // The binding bound on MAX_MEMBERS: the last member's shared
        // band must still sit below member 0's private region (2^31),
        // and its private band below the compact-tag horizon.
        let p = small_profile();
        let ops = drain(RateMixStream::new(&p, MAX_MEMBERS - 1));
        let last_off = (MAX_MEMBERS as u64 - 1) * MEMBER_LINE_STRIDE;
        for op in ops {
            if let Op::Load(l) | Op::Store(l) = op {
                let shared =
                    ((1 << 30) + last_off..(1 << 30) + last_off + p.shared_lines).contains(&l);
                let private =
                    ((2 << 30) + last_off..(2 << 30) + last_off + p.private_lines).contains(&l);
                assert!(
                    shared || private,
                    "line {l} outside the last member's bands"
                );
                if shared {
                    assert!(l < 2 << 30, "shared band bleeds into private space");
                }
            }
        }
    }

    #[test]
    fn cycles_through_profiles() {
        let mix = vec![
            find("blackscholes", Suite::ParsecSmall).unwrap(),
            find("radix", Suite::Splash2).unwrap(),
        ];
        let streams = rate_mix_streams(&mix, 5);
        assert_eq!(streams.len(), 5);
    }
}
