//! A small, fast, deterministic PRNG for workload generation.
//!
//! The build is fully self-contained (no registry access), so instead of
//! the `rand` crate the generator uses this xoshiro256**-based RNG,
//! seeded via SplitMix64. The API mirrors the subset of `rand` the
//! generator needs (`seed_from_u64`, `gen_range`, `gen_bool`), and the
//! stream is stable across platforms and Rust versions — the engine's
//! reproducibility guarantee extends down to the address streams.

use std::ops::Range;

/// Deterministic xoshiro256** generator.
///
/// # Examples
///
/// ```
/// use workloads::rng::SmallRng;
/// let mut a = SmallRng::seed_from_u64(7);
/// let mut b = SmallRng::seed_from_u64(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// assert!(a.gen_range(0u64..10) < 10);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SmallRng {
    /// Creates a generator whose state is expanded from `seed` with
    /// SplitMix64 (so nearby seeds produce uncorrelated streams).
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        SmallRng { s }
    }

    /// The next raw 64-bit output.
    #[must_use]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform sample from `range` (which must be non-empty).
    ///
    /// # Panics
    ///
    /// Panics if `range` is empty.
    #[must_use]
    pub fn gen_range<T: UniformInt>(&mut self, range: Range<T>) -> T {
        T::sample(self, range)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[must_use]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        // 53 high bits give a uniform f64 in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

/// Integer types [`SmallRng::gen_range`] can sample uniformly.
pub trait UniformInt: Copy {
    /// Draws a uniform sample from `range`.
    fn sample(rng: &mut SmallRng, range: Range<Self>) -> Self;
}

/// Unbiased bounded sample via Lemire-style rejection on the widening
/// multiply.
fn bounded_u64(rng: &mut SmallRng, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    loop {
        let x = rng.next_u64();
        let m = u128::from(x) * u128::from(bound);
        let low = m as u64;
        if low >= bound.wrapping_neg() % bound {
            return (m >> 64) as u64;
        }
    }
}

impl UniformInt for u64 {
    fn sample(rng: &mut SmallRng, range: Range<u64>) -> u64 {
        assert!(range.start < range.end, "empty range");
        range.start + bounded_u64(rng, range.end - range.start)
    }
}

impl UniformInt for u32 {
    fn sample(rng: &mut SmallRng, range: Range<u32>) -> u32 {
        assert!(range.start < range.end, "empty range");
        range.start + bounded_u64(rng, u64::from(range.end - range.start)) as u32
    }
}

impl UniformInt for usize {
    fn sample(rng: &mut SmallRng, range: Range<usize>) -> usize {
        assert!(range.start < range.end, "empty range");
        range.start + bounded_u64(rng, (range.end - range.start) as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = SmallRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = r.gen_range(10u64..17);
            assert!((10..17).contains(&v));
            let w = r.gen_range(0u32..3);
            assert!(w < 3);
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut r = SmallRng::seed_from_u64(5);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[r.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SmallRng::seed_from_u64(3);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
        // Out-of-range probabilities are clamped, not UB.
        assert!(!r.gen_bool(-1.0));
        assert!(r.gen_bool(2.0));
    }

    #[test]
    fn gen_bool_roughly_calibrated() {
        let mut r = SmallRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "got {hits}");
    }
}
