//! Versioned binary workload traces: capture any synthetic run's op
//! streams to a compact file and replay them bit-identically.
//!
//! # Format (version 1)
//!
//! All multi-byte integers are little-endian; varints are LEB128
//! ([`encode_uvarint`]) with zigzag for signed deltas
//! ([`encode_svarint`]). Every variable-length structure is framed with
//! its byte length and CRC-32 ([`speedup_stacks::crc::crc32`] — the same
//! checksum the sweep journal uses), so corruption is detected before a
//! single damaged op reaches the engine:
//!
//! ```text
//! frame(payload) := len:u32  crc:u32  payload[len]
//!
//! file   := magic "SSTRACE\0"  version:u32  frame(header)  run*
//! header := str(study) str(fingerprint)          str(s) := uvarint(len) bytes
//! run    := 'R' frame(run-info)  section[n_threads]
//! run-info := str(name) uvarint(n_threads)
//!             uvarint(section_bytes)[n_threads] uvarint(op_count)[n_threads]
//! section  := chunk*                 (exactly section_bytes[t] bytes)
//! chunk    := 'C' frame(ops)
//! ```
//!
//! The `version` field sits *outside* the framed header so a build that
//! cannot parse a future header still reports a clean
//! [`TraceError::VersionMismatch`]. Per-thread `section_bytes` lets the
//! reader index a whole trace by seeking over sections without decoding
//! them, and lets each replayed thread stream from its own file cursor —
//! nothing ever buffers more than one ~32 KiB chunk per thread.
//!
//! ## Op encoding
//!
//! One tag byte per op. Load/store addresses are delta-encoded against
//! the thread's previous accessed line (`wrapping_sub`, so the full
//! `u64` line space round-trips); the delta state persists across chunk
//! boundaries within a thread's section.
//!
//! | tag | op | operand |
//! |-----|----|---------|
//! | `0x00` | `Compute` | uvarint cycles |
//! | `0x01` | `Load` | svarint line delta |
//! | `0x02` | `Store` | svarint line delta |
//! | `0x03` | `LockAcquire` | uvarint lock id |
//! | `0x04` | `LockRelease` | uvarint lock id |
//! | `0x05` | `Barrier` | uvarint barrier id |
//! | `0x06` | `TxBegin` | — |
//! | `0x07` | `TxEnd` | — |
//!
//! # Replay guarantees and corruption semantics
//!
//! A replayed run feeds the engine the exact op sequence the capture
//! drained, so simulation results — and the reports built from them —
//! are bit-identical to the generated original. *Any* damage is fatal
//! ([`TraceError`]): unlike journal records, which are quarantined and
//! recomputed, a damaged trace has no safe recomputation (silently
//! replaying a different stream would fabricate results). The
//! [`OpStream`] interface has no error channel, so a [`TraceStream`]
//! that hits damage mid-replay parks the typed error in the run's
//! shared [`TraceFault`] slot and ends the stream; drivers check the
//! slot after the run and fail loudly.
//!
//! # Examples
//!
//! Capture two tiny hand-built streams and replay them:
//!
//! ```
//! use cmpsim::{Op, OpStream, VecStream};
//! use workloads::trace::{TraceReader, TraceWriter};
//!
//! let path = std::env::temp_dir().join(format!("doc-{}.sstrace", std::process::id()));
//! let mut w = TraceWriter::create(&path, "demo", "cafebabe").unwrap();
//! let ops = vec![Op::Compute(10), Op::Load(99), Op::Barrier(0)];
//! w.add_run("toy", vec![Box::new(VecStream::new(ops.clone()))]).unwrap();
//! let stats = w.finish().unwrap();
//! assert_eq!(stats.runs, 1);
//!
//! let reader = TraceReader::open(&path, Some(("demo", "cafebabe"))).unwrap();
//! let mut run = reader.run_streams("toy", 1).unwrap();
//! let mut replayed = Vec::new();
//! while let Some(op) = run.streams[0].next_op() {
//!     replayed.push(op);
//! }
//! assert_eq!(replayed, ops);
//! assert!(run.fault.take().is_none());
//! std::fs::remove_file(&path).ok();
//! ```

use std::fs::File;
use std::io::{Read as _, Seek, SeekFrom, Write as _};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, PoisonError};

use cmpsim::{Op, OpStream};
use speedup_stacks::crc::crc32;
use speedup_stacks::error::TraceError;

/// The trace format version this build reads and writes.
pub const FORMAT_VERSION: u32 = 1;
/// The 8-byte file magic.
pub const MAGIC: &[u8; 8] = b"SSTRACE\0";

/// Target encoded size of one chunk frame's payload.
const CHUNK_BYTES: usize = 32 * 1024;

/// Frame tag of a run-info frame.
const TAG_RUN: u8 = b'R';
/// Frame tag of an op chunk.
const TAG_CHUNK: u8 = b'C';

// --- varint codec -------------------------------------------------------

/// Appends `v` as a LEB128 unsigned varint (1–10 bytes).
///
/// ```
/// let mut buf = Vec::new();
/// workloads::trace::encode_uvarint(300, &mut buf);
/// assert_eq!(buf, [0xac, 0x02]);
/// ```
pub fn encode_uvarint(mut v: u64, out: &mut Vec<u8>) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Decodes a LEB128 unsigned varint at `*pos`, advancing it.
///
/// # Errors
///
/// [`TraceError::Corrupt`] when the buffer ends mid-varint or the varint
/// overflows 64 bits.
pub fn decode_uvarint(buf: &[u8], pos: &mut usize) -> Result<u64, TraceError> {
    let mut v: u64 = 0;
    for shift in (0..64).step_by(7) {
        let Some(&byte) = buf.get(*pos) else {
            return Err(TraceError::Corrupt {
                what: "varint runs past its buffer".to_string(),
            });
        };
        *pos += 1;
        let low = u64::from(byte & 0x7f);
        // The 10th byte may only contribute the single remaining bit.
        if shift == 63 && low > 1 {
            break;
        }
        v |= low << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
    }
    Err(TraceError::Corrupt {
        what: "varint overflows 64 bits".to_string(),
    })
}

/// Appends `v` as a zigzag-mapped signed varint.
///
/// ```
/// let mut buf = Vec::new();
/// workloads::trace::encode_svarint(-1, &mut buf);
/// assert_eq!(buf, [0x01]);
/// ```
pub fn encode_svarint(v: i64, out: &mut Vec<u8>) {
    encode_uvarint(((v << 1) ^ (v >> 63)) as u64, out);
}

/// Decodes a zigzag-mapped signed varint at `*pos`, advancing it.
///
/// # Errors
///
/// See [`decode_uvarint`].
pub fn decode_svarint(buf: &[u8], pos: &mut usize) -> Result<i64, TraceError> {
    let z = decode_uvarint(buf, pos)?;
    #[allow(clippy::cast_possible_wrap)]
    Ok(((z >> 1) as i64) ^ -((z & 1) as i64))
}

fn encode_str(s: &str, out: &mut Vec<u8>) {
    encode_uvarint(s.len() as u64, out);
    out.extend_from_slice(s.as_bytes());
}

fn decode_str(buf: &[u8], pos: &mut usize) -> Result<String, TraceError> {
    let len = usize::try_from(decode_uvarint(buf, pos)?).map_err(|_| TraceError::Corrupt {
        what: "string length overflows".to_string(),
    })?;
    let end = pos.checked_add(len).filter(|&e| e <= buf.len());
    let Some(end) = end else {
        return Err(TraceError::Corrupt {
            what: "string runs past its frame".to_string(),
        });
    };
    let s = std::str::from_utf8(&buf[*pos..end]).map_err(|_| TraceError::Corrupt {
        what: "string is not UTF-8".to_string(),
    })?;
    *pos = end;
    Ok(s.to_string())
}

// --- op codec -----------------------------------------------------------

/// Per-thread delta state of the op codec (persists across chunks).
#[derive(Debug, Default, Clone, Copy)]
struct LineState {
    last: u64,
}

fn encode_op(op: Op, state: &mut LineState, out: &mut Vec<u8>) {
    match op {
        Op::Compute(c) => {
            out.push(0x00);
            encode_uvarint(u64::from(c), out);
        }
        Op::Load(line) | Op::Store(line) => {
            out.push(if matches!(op, Op::Load(_)) {
                0x01
            } else {
                0x02
            });
            #[allow(clippy::cast_possible_wrap)]
            encode_svarint(line.wrapping_sub(state.last) as i64, out);
            state.last = line;
        }
        Op::LockAcquire(id) => {
            out.push(0x03);
            encode_uvarint(u64::from(id), out);
        }
        Op::LockRelease(id) => {
            out.push(0x04);
            encode_uvarint(u64::from(id), out);
        }
        Op::Barrier(id) => {
            out.push(0x05);
            encode_uvarint(u64::from(id), out);
        }
        Op::TxBegin => out.push(0x06),
        Op::TxEnd => out.push(0x07),
    }
}

fn corrupt(what: impl Into<String>) -> TraceError {
    TraceError::Corrupt { what: what.into() }
}

fn decode_u32_operand(buf: &[u8], pos: &mut usize, what: &str) -> Result<u32, TraceError> {
    let v = decode_uvarint(buf, pos)?;
    u32::try_from(v).map_err(|_| corrupt(format!("{what} operand {v} overflows u32")))
}

fn decode_op(buf: &[u8], pos: &mut usize, state: &mut LineState) -> Result<Op, TraceError> {
    let Some(&tag) = buf.get(*pos) else {
        return Err(corrupt("op tag past chunk end"));
    };
    *pos += 1;
    Ok(match tag {
        0x00 => Op::Compute(decode_u32_operand(buf, pos, "compute")?),
        0x01 | 0x02 => {
            #[allow(clippy::cast_sign_loss)]
            let delta = decode_svarint(buf, pos)? as u64;
            state.last = state.last.wrapping_add(delta);
            if tag == 0x01 {
                Op::Load(state.last)
            } else {
                Op::Store(state.last)
            }
        }
        0x03 => Op::LockAcquire(decode_u32_operand(buf, pos, "lock")?),
        0x04 => Op::LockRelease(decode_u32_operand(buf, pos, "lock")?),
        0x05 => Op::Barrier(decode_u32_operand(buf, pos, "barrier")?),
        0x06 => Op::TxBegin,
        0x07 => Op::TxEnd,
        other => return Err(corrupt(format!("unknown op tag 0x{other:02x}"))),
    })
}

// --- framing ------------------------------------------------------------

fn io_err(op: &'static str, e: &std::io::Error) -> TraceError {
    TraceError::Io {
        op,
        message: e.to_string(),
    }
}

fn frame(payload: &[u8], out: &mut Vec<u8>) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Reads one `len`+`crc`+payload frame from `file`, already positioned at
/// the frame's length field. `limit` bounds the payload (end of section
/// or of file); `what` names the frame for error messages.
fn read_frame(file: &mut File, limit: u64, what: &str) -> Result<(Vec<u8>, u64), TraceError> {
    if limit < 8 {
        return Err(TraceError::Truncated {
            what: format!("{what} frame header"),
        });
    }
    let mut head = [0u8; 8];
    file.read_exact(&mut head).map_err(|e| io_err("read", &e))?;
    let len = u64::from(u32::from_le_bytes(head[0..4].try_into().expect("4 bytes")));
    let crc = u32::from_le_bytes(head[4..8].try_into().expect("4 bytes"));
    if len > limit - 8 {
        return Err(TraceError::Truncated {
            what: format!("{what} payload ({len} bytes declared)"),
        });
    }
    #[allow(clippy::cast_possible_truncation)]
    let mut payload = vec![0u8; len as usize];
    file.read_exact(&mut payload)
        .map_err(|e| io_err("read", &e))?;
    if crc32(&payload) != crc {
        return Err(corrupt(format!("{what} checksum mismatch")));
    }
    Ok((payload, len + 8))
}

// --- writer -------------------------------------------------------------

/// Statistics of a finished capture or a verified trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceStats {
    /// Format version of the file.
    pub version: u32,
    /// Study recorded in the header.
    pub study: String,
    /// Parameter fingerprint recorded in the header.
    pub fingerprint: String,
    /// Number of captured runs.
    pub runs: usize,
    /// Total ops across all runs and threads.
    pub ops: u64,
    /// File size in bytes.
    pub bytes: u64,
}

/// Captures op streams into a trace file.
#[derive(Debug)]
pub struct TraceWriter {
    file: File,
    study: String,
    fingerprint: String,
    bytes: u64,
    runs: usize,
    ops: u64,
}

impl TraceWriter {
    /// Creates (truncating) a trace file and writes its header.
    ///
    /// # Errors
    ///
    /// [`TraceError::Io`] on create/write failure.
    pub fn create(
        path: impl AsRef<Path>,
        study: &str,
        fingerprint: &str,
    ) -> Result<Self, TraceError> {
        let file = File::create(path).map_err(|e| io_err("create", &e))?;
        let mut w = TraceWriter {
            file,
            study: study.to_string(),
            fingerprint: fingerprint.to_string(),
            bytes: 0,
            runs: 0,
            ops: 0,
        };
        let mut header = Vec::new();
        encode_str(study, &mut header);
        encode_str(fingerprint, &mut header);
        let mut buf = Vec::with_capacity(header.len() + 20);
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        frame(&header, &mut buf);
        w.write(&buf)?;
        Ok(w)
    }

    fn write(&mut self, bytes: &[u8]) -> Result<(), TraceError> {
        self.file
            .write_all(bytes)
            .map_err(|e| io_err("write", &e))?;
        self.bytes += bytes.len() as u64;
        Ok(())
    }

    /// Drains `streams` and appends them as one captured run named
    /// `name` at `streams.len()` threads.
    ///
    /// The whole run is encoded in memory first (its per-thread section
    /// sizes go into the run-info frame), then written and flushed.
    ///
    /// # Errors
    ///
    /// [`TraceError::Io`] on write failure.
    ///
    /// # Panics
    ///
    /// Panics if `streams` is empty.
    pub fn add_run(
        &mut self,
        name: &str,
        streams: Vec<Box<dyn OpStream>>,
    ) -> Result<(), TraceError> {
        assert!(!streams.is_empty(), "a run needs at least one stream");
        let n_threads = streams.len();
        let mut sections: Vec<Vec<u8>> = Vec::with_capacity(n_threads);
        let mut op_counts: Vec<u64> = Vec::with_capacity(n_threads);
        for mut stream in streams {
            let mut section = Vec::new();
            let mut chunk = Vec::with_capacity(CHUNK_BYTES + 16);
            let mut state = LineState::default();
            let mut count = 0u64;
            while let Some(op) = stream.next_op() {
                encode_op(op, &mut state, &mut chunk);
                count += 1;
                if chunk.len() >= CHUNK_BYTES {
                    section.push(TAG_CHUNK);
                    frame(&chunk, &mut section);
                    chunk.clear();
                }
            }
            if !chunk.is_empty() {
                section.push(TAG_CHUNK);
                frame(&chunk, &mut section);
            }
            sections.push(section);
            op_counts.push(count);
        }
        let mut info = Vec::new();
        encode_str(name, &mut info);
        encode_uvarint(n_threads as u64, &mut info);
        for s in &sections {
            encode_uvarint(s.len() as u64, &mut info);
        }
        for &c in &op_counts {
            encode_uvarint(c, &mut info);
        }
        let mut buf = Vec::with_capacity(info.len() + 9);
        buf.push(TAG_RUN);
        frame(&info, &mut buf);
        self.write(&buf.clone())?;
        for s in &sections {
            self.write(s)?;
        }
        self.file.flush().map_err(|e| io_err("flush", &e))?;
        self.runs += 1;
        self.ops += op_counts.iter().sum::<u64>();
        Ok(())
    }

    /// Flushes and closes the capture, returning its statistics.
    ///
    /// # Errors
    ///
    /// [`TraceError::Io`] on flush failure.
    pub fn finish(mut self) -> Result<TraceStats, TraceError> {
        self.file.flush().map_err(|e| io_err("flush", &e))?;
        Ok(TraceStats {
            version: FORMAT_VERSION,
            study: self.study,
            fingerprint: self.fingerprint,
            runs: self.runs,
            ops: self.ops,
            bytes: self.bytes,
        })
    }
}

// --- reader -------------------------------------------------------------

/// Index entry for one captured run: where its sections live.
#[derive(Debug, Clone)]
struct RunIndex {
    name: String,
    n_threads: usize,
    /// Per-thread `(file offset, section byte length, declared op count)`.
    sections: Vec<(u64, u64, u64)>,
}

/// The shared fault slot of one replayed run.
///
/// [`OpStream`] has no error channel, so a [`TraceStream`] that hits
/// damage parks the first typed error here and ends its stream; the
/// driver checks the slot after the run (a non-empty slot means the run's
/// results must be discarded — the replay was incomplete).
#[derive(Debug, Clone, Default)]
pub struct TraceFault(Arc<Mutex<Option<TraceError>>>);

impl TraceFault {
    fn set(&self, e: TraceError) {
        self.0
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get_or_insert(e);
    }

    /// Takes the parked error, if any stream of the run hit damage.
    #[must_use]
    pub fn take(&self) -> Option<TraceError> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner).take()
    }
}

/// One replayed run: per-thread op streams plus the shared fault slot.
pub struct TraceRun {
    /// The per-thread streams, in thread order — feed them to the engine
    /// exactly like [`crate::streams_for`] output.
    pub streams: Vec<Box<dyn OpStream>>,
    /// The shared fault slot; check after the run.
    pub fault: TraceFault,
}

impl std::fmt::Debug for TraceRun {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceRun")
            .field("streams", &self.streams.len())
            .field("fault", &self.fault)
            .finish()
    }
}

/// An indexed, identity-checked trace file ready to replay runs.
#[derive(Debug)]
pub struct TraceReader {
    path: PathBuf,
    stats_version: u32,
    study: String,
    fingerprint: String,
    runs: Vec<RunIndex>,
    bytes: u64,
}

impl TraceReader {
    /// Opens a trace: validates magic, version and header checksum,
    /// optionally checks the `(study, fingerprint)` identity, then
    /// indexes every run by seeking over its sections (no op decoding).
    ///
    /// # Errors
    ///
    /// - [`TraceError::Io`] when the file is unreadable,
    /// - [`TraceError::BadHeader`] on a bad magic or damaged header,
    /// - [`TraceError::VersionMismatch`] for other format versions,
    /// - [`TraceError::StudyMismatch`] / [`TraceError::ParamsMismatch`]
    ///   when `expected` identity does not match the header,
    /// - [`TraceError::Truncated`] when a frame or section is declared
    ///   past the end of the file,
    /// - [`TraceError::Corrupt`] when a run-info frame fails its
    ///   checksum.
    pub fn open(
        path: impl AsRef<Path>,
        expected: Option<(&str, &str)>,
    ) -> Result<Self, TraceError> {
        let path = path.as_ref().to_path_buf();
        let mut file = File::open(&path).map_err(|e| io_err("open", &e))?;
        let bytes = file.metadata().map_err(|e| io_err("open", &e))?.len();
        if bytes < 12 {
            return Err(TraceError::BadHeader {
                why: format!("file is {bytes} bytes, smaller than any header"),
            });
        }
        let mut fixed = [0u8; 12];
        file.read_exact(&mut fixed)
            .map_err(|e| io_err("read", &e))?;
        if &fixed[0..8] != MAGIC {
            return Err(TraceError::BadHeader {
                why: "bad magic (not an SSTRACE file)".to_string(),
            });
        }
        let version = u32::from_le_bytes(fixed[8..12].try_into().expect("4 bytes"));
        if version != FORMAT_VERSION {
            return Err(TraceError::VersionMismatch {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        let mut pos = 12u64;
        let (header, consumed) =
            read_frame(&mut file, bytes - pos, "header").map_err(|e| match e {
                // A header that fails its checksum is an identity
                // failure, aligned with the journal's BadHeader.
                TraceError::Corrupt { what } => TraceError::BadHeader { why: what },
                other => other,
            })?;
        pos += consumed;
        let mut hp = 0usize;
        let study = decode_str(&header, &mut hp).map_err(|_| TraceError::BadHeader {
            why: "undecodable study name".to_string(),
        })?;
        let fingerprint = decode_str(&header, &mut hp).map_err(|_| TraceError::BadHeader {
            why: "undecodable fingerprint".to_string(),
        })?;
        if hp != header.len() {
            return Err(TraceError::BadHeader {
                why: "trailing bytes after header fields".to_string(),
            });
        }
        if let Some((want_study, want_fp)) = expected {
            if study != want_study {
                return Err(TraceError::StudyMismatch {
                    trace: study,
                    requested: want_study.to_string(),
                });
            }
            if fingerprint != want_fp {
                return Err(TraceError::ParamsMismatch {
                    trace: fingerprint,
                    requested: want_fp.to_string(),
                });
            }
        }

        let mut runs = Vec::new();
        while pos < bytes {
            let mut tag = [0u8; 1];
            file.read_exact(&mut tag).map_err(|e| io_err("read", &e))?;
            pos += 1;
            if tag[0] != TAG_RUN {
                return Err(corrupt(format!(
                    "expected run tag at byte {}, found 0x{:02x}",
                    pos - 1,
                    tag[0]
                )));
            }
            let (info, consumed) = read_frame(&mut file, bytes - pos, "run-info")?;
            pos += consumed;
            let mut ip = 0usize;
            let name = decode_str(&info, &mut ip)?;
            let n_threads = usize::try_from(decode_uvarint(&info, &mut ip)?)
                .map_err(|_| corrupt("thread count overflows"))?;
            if n_threads == 0 {
                return Err(corrupt(format!("run '{name}' declares zero threads")));
            }
            let mut lens = Vec::with_capacity(n_threads);
            for _ in 0..n_threads {
                lens.push(decode_uvarint(&info, &mut ip)?);
            }
            let mut counts = Vec::with_capacity(n_threads);
            for _ in 0..n_threads {
                counts.push(decode_uvarint(&info, &mut ip)?);
            }
            if ip != info.len() {
                return Err(corrupt(format!(
                    "trailing bytes after run-info of '{name}'"
                )));
            }
            let mut sections = Vec::with_capacity(n_threads);
            for (t, (&len, &count)) in lens.iter().zip(&counts).enumerate() {
                if len > bytes - pos {
                    return Err(TraceError::Truncated {
                        what: format!("run '{name}' thread {t} section"),
                    });
                }
                sections.push((pos, len, count));
                pos += len;
            }
            file.seek(SeekFrom::Start(pos))
                .map_err(|e| io_err("read", &e))?;
            runs.push(RunIndex {
                name,
                n_threads,
                sections,
            });
        }
        Ok(TraceReader {
            path,
            stats_version: version,
            study,
            fingerprint,
            runs,
            bytes,
        })
    }

    /// The study recorded in the header.
    #[must_use]
    pub fn study(&self) -> &str {
        &self.study
    }

    /// The parameter fingerprint recorded in the header.
    #[must_use]
    pub fn fingerprint(&self) -> &str {
        &self.fingerprint
    }

    /// The captured `(name, n_threads)` run keys, in file order.
    #[must_use]
    pub fn run_keys(&self) -> Vec<(String, usize)> {
        self.runs
            .iter()
            .map(|r| (r.name.clone(), r.n_threads))
            .collect()
    }

    /// Builds the replay streams for the run captured as (`name`,
    /// `n_threads`). Each stream opens its own file handle, so several
    /// runs (or the same run twice) can replay concurrently.
    ///
    /// # Errors
    ///
    /// - [`TraceError::MissingRun`] when the trace has no such run,
    /// - [`TraceError::Io`] when the file cannot be re-opened.
    pub fn run_streams(&self, name: &str, n_threads: usize) -> Result<TraceRun, TraceError> {
        let Some(run) = self
            .runs
            .iter()
            .find(|r| r.name == name && r.n_threads == n_threads)
        else {
            return Err(TraceError::MissingRun {
                name: name.to_string(),
                threads: n_threads,
            });
        };
        let fault = TraceFault::default();
        let mut streams: Vec<Box<dyn OpStream>> = Vec::with_capacity(run.n_threads);
        for (t, &(offset, len, count)) in run.sections.iter().enumerate() {
            let mut file = File::open(&self.path).map_err(|e| io_err("open", &e))?;
            file.seek(SeekFrom::Start(offset))
                .map_err(|e| io_err("open", &e))?;
            streams.push(Box::new(TraceStream {
                file,
                remaining: len,
                declared_ops: count,
                decoded_ops: 0,
                label: format!("run '{}' thread {t}", run.name),
                buf: Vec::new(),
                buf_head: 0,
                state: LineState::default(),
                fault: fault.clone(),
                dead: false,
            }));
        }
        Ok(TraceRun { streams, fault })
    }
}

/// One thread's streaming decoder: reads CRC-framed chunks from its own
/// file cursor, holding at most one decoded chunk in memory.
#[derive(Debug)]
pub struct TraceStream {
    file: File,
    /// Section bytes not yet read from the file.
    remaining: u64,
    declared_ops: u64,
    decoded_ops: u64,
    label: String,
    buf: Vec<Op>,
    buf_head: usize,
    state: LineState,
    fault: TraceFault,
    dead: bool,
}

impl TraceStream {
    /// Reads and decodes the next chunk into `buf`. Returns `false` at a
    /// clean end of section; parks a fault and returns `false` on damage.
    fn refill(&mut self) -> bool {
        if self.remaining == 0 {
            if self.decoded_ops != self.declared_ops {
                self.fault.set(corrupt(format!(
                    "{} decoded {} ops, {} declared",
                    self.label, self.decoded_ops, self.declared_ops
                )));
            }
            return false;
        }
        let mut tag = [0u8; 1];
        if let Err(e) = self.file.read_exact(&mut tag) {
            self.fault.set(io_err("read", &e));
            return false;
        }
        if tag[0] != TAG_CHUNK {
            self.fault.set(corrupt(format!(
                "{}: expected chunk tag, found 0x{:02x}",
                self.label, tag[0]
            )));
            return false;
        }
        let (payload, consumed) = match read_frame(&mut self.file, self.remaining - 1, &self.label)
        {
            Ok(r) => r,
            Err(e) => {
                // A chunk declared past its section is section-level
                // damage, not file truncation.
                let e = match e {
                    TraceError::Truncated { what } => {
                        corrupt(format!("chunk overruns its section ({what})"))
                    }
                    other => other,
                };
                self.fault.set(e);
                return false;
            }
        };
        self.remaining -= consumed + 1;
        self.buf.clear();
        self.buf_head = 0;
        let mut pos = 0usize;
        while pos < payload.len() {
            match decode_op(&payload, &mut pos, &mut self.state) {
                Ok(op) => self.buf.push(op),
                Err(e) => {
                    self.fault.set(e);
                    return false;
                }
            }
        }
        self.decoded_ops += self.buf.len() as u64;
        if self.decoded_ops > self.declared_ops {
            self.fault.set(corrupt(format!(
                "{} decoded more ops than the {} declared",
                self.label, self.declared_ops
            )));
            return false;
        }
        !self.buf.is_empty()
    }
}

impl OpStream for TraceStream {
    fn next_op(&mut self) -> Option<Op> {
        loop {
            if let Some(&op) = self.buf.get(self.buf_head) {
                self.buf_head += 1;
                return Some(op);
            }
            if self.dead {
                return None;
            }
            if !self.refill() {
                self.dead = true;
                return None;
            }
        }
    }
}

// --- verification -------------------------------------------------------

/// Fully verifies a trace: header identity, every frame checksum and
/// every op decode of every run (what the `tracecheck` binary runs).
///
/// # Errors
///
/// Any [`TraceError`] the file's damage maps to; see
/// [`TraceReader::open`].
pub fn verify(path: impl AsRef<Path>) -> Result<TraceStats, TraceError> {
    let reader = TraceReader::open(&path, None)?;
    let mut ops = 0u64;
    for (name, n) in reader.run_keys() {
        let run = reader.run_streams(&name, n)?;
        for mut stream in run.streams {
            while stream.next_op().is_some() {
                ops += 1;
            }
        }
        if let Some(e) = run.fault.take() {
            return Err(e);
        }
    }
    Ok(TraceStats {
        version: reader.stats_version,
        study: reader.study.clone(),
        fingerprint: reader.fingerprint.clone(),
        runs: reader.runs.len(),
        ops,
        bytes: reader.bytes,
    })
}

/// Where a sweep traces to or replays from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSpec {
    /// Trace file path.
    pub path: String,
    /// Replay the sweep's runs from the file (`repro --trace-in`);
    /// `false` captures the generated streams to it (`repro
    /// --trace-out`).
    pub replay: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmpsim::VecStream;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn temp_path(tag: &str) -> PathBuf {
        static N: AtomicUsize = AtomicUsize::new(0);
        std::env::temp_dir().join(format!(
            "sstrace-unit-{}-{}-{tag}.sstrace",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ))
    }

    fn drain(stream: &mut dyn OpStream) -> Vec<Op> {
        let mut out = Vec::new();
        while let Some(op) = stream.next_op() {
            out.push(op);
        }
        out
    }

    #[test]
    fn uvarint_boundary_values() {
        for v in [
            0u64,
            1,
            127,
            128,
            129,
            16_383,
            16_384,
            u64::from(u32::MAX),
            u64::MAX - 1,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            encode_uvarint(v, &mut buf);
            let mut pos = 0;
            assert_eq!(decode_uvarint(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len(), "no trailing bytes for {v}");
        }
    }

    #[test]
    fn svarint_boundary_values() {
        for v in [0i64, 1, -1, 63, 64, -64, -65, i64::MAX, i64::MIN] {
            let mut buf = Vec::new();
            encode_svarint(v, &mut buf);
            let mut pos = 0;
            assert_eq!(decode_svarint(&buf, &mut pos).unwrap(), v);
        }
    }

    #[test]
    fn varint_rejects_truncation_and_overflow() {
        // Truncated: continuation bit set, buffer ends.
        let mut pos = 0;
        assert!(matches!(
            decode_uvarint(&[0x80], &mut pos),
            Err(TraceError::Corrupt { .. })
        ));
        // Overflow: 11 continuation bytes.
        let mut pos = 0;
        assert!(matches!(
            decode_uvarint(&[0xff; 11], &mut pos),
            Err(TraceError::Corrupt { .. })
        ));
    }

    #[test]
    fn delta_codec_covers_full_address_space() {
        // 0, 1, max address and backwards jumps all round-trip through
        // the wrapping delta.
        let ops = vec![
            Op::Load(0),
            Op::Load(1),
            Op::Load(u64::MAX),
            Op::Load(0),
            Op::Store(1 << 30),
            Op::Load(5),
            Op::Store(u64::MAX - 1),
        ];
        let mut enc = LineState::default();
        let mut buf = Vec::new();
        for &op in &ops {
            encode_op(op, &mut enc, &mut buf);
        }
        let mut dec = LineState::default();
        let mut pos = 0;
        let mut back = Vec::new();
        while pos < buf.len() {
            back.push(decode_op(&buf, &mut pos, &mut dec).unwrap());
        }
        assert_eq!(back, ops);
    }

    #[test]
    fn write_read_round_trip_multi_thread() {
        let path = temp_path("roundtrip");
        let t0 = vec![Op::Compute(10), Op::Load(42), Op::Barrier(0)];
        let t1 = vec![
            Op::LockAcquire(3),
            Op::Store(7),
            Op::LockRelease(3),
            Op::TxBegin,
            Op::TxEnd,
            Op::Barrier(0),
        ];
        let mut w = TraceWriter::create(&path, "demo", "cafebabe").unwrap();
        w.add_run(
            "toy",
            vec![
                Box::new(VecStream::new(t0.clone())),
                Box::new(VecStream::new(t1.clone())),
            ],
        )
        .unwrap();
        let stats = w.finish().unwrap();
        assert_eq!(stats.runs, 1);
        assert_eq!(stats.ops, 9);

        let r = TraceReader::open(&path, Some(("demo", "cafebabe"))).unwrap();
        let mut run = r.run_streams("toy", 2).unwrap();
        assert_eq!(drain(run.streams[0].as_mut()), t0);
        assert_eq!(drain(run.streams[1].as_mut()), t1);
        assert!(run.fault.take().is_none());
        // Replaying the same run twice works (fresh cursors).
        let mut again = r.run_streams("toy", 2).unwrap();
        assert_eq!(drain(again.streams[0].as_mut()), t0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_run_is_typed() {
        let path = temp_path("missing");
        let mut w = TraceWriter::create(&path, "demo", "x").unwrap();
        w.add_run("toy", vec![Box::new(VecStream::new(vec![Op::TxBegin]))])
            .unwrap();
        w.finish().unwrap();
        let r = TraceReader::open(&path, None).unwrap();
        assert!(matches!(
            r.run_streams("toy", 2),
            Err(TraceError::MissingRun { threads: 2, .. })
        ));
        assert!(matches!(
            r.run_streams("other", 1),
            Err(TraceError::MissingRun { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn identity_mismatches_are_typed() {
        let path = temp_path("identity");
        let w = TraceWriter::create(&path, "fig6", "deadbeef").unwrap();
        w.finish().unwrap();
        assert!(matches!(
            TraceReader::open(&path, Some(("fig1", "deadbeef"))),
            Err(TraceError::StudyMismatch { .. })
        ));
        assert!(matches!(
            TraceReader::open(&path, Some(("fig6", "00000000"))),
            Err(TraceError::ParamsMismatch { .. })
        ));
        assert!(TraceReader::open(&path, Some(("fig6", "deadbeef"))).is_ok());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_and_version_are_typed() {
        let path = temp_path("magic");
        std::fs::write(&path, b"NOTATRACEFILE....").unwrap();
        assert!(matches!(
            TraceReader::open(&path, None),
            Err(TraceError::BadHeader { .. })
        ));
        // Valid file with the version field patched to 99.
        let w = TraceWriter::create(&path, "demo", "x").unwrap();
        w.finish().unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            TraceReader::open(&path, None),
            Err(TraceError::VersionMismatch {
                found: 99,
                supported: FORMAT_VERSION
            })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_section_detected_at_open() {
        let path = temp_path("trunc");
        let mut w = TraceWriter::create(&path, "demo", "x").unwrap();
        w.add_run(
            "toy",
            vec![Box::new(VecStream::new(vec![Op::Compute(5); 100]))],
        )
        .unwrap();
        w.finish().unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();
        assert!(matches!(
            TraceReader::open(&path, None),
            Err(TraceError::Truncated { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bit_flip_in_chunk_parks_fault_not_panic() {
        let path = temp_path("flip");
        let mut w = TraceWriter::create(&path, "demo", "x").unwrap();
        w.add_run(
            "toy",
            vec![Box::new(VecStream::new(vec![Op::Load(123); 50]))],
        )
        .unwrap();
        w.finish().unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1; // inside the final chunk payload
        bytes[last] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        // The index scan does not decode chunks, so open succeeds …
        let r = TraceReader::open(&path, None).unwrap();
        let mut run = r.run_streams("toy", 1).unwrap();
        let _ = drain(run.streams[0].as_mut());
        // … but the replay parks the typed corruption.
        let e = run.fault.take().expect("fault parked");
        assert!(matches!(e, TraceError::Corrupt { .. }), "{e:?}");
        // verify() surfaces it as an error.
        assert!(matches!(verify(&path), Err(TraceError::Corrupt { .. })));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn verify_reports_stats() {
        let path = temp_path("verify");
        let mut w = TraceWriter::create(&path, "demo", "feedc0de").unwrap();
        w.add_run(
            "a",
            vec![Box::new(VecStream::new(vec![Op::Compute(1), Op::TxEnd]))],
        )
        .unwrap();
        w.add_run("b", vec![Box::new(VecStream::new(vec![Op::Store(9)]))])
            .unwrap();
        let written = w.finish().unwrap();
        let checked = verify(&path).unwrap();
        assert_eq!(checked, written);
        assert_eq!(checked.runs, 2);
        assert_eq!(checked.ops, 3);
        assert_eq!(
            checked.bytes,
            std::fs::metadata(&path).unwrap().len(),
            "stats bytes match the file"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn chunking_splits_large_streams() {
        // Enough ops to cross several chunk boundaries; delta state must
        // survive them.
        let ops: Vec<Op> = (0..40_000u64)
            .map(|i| {
                if i % 3 == 0 {
                    Op::Load(i * 17 % 1_000)
                } else {
                    Op::Store(u64::MAX - i)
                }
            })
            .collect();
        let path = temp_path("chunks");
        let mut w = TraceWriter::create(&path, "demo", "x").unwrap();
        w.add_run("big", vec![Box::new(VecStream::new(ops.clone()))])
            .unwrap();
        w.finish().unwrap();
        let r = TraceReader::open(&path, None).unwrap();
        let mut run = r.run_streams("big", 1).unwrap();
        assert_eq!(drain(run.streams[0].as_mut()), ops);
        assert!(run.fault.take().is_none());
        std::fs::remove_file(&path).ok();
    }
}
