//! Golden-output tests: the text emitter of the redesigned Study API
//! must reproduce the pre-redesign `Display` output bit-identically.
//!
//! The files under `tests/goldens/` are verbatim stdout captures of
//! `repro <study> --scale 0.05` taken *before* the port to the
//! structured `Report` model; every study's default-parameter text
//! rendering is pinned against them.

use experiments::study::{find_study, StudyParams};

const SCALE: f64 = 0.05;

fn golden(name: &str) -> String {
    let path = format!("{}/tests/goldens/{name}.txt", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

fn check(name: &str) {
    let study = find_study(name).expect("study registered");
    let report = study
        .run(&StudyParams::with_scale(SCALE))
        .expect("clean run");
    // `repro` prints the report with `println!`, appending one newline.
    let text = format!("{}\n", report.to_text());
    assert_eq!(
        text,
        golden(name),
        "{name}: text emitter deviates from the pre-redesign golden"
    );
}

#[test]
fn fig1_matches_golden() {
    check("fig1");
}

#[test]
fn fig2_matches_golden() {
    check("fig2");
}

#[test]
fn fig3_matches_golden() {
    check("fig3");
}

#[test]
fn fig4_matches_golden() {
    check("fig4");
}

#[test]
fn fig5_matches_golden() {
    check("fig5");
}

#[test]
fn fig6_matches_golden() {
    check("fig6");
}

#[test]
fn fig7_matches_golden() {
    check("fig7");
}

#[test]
fn fig8_matches_golden() {
    check("fig8");
}

#[test]
fn fig9_matches_golden() {
    check("fig9");
}

#[test]
fn hwcost_matches_golden() {
    check("hwcost");
}

#[test]
fn regions_matches_golden() {
    check("regions");
}

#[test]
fn scaling_matches_golden() {
    check("scaling");
}
