//! The JSON emitter must carry exactly the values the text emitter
//! prints: both render the same `Report`, so numbers parsed back out of
//! the JSON form must equal the in-memory study data bit-for-bit
//! (the emitter uses Rust's shortest round-trip float formatting).

use experiments::study::{find_study, StudyParams};
use speedup_stacks::report::json;

#[test]
fn fig9_json_numbers_equal_report_values() {
    let fig = experiments::fig89::run_fig9_params(&StudyParams::with_scale(0.05));
    let report = fig.to_report();
    let doc = json::parse(&report.to_json()).expect("valid JSON");

    let blocks = doc.get("blocks").unwrap().as_array().unwrap();
    let table = blocks
        .iter()
        .find(|b| b.get("kind").and_then(|k| k.as_str()) == Some("table"))
        .expect("interference table present");
    let rows = table.get("rows").unwrap().as_array().unwrap();
    assert_eq!(rows.len(), fig.bars.len());
    for (row, bar) in rows.iter().zip(&fig.bars) {
        let row = row.as_array().unwrap();
        assert_eq!(row[0].as_str(), Some(bar.label.as_str()));
        assert_eq!(row[1].as_f64(), Some(bar.negative), "negative round-trip");
        assert_eq!(row[2].as_f64(), Some(bar.positive), "positive round-trip");
        assert_eq!(row[3].as_f64(), Some(bar.net()), "net round-trip");
    }

    // The text emitter prints those same values (at 3 decimals).
    let text = report.to_text();
    for bar in &fig.bars {
        assert!(
            text.contains(&format!("{:.3}", bar.negative)),
            "text misses negative of {}",
            bar.label
        );
    }
}

#[test]
fn hwcost_json_scalars_equal_model_values() {
    let study = find_study("hwcost").expect("registered");
    let report = study.run(&StudyParams::default()).expect("clean run");
    let model = speedup_stacks::HardwareCostModel::paper_default();
    let doc = json::parse(&report.to_json()).expect("valid JSON");
    let blocks = doc.get("blocks").unwrap().as_array().unwrap();
    let scalar = |name: &str| {
        blocks
            .iter()
            .find(|b| b.get("name").and_then(|n| n.as_str()) == Some(name))
            .and_then(|b| b.get("value"))
            .and_then(|v| v.as_f64())
            .unwrap_or_else(|| panic!("scalar {name} missing"))
    };
    assert_eq!(
        scalar("interference_bytes") as u64,
        model.interference_bytes()
    );
    assert_eq!(scalar("spin_table_bytes") as u64, model.spin_table_bytes());
    assert_eq!(
        scalar("total_bytes_per_core") as u64,
        model.total_bytes_per_core()
    );
    assert_eq!(scalar("total_bytes") as u64, model.total_bytes(16));
}

#[test]
fn stack_serialization_carries_all_components() {
    let fig = experiments::fig23::run_fig2_params(&StudyParams::with_scale(0.05));
    let doc = json::parse(&fig.to_report().to_json()).expect("valid JSON");
    let blocks = doc.get("blocks").unwrap().as_array().unwrap();
    let stack = blocks
        .iter()
        .find(|b| b.get("kind").and_then(|k| k.as_str()) == Some("stack"))
        .and_then(|b| b.get("stack"))
        .expect("stack block present");
    assert_eq!(
        stack.get("n").unwrap().as_f64(),
        Some(fig.stack.num_threads() as f64)
    );
    assert_eq!(
        stack.get("estimated_speedup").unwrap().as_f64(),
        Some(fig.stack.estimated_speedup())
    );
    assert_eq!(
        stack.get("actual_speedup").unwrap().as_f64(),
        fig.stack.actual_speedup()
    );
    let overheads = stack.get("overheads").expect("overheads object");
    for c in speedup_stacks::Component::ALL {
        assert_eq!(
            overheads.get(c.label()).unwrap().as_f64(),
            Some(fig.stack.component(c)),
            "component {c} round-trip"
        );
    }
}

#[test]
fn csv_and_json_agree_on_table_values() {
    let fig = experiments::fig89::run_fig9_params(&StudyParams::with_scale(0.05));
    let report = fig.to_report();
    let csv = report.to_csv();
    // Every bar value appears in the CSV in shortest-float form (the
    // same tokens the JSON emitter writes).
    for bar in &fig.bars {
        assert!(csv.contains(&format!("{}", bar.negative)));
        assert!(csv.contains(&format!("{}", bar.positive)));
    }
}
