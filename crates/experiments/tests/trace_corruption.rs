//! Adversarial corruption tests for the trace capture/replay path,
//! mirroring the journal fault-injection suite:
//!
//! - a captured study replays **bit-identical** in every emitter (the
//!   capture report carries a provenance block; the replayed report
//!   carries nothing extra and matches the generated run byte for byte);
//! - each corruption class — truncated tail, bit-flipped record, wrong
//!   format version, wrong parameter fingerprint — is rejected with its
//!   own typed [`speedup_stacks::error::TraceError`] reason (distinct
//!   messages, distinct diagnoses), never a panic and never a silently
//!   wrong replay;
//! - the committed golden traces replay through the sweep to the exact
//!   rows a generated run produces.

use std::path::PathBuf;

use experiments::study::{find_study, StudyParams};
use experiments::{
    run_grid_ft, scaled_profile, FaultPolicy, Parallelism, RunOptions, SweepOptions, TraceSpec,
};
use speedup_stacks::error::TraceError;
use speedup_stacks::SimError;
use workloads::{find, Suite};

fn tmp(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("repro-trace-{}-{tag}.sstrace", std::process::id()))
}

/// Small fig1 parameters shared by the trace tests (the same shape the
/// journal fault suite uses: 3 benchmarks × 2 counts).
fn small_fig1_params() -> StudyParams {
    StudyParams {
        threads: Some(vec![2, 4]),
        parallelism: Parallelism::Serial,
        ..StudyParams::with_scale(0.02)
    }
}

fn with_trace(base: &StudyParams, path: &str, replay: bool) -> StudyParams {
    StudyParams {
        trace: Some(TraceSpec {
            path: path.to_string(),
            replay,
        }),
        ..base.clone()
    }
}

/// Captures `small_fig1_params` to `path` and returns the capture
/// report's text (callers reuse the file for corruption).
fn capture_fig1(path: &str) -> String {
    let study = find_study("fig1").unwrap();
    let report = study
        .run(&with_trace(&small_fig1_params(), path, false))
        .expect("capture run");
    report.to_text()
}

/// Replays `path` and returns the typed trace error the study run must
/// fail with.
fn replay_error(path: &str) -> TraceError {
    replay_error_params(&small_fig1_params(), path)
}

fn replay_error_params(base: &StudyParams, path: &str) -> TraceError {
    let study = find_study("fig1").unwrap();
    match study.run(&with_trace(base, path, true)) {
        Err(SimError::Trace(e)) => e,
        Ok(_) => panic!("replay of a damaged trace succeeded"),
        Err(other) => panic!("expected SimError::Trace, got {other:?}"),
    }
}

#[test]
fn captured_study_replays_bit_identically_with_provenance_only_on_capture() {
    let study = find_study("fig1").unwrap();
    let base = small_fig1_params();
    let clean = study.run(&base).expect("generated run");

    let path = tmp("identity");
    let spath = path.to_string_lossy().to_string();
    let captured = study
        .run(&with_trace(&base, &spath, false))
        .expect("capture run");
    // The capture report names its trace file in a provenance block …
    let cap_text = captured.to_text();
    assert!(
        cap_text.contains(&format!("trace captured: {spath}")),
        "{cap_text}"
    );
    assert!(captured.to_json().contains("\"kind\": \"provenance\""));
    assert!(captured.to_csv().contains("provenance,trace-capture"));

    // … and the replay carries nothing extra: byte-identical to the
    // generated run in every emitter.
    let replayed = study
        .run(&with_trace(&base, &spath, true))
        .expect("replay run");
    assert_eq!(replayed.to_text(), clean.to_text());
    assert_eq!(replayed.to_json(), clean.to_json());
    assert_eq!(replayed.to_csv(), clean.to_csv());
    let _ = std::fs::remove_file(&path);
}

#[test]
fn truncated_tail_is_rejected_as_truncated() {
    let path = tmp("truncate");
    let spath = path.to_string_lossy().to_string();
    capture_fig1(&spath);
    // Chop the artifact a mid-write kill leaves: the final section now
    // ends before its declared length.
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();
    let e = replay_error(&spath);
    assert!(matches!(e, TraceError::Truncated { .. }), "{e:?}");
    assert!(e.to_string().contains("truncated"), "{e}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn bit_flipped_record_is_rejected_as_corrupt() {
    let path = tmp("bitflip");
    let spath = path.to_string_lossy().to_string();
    capture_fig1(&spath);
    // Flip one bit inside the final chunk's payload: the file still
    // indexes cleanly (lengths are intact) but the chunk CRC no longer
    // matches when the replay reaches it.
    let mut bytes = std::fs::read(&path).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x40;
    std::fs::write(&path, &bytes).unwrap();
    let e = replay_error(&spath);
    assert!(matches!(e, TraceError::Corrupt { .. }), "{e:?}");
    assert!(e.to_string().contains("corrupt"), "{e}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn wrong_format_version_is_rejected_as_version_mismatch() {
    let path = tmp("version");
    let spath = path.to_string_lossy().to_string();
    capture_fig1(&spath);
    // Patch the version field (bytes 8..12, outside the header CRC on
    // purpose — an old build must diagnose a future version cleanly).
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
    std::fs::write(&path, &bytes).unwrap();
    let e = replay_error(&spath);
    assert!(
        matches!(e, TraceError::VersionMismatch { found: 99, .. }),
        "{e:?}"
    );
    assert!(e.to_string().contains("version 99"), "{e}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn wrong_params_fingerprint_is_rejected_as_params_mismatch() {
    let path = tmp("params");
    let spath = path.to_string_lossy().to_string();
    capture_fig1(&spath);
    // Same study, different parameters: replaying this trace under a
    // different scale would silently fabricate results — the fingerprint
    // in the header must catch it at open.
    let other = StudyParams {
        scale: 0.03,
        ..small_fig1_params()
    };
    let e = replay_error_params(&other, &spath);
    assert!(matches!(e, TraceError::ParamsMismatch { .. }), "{e:?}");
    assert!(e.to_string().contains("different parameters"), "{e}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn corruption_classes_have_distinct_messages() {
    // One trace, four damages — four *different* diagnoses. A shared
    // "trace bad" message would hide which recovery applies (re-capture
    // vs version upgrade vs fixing the parameters).
    let messages = [
        TraceError::Truncated {
            what: "run 'x' thread 0 section".into(),
        }
        .to_string(),
        TraceError::Corrupt {
            what: "run 'x' thread 0 checksum mismatch".into(),
        }
        .to_string(),
        TraceError::VersionMismatch {
            found: 99,
            supported: 1,
        }
        .to_string(),
        TraceError::ParamsMismatch {
            trace: "aaaaaaaa".into(),
            requested: "bbbbbbbb".into(),
        }
        .to_string(),
    ];
    for (i, a) in messages.iter().enumerate() {
        for b in &messages[i + 1..] {
            assert_ne!(a, b);
        }
    }
}

#[test]
fn missing_trace_file_is_a_typed_io_error_not_a_panic() {
    let e = replay_error("/nonexistent/never/fig1.sstrace");
    assert!(matches!(e, TraceError::Io { op: "open", .. }), "{e:?}");
}

#[test]
fn golden_traces_replay_to_the_generated_rows() {
    // The committed golden fixtures (see workloads/tests/goldens/) drive
    // the sweep itself: a replayed grid must produce exactly the rows a
    // generated grid produces.
    let goldens = [
        (
            "blackscholes",
            Suite::ParsecSmall,
            "blackscholes_small.sstrace",
        ),
        ("cholesky", Suite::Splash2, "cholesky.sstrace"),
    ];
    for (name, suite, file) in goldens {
        let profile = scaled_profile(&find(name, suite).unwrap(), 0.05);
        let profiles = vec![profile];
        let mk = |_: &workloads::WorkloadProfile, n: usize| RunOptions::symmetric(n);
        let path = format!(
            "{}/../workloads/tests/goldens/{file}",
            env!("CARGO_MANIFEST_DIR")
        );
        let spec = TraceSpec { path, replay: true };
        let replay_sweep = SweepOptions {
            trace: Some(&spec),
            fingerprint: "golden-v1",
            ..SweepOptions::plain(Parallelism::Serial, FaultPolicy::default(), "golden")
        };
        let replayed = run_grid_ft(&profiles, &[2], &mk, &replay_sweep)
            .unwrap_or_else(|e| panic!("{file}: golden replay failed: {e}"));
        let generated = run_grid_ft(
            &profiles,
            &[2],
            &mk,
            &SweepOptions::plain(Parallelism::Serial, FaultPolicy::default(), "golden"),
        )
        .unwrap();
        assert!(!replayed.degraded.is_degraded(), "{file}");
        assert!(
            replayed.provenance.is_none(),
            "replay attaches no provenance"
        );
        assert_eq!(replayed.rows, generated.rows, "{file}");
    }
}
