//! CLI tests for the shared stdin input source: `jsoncheck` and
//! `tracecheck` both accept `-` (or no argument, for `jsoncheck`) and
//! validate bytes piped through stdin exactly as they would a file.

use std::io::Write;
use std::process::{Command, Stdio};

use experiments::study::{find_study, StudyParams};
use experiments::TraceSpec;

fn run_with_stdin(bin: &str, args: &[&str], input: &[u8]) -> (i32, String, String) {
    let mut child = Command::new(bin)
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn");
    child
        .stdin
        .take()
        .expect("piped stdin")
        .write_all(input)
        .expect("feed stdin");
    let out = child.wait_with_output().expect("wait");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).to_string(),
        String::from_utf8_lossy(&out.stderr).to_string(),
    )
}

#[test]
fn jsoncheck_validates_stdin_via_dash() {
    let bin = env!("CARGO_BIN_EXE_jsoncheck");
    let (code, _, stderr) = run_with_stdin(bin, &["-"], b"{\"a\": [1, 2, 3]}");
    assert_eq!(code, 0, "{stderr}");
    assert!(stderr.contains("<stdin>: ok"), "{stderr}");

    let (code, _, stderr) = run_with_stdin(bin, &["-"], b"{broken");
    assert_ne!(code, 0);
    assert!(stderr.contains("<stdin>"), "{stderr}");
}

#[test]
fn tracecheck_validates_stdin_via_dash() {
    let bin = env!("CARGO_BIN_EXE_tracecheck");

    // A real captured trace piped through stdin verifies cleanly.
    let dir = std::env::temp_dir().join(format!("stdin-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let trace_path = dir.join("fig1.trace");
    let params = StudyParams {
        scale: 0.01,
        threads: Some(vec![2]),
        trace: Some(TraceSpec {
            path: trace_path.to_string_lossy().to_string(),
            replay: false,
        }),
        ..StudyParams::default()
    };
    find_study("fig1").unwrap().run(&params).expect("capture");
    let bytes = std::fs::read(&trace_path).expect("trace bytes");

    let (code, stdout, stderr) = run_with_stdin(bin, &["-"], &bytes);
    assert_eq!(code, 0, "stdout: {stdout} stderr: {stderr}");
    assert!(stdout.contains("<stdin>"), "{stdout}");

    // Garbage on stdin exits with the trace error code (9), exactly as
    // a garbage file would.
    let (code, _, stderr) = run_with_stdin(bin, &["-"], b"not a trace");
    assert_eq!(code, 9, "{stderr}");
    assert!(stderr.contains("<stdin>"), "{stderr}");

    std::fs::remove_dir_all(&dir).ok();
}
