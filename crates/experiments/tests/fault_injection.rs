//! Adversarial fault-injection tests for the fault-tolerant sweep path:
//!
//! - an injected per-point panic is confined to its grid point and the
//!   `Degraded` block reports *exactly* the injected fault in all three
//!   emitters (text, JSON, CSV);
//! - a cooperative deadline overrun degrades the study report instead of
//!   aborting it;
//! - a journaled sweep killed by an exhausted point budget (the CI
//!   kill-emulation) resumes to a report bit-identical to the
//!   uninterrupted run;
//! - a journal with a truncated final line (mid-write kill artifact)
//!   resumes silently and bit-identically;
//! - a bit-flipped journal record is quarantined (checksum mismatch),
//!   recomputed, and loudly reported — never silently trusted.

use std::path::PathBuf;

use experiments::study::{find_study, StudyParams};
use experiments::{
    run_grid_ft, scaled_profile, FaultPolicy, JournalSpec, Parallelism, RunOptions, SweepOptions,
};
use speedup_stacks::report::{json, Block, Report};
use speedup_stacks::SimError;
use workloads::{display_name, find, Suite, WorkloadProfile};

fn tmp(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("repro-fault-{}-{tag}.ndjson", std::process::id()))
}

/// Small fig1 parameters shared by the journal tests: 3 benchmarks x 2
/// counts = 6 points + 3 references = 9 compute units.
fn small_fig1_params() -> StudyParams {
    StudyParams {
        threads: Some(vec![2, 4]),
        parallelism: Parallelism::Serial,
        ..StudyParams::with_scale(0.02)
    }
}

#[test]
fn injected_panic_degrades_only_its_point_and_every_emitter_reports_it() {
    let p = scaled_profile(&find("blackscholes", Suite::ParsecSmall).unwrap(), 0.05);
    let profiles = vec![p];
    let counts = [2, 4];
    // Panic-on-index injection: the 4-thread point explodes inside the
    // sweep closure; the 2-thread point and the reference must survive.
    let mk = |p: &WorkloadProfile, n: usize| {
        assert!(n == 4 || n == 2 || n == 1, "unexpected count {n}");
        if n == 4 {
            panic!("injected fault in {} at 4 threads", display_name(p));
        }
        RunOptions::symmetric(n)
    };
    for mode in [Parallelism::Serial, Parallelism::Workers(3)] {
        let sweep = SweepOptions::plain(mode, FaultPolicy::default(), "test");
        let grid = run_grid_ft(&profiles, &counts, &mk, &sweep).unwrap();
        assert!(grid.rows[0][0].is_some(), "healthy point lost");
        assert!(grid.rows[0][1].is_none(), "faulted point produced data");
        assert_eq!(grid.degraded.completed, 1);
        assert_eq!(grid.degraded.failed.len(), 1, "exactly the injected fault");
        let f = &grid.degraded.failed[0];
        assert!(f.label.ends_with("x4"), "wrong label: {}", f.label);
        assert!(
            f.reason.contains("injected fault") && f.reason.contains("at 4 threads"),
            "reason lost the panic payload: {}",
            f.reason
        );
        assert_eq!(f.attempts, 1);

        // All three emitters must surface the degradation.
        let mut report = Report::new("test", "fault injection");
        report.push(Block::Degraded(grid.degraded.clone()));
        let text = report.to_text();
        assert!(
            text.contains(
                "degraded run: 1/2 points completed (1 failed, 0 retried, 0 quarantined)"
            ),
            "{text}"
        );
        assert!(text.contains("injected fault"), "{text}");
        let json_text = report.to_json();
        let doc = json::parse(&json_text).expect("valid JSON with degraded block");
        let blocks = doc.get("blocks").unwrap().as_array().unwrap();
        let degraded = blocks
            .iter()
            .find(|b| b.get("kind").and_then(|k| k.as_str()) == Some("degraded"))
            .expect("degraded block in JSON");
        let failed = degraded.get("failed").unwrap().as_array().unwrap();
        assert_eq!(failed.len(), 1);
        assert!(failed[0]
            .get("reason")
            .and_then(|r| r.as_str())
            .is_some_and(|r| r.contains("injected fault")));
        let csv = report.to_csv();
        assert!(
            csv.contains("degraded,total_points,2,completed,1,retried,0,quarantined,0"),
            "{csv}"
        );
        assert!(csv.contains("injected fault"), "{csv}");
    }
}

#[test]
fn deadline_overrun_degrades_the_study_report_instead_of_aborting() {
    let study = find_study("fig1").unwrap();
    let params = StudyParams {
        faults: FaultPolicy {
            // Orders of magnitude below any real run: every point's
            // engine aborts at this simulated cycle, deterministically.
            deadline_cycles: Some(10),
            retries: 0,
        },
        ..small_fig1_params()
    };
    let report = study.run(&params).expect("degrades, does not error");
    let text = report.to_text();
    assert!(text.contains("degraded run:"), "{text}");
    assert!(text.contains("deadline"), "{text}");
}

#[test]
fn killed_then_resumed_journaled_sweep_is_bit_identical() {
    let study = find_study("fig1").unwrap();
    let base = small_fig1_params();
    let clean = study.run(&base).expect("uninterrupted run");

    let path = tmp("resume");
    let _ = std::fs::remove_file(&path);
    let spath = path.to_string_lossy().to_string();
    // Kill emulation: a 2-unit budget checkpoints and exits mid-grid.
    match study.run(&StudyParams {
        journal: Some(JournalSpec {
            path: spath.clone(),
            resume: false,
        }),
        max_points: Some(2),
        ..base.clone()
    }) {
        Err(SimError::Interrupted { completed }) => assert!(completed <= 2),
        other => panic!("expected Interrupted, got {other:?}"),
    }
    // Keep resuming under the same tiny budget until the grid completes.
    let mut resumed = None;
    for _ in 0..16 {
        match study.run(&StudyParams {
            journal: Some(JournalSpec {
                path: spath.clone(),
                resume: true,
            }),
            max_points: Some(2),
            ..base.clone()
        }) {
            Ok(r) => {
                resumed = Some(r);
                break;
            }
            Err(SimError::Interrupted { .. }) => {}
            Err(e) => panic!("resume failed: {e}"),
        }
    }
    let resumed = resumed.expect("grid completes within 16 budgeted resumes");
    // Bit-identical in every emitter: a clean resume leaves no trace.
    assert_eq!(resumed.to_text(), clean.to_text());
    assert_eq!(resumed.to_json(), clean.to_json());
    assert_eq!(resumed.to_csv(), clean.to_csv());
    let _ = std::fs::remove_file(&path);
}

#[test]
fn truncated_journal_tail_resumes_bit_identically() {
    let study = find_study("fig1").unwrap();
    let base = small_fig1_params();
    let clean = study.run(&base).expect("uninterrupted run");

    let path = tmp("truncate");
    let _ = std::fs::remove_file(&path);
    let spath = path.to_string_lossy().to_string();
    study
        .run(&StudyParams {
            journal: Some(JournalSpec {
                path: spath.clone(),
                resume: false,
            }),
            ..base.clone()
        })
        .expect("journaled run");
    // Chop the final record mid-line: the artifact a kill leaves when it
    // lands inside a write. The unterminated tail must be dropped
    // silently (it is expected, not corruption) and recomputed.
    let content = std::fs::read_to_string(&path).unwrap();
    assert!(content.ends_with('\n'));
    std::fs::write(&path, &content[..content.len() - 9]).unwrap();
    let resumed = study
        .run(&StudyParams {
            journal: Some(JournalSpec {
                path: spath,
                resume: true,
            }),
            ..base
        })
        .expect("resume over truncated tail");
    assert_eq!(resumed.to_text(), clean.to_text());
    assert_eq!(resumed.to_json(), clean.to_json());
    let _ = std::fs::remove_file(&path);
}

#[test]
fn bit_flipped_journal_record_is_quarantined_and_recomputed() {
    let study = find_study("fig1").unwrap();
    let base = small_fig1_params();
    let clean = study.run(&base).expect("uninterrupted run");

    let path = tmp("bitflip");
    let _ = std::fs::remove_file(&path);
    let spath = path.to_string_lossy().to_string();
    study
        .run(&StudyParams {
            journal: Some(JournalSpec {
                path: spath.clone(),
                resume: false,
            }),
            ..base.clone()
        })
        .expect("journaled run");
    // Corrupt one digit inside the last (complete) record: the line still
    // parses as a journal frame but its CRC no longer matches.
    let mut bytes = std::fs::read(&path).unwrap();
    let n = bytes.len();
    let start = bytes[..n - 1]
        .iter()
        .rposition(|&b| b == b'\n')
        .map_or(0, |i| i + 1);
    let pos = (start..n)
        .rev()
        .find(|&i| bytes[i].is_ascii_digit())
        .expect("a digit in the record");
    bytes[pos] = if bytes[pos] == b'9' {
        b'0'
    } else {
        bytes[pos] + 1
    };
    std::fs::write(&path, &bytes).unwrap();

    let resumed = study
        .run(&StudyParams {
            journal: Some(JournalSpec {
                path: spath,
                resume: true,
            }),
            ..base
        })
        .expect("resume quarantines, does not fail");
    let text = resumed.to_text();
    // The figure data is fully recomputed — every clean line survives —
    // but the quarantine is reported, never silent.
    for line in clean.to_text().lines() {
        assert!(text.contains(line), "lost clean line {line:?}:\n{text}");
    }
    assert!(text.contains("1 quarantined"), "{text}");
    let _ = std::fs::remove_file(&path);
}
