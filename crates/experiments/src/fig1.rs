//! Figure 1: speedup as a function of the number of cores for
//! blackscholes, facesim (both PARSEC) and cholesky (SPLASH-2).

use std::fmt;

use speedup_stacks::report::{Block, Column, Degraded, Provenance, Report, Table, Unit, Value};
use speedup_stacks::SimError;

use crate::par::Parallelism;
use crate::runner::{run_grid_ft, PointSummary};
use crate::study::{Study, StudyParams};

/// The thread counts of the paper's sweep.
pub const THREAD_COUNTS: [usize; 5] = [1, 2, 4, 8, 16];

/// One benchmark's speedup curve.
#[derive(Debug, Clone)]
pub struct SpeedupCurve {
    /// Benchmark display name.
    pub name: String,
    /// `(threads, actual speedup)` per point; 1 thread is 1.0 by
    /// definition.
    pub points: Vec<(usize, f64)>,
}

impl SpeedupCurve {
    /// Speedup at a given thread count, if measured.
    #[must_use]
    pub fn at(&self, threads: usize) -> Option<f64> {
        self.points
            .iter()
            .find(|(t, _)| *t == threads)
            .map(|(_, s)| *s)
    }
}

/// The figure's data: three curves.
#[derive(Debug, Clone)]
pub struct Fig1 {
    /// Curves for blackscholes, facesim and cholesky.
    pub curves: Vec<SpeedupCurve>,
}

/// Regenerates Figure 1. `scale` scales workload sizes (1.0 = full).
///
/// # Panics
///
/// Panics if a catalog benchmark is missing or a simulation fails (the
/// catalog workloads are deadlock-free by construction).
#[must_use]
pub fn run(scale: f64) -> Fig1 {
    run_with(scale, Parallelism::Auto)
}

/// [`run`] with explicit sweep parallelism (the determinism regression
/// test compares serial and parallel output).
#[must_use]
pub fn run_with(scale: f64, mode: Parallelism) -> Fig1 {
    run_params(&StudyParams {
        parallelism: mode,
        ..StudyParams::with_scale(scale)
    })
}

/// [`run`] honoring the full [`StudyParams`]: `threads` overrides the
/// swept counts (1 thread always reports 1.0 without a run), `llc_mib`
/// resizes the shared cache.
///
/// # Panics
///
/// Panics if a catalog benchmark is missing or a simulation fails.
#[must_use]
pub fn run_params(params: &StudyParams) -> Fig1 {
    let (fig, degraded, _) = run_params_ft(params).expect("fig1 sweep");
    assert!(!degraded.is_degraded(), "fig1 sweep degraded: {degraded:?}");
    fig
}

/// The fault-tolerant sweep behind [`Fig1Study`]: failed points become
/// gaps in the curves and are accounted in the returned [`Degraded`];
/// journaling and resume follow `params.journal`, trace capture/replay
/// follows `params.trace` (the returned [`Provenance`] is `Some` only
/// when a trace was captured).
///
/// # Errors
///
/// See [`crate::runner::run_grid_ft`].
pub fn run_params_ft(
    params: &StudyParams,
) -> Result<(Fig1, Degraded, Option<Provenance>), SimError> {
    let spec = crate::decompose::decompose("fig1", params).expect("fig1 is a grid study");
    let fp = crate::journal::fingerprint("fig1", params);
    let grid = run_grid_ft(
        spec.profiles(),
        spec.counts(),
        &|_, n| crate::decompose::options(params, n),
        &params.sweep("fig1", &fp),
    )?;
    Ok((
        fold(params, spec.profiles(), grid.rows),
        grid.degraded,
        grid.provenance,
    ))
}

/// Folds the sweep's rows into the figure — shared by the local sweep
/// above and the study service's remote assembly
/// ([`crate::decompose::GridStudy::assemble`]), so the two paths produce
/// byte-identical reports. The 1-thread point (1.0 by definition, never
/// simulated) is synthesized here when the requested counts include it.
pub(crate) fn fold(
    params: &StudyParams,
    profiles: &[workloads::WorkloadProfile],
    rows: Vec<Vec<Option<PointSummary>>>,
) -> Fig1 {
    let counts = params.counts_or(&THREAD_COUNTS);
    let curves = profiles
        .iter()
        .zip(rows)
        .map(|(p, outs)| {
            let mut points = Vec::new();
            if counts.contains(&1) {
                points.push((1usize, 1.0f64));
            }
            points.extend(outs.into_iter().flatten().map(|o| (o.threads, o.actual)));
            SpeedupCurve {
                name: workloads::display_name(p),
                points,
            }
        })
        .collect();
    Fig1 { curves }
}

impl Fig1 {
    /// The swept thread counts, in presentation order (derived from the
    /// measured points).
    #[must_use]
    pub fn counts(&self) -> Vec<usize> {
        let mut counts: Vec<usize> = self
            .curves
            .iter()
            .flat_map(|c| c.points.iter().map(|(t, _)| *t))
            .collect();
        counts.sort_unstable();
        counts.dedup();
        counts
    }

    /// Converts the figure into the structured [`Report`] every emitter
    /// consumes (`Display` renders exactly this report's text form).
    #[must_use]
    pub fn to_report(&self) -> Report {
        let title = "Figure 1: speedup vs number of threads/cores";
        let mut report = Report::new("fig1", title);
        report.push(Block::line(title));
        let counts = self.counts();
        let mut columns = vec![Column::new("benchmark").text_header("{:<22}").left(22)];
        for t in &counts {
            columns.push(
                Column::new(format!("{t}t"))
                    .text_header(" {:>4}  ")
                    .prefix(" ")
                    .width(5)
                    .precision(2)
                    .suffix(" ")
                    .unit(Unit::Speedup),
            );
        }
        let mut table = Table::new("speedup_curves", columns);
        for c in &self.curves {
            let mut row = vec![Value::str(&c.name)];
            for t in &counts {
                row.push(c.at(*t).map_or(Value::Missing, Value::F64));
            }
            table.row(row);
        }
        report.push(Block::Table(table));
        report
    }
}

impl fmt::Display for Fig1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_report().to_text())
    }
}

/// Figure 1 as a registry [`Study`] (honors `scale`, `threads`,
/// `parallelism` and `llc_mib`).
#[derive(Debug, Clone, Copy)]
pub struct Fig1Study;

impl Study for Fig1Study {
    fn name(&self) -> &'static str {
        "fig1"
    }

    fn description(&self) -> &'static str {
        "Speedup vs cores for blackscholes, facesim and cholesky (1-16 threads)"
    }

    fn run(&self, params: &StudyParams) -> Result<Report, SimError> {
        let (fig, degraded, provenance) = run_params_ft(params)?;
        Ok(crate::decompose::finish(
            fig.to_report(),
            params,
            degraded,
            provenance,
        ))
    }

    fn supports_journal(&self) -> bool {
        true
    }

    fn supports_trace(&self) -> bool {
        true
    }
}
