//! Figure 1: speedup as a function of the number of cores for
//! blackscholes, facesim (both PARSEC) and cholesky (SPLASH-2).

use std::fmt;

use workloads::Suite;

use crate::runner::{run_profile, scaled_profile, single_thread_reference, RunOptions};

/// The thread counts of the paper's sweep.
pub const THREAD_COUNTS: [usize; 5] = [1, 2, 4, 8, 16];

/// One benchmark's speedup curve.
#[derive(Debug, Clone)]
pub struct SpeedupCurve {
    /// Benchmark display name.
    pub name: String,
    /// `(threads, actual speedup)` per point; 1 thread is 1.0 by
    /// definition.
    pub points: Vec<(usize, f64)>,
}

impl SpeedupCurve {
    /// Speedup at a given thread count, if measured.
    #[must_use]
    pub fn at(&self, threads: usize) -> Option<f64> {
        self.points.iter().find(|(t, _)| *t == threads).map(|(_, s)| *s)
    }
}

/// The figure's data: three curves.
#[derive(Debug, Clone)]
pub struct Fig1 {
    /// Curves for blackscholes, facesim and cholesky.
    pub curves: Vec<SpeedupCurve>,
}

/// Regenerates Figure 1. `scale` scales workload sizes (1.0 = full).
///
/// # Panics
///
/// Panics if a catalog benchmark is missing or a simulation fails (the
/// catalog workloads are deadlock-free by construction).
#[must_use]
pub fn run(scale: f64) -> Fig1 {
    let benchmarks = [
        workloads::find("blackscholes", Suite::ParsecMedium).expect("catalog entry"),
        workloads::find("facesim", Suite::ParsecMedium).expect("catalog entry"),
        workloads::find("cholesky", Suite::Splash2).expect("catalog entry"),
    ];
    let curves = benchmarks
        .iter()
        .map(|p| {
            let p = scaled_profile(p, scale);
            let opts = RunOptions::symmetric(1);
            let st = single_thread_reference(&p, &opts).expect("single-thread run");
            let mut points = vec![(1usize, 1.0f64)];
            for &n in &THREAD_COUNTS[1..] {
                let out = run_profile(&p, &RunOptions::symmetric(n), Some(st)).expect("run");
                points.push((n, out.actual));
            }
            SpeedupCurve {
                name: workloads::display_name(&p),
                points,
            }
        })
        .collect();
    Fig1 { curves }
}

impl fmt::Display for Fig1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 1: speedup vs number of threads/cores")?;
        write!(f, "{:<22}", "benchmark")?;
        for t in THREAD_COUNTS {
            write!(f, " {t:>3}t  ")?;
        }
        writeln!(f)?;
        for c in &self.curves {
            write!(f, "{:<22}", c.name)?;
            for t in THREAD_COUNTS {
                match c.at(t) {
                    Some(s) => write!(f, " {s:>5.2}")?,
                    None => write!(f, " {:>5}", "-")?,
                }
                write!(f, " ")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}
