//! Figure 1: speedup as a function of the number of cores for
//! blackscholes, facesim (both PARSEC) and cholesky (SPLASH-2).

use std::fmt;

use workloads::Suite;

use crate::par::Parallelism;
use crate::runner::{run_grid, scaled_profile, RunOptions};

/// The thread counts of the paper's sweep.
pub const THREAD_COUNTS: [usize; 5] = [1, 2, 4, 8, 16];

/// One benchmark's speedup curve.
#[derive(Debug, Clone)]
pub struct SpeedupCurve {
    /// Benchmark display name.
    pub name: String,
    /// `(threads, actual speedup)` per point; 1 thread is 1.0 by
    /// definition.
    pub points: Vec<(usize, f64)>,
}

impl SpeedupCurve {
    /// Speedup at a given thread count, if measured.
    #[must_use]
    pub fn at(&self, threads: usize) -> Option<f64> {
        self.points
            .iter()
            .find(|(t, _)| *t == threads)
            .map(|(_, s)| *s)
    }
}

/// The figure's data: three curves.
#[derive(Debug, Clone)]
pub struct Fig1 {
    /// Curves for blackscholes, facesim and cholesky.
    pub curves: Vec<SpeedupCurve>,
}

/// Regenerates Figure 1. `scale` scales workload sizes (1.0 = full).
///
/// # Panics
///
/// Panics if a catalog benchmark is missing or a simulation fails (the
/// catalog workloads are deadlock-free by construction).
#[must_use]
pub fn run(scale: f64) -> Fig1 {
    run_with(scale, Parallelism::Auto)
}

/// [`run`] with explicit sweep parallelism (the determinism regression
/// test compares serial and parallel output).
#[must_use]
pub fn run_with(scale: f64, mode: Parallelism) -> Fig1 {
    let benchmarks: Vec<workloads::WorkloadProfile> = [
        workloads::find("blackscholes", Suite::ParsecMedium).expect("catalog entry"),
        workloads::find("facesim", Suite::ParsecMedium).expect("catalog entry"),
        workloads::find("cholesky", Suite::Splash2).expect("catalog entry"),
    ]
    .iter()
    .map(|p| scaled_profile(p, scale))
    .collect();
    let grid = run_grid(
        &benchmarks,
        &THREAD_COUNTS[1..],
        &|_, n| RunOptions::symmetric(n),
        mode,
    );
    let curves = benchmarks
        .iter()
        .zip(grid)
        .map(|(p, outs)| {
            let mut points = vec![(1usize, 1.0f64)];
            points.extend(outs.iter().map(|o| (o.threads, o.actual)));
            SpeedupCurve {
                name: workloads::display_name(p),
                points,
            }
        })
        .collect();
    Fig1 { curves }
}

impl fmt::Display for Fig1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 1: speedup vs number of threads/cores")?;
        write!(f, "{:<22}", "benchmark")?;
        for t in THREAD_COUNTS {
            write!(f, " {t:>3}t  ")?;
        }
        writeln!(f)?;
        for c in &self.curves {
            write!(f, "{:<22}", c.name)?;
            for t in THREAD_COUNTS {
                match c.at(t) {
                    Some(s) => write!(f, " {s:>5.2}")?,
                    None => write!(f, " {:>5}", "-")?,
                }
                write!(f, " ")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}
