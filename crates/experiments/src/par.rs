//! Deterministic parallel map over independent simulation points.
//!
//! Figure grids are embarrassingly parallel: every (benchmark ×
//! thread-count) point is a self-contained, deterministic `Engine` run.
//! [`par_map`] fans the points out over a scoped thread pool (no `rayon`
//! offline — plain `std::thread::scope` with an atomic work index) and
//! collects results **in input order**, so a sweep produces byte-identical
//! output whether it ran serially or in parallel — guarded by the
//! `sweep_determinism` integration test.
//!
//! [`try_map_mode`] adds per-point **fault domains** on top: each point
//! runs under `catch_unwind` with a bounded retry budget, so a panicking
//! or failing point yields a typed [`PointError`] in its slot instead of
//! killing the pool. Retries re-run the identical pure closure
//! (backoff-free re-queue), so serial and parallel sweeps stay
//! bit-identical for every successful point.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::Instant;

use speedup_stacks::error::PointError;

/// Execution mode for [`map_mode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// Run on the calling thread, in input order.
    Serial,
    /// One worker per available CPU (serial when only one is available).
    #[default]
    Auto,
    /// Exactly this many workers (used by the determinism tests to force
    /// real cross-thread execution regardless of the host).
    Workers(usize),
}

impl Parallelism {
    /// The effective worker count for a sweep of `items` points.
    ///
    /// Note the clamp: `Parallelism::Workers(0)` is treated as one worker
    /// (zero workers could make no progress). Drivers should reject `0`
    /// at the input boundary instead of relying on the clamp — the
    /// `repro` CLI turns `--parallelism 0` into a usage error before it
    /// ever reaches here. The count is also capped at the item count.
    #[must_use]
    pub fn workers(self, items: usize) -> usize {
        let n = match self {
            Parallelism::Serial => 1,
            Parallelism::Auto => std::thread::available_parallelism().map_or(1, |n| n.get()),
            Parallelism::Workers(n) => n.max(1),
        };
        n.min(items.max(1))
    }
}

/// Applies `f` to every item with the default parallelism, returning
/// results in input order.
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    map_mode(Parallelism::Auto, items, f)
}

/// Applies `f` to every item under the given [`Parallelism`], returning
/// results in input order regardless of completion order.
pub fn map_mode<T, R, F>(mode: Parallelism, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let workers = mode.workers(items.len());
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }

    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = slots.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= slots.len() {
                    break;
                }
                // Poison-tolerant locks: a worker that panicked inside `f`
                // (between the two lock holds) must not turn its siblings'
                // accesses into secondary panics — only the faulting
                // point's slot may be lost.
                let item = slots[i]
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .take()
                    .expect("item taken once");
                let r = f(item);
                *results[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(r);
            });
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap_or_else(PoisonError::into_inner)
                .expect("worker filled every slot")
        })
        .collect()
}

/// Outcome of one fault-isolated point: the result (or its typed error)
/// plus the attempts spent, so sweeps can report retried points.
#[derive(Debug)]
pub struct PointOutcome<R> {
    /// Attempts used (1 = succeeded or failed first try).
    pub attempts: u32,
    /// The point's result, or why every attempt failed.
    pub result: Result<R, PointError>,
}

impl<R> PointOutcome<R> {
    /// True if the point eventually succeeded but needed a retry.
    #[must_use]
    pub fn retried_ok(&self) -> bool {
        self.result.is_ok() && self.attempts > 1
    }
}

/// Renders a `catch_unwind` payload as text (the common `&str`/`String`
/// panic payloads; anything else gets a placeholder).
fn panic_payload(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        format!("panicked: {s}")
    } else if let Some(s) = p.downcast_ref::<String>() {
        format!("panicked: {s}")
    } else {
        "panicked: (non-string payload)".to_string()
    }
}

/// One fault-isolated attempt of `f` on `item`: a panic becomes an
/// `Err` with the rendered payload.
fn attempt<T, R, F>(f: &F, item: &T) -> Result<R, String>
where
    F: Fn(&T) -> Result<R, String> + Sync,
{
    match catch_unwind(AssertUnwindSafe(|| f(item))) {
        Ok(r) => r,
        Err(p) => Err(panic_payload(p.as_ref())),
    }
}

/// Applies the fallible `f` to every item under the given
/// [`Parallelism`], isolating each point in its own fault domain:
///
/// - a panic inside `f` is caught per attempt and never reaches the
///   thread pool (workers keep draining the queue);
/// - a failing point (panic or `Err`) is re-attempted up to `retries`
///   extra times — a backoff-free re-queue of the identical pure closure,
///   so a deterministic failure fails identically every time and a
///   successful point's value is independent of the execution mode;
/// - after exhausting its budget the point's slot carries a
///   [`PointError`] with the index, `label(item)`, the captured payload
///   and the wall-clock spent.
///
/// Results are in input order; serial and parallel runs agree on every
/// successful point.
pub fn try_map_mode<T, R, F, L>(
    mode: Parallelism,
    retries: u32,
    items: Vec<T>,
    label: L,
    f: F,
) -> Vec<PointOutcome<R>>
where
    T: Send,
    R: Send,
    F: Fn(&T) -> Result<R, String> + Sync,
    L: Fn(&T) -> String + Sync,
{
    let indexed: Vec<(usize, T)> = items.into_iter().enumerate().collect();
    map_mode(mode, indexed, |(index, item)| {
        let start = Instant::now();
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            match attempt(&f, &item) {
                Ok(r) => {
                    return PointOutcome {
                        attempts,
                        result: Ok(r),
                    }
                }
                Err(_) if attempts <= retries => {}
                Err(payload) => {
                    return PointOutcome {
                        attempts,
                        result: Err(PointError {
                            index,
                            label: label(&item),
                            payload,
                            elapsed: start.elapsed(),
                            attempts,
                        }),
                    }
                }
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = map_mode(Parallelism::Workers(4), items, |x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn serial_equals_parallel() {
        let f = |x: u64| x.wrapping_mul(0x9e37_79b9).rotate_left(7);
        let a = map_mode(Parallelism::Serial, (0..257).collect(), f);
        let b = map_mode(Parallelism::Workers(7), (0..257).collect(), f);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<u32> = vec![];
        assert!(par_map(empty, |x: u32| x).is_empty());
        assert_eq!(par_map(vec![5], |x| x + 1), vec![6]);
    }

    #[test]
    fn more_workers_than_items() {
        let out = map_mode(Parallelism::Workers(16), vec![1, 2, 3], |x| x * x);
        assert_eq!(out, vec![1, 4, 9]);
    }

    #[test]
    fn workers_clamps_zero_and_caps_at_items() {
        assert_eq!(Parallelism::Workers(0).workers(10), 1);
        assert_eq!(Parallelism::Workers(64).workers(3), 3);
        assert_eq!(Parallelism::Serial.workers(100), 1);
    }

    #[test]
    fn workers_clamp_covers_zero_one_and_many_against_available_cores() {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        // Explicit counts: 0 clamps up to 1, 1 stays 1, many is honored
        // verbatim (the pool does not silently cap at the host's cores —
        // oversubscription is the caller's informed choice) until the
        // item cap kicks in.
        for items in [1usize, 2, 100] {
            assert_eq!(Parallelism::Workers(0).workers(items), 1, "{items} items");
            assert_eq!(Parallelism::Workers(1).workers(items), 1, "{items} items");
            assert_eq!(
                Parallelism::Workers(cores * 4).workers(items),
                (cores * 4).min(items),
                "{items} items"
            );
        }
        // Auto tracks the host's available cores, capped at the items.
        assert_eq!(Parallelism::Auto.workers(usize::MAX), cores);
        assert_eq!(Parallelism::Auto.workers(1), 1);
        // Zero items never yields zero workers (a sweep of nothing still
        // needs a well-formed pool size).
        for mode in [
            Parallelism::Serial,
            Parallelism::Auto,
            Parallelism::Workers(0),
            Parallelism::Workers(8),
        ] {
            assert_eq!(mode.workers(0), 1, "{mode:?}");
        }
    }

    #[test]
    fn try_map_isolates_panics() {
        for mode in [Parallelism::Serial, Parallelism::Workers(4)] {
            let out = try_map_mode(
                mode,
                0,
                (0..10u64).collect(),
                |x| format!("item {x}"),
                |&x| {
                    if x == 3 {
                        panic!("injected panic at {x}");
                    }
                    Ok(x * 2)
                },
            );
            assert_eq!(out.len(), 10);
            for (i, o) in out.iter().enumerate() {
                if i == 3 {
                    let e = o.result.as_ref().unwrap_err();
                    assert_eq!(e.index, 3);
                    assert_eq!(e.label, "item 3");
                    assert!(e.payload.contains("injected panic at 3"), "{}", e.payload);
                    assert_eq!(e.attempts, 1);
                } else {
                    assert_eq!(*o.result.as_ref().unwrap(), (i as u64) * 2);
                }
            }
        }
    }

    #[test]
    fn try_map_retries_bounded() {
        use std::sync::atomic::AtomicU32;
        // A deterministic failure fails on every attempt; the budget
        // bounds the attempts.
        let calls = AtomicU32::new(0);
        let out = try_map_mode(
            Parallelism::Serial,
            2,
            vec![0u32],
            |_| "p".to_string(),
            |_| -> Result<u32, String> {
                calls.fetch_add(1, Ordering::Relaxed);
                Err("always fails".to_string())
            },
        );
        assert_eq!(calls.load(Ordering::Relaxed), 3, "1 try + 2 retries");
        let e = out[0].result.as_ref().unwrap_err();
        assert_eq!(e.attempts, 3);
        assert_eq!(e.payload, "always fails");
    }

    #[test]
    fn try_map_counts_successful_retry() {
        use std::sync::atomic::AtomicU32;
        let calls = AtomicU32::new(0);
        let out = try_map_mode(
            Parallelism::Serial,
            3,
            vec![0u32],
            |_| "p".to_string(),
            |_| {
                // Transient: fails the first two attempts, then succeeds.
                if calls.fetch_add(1, Ordering::Relaxed) < 2 {
                    Err("transient".to_string())
                } else {
                    Ok(7u32)
                }
            },
        );
        assert_eq!(*out[0].result.as_ref().unwrap(), 7);
        assert_eq!(out[0].attempts, 3);
        assert!(out[0].retried_ok());
    }
}
