//! Deterministic parallel map over independent simulation points.
//!
//! Figure grids are embarrassingly parallel: every (benchmark ×
//! thread-count) point is a self-contained, deterministic `Engine` run.
//! [`par_map`] fans the points out over a scoped thread pool (no `rayon`
//! offline — plain `std::thread::scope` with an atomic work index) and
//! collects results **in input order**, so a sweep produces byte-identical
//! output whether it ran serially or in parallel — guarded by the
//! `sweep_determinism` integration test.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Execution mode for [`map_mode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// Run on the calling thread, in input order.
    Serial,
    /// One worker per available CPU (serial when only one is available).
    #[default]
    Auto,
    /// Exactly this many workers (used by the determinism tests to force
    /// real cross-thread execution regardless of the host).
    Workers(usize),
}

impl Parallelism {
    fn workers(self, items: usize) -> usize {
        let n = match self {
            Parallelism::Serial => 1,
            Parallelism::Auto => std::thread::available_parallelism().map_or(1, |n| n.get()),
            Parallelism::Workers(n) => n.max(1),
        };
        n.min(items.max(1))
    }
}

/// Applies `f` to every item with the default parallelism, returning
/// results in input order.
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    map_mode(Parallelism::Auto, items, f)
}

/// Applies `f` to every item under the given [`Parallelism`], returning
/// results in input order regardless of completion order.
pub fn map_mode<T, R, F>(mode: Parallelism, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let workers = mode.workers(items.len());
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }

    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = slots.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= slots.len() {
                    break;
                }
                let item = slots[i]
                    .lock()
                    .expect("unpoisoned")
                    .take()
                    .expect("item taken once");
                let r = f(item);
                *results[i].lock().expect("unpoisoned") = Some(r);
            });
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("unpoisoned")
                .expect("worker filled every slot")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = map_mode(Parallelism::Workers(4), items, |x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn serial_equals_parallel() {
        let f = |x: u64| x.wrapping_mul(0x9e37_79b9).rotate_left(7);
        let a = map_mode(Parallelism::Serial, (0..257).collect(), f);
        let b = map_mode(Parallelism::Workers(7), (0..257).collect(), f);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<u32> = vec![];
        assert!(par_map(empty, |x: u32| x).is_empty());
        assert_eq!(par_map(vec![5], |x| x + 1), vec![6]);
    }

    #[test]
    fn more_workers_than_items() {
        let out = map_mode(Parallelism::Workers(16), vec![1, 2, 3], |x| x * x);
        assert_eq!(out, vec![1, 4, 9]);
    }
}
