//! Figures 4 and 5 plus the §6 validation numbers.
//!
//! - **Figure 4**: actual vs estimated speedup for all 28 benchmarks at 2,
//!   4, 8 and 16 threads, with the average absolute error per thread
//!   count (paper: 3.0 / 3.4 / 2.8 / 5.1 %).
//! - **Figure 5**: speedup stacks for blackscholes, facesim and cholesky
//!   as a function of the thread count.

use std::fmt;

use speedup_stacks::estimate::{average_absolute_error, ValidationPoint};
use speedup_stacks::render;
use speedup_stacks::SpeedupStack;
use workloads::Suite;

use crate::par::Parallelism;
use crate::runner::{run_grid, scaled_profile, RunOptions};

/// The multi-threaded counts validated in the paper.
pub const THREAD_COUNTS: [usize; 4] = [2, 4, 8, 16];

/// Figure 4 data: every benchmark × thread count, plus per-benchmark
/// instruction overhead (the §6 parallelization-overhead measure).
#[derive(Debug, Clone)]
pub struct Fig4 {
    /// One point per benchmark × thread count.
    pub points: Vec<ValidationPoint>,
    /// `(benchmark, instruction overhead fraction at 16 threads)`.
    pub instruction_overhead: Vec<(String, f64)>,
}

impl Fig4 {
    /// Average absolute error for one thread count.
    #[must_use]
    pub fn average_error(&self, threads: usize) -> f64 {
        let pts: Vec<ValidationPoint> = self
            .points
            .iter()
            .filter(|p| p.threads == threads)
            .cloned()
            .collect();
        average_absolute_error(&pts)
    }
}

/// Regenerates Figure 4 over the full 28-benchmark suite.
///
/// # Panics
///
/// Panics if a simulation fails.
#[must_use]
pub fn run(scale: f64) -> Fig4 {
    run_with(scale, Parallelism::Auto)
}

/// [`run`] with explicit sweep parallelism.
#[must_use]
pub fn run_with(scale: f64, mode: Parallelism) -> Fig4 {
    let profiles: Vec<workloads::WorkloadProfile> = workloads::paper_suite()
        .iter()
        .map(|p| scaled_profile(p, scale))
        .collect();
    let grid = run_grid(
        &profiles,
        &THREAD_COUNTS,
        &|_, n| RunOptions::symmetric(n),
        mode,
    );
    let mut points = Vec::new();
    let mut overheads = Vec::new();
    for outs in grid {
        for out in outs {
            if out.threads == 16 {
                overheads.push((out.name.clone(), out.instruction_overhead));
            }
            points.push(ValidationPoint {
                name: out.name,
                threads: out.threads,
                actual: out.actual,
                estimated: out.estimated,
            });
        }
    }
    Fig4 {
        points,
        instruction_overhead: overheads,
    }
}

impl fmt::Display for Fig4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 4: actual vs estimated speedup (all benchmarks)")?;
        writeln!(
            f,
            "{:<22} {:>3}  {:>8} {:>8} {:>8}",
            "benchmark", "N", "actual", "estim.", "err%"
        )?;
        for p in &self.points {
            writeln!(
                f,
                "{:<22} {:>3}  {:>8.2} {:>8.2} {:>8.1}",
                p.name,
                p.threads,
                p.actual,
                p.estimated,
                p.error() * 100.0
            )?;
        }
        writeln!(f)?;
        writeln!(
            f,
            "average absolute error per thread count (paper: 3.0/3.4/2.8/5.1%):"
        )?;
        for &n in &THREAD_COUNTS {
            writeln!(
                f,
                "  {:>2} threads: {:>5.1}%",
                n,
                self.average_error(n) * 100.0
            )?;
        }
        writeln!(f)?;
        writeln!(f, "instruction-count overhead at 16 threads (§6 measure):")?;
        let mut sorted = self.instruction_overhead.clone();
        sorted.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        for (name, ovh) in sorted.iter().take(6) {
            writeln!(f, "  {:<22} {:>5.1}% more instructions", name, ovh * 100.0)?;
        }
        Ok(())
    }
}

/// Figure 5 data: stacks for the three case-study benchmarks across
/// thread counts.
#[derive(Debug, Clone)]
pub struct Fig5 {
    /// `(label, stack)` in presentation order.
    pub stacks: Vec<(String, SpeedupStack)>,
}

/// Regenerates Figure 5.
///
/// # Panics
///
/// Panics if a simulation fails.
#[must_use]
pub fn run_fig5(scale: f64) -> Fig5 {
    let benchmarks: Vec<workloads::WorkloadProfile> = [
        workloads::find("blackscholes", Suite::ParsecMedium).expect("catalog entry"),
        workloads::find("facesim", Suite::ParsecMedium).expect("catalog entry"),
        workloads::find("cholesky", Suite::Splash2).expect("catalog entry"),
    ]
    .iter()
    .map(|p| scaled_profile(p, scale))
    .collect();
    let grid = run_grid(
        &benchmarks,
        &THREAD_COUNTS,
        &|_, n| RunOptions::symmetric(n),
        Parallelism::Auto,
    );
    let stacks = grid
        .into_iter()
        .flatten()
        .map(|out| (format!("{} {}t", out.name, out.threads), out.stack))
        .collect();
    Fig5 { stacks }
}

impl fmt::Display for Fig5 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 5: speedup stacks vs thread count")?;
        write!(f, "{}", render::render_table(&self.stacks))?;
        writeln!(f)?;
        for (label, stack) in &self.stacks {
            if label.ends_with("16t") {
                writeln!(
                    f,
                    "{}",
                    render::render_stack(label, stack, &render::RenderOptions::default())
                )?;
            }
        }
        Ok(())
    }
}
