//! Figures 4 and 5 plus the §6 validation numbers.
//!
//! - **Figure 4**: actual vs estimated speedup for all 28 benchmarks at 2,
//!   4, 8 and 16 threads, with the average absolute error per thread
//!   count (paper: 3.0 / 3.4 / 2.8 / 5.1 %).
//! - **Figure 5**: speedup stacks for blackscholes, facesim and cholesky
//!   as a function of the thread count.

use std::fmt;

use speedup_stacks::estimate::{average_absolute_error, ValidationPoint};
use speedup_stacks::render::RenderOptions;
use speedup_stacks::report::{
    Block, Column, Degraded, Provenance, Report, Scalar, Table, Unit, Value,
};
use speedup_stacks::{SimError, SpeedupStack};

use crate::par::Parallelism;
use crate::runner::{run_grid_ft, PointSummary};
use crate::study::{Study, StudyParams};

/// The multi-threaded counts validated in the paper.
pub const THREAD_COUNTS: [usize; 4] = [2, 4, 8, 16];

/// Figure 4 data: every benchmark × thread count, plus per-benchmark
/// instruction overhead (the §6 parallelization-overhead measure).
#[derive(Debug, Clone)]
pub struct Fig4 {
    /// One point per benchmark × thread count.
    pub points: Vec<ValidationPoint>,
    /// `(benchmark, instruction overhead fraction)` at
    /// [`Fig4::overhead_threads`] threads.
    pub instruction_overhead: Vec<(String, f64)>,
    /// The thread count the instruction-overhead measure was taken at
    /// (16 in the paper).
    pub overhead_threads: usize,
}

impl Fig4 {
    /// Average absolute error for one thread count.
    #[must_use]
    pub fn average_error(&self, threads: usize) -> f64 {
        let pts: Vec<ValidationPoint> = self
            .points
            .iter()
            .filter(|p| p.threads == threads)
            .cloned()
            .collect();
        average_absolute_error(&pts)
    }

    /// The validated thread counts, ascending (derived from the points).
    #[must_use]
    pub fn counts(&self) -> Vec<usize> {
        let mut counts: Vec<usize> = self.points.iter().map(|p| p.threads).collect();
        counts.sort_unstable();
        counts.dedup();
        counts
    }

    /// Converts the figure into its structured [`Report`].
    #[must_use]
    pub fn to_report(&self) -> Report {
        let title = "Figure 4: actual vs estimated speedup (all benchmarks)";
        let mut report = Report::new("fig4", title);
        report.push(Block::line(title));
        let mut table = Table::new(
            "validation_points",
            vec![
                Column::new("benchmark").text_header("{:<22}").left(22),
                Column::new("N")
                    .text_header(" {:>3}")
                    .prefix(" ")
                    .width(3)
                    .unit(Unit::Count),
                Column::new("actual")
                    .text_header("  {:>8}")
                    .prefix("  ")
                    .width(8)
                    .precision(2)
                    .unit(Unit::Speedup),
                Column::new("estimated")
                    .header(format!(" {:>8}", "estim."))
                    .prefix(" ")
                    .width(8)
                    .precision(2)
                    .unit(Unit::Speedup),
                Column::new("error_percent")
                    .header(format!(" {:>8}", "err%"))
                    .prefix(" ")
                    .width(8)
                    .precision(1)
                    .unit(Unit::Percent),
            ],
        );
        for p in &self.points {
            table.row(vec![
                Value::str(&p.name),
                p.threads.into(),
                p.actual.into(),
                p.estimated.into(),
                (p.error() * 100.0).into(),
            ]);
        }
        report.push(Block::Table(table));
        report.push(Block::Blank);
        report.push(Block::line(
            "average absolute error per thread count (paper: 3.0/3.4/2.8/5.1%):",
        ));
        for n in self.counts() {
            let err = self.average_error(n) * 100.0;
            report.push(Block::Scalar(Scalar::new(
                format!("avg_abs_error_{n}t"),
                err,
                Unit::Percent,
                format!("  {n:>2} threads: {err:>5.1}%"),
            )));
        }
        report.push(Block::Blank);
        report.push(Block::line(format!(
            "instruction-count overhead at {} threads (§6 measure):",
            self.overhead_threads
        )));
        let mut sorted = self.instruction_overhead.clone();
        sorted.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        let mut table = Table::new(
            "instruction_overhead",
            vec![
                Column::new("benchmark").prefix("  ").left(22),
                Column::new("overhead_percent")
                    .prefix(" ")
                    .width(5)
                    .precision(1)
                    .suffix("% more instructions")
                    .unit(Unit::Percent),
            ],
        )
        .headerless();
        for (name, ovh) in sorted.iter().take(6) {
            table.row(vec![Value::str(name), (ovh * 100.0).into()]);
        }
        report.push(Block::Table(table));
        report
    }
}

/// Regenerates Figure 4 over the full 28-benchmark suite.
///
/// # Panics
///
/// Panics if a simulation fails.
#[must_use]
pub fn run(scale: f64) -> Fig4 {
    run_with(scale, Parallelism::Auto)
}

/// [`run`] with explicit sweep parallelism.
#[must_use]
pub fn run_with(scale: f64, mode: Parallelism) -> Fig4 {
    run_params(&StudyParams {
        parallelism: mode,
        ..StudyParams::with_scale(scale)
    })
}

/// [`run`] honoring the full [`StudyParams`] (the instruction-overhead
/// measure is taken at the largest swept count).
///
/// # Panics
///
/// Panics if a simulation fails.
#[must_use]
pub fn run_params(params: &StudyParams) -> Fig4 {
    let (fig, degraded, _) = run_params_ft(params).expect("fig4 sweep");
    assert!(!degraded.is_degraded(), "fig4 sweep degraded: {degraded:?}");
    fig
}

/// The fault-tolerant sweep behind [`Fig4Study`]: failed points are
/// dropped from the validation table and accounted in the returned
/// [`Degraded`]; journaling and resume follow `params.journal`, trace
/// capture/replay follows `params.trace`.
///
/// # Errors
///
/// See [`crate::runner::run_grid_ft`].
pub fn run_params_ft(
    params: &StudyParams,
) -> Result<(Fig4, Degraded, Option<Provenance>), SimError> {
    let spec = crate::decompose::decompose("fig4", params).expect("fig4 is a grid study");
    let fp = crate::journal::fingerprint("fig4", params);
    let grid = run_grid_ft(
        spec.profiles(),
        spec.counts(),
        &|_, n| crate::decompose::options(params, n),
        &params.sweep("fig4", &fp),
    )?;
    Ok((fold_fig4(params, grid.rows), grid.degraded, grid.provenance))
}

/// Folds the sweep's rows into Figure 4 — shared by the local sweep and
/// the study service's remote assembly, so both produce byte-identical
/// reports.
pub(crate) fn fold_fig4(params: &StudyParams, rows: Vec<Vec<Option<PointSummary>>>) -> Fig4 {
    let counts = params.counts_or(&THREAD_COUNTS);
    let overhead_threads = counts.iter().copied().max().unwrap_or(16);
    let mut points = Vec::new();
    let mut overheads = Vec::new();
    for outs in rows {
        for out in outs.into_iter().flatten() {
            if out.threads == overhead_threads {
                overheads.push((out.name.clone(), out.instruction_overhead));
            }
            points.push(ValidationPoint {
                name: out.name,
                threads: out.threads,
                actual: out.actual,
                estimated: out.estimated,
            });
        }
    }
    Fig4 {
        points,
        instruction_overhead: overheads,
        overhead_threads,
    }
}

impl fmt::Display for Fig4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_report().to_text())
    }
}

/// Figure 4 as a registry [`Study`] (honors `scale`, `threads`,
/// `parallelism` and `llc_mib`).
#[derive(Debug, Clone, Copy)]
pub struct Fig4Study;

impl Study for Fig4Study {
    fn name(&self) -> &'static str {
        "fig4"
    }

    fn description(&self) -> &'static str {
        "Actual vs estimated speedup for all 28 benchmarks (validation grid)"
    }

    fn run(&self, params: &StudyParams) -> Result<Report, SimError> {
        let (fig, degraded, provenance) = run_params_ft(params)?;
        Ok(crate::decompose::finish(
            fig.to_report(),
            params,
            degraded,
            provenance,
        ))
    }

    fn supports_journal(&self) -> bool {
        true
    }

    fn supports_trace(&self) -> bool {
        true
    }
}

/// Figure 5 data: stacks for the three case-study benchmarks across
/// thread counts.
#[derive(Debug, Clone)]
pub struct Fig5 {
    /// `(label, stack)` in presentation order.
    pub stacks: Vec<(String, SpeedupStack)>,
}

/// Regenerates Figure 5.
///
/// # Panics
///
/// Panics if a simulation fails.
#[must_use]
pub fn run_fig5(scale: f64) -> Fig5 {
    run_fig5_params(&StudyParams::with_scale(scale))
}

/// [`run_fig5`] honoring the full [`StudyParams`].
///
/// # Panics
///
/// Panics if a simulation fails.
#[must_use]
pub fn run_fig5_params(params: &StudyParams) -> Fig5 {
    let (fig, degraded, _) = run_fig5_ft(params).expect("fig5 sweep");
    assert!(!degraded.is_degraded(), "fig5 sweep degraded: {degraded:?}");
    fig
}

/// The fault-tolerant sweep behind [`Fig5Study`]: failed points are
/// dropped from the stack table and accounted in the returned
/// [`Degraded`]; journaling and resume follow `params.journal`, trace
/// capture/replay follows `params.trace`.
///
/// # Errors
///
/// See [`crate::runner::run_grid_ft`].
pub fn run_fig5_ft(params: &StudyParams) -> Result<(Fig5, Degraded, Option<Provenance>), SimError> {
    let spec = crate::decompose::decompose("fig5", params).expect("fig5 is a grid study");
    let fp = crate::journal::fingerprint("fig5", params);
    let grid = run_grid_ft(
        spec.profiles(),
        spec.counts(),
        &|_, n| crate::decompose::options(params, n),
        &params.sweep("fig5", &fp),
    )?;
    Ok((fold_fig5(grid.rows), grid.degraded, grid.provenance))
}

/// Folds the sweep's rows into Figure 5 — shared by the local sweep and
/// the study service's remote assembly.
pub(crate) fn fold_fig5(rows: Vec<Vec<Option<PointSummary>>>) -> Fig5 {
    let stacks = rows
        .into_iter()
        .flatten()
        .flatten()
        .map(|out| (format!("{} {}t", out.name, out.threads), out.stack))
        .collect();
    Fig5 { stacks }
}

impl Fig5 {
    /// Converts the figure into its structured [`Report`]: the comparison
    /// table plus an annotated bar for each widest-count stack.
    #[must_use]
    pub fn to_report(&self) -> Report {
        let title = "Figure 5: speedup stacks vs thread count";
        let mut report = Report::new("fig5", title);
        report.push(Block::line(title));
        report.push(Block::StackTable {
            name: "stacks".to_string(),
            stacks: self.stacks.clone(),
        });
        report.push(Block::Blank);
        let max_n = self
            .stacks
            .iter()
            .map(|(_, s)| s.num_threads())
            .max()
            .unwrap_or(0);
        for (label, stack) in &self.stacks {
            if stack.num_threads() == max_n {
                report.push(Block::Stack {
                    label: label.clone(),
                    stack: stack.clone(),
                    options: RenderOptions::default(),
                });
                report.push(Block::Blank);
            }
        }
        report
    }
}

impl fmt::Display for Fig5 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_report().to_text())
    }
}

/// Figure 5 as a registry [`Study`] (honors `scale`, `threads`,
/// `parallelism` and `llc_mib`).
#[derive(Debug, Clone, Copy)]
pub struct Fig5Study;

impl Study for Fig5Study {
    fn name(&self) -> &'static str {
        "fig5"
    }

    fn description(&self) -> &'static str {
        "Speedup stacks vs thread count for the three case-study benchmarks"
    }

    fn run(&self, params: &StudyParams) -> Result<Report, SimError> {
        let (fig, degraded, provenance) = run_fig5_ft(params)?;
        Ok(crate::decompose::finish(
            fig.to_report(),
            params,
            degraded,
            provenance,
        ))
    }

    fn supports_journal(&self) -> bool {
        true
    }

    fn supports_trace(&self) -> bool {
        true
    }
}
