//! Figure 6: the benchmark classification tree at 16 threads.

use std::fmt;

use speedup_stacks::report::{
    Block, Column, Degraded, Provenance, Report, Scalar, Table, Unit, Value,
};
use speedup_stacks::{
    ClassificationConfig, ClassificationTree, ClassifiedBenchmark, Component, ScalingClass,
    SimError,
};

use crate::par::par_map;
use crate::runner::{run_grid_ft, PointSummary};
use crate::study::{Study, StudyParams};

/// Figure 6 data: the classification tree.
#[derive(Debug, Clone)]
pub struct Fig6 {
    /// The tree over all 28 benchmarks.
    pub tree: ClassificationTree,
    /// The thread count the classification ran at (16 in the paper).
    pub threads: usize,
}

impl Fig6 {
    /// Number of benchmarks whose largest component is `c`.
    #[must_use]
    pub fn count_largest(&self, c: Component) -> usize {
        self.tree.count_largest(c)
    }

    /// Number of good scalers (paper: 5 of 28).
    #[must_use]
    pub fn good_scalers(&self) -> usize {
        self.tree.in_class(ScalingClass::Good).count()
    }

    /// Converts the figure into its structured [`Report`]: the rendered
    /// tree text plus a machine-readable classification table and the
    /// summary counts as scalar metrics.
    #[must_use]
    pub fn to_report(&self) -> Report {
        let title = format!("Figure 6: classification tree ({} threads)", self.threads);
        let mut report = Report::new("fig6", &title);
        report.push(Block::line(&title));
        report.push(Block::raw(self.tree.render()));
        let mut table = Table::new(
            "classification",
            vec![
                Column::new("benchmark"),
                Column::new("suite"),
                Column::new("class"),
                Column::new("speedup").unit(Unit::Speedup),
                Column::new("comp1"),
                Column::new("comp2"),
                Column::new("comp3"),
            ],
        );
        for e in self.tree.entries() {
            let comp = |i: usize| {
                let label = e.component_label(i);
                if label.is_empty() {
                    Value::Missing
                } else {
                    Value::str(label)
                }
            };
            table.row(vec![
                Value::str(&e.name),
                Value::str(&e.suite),
                Value::str(e.class.to_string()),
                e.speedup.into(),
                comp(0),
                comp(1),
                comp(2),
            ]);
        }
        report.push(Block::hidden(Block::Table(table)));
        report.push(Block::Blank);
        let summary = format!(
            "good scalers: {} of {}  |  yielding largest for {} benchmarks  |  no visible bottleneck for {}",
            self.good_scalers(),
            self.tree.entries().len(),
            self.count_largest(Component::Yielding),
            self.tree.count_unlimited()
        );
        report.push(Block::line(summary));
        for (name, value) in [
            ("good_scalers", self.good_scalers()),
            ("benchmarks", self.tree.entries().len()),
            ("yielding_largest", self.count_largest(Component::Yielding)),
            ("no_visible_bottleneck", self.tree.count_unlimited()),
        ] {
            report.push(Block::hidden(Block::Scalar(Scalar::new(
                name,
                value as u64,
                Unit::Count,
                String::new(),
            ))));
        }
        report
    }
}

/// Regenerates Figure 6: runs every benchmark at 16 threads and
/// classifies it by actual speedup and dominant components.
///
/// # Panics
///
/// Panics if a simulation fails.
#[must_use]
pub fn run(scale: f64) -> Fig6 {
    run_params(&StudyParams::with_scale(scale))
}

/// [`run`] honoring the full [`StudyParams`] (the classification count
/// is the last `threads` entry).
///
/// # Panics
///
/// Panics if a simulation fails.
#[must_use]
pub fn run_params(params: &StudyParams) -> Fig6 {
    let (fig, degraded, _) = run_params_ft(params).expect("fig6 sweep");
    assert!(!degraded.is_degraded(), "fig6 sweep degraded: {degraded:?}");
    fig
}

/// The fault-tolerant sweep behind [`Fig6Study`]: failed benchmarks are
/// dropped from the tree and accounted in the returned [`Degraded`];
/// journaling and resume follow `params.journal`, trace capture/replay
/// follows `params.trace`.
///
/// # Errors
///
/// See [`crate::runner::run_grid_ft`].
pub fn run_params_ft(
    params: &StudyParams,
) -> Result<(Fig6, Degraded, Option<Provenance>), SimError> {
    let spec = crate::decompose::decompose("fig6", params).expect("fig6 is a grid study");
    let fp = crate::journal::fingerprint("fig6", params);
    let grid = run_grid_ft(
        spec.profiles(),
        spec.counts(),
        &|_, n| crate::decompose::options(params, n),
        &params.sweep("fig6", &fp),
    )?;
    Ok((fold(params, grid.rows), grid.degraded, grid.provenance))
}

/// Folds the sweep's rows into the classification tree — shared by the
/// local sweep and the study service's remote assembly (the
/// classification itself is deterministic, so both paths agree).
pub(crate) fn fold(params: &StudyParams, rows: Vec<Vec<Option<PointSummary>>>) -> Fig6 {
    let threads = params.single_count(16);
    let cfg = ClassificationConfig::default();
    let entries = par_map(rows.into_iter().flatten().flatten().collect(), |out| {
        ClassifiedBenchmark::from_stack(out.name.clone(), out.suite.clone(), &out.stack, &cfg)
    });
    Fig6 {
        tree: ClassificationTree::build(entries),
        threads,
    }
}

impl fmt::Display for Fig6 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_report().to_text())
    }
}

/// Figure 6 as a registry [`Study`] (honors `scale`, `threads` — the
/// last entry — `parallelism` and `llc_mib`).
#[derive(Debug, Clone, Copy)]
pub struct Fig6Study;

impl Study for Fig6Study {
    fn name(&self) -> &'static str {
        "fig6"
    }

    fn description(&self) -> &'static str {
        "Benchmark classification tree over the full suite (16 threads)"
    }

    fn run(&self, params: &StudyParams) -> Result<Report, SimError> {
        let (fig, degraded, provenance) = run_params_ft(params)?;
        Ok(crate::decompose::finish(
            fig.to_report(),
            params,
            degraded,
            provenance,
        ))
    }

    fn supports_journal(&self) -> bool {
        true
    }

    fn supports_trace(&self) -> bool {
        true
    }
}
