//! Figure 6: the benchmark classification tree at 16 threads.

use std::fmt;

use speedup_stacks::{
    ClassificationConfig, ClassificationTree, ClassifiedBenchmark, Component, ScalingClass,
};

use crate::par::{par_map, Parallelism};
use crate::runner::{run_grid, scaled_profile, RunOptions};

/// Figure 6 data: the classification tree.
#[derive(Debug, Clone)]
pub struct Fig6 {
    /// The tree over all 28 benchmarks.
    pub tree: ClassificationTree,
}

impl Fig6 {
    /// Number of benchmarks whose largest component is `c`.
    #[must_use]
    pub fn count_largest(&self, c: Component) -> usize {
        self.tree.count_largest(c)
    }

    /// Number of good scalers (paper: 5 of 28).
    #[must_use]
    pub fn good_scalers(&self) -> usize {
        self.tree.in_class(ScalingClass::Good).count()
    }
}

/// Regenerates Figure 6: runs every benchmark at 16 threads and
/// classifies it by actual speedup and dominant components.
///
/// # Panics
///
/// Panics if a simulation fails.
#[must_use]
pub fn run(scale: f64) -> Fig6 {
    let cfg = ClassificationConfig::default();
    let profiles: Vec<workloads::WorkloadProfile> = workloads::paper_suite()
        .iter()
        .map(|p| scaled_profile(p, scale))
        .collect();
    let grid = run_grid(
        &profiles,
        &[16],
        &|_, n| RunOptions::symmetric(n),
        Parallelism::Auto,
    );
    let entries = par_map(grid.into_iter().flatten().collect(), |out| {
        ClassifiedBenchmark::from_stack(out.name.clone(), out.suite.clone(), &out.stack, &cfg)
    });
    Fig6 {
        tree: ClassificationTree::build(entries),
    }
}

impl fmt::Display for Fig6 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 6: classification tree (16 threads)")?;
        write!(f, "{}", self.tree.render())?;
        writeln!(f)?;
        writeln!(
            f,
            "good scalers: {} of {}  |  yielding largest for {} benchmarks  |  no visible bottleneck for {}",
            self.good_scalers(),
            self.tree.entries().len(),
            self.count_largest(Component::Yielding),
            self.tree.count_unlimited()
        )
    }
}
