//! Running one workload on one machine and producing its speedup stack.
//!
//! Every experiment in the paper reduces to this recipe: run the workload
//! multi-threaded on the configured CMP (that run drives the accounting
//! and yields the *estimated* speedup), run it single-threaded on one core
//! of the same machine (Eq. 1's `Ts`), and attach the resulting *actual*
//! speedup to the stack for validation.
//!
//! Two grid drivers share that recipe: [`run_grid`] (the original
//! fail-fast sweep, kept for the perf harness and determinism tests) and
//! [`run_grid_ft`], the fault-tolerant sweep behind the `repro` CLI —
//! per-point panic isolation and retries via [`crate::par::try_map_mode`],
//! cooperative per-point deadlines, crash-safe journaling through
//! [`crate::journal`] and checkpoint–resume that reproduces the
//! uninterrupted report bit for bit.
//!
//! [`run_grid_ft`] additionally speaks the binary trace format of
//! [`workloads::trace`]: armed with a capture [`TraceSpec`], it records
//! every run's op streams to a trace file before sweeping (the generators
//! are deterministic, so the capture matches the sweep exactly); armed
//! with a replay spec, every simulation draws its ops from the trace
//! instead of the generators, reproducing the captured report bit for
//! bit. Any trace damage aborts the sweep with a typed
//! [`speedup_stacks::SimError::Trace`] — a damaged trace has no safe
//! recomputation, so it is never degraded-and-continued.

use std::collections::HashMap;
use std::sync::atomic::AtomicU64;
use std::sync::{Arc, Mutex, PoisonError};

use cmpsim::{MachineConfig, SimError, SimResult, Simulation};
use memsim::MemConfig;
use speedup_stacks::error::{SimError as CoreError, TraceError};
use speedup_stacks::report::json::{self, JsonValue};
use speedup_stacks::report::{Degraded, DegradedPoint, Provenance};
use speedup_stacks::{
    accounting, AccountingConfig, Breakdown, Component, SpeedupStack, ThreadBreakdown,
};
use workloads::trace::{TraceReader, TraceSpec, TraceWriter};
use workloads::{display_name, streams_for, WorkloadProfile};

use crate::journal::{self, JournalSpec, JournalWriter};
use crate::par::{try_map_mode, Parallelism};

/// Machine/accounting options for a run.
#[derive(Debug, Clone, Copy)]
pub struct RunOptions {
    /// Memory hierarchy configuration.
    pub mem: MemConfig,
    /// Number of hardware cores for the multi-threaded run.
    pub cores: usize,
    /// Number of software threads (usually equal to `cores`; Figure 7
    /// decouples them).
    pub threads: usize,
    /// Spin detector for the accounting.
    pub detector: cmpsim::SpinDetectorKind,
    /// Accounting post-processing options.
    pub accounting: AccountingConfig,
    /// Engine event-queue implementation (results are bit-identical
    /// across queues; the binary heap exists for baseline benchmarks and
    /// equivalence tests).
    pub queue: cmpsim::EventQueueKind,
    /// Cooperative per-run deadline in simulated cycles: the engine
    /// aborts the run with a typed error once simulated time passes this
    /// budget. Deterministic (simulated time, not wall-clock). `None`
    /// disarms it.
    pub deadline_cycles: Option<u64>,
}

impl RunOptions {
    /// `n` threads on `n` cores with default memory and accounting.
    #[must_use]
    pub fn symmetric(n: usize) -> Self {
        RunOptions {
            mem: MemConfig::default(),
            cores: n,
            threads: n,
            detector: cmpsim::SpinDetectorKind::default(),
            accounting: AccountingConfig::default(),
            queue: cmpsim::EventQueueKind::default(),
            deadline_cycles: None,
        }
    }

    /// The machine configuration these options describe, for a run on
    /// `cores` cores.
    #[must_use]
    pub fn machine(&self, cores: usize) -> MachineConfig {
        MachineConfig {
            n_cores: cores,
            mem: self.mem,
            spin_detector: self.detector,
            event_queue: self.queue,
            ..MachineConfig::default()
        }
    }
}

/// Full outcome of one benchmark run (multi-threaded + single-threaded
/// reference).
#[derive(Debug)]
pub struct RunOutcome {
    /// Display name (with input-size suffix).
    pub name: String,
    /// Suite label.
    pub suite: String,
    /// Software thread count of the multi-threaded run.
    pub threads: usize,
    /// The speedup stack, with the actual speedup attached.
    pub stack: SpeedupStack,
    /// Actual speedup `S = Ts / Tp` (Eq. 1).
    pub actual: f64,
    /// Estimated speedup `Ŝ` (Eq. 4).
    pub estimated: f64,
    /// Single-threaded execution cycles `Ts`.
    pub st_cycles: u64,
    /// Multi-threaded execution cycles `Tp`.
    pub mt_cycles: u64,
    /// The paper's §6 software overhead measure: relative dynamic
    /// instruction increase, spin instructions excluded.
    pub instruction_overhead: f64,
    /// Raw multi-threaded simulation result (counters + ground truth).
    pub mt: SimResult,
}

impl RunOutcome {
    /// Signed validation error `(Ŝ − S)/N` (Eq. 6).
    #[must_use]
    pub fn error(&self) -> f64 {
        speedup_stacks::estimate::speedup_error(self.estimated, self.actual, self.threads)
    }
}

/// Runs one simulation with the options' machine, honoring the
/// cooperative per-run deadline when armed.
fn simulate_opts(
    opts: &RunOptions,
    cores: usize,
    streams: Vec<Box<dyn cmpsim::OpStream>>,
) -> Result<SimResult, SimError> {
    let cfg = opts.machine(cores);
    cfg.validate().map_err(SimError::InvalidConfig)?;
    let sim = Simulation::new(cfg, streams);
    match opts.deadline_cycles {
        Some(d) => sim.with_deadline(Arc::new(AtomicU64::new(d))).run(),
        None => sim.run(),
    }
}

/// Runs `profile` single-threaded and returns `(cycles, instructions)`.
///
/// # Errors
///
/// Propagates [`SimError`] from the engine.
pub fn single_thread_reference(
    profile: &WorkloadProfile,
    opts: &RunOptions,
) -> Result<(u64, u64), SimError> {
    single_thread_reference_streams(opts, streams_for(profile, 1))
}

/// [`single_thread_reference`] with caller-supplied op streams (trace
/// replay feeds captured streams through here).
///
/// # Errors
///
/// Propagates [`SimError`] from the engine.
pub fn single_thread_reference_streams(
    opts: &RunOptions,
    streams: Vec<Box<dyn cmpsim::OpStream>>,
) -> Result<(u64, u64), SimError> {
    let st = simulate_opts(opts, 1, streams)?;
    Ok((st.tp_cycles, st.total_instructions()))
}

/// Runs `profile` with `opts` and builds the validated speedup stack.
///
/// `st_reference` (from [`single_thread_reference`]) can be supplied to
/// amortize the single-threaded run across a thread-count sweep.
///
/// # Errors
///
/// Propagates [`SimError`] from either run.
pub fn run_profile(
    profile: &WorkloadProfile,
    opts: &RunOptions,
    st_reference: Option<(u64, u64)>,
) -> Result<RunOutcome, SimError> {
    let st = match st_reference {
        Some(r) => r,
        None => single_thread_reference(profile, opts)?,
    };
    run_profile_streams(profile, opts, st, streams_for(profile, opts.threads))
}

/// [`run_profile`] with caller-supplied op streams for the
/// multi-threaded run (trace replay feeds captured streams through
/// here). The single-thread reference is always caller-supplied: a
/// replay must not fall back to the generators.
///
/// # Errors
///
/// Propagates [`SimError`] from the engine.
pub fn run_profile_streams(
    profile: &WorkloadProfile,
    opts: &RunOptions,
    st_reference: (u64, u64),
    streams: Vec<Box<dyn cmpsim::OpStream>>,
) -> Result<RunOutcome, SimError> {
    let (st_cycles, st_instructions) = st_reference;
    let mt = simulate_opts(opts, opts.cores, streams)?;
    let actual = st_cycles as f64 / mt.tp_cycles as f64;
    let stack = mt
        .stack(&opts.accounting)
        .expect("engine produces valid counters")
        .with_actual_speedup(actual);
    let estimated = stack.estimated_speedup();
    Ok(RunOutcome {
        name: display_name(profile),
        suite: profile.suite.label().to_string(),
        threads: opts.threads,
        actual,
        estimated,
        st_cycles,
        mt_cycles: mt.tp_cycles,
        instruction_overhead: accounting::instruction_overhead(&mt.counters, st_instructions),
        mt,
        stack,
    })
}

/// Runs a (benchmark × thread-count) figure grid, in parallel over the
/// independent simulation points.
///
/// Single-threaded references are computed once per benchmark (with
/// `mk_opts(profile, 1)`) and shared across that benchmark's points.
/// Results are collected in deterministic `(profile, count)` order, so a
/// serial and a parallel sweep produce identical figures — guarded by the
/// `sweep_determinism` integration test.
///
/// # Panics
///
/// Panics if any simulation fails (catalog workloads are deadlock-free
/// by construction).
pub fn run_grid(
    profiles: &[WorkloadProfile],
    counts: &[usize],
    mk_opts: &(impl Fn(&WorkloadProfile, usize) -> RunOptions + Sync),
    mode: crate::par::Parallelism,
) -> Vec<Vec<RunOutcome>> {
    // Phase 1: single-threaded references, one per benchmark.
    let refs = crate::par::map_mode(mode, profiles.iter().collect(), |p| {
        single_thread_reference(p, &mk_opts(p, 1)).expect("single-thread run")
    });
    // Phase 2: every (benchmark, thread-count) point.
    let points: Vec<(usize, usize)> = (0..profiles.len())
        .flat_map(|pi| counts.iter().map(move |&n| (pi, n)))
        .collect();
    let outcomes = crate::par::map_mode(mode, points, |(pi, n)| {
        run_profile(&profiles[pi], &mk_opts(&profiles[pi], n), Some(refs[pi])).expect("run")
    });
    // Regroup flat results per benchmark, in counts order.
    let mut iter = outcomes.into_iter();
    profiles
        .iter()
        .map(|_| {
            counts
                .iter()
                .map(|_| iter.next().expect("one outcome per point"))
                .collect()
        })
        .collect()
}

/// The journaled essence of one completed grid point: everything the
/// figure assemblies consume from a [`RunOutcome`], minus the raw
/// simulation result (ground-truth counters are an in-memory debugging
/// aid, not figure input). Round-trips through the journal exactly:
/// floats are written with shortest round-trip formatting and the stack
/// is rebuilt from its per-thread breakdowns by the same deterministic
/// aggregation that built it the first time.
#[derive(Debug, Clone, PartialEq)]
pub struct PointSummary {
    /// Display name (with input-size suffix).
    pub name: String,
    /// Suite label.
    pub suite: String,
    /// Software thread count of the multi-threaded run.
    pub threads: usize,
    /// Actual speedup `S = Ts / Tp` (Eq. 1).
    pub actual: f64,
    /// Estimated speedup `Ŝ` (Eq. 4).
    pub estimated: f64,
    /// Single-threaded execution cycles `Ts`.
    pub st_cycles: u64,
    /// Multi-threaded execution cycles `Tp`.
    pub mt_cycles: u64,
    /// The paper's §6 software overhead measure.
    pub instruction_overhead: f64,
    /// The speedup stack, with the actual speedup attached.
    pub stack: SpeedupStack,
}

impl From<RunOutcome> for PointSummary {
    fn from(out: RunOutcome) -> Self {
        PointSummary {
            name: out.name,
            suite: out.suite,
            threads: out.threads,
            actual: out.actual,
            estimated: out.estimated,
            st_cycles: out.st_cycles,
            mt_cycles: out.mt_cycles,
            instruction_overhead: out.instruction_overhead,
            stack: out.stack,
        }
    }
}

/// Reads a JSON number field, mapping `null` back to the `NaN` it was
/// emitted from.
fn num_field(v: &JsonValue, k: &str) -> Option<f64> {
    match v.get(k)? {
        JsonValue::Number(x) => Some(*x),
        JsonValue::Null => Some(f64::NAN),
        _ => None,
    }
}

/// Reads a non-negative integer field (counter magnitudes in this
/// codebase stay far below 2^53, so the `f64` round-trip is exact).
fn u64_field(v: &JsonValue, k: &str) -> Option<u64> {
    let x = v.get(k)?.as_f64()?;
    (x >= 0.0 && x.fract() == 0.0).then_some(x as u64)
}

impl PointSummary {
    /// Signed validation error `(Ŝ − S)/N` (Eq. 6).
    #[must_use]
    pub fn error(&self) -> f64 {
        speedup_stacks::estimate::speedup_error(self.estimated, self.actual, self.threads)
    }

    /// Serializes as a journal `point` record (one JSON object).
    #[must_use]
    pub fn to_record(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(512);
        let _ = write!(
            out,
            "{{\"kind\": \"point\", \"name\": \"{}\", \"suite\": \"{}\", \"threads\": {}, \
             \"actual\": {}, \"estimated\": {}, \"st_cycles\": {}, \"mt_cycles\": {}, \
             \"instruction_overhead\": {}, \"stack\": {{\"tp_cycles\": {}, \"per_thread\": [",
            json::escape(&self.name),
            json::escape(&self.suite),
            self.threads,
            json::number(self.actual),
            json::number(self.estimated),
            self.st_cycles,
            self.mt_cycles,
            json::number(self.instruction_overhead),
            self.stack.tp_cycles(),
        );
        for (i, t) in self.stack.per_thread().iter().enumerate() {
            let comma = if i + 1 < self.stack.per_thread().len() {
                ", "
            } else {
                ""
            };
            out.push_str("{\"o\": [");
            for (ci, c) in Component::ALL.iter().enumerate() {
                let vcomma = if ci + 1 < Component::ALL.len() {
                    ", "
                } else {
                    ""
                };
                let _ = write!(out, "{}{vcomma}", json::number(t.overheads.get(*c)));
            }
            let _ = write!(
                out,
                "], \"p\": {}, \"e\": {}}}{comma}",
                json::number(t.positive_cycles),
                json::number(t.estimated_single_thread_cycles),
            );
        }
        out.push_str("]}}");
        out
    }

    /// Rebuilds a summary from a parsed journal `point` record. `None`
    /// on any shape mismatch (the caller quarantines the record).
    #[must_use]
    pub fn from_record(v: &JsonValue) -> Option<PointSummary> {
        let stack_v = v.get("stack")?;
        let tp = u64_field(stack_v, "tp_cycles")?;
        let mut per_thread = Vec::new();
        for t in stack_v.get("per_thread")?.as_array()? {
            let o = t.get("o")?.as_array()?;
            if o.len() != Component::ALL.len() {
                return None;
            }
            let mut overheads = Breakdown::zero();
            for (c, val) in Component::ALL.iter().zip(o) {
                overheads.set(*c, val.as_f64()?);
            }
            per_thread.push(ThreadBreakdown {
                overheads,
                positive_cycles: num_field(t, "p")?,
                estimated_single_thread_cycles: num_field(t, "e")?,
            });
        }
        if per_thread.is_empty() {
            return None;
        }
        let actual = num_field(v, "actual")?;
        Some(PointSummary {
            name: v.get("name")?.as_str()?.to_string(),
            suite: v.get("suite")?.as_str()?.to_string(),
            threads: u64_field(v, "threads")? as usize,
            actual,
            estimated: num_field(v, "estimated")?,
            st_cycles: u64_field(v, "st_cycles")?,
            mt_cycles: u64_field(v, "mt_cycles")?,
            instruction_overhead: num_field(v, "instruction_overhead")?,
            stack: SpeedupStack::from_breakdowns(per_thread, tp).with_actual_speedup(actual),
        })
    }
}

/// Serializes a single-thread reference as a journal `ref` record.
fn ref_record(name: &str, (cycles, instructions): (u64, u64)) -> String {
    format!(
        "{{\"kind\": \"ref\", \"profile\": \"{}\", \"st_cycles\": {cycles}, \
         \"st_instructions\": {instructions}}}",
        json::escape(name)
    )
}

/// Parses a journal `ref` record back into `(name, (Ts, instructions))`.
fn ref_from_record(v: &JsonValue) -> Option<(String, (u64, u64))> {
    Some((
        v.get("profile")?.as_str()?.to_string(),
        (u64_field(v, "st_cycles")?, u64_field(v, "st_instructions")?),
    ))
}

/// Fault-handling policy for a fault-tolerant sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultPolicy {
    /// Cooperative per-point deadline in simulated cycles (`None` = no
    /// deadline). Deterministic: the abort point depends only on
    /// simulated time.
    pub deadline_cycles: Option<u64>,
    /// Extra attempts per failing point (0 = fail on the first error).
    /// Retries re-run the identical pure closure, so deterministic
    /// failures fail identically and results stay mode-independent.
    pub retries: u32,
}

/// Everything [`run_grid_ft`] needs beyond the grid itself.
#[derive(Debug)]
pub struct SweepOptions<'a> {
    /// Sweep parallelism.
    pub mode: Parallelism,
    /// Per-point fault policy.
    pub faults: FaultPolicy,
    /// Journal destination (fresh or resume). `None` = no journaling.
    pub journal: Option<&'a JournalSpec>,
    /// Study registry key (the journal header's identity).
    pub study: &'a str,
    /// Parameter fingerprint (see [`crate::journal::fingerprint`]).
    pub fingerprint: &'a str,
    /// Budget of compute units (references + points) for this
    /// invocation. Exceeding it checkpoints what completed and returns
    /// [`speedup_stacks::SimError::Interrupted`] — the mechanism the CI
    /// resume smoke test uses to emulate a mid-sweep kill.
    pub max_points: Option<usize>,
    /// Trace capture or replay (`repro --trace-out` / `--trace-in`).
    /// `None` = generated streams, no trace.
    pub trace: Option<&'a TraceSpec>,
}

impl<'a> SweepOptions<'a> {
    /// A plain in-memory sweep: given parallelism and fault policy, no
    /// journal, no budget, no trace.
    #[must_use]
    pub fn plain(mode: Parallelism, faults: FaultPolicy, study: &'a str) -> SweepOptions<'a> {
        SweepOptions {
            mode,
            faults,
            journal: None,
            study,
            fingerprint: "",
            max_points: None,
            trace: None,
        }
    }
}

/// The outcome of a fault-tolerant grid sweep.
#[derive(Debug)]
pub struct GridReport {
    /// Per-profile, per-count point summaries, in deterministic
    /// `(profile, count)` order. `None` marks a failed point; its reason
    /// is in [`GridReport::degraded`].
    pub rows: Vec<Vec<Option<PointSummary>>>,
    /// Degradation accounting for the report's `Degraded` block (checked
    /// with `is_degraded()` — a clean run pushes no block, which keeps
    /// resumed reports byte-identical to uninterrupted ones).
    pub degraded: Degraded,
    /// Grid points replayed from the journal instead of recomputed.
    pub resumed: usize,
    /// Capture provenance when the sweep traced to a file (`None` on
    /// plain and replayed sweeps — replays attach nothing extra, so a
    /// replayed report stays byte-identical to the generated one).
    pub provenance: Option<Provenance>,
}

/// Runs a (benchmark × thread-count) grid with per-point fault domains:
/// panics and engine errors are confined to their point, failing points
/// are retried up to the policy's budget, completed points stream into
/// the journal (when armed), and a resume replays intact journal records
/// instead of recomputing them — reproducing the uninterrupted sweep's
/// report bit for bit.
///
/// # Errors
///
/// - [`speedup_stacks::SimError::Config`] when a workload profile is
///   invalid (checked up front — configuration mistakes are not point
///   faults),
/// - [`speedup_stacks::SimError::Journal`] when the journal cannot be
///   created, read, or fails identity validation on resume,
/// - [`speedup_stacks::SimError::Interrupted`] when the
///   [`SweepOptions::max_points`] budget ran out before the grid was
///   complete (completed work is journaled; resume finishes it),
/// - [`speedup_stacks::SimError::Trace`] when the trace file cannot be
///   written (capture) or is missing, damaged, or was captured for a
///   different study or parameter set (replay). Trace damage is fatal,
///   never degraded: silently replaying a different op stream would
///   fabricate results.
///
/// Per-point failures are **not** errors: they surface as `None` rows
/// plus [`GridReport::degraded`] entries.
pub fn run_grid_ft(
    profiles: &[WorkloadProfile],
    counts: &[usize],
    mk_opts: &(impl Fn(&WorkloadProfile, usize) -> RunOptions + Sync),
    sweep: &SweepOptions<'_>,
) -> Result<GridReport, CoreError> {
    // Configuration errors are not point faults: reject degenerate
    // workloads before spending any simulation time.
    for p in profiles {
        p.validate().map_err(CoreError::Config)?;
    }

    // Trace capture happens up front: every (profile, thread-count) run
    // the sweep will make is drained from the (deterministic) generators
    // into the trace file, then the sweep itself proceeds on generated
    // streams as usual. Replay opens and identity-checks the trace; the
    // point closures below then draw their ops from it.
    let mut provenance: Option<Provenance> = None;
    let trace_reader: Option<TraceReader> = match sweep.trace {
        Some(spec) if spec.replay => Some(
            TraceReader::open(&spec.path, Some((sweep.study, sweep.fingerprint)))
                .map_err(CoreError::Trace)?,
        ),
        Some(spec) => {
            let mut w = TraceWriter::create(&spec.path, sweep.study, sweep.fingerprint)
                .map_err(CoreError::Trace)?;
            for p in profiles {
                let name = display_name(p);
                // The single-thread reference run, then each grid
                // point's thread count (deduplicated — e.g. a count
                // whose options pin threads to an already-captured
                // value).
                let mut written: Vec<usize> = vec![1];
                w.add_run(&name, streams_for(p, 1))
                    .map_err(CoreError::Trace)?;
                for &n in counts {
                    let threads = mk_opts(p, n).threads;
                    if !written.contains(&threads) {
                        written.push(threads);
                        w.add_run(&name, streams_for(p, threads))
                            .map_err(CoreError::Trace)?;
                    }
                }
            }
            let stats = w.finish().map_err(CoreError::Trace)?;
            provenance = Some(Provenance {
                path: spec.path.clone(),
                runs: stats.runs,
                bytes: stats.bytes,
            });
            None
        }
        None => None,
    };

    // Replay the journal (resume) or start a fresh one.
    let mut done_refs: HashMap<String, (u64, u64)> = HashMap::new();
    let mut done_points: HashMap<(String, usize), PointSummary> = HashMap::new();
    let mut quarantined = 0usize;
    let writer: Option<Mutex<JournalWriter>> = match sweep.journal {
        Some(spec) if spec.resume => {
            let scan = journal::scan(&spec.path, sweep.study, sweep.fingerprint)
                .map_err(CoreError::Journal)?;
            quarantined = scan.quarantined;
            for rec in &scan.records {
                match rec.get("kind").and_then(JsonValue::as_str) {
                    Some("ref") => match ref_from_record(rec) {
                        Some((name, st)) => {
                            done_refs.insert(name, st);
                        }
                        None => quarantined += 1,
                    },
                    Some("point") => match PointSummary::from_record(rec) {
                        Some(p) => {
                            done_points.insert((p.name.clone(), p.threads), p);
                        }
                        None => quarantined += 1,
                    },
                    _ => quarantined += 1,
                }
            }
            Some(Mutex::new(
                JournalWriter::open_append(&spec.path).map_err(CoreError::Journal)?,
            ))
        }
        Some(spec) => Some(Mutex::new(
            JournalWriter::create(&spec.path, sweep.study, sweep.fingerprint)
                .map_err(CoreError::Journal)?,
        )),
        None => None,
    };

    // A journal append failure inside a worker must not be swallowed:
    // park the first one and fail the sweep at the next checkpoint.
    let journal_fault: Mutex<Option<speedup_stacks::error::JournalError>> = Mutex::new(None);
    let record = |data: &str| {
        if let Some(w) = &writer {
            if let Err(e) = w
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .append(data)
            {
                journal_fault
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .get_or_insert(e);
            }
        }
    };
    let take_journal_fault = || {
        journal_fault
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
    };

    // Same parking pattern for trace damage discovered inside a worker:
    // [`cmpsim::OpStream`] has no error channel, so a replay stream that
    // hits damage parks a typed error in its run's fault slot; the
    // closures move it here and the sweep fails at the next checkpoint.
    let trace_fault: Mutex<Option<TraceError>> = Mutex::new(None);
    let park_trace = |e: TraceError| -> String {
        let msg = e.to_string();
        trace_fault
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get_or_insert(e);
        msg
    };
    let take_trace_fault = || {
        trace_fault
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
    };

    let grid: Vec<(usize, usize)> = (0..profiles.len())
        .flat_map(|pi| counts.iter().map(move |&n| (pi, n)))
        .collect();
    let resumed = grid
        .iter()
        .filter(|&&(pi, n)| done_points.contains_key(&(display_name(&profiles[pi]), n)))
        .count();
    let pending: Vec<(usize, usize)> = grid
        .iter()
        .copied()
        .filter(|&(pi, n)| !done_points.contains_key(&(display_name(&profiles[pi]), n)))
        .collect();
    let mut need_ref: Vec<usize> = pending.iter().map(|&(pi, _)| pi).collect();
    need_ref.sort_unstable();
    need_ref.dedup();
    need_ref.retain(|&pi| !done_refs.contains_key(&display_name(&profiles[pi])));

    let budget = sweep.max_points.unwrap_or(usize::MAX);
    let run_refs = need_ref.len().min(budget);
    let truncated_refs = need_ref.len() > run_refs;
    let faults = sweep.faults;

    // Phase 1: single-threaded references, one per benchmark with
    // pending points. A failed reference cascades to its points below.
    let ref_outcomes = try_map_mode(
        sweep.mode,
        faults.retries,
        need_ref[..run_refs].to_vec(),
        |&pi| format!("{} (single-thread reference)", display_name(&profiles[pi])),
        |&pi| {
            let p = &profiles[pi];
            let mut opts = mk_opts(p, 1);
            opts.deadline_cycles = opts.deadline_cycles.or(faults.deadline_cycles);
            let st = match &trace_reader {
                Some(r) => {
                    let run = r.run_streams(&display_name(p), 1).map_err(&park_trace)?;
                    let result = single_thread_reference_streams(&opts, run.streams);
                    // Check the fault slot before the engine result: a
                    // truncated stream can surface as an engine error
                    // (or a deadlock) whose root cause is the trace.
                    if let Some(f) = run.fault.take() {
                        return Err(park_trace(f));
                    }
                    result.map_err(|e| e.to_string())?
                }
                None => single_thread_reference(p, &opts).map_err(|e| e.to_string())?,
            };
            record(&ref_record(&display_name(p), st));
            Ok(st)
        },
    );
    let mut degraded = Degraded {
        total_points: grid.len(),
        quarantined,
        ..Degraded::default()
    };
    let mut completed_units = 0usize;
    let mut ref_fail: HashMap<usize, (String, u32)> = HashMap::new();
    for (slot, &pi) in ref_outcomes.into_iter().zip(&need_ref[..run_refs]) {
        if slot.retried_ok() {
            degraded.retried += 1;
        }
        match slot.result {
            Ok(st) => {
                done_refs.insert(display_name(&profiles[pi]), st);
                completed_units += 1;
            }
            Err(e) => {
                ref_fail.insert(pi, (e.payload, e.attempts));
            }
        }
    }
    if let Some(e) = take_trace_fault() {
        return Err(CoreError::Trace(e));
    }
    if let Some(e) = take_journal_fault() {
        return Err(CoreError::Journal(e));
    }
    if truncated_refs {
        return Err(CoreError::Interrupted {
            completed: completed_units,
        });
    }

    // Phase 2: every pending point whose reference exists.
    let runnable: Vec<(usize, usize)> = pending
        .iter()
        .copied()
        .filter(|(pi, _)| !ref_fail.contains_key(pi))
        .collect();
    let remaining = budget - run_refs;
    let run_pts = runnable.len().min(remaining);
    let truncated_pts = runnable.len() > run_pts;
    let pts_to_run = runnable[..run_pts].to_vec();
    let refs = &done_refs;
    let point_outcomes = try_map_mode(
        sweep.mode,
        faults.retries,
        pts_to_run.clone(),
        |&(pi, n)| format!("{} x{}", display_name(&profiles[pi]), n),
        |&(pi, n)| {
            let p = &profiles[pi];
            let mut opts = mk_opts(p, n);
            opts.deadline_cycles = opts.deadline_cycles.or(faults.deadline_cycles);
            let st = refs[&display_name(p)];
            let out = match &trace_reader {
                Some(r) => {
                    let run = r
                        .run_streams(&display_name(p), opts.threads)
                        .map_err(&park_trace)?;
                    let result = run_profile_streams(p, &opts, st, run.streams);
                    if let Some(f) = run.fault.take() {
                        return Err(park_trace(f));
                    }
                    result.map_err(|e| e.to_string())?
                }
                None => run_profile(p, &opts, Some(st)).map_err(|e| e.to_string())?,
            };
            let summary = PointSummary::from(out);
            record(&summary.to_record());
            Ok(summary)
        },
    );
    for (slot, (pi, n)) in point_outcomes.into_iter().zip(pts_to_run) {
        if slot.retried_ok() {
            degraded.retried += 1;
        }
        match slot.result {
            Ok(s) => {
                completed_units += 1;
                done_points.insert((display_name(&profiles[pi]), n), s);
            }
            Err(e) => degraded.failed.push(DegradedPoint {
                label: e.label,
                reason: e.payload,
                attempts: e.attempts,
            }),
        }
    }
    if let Some(e) = take_trace_fault() {
        return Err(CoreError::Trace(e));
    }
    if let Some(e) = take_journal_fault() {
        return Err(CoreError::Journal(e));
    }
    if truncated_pts {
        return Err(CoreError::Interrupted {
            completed: completed_units,
        });
    }

    // Cascade failed references onto their (never attempted) points.
    for &(pi, n) in &pending {
        if let Some((reason, attempts)) = ref_fail.get(&pi) {
            degraded.failed.push(DegradedPoint {
                label: format!("{} x{}", display_name(&profiles[pi]), n),
                reason: format!("single-thread reference failed: {reason}"),
                attempts: *attempts,
            });
        }
    }

    // Assemble rows in deterministic grid order.
    let rows: Vec<Vec<Option<PointSummary>>> = profiles
        .iter()
        .map(|p| {
            let name = display_name(p);
            counts
                .iter()
                .map(|&n| done_points.remove(&(name.clone(), n)))
                .collect()
        })
        .collect();
    degraded.completed = rows.iter().flatten().filter(|s| s.is_some()).count();
    Ok(GridReport {
        rows,
        degraded,
        resumed,
        provenance,
    })
}

/// Returns a copy of `profile` with its total work scaled by `factor`
/// (used by the benches to keep regeneration fast). The result
/// keeps at least one item per thread and phase.
#[must_use]
pub fn scaled_profile(profile: &WorkloadProfile, factor: f64) -> WorkloadProfile {
    let mut p = profile.clone();
    let min_items = u64::from(p.phases.max(1)) * 16;
    p.total_items = ((p.total_items as f64 * factor) as u64).max(min_items);
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::{find, Suite};

    #[test]
    fn blackscholes_small_scales_well_on_4() {
        let p = scaled_profile(&find("blackscholes", Suite::ParsecSmall).unwrap(), 0.25);
        let out = run_profile(&p, &RunOptions::symmetric(4), None).unwrap();
        assert!(out.actual > 3.0, "actual speedup {}", out.actual);
        assert!(out.estimated > 3.0, "estimated {}", out.estimated);
        assert!(out.error().abs() < 0.2);
    }

    #[test]
    fn st_reference_reused() {
        let p = scaled_profile(&find("blackscholes", Suite::ParsecSmall).unwrap(), 0.1);
        let opts = RunOptions::symmetric(2);
        let st = single_thread_reference(&p, &opts).unwrap();
        let a = run_profile(&p, &opts, Some(st)).unwrap();
        let b = run_profile(&p, &opts, None).unwrap();
        assert_eq!(a.st_cycles, b.st_cycles);
        assert_eq!(a.mt_cycles, b.mt_cycles);
    }

    #[test]
    fn point_summary_journal_round_trip() {
        let p = scaled_profile(&find("blackscholes", Suite::ParsecSmall).unwrap(), 0.05);
        let out = run_profile(&p, &RunOptions::symmetric(2), None).unwrap();
        let summary = PointSummary::from(out);
        let parsed = json::parse(&summary.to_record()).unwrap();
        let back = PointSummary::from_record(&parsed).unwrap();
        // Bit-identical: shortest round-trip float formatting plus
        // deterministic stack re-aggregation.
        assert_eq!(back, summary);
    }

    #[test]
    fn run_grid_ft_matches_run_grid_clean() {
        let p = scaled_profile(&find("blackscholes", Suite::ParsecSmall).unwrap(), 0.05);
        let profiles = vec![p];
        let counts = [2, 4];
        let mk = |_: &WorkloadProfile, n: usize| RunOptions::symmetric(n);
        let plain = run_grid(&profiles, &counts, &mk, Parallelism::Serial);
        let sweep = SweepOptions::plain(Parallelism::Serial, FaultPolicy::default(), "test");
        let ft = run_grid_ft(&profiles, &counts, &mk, &sweep).unwrap();
        assert!(!ft.degraded.is_degraded());
        assert_eq!(ft.resumed, 0);
        for (row, ft_row) in plain.iter().zip(&ft.rows) {
            for (out, slot) in row.iter().zip(ft_row) {
                let s = slot.as_ref().expect("clean sweep completes every point");
                assert_eq!(s.stack, out.stack);
                assert_eq!(s.st_cycles, out.st_cycles);
                assert_eq!(s.mt_cycles, out.mt_cycles);
            }
        }
    }

    #[test]
    fn run_grid_ft_deadline_fails_points_not_sweep() {
        let p = scaled_profile(&find("blackscholes", Suite::ParsecSmall).unwrap(), 0.05);
        let profiles = vec![p];
        let mk = |_: &WorkloadProfile, n: usize| RunOptions::symmetric(n);
        let sweep = SweepOptions::plain(
            Parallelism::Serial,
            FaultPolicy {
                // Far below any real run length: every point's engine
                // aborts at this simulated cycle.
                deadline_cycles: Some(10),
                retries: 0,
            },
            "test",
        );
        let ft = run_grid_ft(&profiles, &[2], &mk, &sweep).unwrap();
        assert!(ft.degraded.is_degraded());
        assert_eq!(ft.degraded.completed, 0);
        assert!(ft.rows[0][0].is_none());
        let reason = &ft.degraded.failed[0].reason;
        assert!(reason.contains("deadline"), "unexpected reason: {reason}");
    }

    #[test]
    fn scaled_profile_floors() {
        let p = find("srad", Suite::Rodinia).unwrap();
        let tiny = scaled_profile(&p, 0.000001);
        assert!(tiny.total_items >= u64::from(tiny.phases) * 16);
    }
}
