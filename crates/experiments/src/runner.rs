//! Running one workload on one machine and producing its speedup stack.
//!
//! Every experiment in the paper reduces to this recipe: run the workload
//! multi-threaded on the configured CMP (that run drives the accounting
//! and yields the *estimated* speedup), run it single-threaded on one core
//! of the same machine (Eq. 1's `Ts`), and attach the resulting *actual*
//! speedup to the stack for validation.

use cmpsim::{simulate, MachineConfig, SimError, SimResult};
use memsim::MemConfig;
use speedup_stacks::{accounting, AccountingConfig, SpeedupStack};
use workloads::{display_name, streams_for, WorkloadProfile};

/// Machine/accounting options for a run.
#[derive(Debug, Clone, Copy)]
pub struct RunOptions {
    /// Memory hierarchy configuration.
    pub mem: MemConfig,
    /// Number of hardware cores for the multi-threaded run.
    pub cores: usize,
    /// Number of software threads (usually equal to `cores`; Figure 7
    /// decouples them).
    pub threads: usize,
    /// Spin detector for the accounting.
    pub detector: cmpsim::SpinDetectorKind,
    /// Accounting post-processing options.
    pub accounting: AccountingConfig,
    /// Engine event-queue implementation (results are bit-identical
    /// across queues; the binary heap exists for baseline benchmarks and
    /// equivalence tests).
    pub queue: cmpsim::EventQueueKind,
}

impl RunOptions {
    /// `n` threads on `n` cores with default memory and accounting.
    #[must_use]
    pub fn symmetric(n: usize) -> Self {
        RunOptions {
            mem: MemConfig::default(),
            cores: n,
            threads: n,
            detector: cmpsim::SpinDetectorKind::default(),
            accounting: AccountingConfig::default(),
            queue: cmpsim::EventQueueKind::default(),
        }
    }

    fn machine(&self, cores: usize) -> MachineConfig {
        MachineConfig {
            n_cores: cores,
            mem: self.mem,
            spin_detector: self.detector,
            event_queue: self.queue,
            ..MachineConfig::default()
        }
    }
}

/// Full outcome of one benchmark run (multi-threaded + single-threaded
/// reference).
#[derive(Debug)]
pub struct RunOutcome {
    /// Display name (with input-size suffix).
    pub name: String,
    /// Suite label.
    pub suite: String,
    /// Software thread count of the multi-threaded run.
    pub threads: usize,
    /// The speedup stack, with the actual speedup attached.
    pub stack: SpeedupStack,
    /// Actual speedup `S = Ts / Tp` (Eq. 1).
    pub actual: f64,
    /// Estimated speedup `Ŝ` (Eq. 4).
    pub estimated: f64,
    /// Single-threaded execution cycles `Ts`.
    pub st_cycles: u64,
    /// Multi-threaded execution cycles `Tp`.
    pub mt_cycles: u64,
    /// The paper's §6 software overhead measure: relative dynamic
    /// instruction increase, spin instructions excluded.
    pub instruction_overhead: f64,
    /// Raw multi-threaded simulation result (counters + ground truth).
    pub mt: SimResult,
}

impl RunOutcome {
    /// Signed validation error `(Ŝ − S)/N` (Eq. 6).
    #[must_use]
    pub fn error(&self) -> f64 {
        speedup_stacks::estimate::speedup_error(self.estimated, self.actual, self.threads)
    }
}

/// Runs `profile` single-threaded and returns `(cycles, instructions)`.
///
/// # Errors
///
/// Propagates [`SimError`] from the engine.
pub fn single_thread_reference(
    profile: &WorkloadProfile,
    opts: &RunOptions,
) -> Result<(u64, u64), SimError> {
    let st = simulate(opts.machine(1), streams_for(profile, 1))?;
    Ok((st.tp_cycles, st.total_instructions()))
}

/// Runs `profile` with `opts` and builds the validated speedup stack.
///
/// `st_reference` (from [`single_thread_reference`]) can be supplied to
/// amortize the single-threaded run across a thread-count sweep.
///
/// # Errors
///
/// Propagates [`SimError`] from either run.
pub fn run_profile(
    profile: &WorkloadProfile,
    opts: &RunOptions,
    st_reference: Option<(u64, u64)>,
) -> Result<RunOutcome, SimError> {
    let (st_cycles, st_instructions) = match st_reference {
        Some(r) => r,
        None => single_thread_reference(profile, opts)?,
    };
    let mt = simulate(opts.machine(opts.cores), streams_for(profile, opts.threads))?;
    let actual = st_cycles as f64 / mt.tp_cycles as f64;
    let stack = mt
        .stack(&opts.accounting)
        .expect("engine produces valid counters")
        .with_actual_speedup(actual);
    let estimated = stack.estimated_speedup();
    Ok(RunOutcome {
        name: display_name(profile),
        suite: profile.suite.label().to_string(),
        threads: opts.threads,
        actual,
        estimated,
        st_cycles,
        mt_cycles: mt.tp_cycles,
        instruction_overhead: accounting::instruction_overhead(&mt.counters, st_instructions),
        mt,
        stack,
    })
}

/// Runs a (benchmark × thread-count) figure grid, in parallel over the
/// independent simulation points.
///
/// Single-threaded references are computed once per benchmark (with
/// `mk_opts(profile, 1)`) and shared across that benchmark's points.
/// Results are collected in deterministic `(profile, count)` order, so a
/// serial and a parallel sweep produce identical figures — guarded by the
/// `sweep_determinism` integration test.
///
/// # Panics
///
/// Panics if any simulation fails (catalog workloads are deadlock-free
/// by construction).
pub fn run_grid(
    profiles: &[WorkloadProfile],
    counts: &[usize],
    mk_opts: &(impl Fn(&WorkloadProfile, usize) -> RunOptions + Sync),
    mode: crate::par::Parallelism,
) -> Vec<Vec<RunOutcome>> {
    // Phase 1: single-threaded references, one per benchmark.
    let refs = crate::par::map_mode(mode, profiles.iter().collect(), |p| {
        single_thread_reference(p, &mk_opts(p, 1)).expect("single-thread run")
    });
    // Phase 2: every (benchmark, thread-count) point.
    let points: Vec<(usize, usize)> = (0..profiles.len())
        .flat_map(|pi| counts.iter().map(move |&n| (pi, n)))
        .collect();
    let outcomes = crate::par::map_mode(mode, points, |(pi, n)| {
        run_profile(&profiles[pi], &mk_opts(&profiles[pi], n), Some(refs[pi])).expect("run")
    });
    // Regroup flat results per benchmark, in counts order.
    let mut iter = outcomes.into_iter();
    profiles
        .iter()
        .map(|_| {
            counts
                .iter()
                .map(|_| iter.next().expect("one outcome per point"))
                .collect()
        })
        .collect()
}

/// Returns a copy of `profile` with its total work scaled by `factor`
/// (used by the benches to keep regeneration fast). The result
/// keeps at least one item per thread and phase.
#[must_use]
pub fn scaled_profile(profile: &WorkloadProfile, factor: f64) -> WorkloadProfile {
    let mut p = profile.clone();
    let min_items = u64::from(p.phases.max(1)) * 16;
    p.total_items = ((p.total_items as f64 * factor) as u64).max(min_items);
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::{find, Suite};

    #[test]
    fn blackscholes_small_scales_well_on_4() {
        let p = scaled_profile(&find("blackscholes", Suite::ParsecSmall).unwrap(), 0.25);
        let out = run_profile(&p, &RunOptions::symmetric(4), None).unwrap();
        assert!(out.actual > 3.0, "actual speedup {}", out.actual);
        assert!(out.estimated > 3.0, "estimated {}", out.estimated);
        assert!(out.error().abs() < 0.2);
    }

    #[test]
    fn st_reference_reused() {
        let p = scaled_profile(&find("blackscholes", Suite::ParsecSmall).unwrap(), 0.1);
        let opts = RunOptions::symmetric(2);
        let st = single_thread_reference(&p, &opts).unwrap();
        let a = run_profile(&p, &opts, Some(st)).unwrap();
        let b = run_profile(&p, &opts, None).unwrap();
        assert_eq!(a.st_cycles, b.st_cycles);
        assert_eq!(a.mt_cycles, b.mt_cycles);
    }

    #[test]
    fn scaled_profile_floors() {
        let p = find("srad", Suite::Rodinia).unwrap();
        let tiny = scaled_profile(&p, 0.000001);
        assert!(tiny.total_items >= u64::from(tiny.phases) * 16);
    }
}
